"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one figure of the paper's evaluation
(section 4) and prints the corresponding rows/series.  Run with::

    pytest benchmarks/ --benchmark-only -s

The printed tables are the deliverable; the pytest-benchmark timings
additionally record how long each experiment takes to simulate.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render a fixed-width table to stdout."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print()
    print(f"=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    print()


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def print_series(title: str, points: Sequence, unit: str = "") -> None:
    """Render an (x, y) series compactly, one point per line."""
    print()
    print(f"--- {title} ---")
    for x, y in points:
        print(f"  t={x:8.3f}  {y:10.3f} {unit}")
    print()
