"""Figure 7 — latency and nack range for the b1 crash.

Paper setup: broker b1 (intermediate, cell IB1 = {b1, b2}) is stalled
~2.5 s, crashed, and restarted 30 s later.  Before the crash b1 and b2
each carry 2 of the 4 pubends.

Claims reproduced:

* first latency peak from the stall-then-crash (lost burst recovered via
  nacks through b2);
* second, smaller latency peak when b1 restarts and half the pubends
  switch back to it while it is still warming up (the paper attributes
  this to JIT warm-up; we model a restart CPU warmup) — with *no* nacks
  at that time, since messages are delayed, not lost;
* s1 and s2 lost the same messages, so their nack counts and ranges are
  almost identical (paper: ~5500 ms each over 2 pubends);
* b2 cannot satisfy those nacks locally and forwards them consolidated:
  its cumulative nack range is about *half* of s1 + s2 combined
  ("almost perfect" consolidation);
* exactly-once delivery everywhere.
"""

import pytest

from repro.experiments.fig678 import run_fault_experiment

from _bench_tables import print_series, print_table

FAULT_AT = 5.0
STALL = 2.5
DOWNTIME = 30.0
RESTART_AT = FAULT_AT + STALL + DOWNTIME


def test_fig7_broker_crash(benchmark):
    result = benchmark.pedantic(
        run_fault_experiment,
        args=("crash_b1",),
        kwargs={"fault_at": FAULT_AT, "stall": STALL, "broker_downtime": DOWNTIME},
        rounds=1,
        iterations=1,
    )

    window = [
        (t, lat)
        for t, lat in result.latency["sub_s1"]
        if FAULT_AT - 1 <= t <= RESTART_AT + 3
    ]
    print_series(
        "Figure 7 (top) — s1 latency (s); crash at t=7.5, restart at t=37.5",
        window[:: max(len(window) // 50, 1)],
        "s",
    )

    s1 = result.nack_range_total("s1")
    s2 = result.nack_range_total("s2")
    b2 = result.nack_range_total("b2")
    print_table(
        "Figure 7 (bottom) — nack counts and cumulative ranges",
        ["node", "nack msgs", "nack range (ms)"],
        [
            ["s1", result.nack_count("s1"), f"{s1:.0f}"],
            ["s2", result.nack_count("s2"), f"{s2:.0f}"],
            ["b2 (consolidated)", result.nack_count("b2"), f"{b2:.0f}"],
        ],
    )

    assert result.all_exactly_once()
    # s1 and s2 nacked almost identically (same lost messages).
    assert result.nack_count("s1") == result.nack_count("s2")
    assert s1 == pytest.approx(s2, rel=0.05)
    # Paper: "about 2750 ms of data was lost for each pubend" over 2
    # pubends per subscriber -> range ~= 2 x stall.
    assert 0.6 * 2 * STALL * 1000 <= s1 <= 1.6 * 2 * STALL * 1000
    # Almost perfect consolidation: b2 forwards about half of s1 + s2.
    assert b2 == pytest.approx(0.5 * (s1 + s2), rel=0.10)

    # First latency peak ~ stall duration.
    first_peak = max(
        lat for t, lat in result.latency["sub_s1"] if t < FAULT_AT + STALL + 2
    )
    assert STALL * 0.8 <= first_peak <= STALL + 1.5
    # Second transient peak at restart (delayed, not lost: no new nacks).
    second_window = [
        lat
        for t, lat in result.latency["sub_s1"]
        if RESTART_AT - 0.2 <= t <= RESTART_AT + 2
    ]
    steady = result.steady_latency("sub_s1", before=FAULT_AT - 1)
    assert second_window and max(second_window) > 2 * steady
    assert max(second_window) < first_peak  # smaller than the crash peak
    late_nacks = [
        t for t, __ in result.nacks.get("s1", []) if t > RESTART_AT - 0.5
    ]
    assert late_nacks == []  # "no nacks are sent at this time"
