"""Ablation — subscription propagation (content-based routing).

Beyond the paper's figures: Gryphon's raison d'être is that intermediate
brokers filter, so traffic for content nobody downstream wants never
crosses the wide-area links.  The paper's fault experiments configure
pass-through filters; this ablation measures what dynamic subscription
summaries buy on a selective workload.

Setup: PHB -> IB -> two SHBs; one SHB subscribes to 10% of the content,
the other to a different 10%.  With propagation on, each SHB link carries
only its tenth (and the PHB->IB link two tenths); with it off, every
message traverses every link.  Delivery is exactly-once either way.
"""

import pytest

from repro.client import DeliveryChecker
from repro.core.config import LivenessParams
from repro.sim.trace import Tracer
from repro.topology import Topology

from _bench_tables import print_table

N_GROUPS = 10
RATE = 100.0


def build(propagation: bool):
    topo = Topology()
    topo.cell("PHB", "phb").cell("IB", "ib").cell("SHB1", "s1").cell("SHB2", "s2")
    topo.link("phb", "ib").link("ib", "s1").link("ib", "s2")
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "IB")
    topo.route("P0", "IB", "SHB1")
    topo.route("P0", "IB", "SHB2")
    params = LivenessParams(
        gct=0.1,
        nrt_min=0.3,
        subscription_propagation=propagation,
        link_status_interval=0.2,
    )
    return topo.build(seed=23, params=params, log_commit_latency=0.01)


def run(propagation: bool):
    system = build(propagation)
    tracer = Tracer(system).install()
    sub1 = system.subscribe("one", "s1", ("P0",), "g = 1")
    sub2 = system.subscribe("two", "s2", ("P0",), "g = 2")
    system.run_until(0.5)
    publisher = system.publisher(
        "P0", rate=RATE, make_attributes=lambda i: {"g": i % N_GROUPS}
    )
    publisher.start(at=0.6)
    system.run_until(5.0)
    publisher.stop()
    system.run_until(8.0)

    def shipped(node, to):
        return sum(
            event.detail.get("d", 0)
            for event in tracer.filter(kind="send", node=node)
            if event.detail.get("to") == to
            and event.detail.get("msg") in ("knowledge", "retransmit")
        )

    checker = DeliveryChecker([publisher])
    ok = (
        checker.check(sub1, system.subscriptions["one"]).exactly_once
        and checker.check(sub2, system.subscriptions["two"]).exactly_once
    )
    return {
        "propagation": propagation,
        "exactly_once": ok,
        "published": len(publisher.published),
        "phb_to_ib": shipped("phb", "ib"),
        "ib_to_s1": shipped("ib", "s1"),
        "ib_to_s2": shipped("ib", "s2"),
    }


def test_ablation_subscription_propagation(benchmark):
    on, off = benchmark.pedantic(
        lambda: (run(True), run(False)), rounds=1, iterations=1
    )
    print_table(
        "Ablation — subscription propagation "
        f"(two 1-in-{N_GROUPS} subscribers on separate SHBs)",
        ["propagation", "exactly once", "published",
         "PHB->IB data", "IB->s1 data", "IB->s2 data"],
        [
            [str(r["propagation"]), r["exactly_once"], r["published"],
             r["phb_to_ib"], r["ib_to_s1"], r["ib_to_s2"]]
            for r in (on, off)
        ],
    )
    assert on["exactly_once"] and off["exactly_once"]
    published = on["published"]
    # Without propagation every link carries everything.
    assert off["phb_to_ib"] >= published
    assert off["ib_to_s1"] >= published
    # With it, each link carries only the content subscribed below it
    # (plus a small slop for messages published before summaries settle).
    assert on["ib_to_s1"] <= 0.15 * published + 5
    assert on["ib_to_s2"] <= 0.15 * published + 5
    assert on["phb_to_ib"] <= 0.25 * published + 5
