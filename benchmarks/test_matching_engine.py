"""Matching-engine microbenchmarks.

Gryphon's SHB matches every event against the full subscription set
(16000 subscribers in the paper's overhead runs), so per-event matching
cost is the dominant SHB term.  This bench compares the brute-force
matcher against the attribute-indexed counting matcher at scale and
asserts the index actually wins.
"""

import pytest

from repro.matching.engine import BruteForceMatcher, IndexedMatcher
from repro.matching.events import Event
from repro.matching.parser import parse
from repro.matching.tree import MatchingTree

N_SUBS = 5000
N_GROUPS = 500


def build(matcher_cls):
    matcher = matcher_cls()
    for i in range(N_SUBS):
        group = i % N_GROUPS
        if i % 3 == 0:
            predicate = parse(f"group = {group}")
        elif i % 3 == 1:
            predicate = parse(f"group = {group} and price > {i % 50}")
        else:
            predicate = parse(f"group = {group} and region = 'r{i % 7}'")
        matcher.add(f"s{i}", predicate)
    return matcher


EVENTS = [
    Event({"group": i % N_GROUPS, "price": (i * 13) % 100, "region": f"r{i % 7}"})
    for i in range(200)
]


def match_all(matcher):
    total = 0
    for event in EVENTS:
        total += len(matcher.match(event))
    return total


@pytest.fixture(scope="module")
def brute():
    return build(BruteForceMatcher)


@pytest.fixture(scope="module")
def indexed():
    return build(IndexedMatcher)


def test_brute_force_matcher(benchmark, brute):
    total = benchmark(match_all, brute)
    assert total > 0


def test_indexed_matcher(benchmark, indexed, brute):
    total = benchmark(match_all, indexed)
    assert total == match_all(brute)  # differential sanity at scale


@pytest.fixture(scope="module")
def tree():
    return build(MatchingTree)


def test_matching_tree(benchmark, tree, brute):
    """The PODC '99 parallel search tree (Gryphon's own algorithm)."""
    total = benchmark(match_all, tree)
    assert total == match_all(brute)


def test_realistic_population(benchmark, brute):
    """A mixed market-feed subscription population (workloads module)."""
    from repro.workloads import market_ticks, subscription_population

    symbols = [f"SYM{i}" for i in range(40)]
    population = subscription_population(3000, symbols, seed=5)
    matcher = IndexedMatcher()
    for spec in population:
        matcher.add(spec.sub_id, spec.predicate)
    make = market_ticks(symbols, seed=6)
    ticks = [Event(make(i)) for i in range(200)]

    def run():
        return sum(len(matcher.match(event)) for event in ticks)

    assert benchmark(run) >= 0


def test_indexed_is_faster_at_scale(brute, indexed):
    import time

    def clock(fn, *args):
        start = time.perf_counter()
        for __ in range(3):
            fn(*args)
        return time.perf_counter() - start

    brute_time = clock(match_all, brute)
    indexed_time = clock(match_all, indexed)
    print(
        f"\nbrute: {brute_time:.3f}s  indexed: {indexed_time:.3f}s  "
        f"speedup: {brute_time / indexed_time:.1f}x over {N_SUBS} subscriptions"
    )
    assert indexed_time < brute_time / 3
