"""Ablation — nack consolidation on/off ("no nack explosions").

The paper's contribution list includes "localized effects of failures
without nack explosions", achieved by the consolidation rule: a broker
forwards a nack upstream only when it marks at least one istream tick
curious that was not already curious.

This ablation crashes b1 (so s1 and s2 nack the *same* lost ranges
through b2) with consolidation enabled vs disabled and reports the nack
traffic that reaches the PHB.  Without consolidation the PHB sees roughly
the sum of both subends' requests; with it, about half.
"""

import pytest

from repro.client import DeliveryChecker
from repro.core.config import PAPER_FAULT_PARAMS
from repro.faults.injector import FaultInjector
from repro.topology import balanced_pubend_names, figure3_topology

from _bench_tables import print_table


def run(consolidation: bool):
    params = PAPER_FAULT_PARAMS.with_(nack_consolidation=consolidation)
    names = balanced_pubend_names(4)
    system = figure3_topology(n_pubends=4, pubend_names=names).build(
        seed=7, params=params
    )
    subs = {
        s: system.subscribe(f"sub_{s}", s, tuple(names)) for s in ("s1", "s2")
    }
    pubs = [system.publisher(name, rate=25.0) for name in names]
    injector = FaultInjector(system)
    injector.stall_then_crash_broker("b1", at=5.0, stall=2.5, downtime=15.0)
    # Count nacks arriving at the PHB.
    p1 = system.brokers["p1"]
    for pub in pubs:
        pub.start(at=0.2)
    system.run_until(30.0)
    for pub in pubs:
        pub.stop()
    system.run_until(42.0)
    checker = DeliveryChecker(pubs)
    ok = all(
        checker.check(client, system.subscriptions[f"sub_{s}"]).exactly_once
        for s, client in subs.items()
    )
    return {
        "consolidation": consolidation,
        "exactly_once": ok,
        "s1_range": system.metrics.nacks.total_range("s1"),
        "s2_range": system.metrics.nacks.total_range("s2"),
        "b2_range": system.metrics.nacks.total_range("b2"),
        "phb_nacks_received": p1.engine.counters.get("nacks_received", 0),
    }


def test_ablation_nack_consolidation(benchmark):
    on, off = benchmark.pedantic(
        lambda: (run(True), run(False)), rounds=1, iterations=1
    )
    print_table(
        "Ablation — nack consolidation (b1 crash, s1+s2 nacking via b2)",
        ["consolidation", "exactly once", "s1 range", "s2 range",
         "b2 fwd range", "nacks at PHB"],
        [
            [str(r["consolidation"]), r["exactly_once"], f"{r['s1_range']:.0f}",
             f"{r['s2_range']:.0f}", f"{r['b2_range']:.0f}",
             r["phb_nacks_received"]]
            for r in (on, off)
        ],
    )
    # Correctness is unaffected either way.
    assert on["exactly_once"] and off["exactly_once"]
    # With consolidation, b2 forwards about half of s1+s2 combined …
    assert on["b2_range"] == pytest.approx(
        0.5 * (on["s1_range"] + on["s2_range"]), rel=0.15
    )
    # … without it, (almost) everything is forwarded: the PHB sees far
    # more nack traffic.
    assert off["b2_range"] >= 1.6 * on["b2_range"]
    assert off["phb_nacks_received"] >= 1.5 * on["phb_nacks_received"]
