"""Figure 4 — CPU utilization vs. number of subscribers.

Paper setup: two brokers (PHB -> SHB), 2000 msgs/s input of 250-byte
messages, each subscriber receiving 2 msgs/s, subscriber counts up to
16000, GD vs best-effort.  Claims reproduced here (on the CPU cost model,
scaled input rate — see EXPERIMENTS.md):

* SHB utilization increases with subscriber count for both protocols;
* the GD - best-effort gap at the SHB is small and *does not grow* with
  subscribers (paper: stays below 4%) — GD subend state is consolidated
  per SHB, not per subscriber;
* PHB utilization is flat in subscriber count, with a larger GD gap
  (paper: ~8%) caused by logging.
"""

import pytest

from repro.experiments.fig45 import gd_minus_be, run_overhead_sweep

from _bench_tables import print_table

SUBSCRIBER_COUNTS = [100, 200, 400, 800, 1600]
INPUT_RATE = 200.0


def test_fig4_cpu_utilization(benchmark):
    sweep = benchmark.pedantic(
        run_overhead_sweep,
        args=(SUBSCRIBER_COUNTS,),
        kwargs={"input_rate": INPUT_RATE, "warmup": 1.5, "measure": 6.0},
        rounds=1,
        iterations=1,
    )
    by_key = {(p.protocol, p.n_subscribers): p for p in sweep}
    rows = []
    for n in SUBSCRIBER_COUNTS:
        gd = by_key[("gd", n)]
        be = by_key[("best-effort", n)]
        rows.append(
            [
                n,
                f"{100 * gd.shb_cpu:.2f}%",
                f"{100 * be.shb_cpu:.2f}%",
                f"{100 * (gd.shb_cpu - be.shb_cpu):.2f}%",
                f"{100 * gd.phb_cpu:.2f}%",
                f"{100 * be.phb_cpu:.2f}%",
                f"{100 * (gd.phb_cpu - be.phb_cpu):.2f}%",
            ]
        )
    print_table(
        f"Figure 4 — CPU utilization vs subscribers (input {INPUT_RATE:.0f} msg/s)",
        ["N subs", "GD SHB", "BE SHB", "SHB gap", "GD PHB", "BE PHB", "PHB gap"],
        rows,
    )

    # Shape assertions — the paper's claims.
    gd_shb = [by_key[("gd", n)].shb_cpu for n in SUBSCRIBER_COUNTS]
    be_shb = [by_key[("best-effort", n)].shb_cpu for n in SUBSCRIBER_COUNTS]
    # (1) SHB utilization grows with subscriber count for both protocols.
    assert gd_shb[-1] > gd_shb[0] * 1.5
    assert be_shb[-1] > be_shb[0] * 1.5
    deltas = gd_minus_be(sweep)
    shb_gaps = [deltas[n]["shb_cpu_gap"] for n in SUBSCRIBER_COUNTS]
    phb_gaps = [deltas[n]["phb_cpu_gap"] for n in SUBSCRIBER_COUNTS]
    # (2) The SHB GD gap is positive and does not grow with subscribers.
    assert all(gap > 0 for gap in shb_gaps)
    assert max(shb_gaps) - min(shb_gaps) < 0.02  # constant within 2 points
    assert max(shb_gaps) < 0.04  # paper: "stays constant at less than 4%"
    # (3) PHB utilization is flat in N and its GD gap (logging) exceeds
    # the SHB gap.
    gd_phb = [by_key[("gd", n)].phb_cpu for n in SUBSCRIBER_COUNTS]
    assert max(gd_phb) - min(gd_phb) < 0.01
    assert min(phb_gaps) > max(shb_gaps)
