"""Related-work comparison — GD vs DCP-like store-and-forward (section 5).

The paper argues that hop-by-hop store-and-forward reliability (MQ-style
queueing, DCP) "incurs high latency since messages need to be logged at
each stage" and that reconstructing a gapless stream at each hop means
"the entire stream is delayed when a single gap is found", whereas GD
logs only at the PHB and keeps forwarding around gaps.

This bench runs the same workload over a 3-hop chain (PHB -> IB -> SHB)
under both protocols with equal per-log commit latency and a brief
mid-run loss event, and reports:

* steady-state median latency (S&F pays one commit per hop, GD one total);
* head-of-line blocking: latency of messages sent just *after* the loss
  window (S&F stalls them behind the gap; GD delivers them on time and
  repairs the gap in parallel — delayed messages are only those lost).
"""

import pytest

from repro.baselines.store_forward import StoreForwardBroker
from repro.client import DeliveryChecker
from repro.core.config import LivenessParams
from repro.topology import Topology

from _bench_tables import print_table

COMMIT = 0.05  # identical log commit latency for both protocols
LOSS_AT, LOSS_LEN = 3.0, 0.3
RATE = 50.0


def chain_topology():
    topo = Topology()
    topo.cell("PHB", "phb").cell("IB", "ib").cell("SHB", "shb")
    topo.link("phb", "ib").link("ib", "shb")
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "IB").route("P0", "IB", "SHB")
    return topo


def run_chain(protocol: str):
    topo = chain_topology()
    if protocol == "store-forward":
        def factory(*args, **kw):
            return StoreForwardBroker(*args, hop_commit_latency=COMMIT, **kw)
        system = topo.build(seed=21, broker_factory=factory)
    else:
        params = LivenessParams(gct=0.1, nrt_min=0.3)
        system = topo.build(seed=21, params=params, log_commit_latency=COMMIT)
    sub = system.subscribe("a", "shb", ("P0",))
    pub = system.publisher("P0", rate=RATE)
    link = system.network.link("ib", "shb")
    system.scheduler.call_at(LOSS_AT, link.stall)
    system.scheduler.call_at(LOSS_AT + LOSS_LEN, link.recover)
    pub.start(at=0.1)
    system.run_until(6.0)
    pub.stop()
    system.run_until(14.0)
    report = DeliveryChecker([pub]).check(sub, system.subscriptions["a"])
    lat = system.metrics.latency.series("a")
    steady = lat.between(0.5, LOSS_AT - 0.5).median()
    behind = lat.between(LOSS_AT + LOSS_LEN, LOSS_AT + LOSS_LEN + 0.4)
    behind_max = behind.max() if len(behind) else float("nan")
    return {
        "protocol": protocol,
        "exactly_once": report.exactly_once,
        "steady_ms": 1000 * steady,
        "behind_max_ms": 1000 * behind_max,
    }


def test_store_forward_comparison(benchmark):
    results = benchmark.pedantic(
        lambda: [run_chain("gd"), run_chain("store-forward")],
        rounds=1,
        iterations=1,
    )
    gd, sf = results
    print_table(
        "GD vs store-and-forward on a 3-broker chain "
        f"(commit latency {1000 * COMMIT:.0f} ms per log)",
        ["protocol", "exactly once", "steady median (ms)", "post-loss max (ms)"],
        [
            [r["protocol"], r["exactly_once"], f"{r['steady_ms']:.1f}", f"{r['behind_max_ms']:.1f}"]
            for r in results
        ],
    )
    # Both deliver exactly once.
    assert gd["exactly_once"] and sf["exactly_once"]
    # GD pays ONE commit end-to-end; S&F pays one per hop (2 hops here).
    assert gd["steady_ms"] < COMMIT * 1000 + 30
    assert sf["steady_ms"] > 2 * COMMIT * 1000
    # Head-of-line blocking: both protocols deliver in order, so messages
    # sent right after the loss window wait for the gap repair — but the
    # penalty differs structurally.  GD repairs end-to-end in one
    # GCT + nack round trip (brokers never stop forwarding), while S&F
    # reconstructs the gapless stream hop by hop on its per-hop
    # retransmission timer.
    gd_penalty = gd["behind_max_ms"] - gd["steady_ms"]
    sf_penalty = sf["behind_max_ms"] - sf["steady_ms"]
    assert sf_penalty > 2 * gd_penalty
    assert sf_penalty > 100
