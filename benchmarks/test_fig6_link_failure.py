"""Figure 6 — latency and nacks for the b1-s1 link failure.

Paper setup (section 4.2): the Figure 3 network, 4 pubends x 25 msgs/s of
100-byte messages, GCT=200ms NRT=600ms AET=10s DCT=inf.  The b1-s1 link is
stalled ~2.5 s (absorbing traffic) then failed for 10 s.

Claims reproduced:

* s1 notices the loss only after the stall (>2 s after the first lost
  message), nacks to b2, and receives the lost burst — the latency plot
  has a sawtooth with peak roughly the stall duration (paper: ~2.5 s);
* the nack range is chopped into multiple smaller nack messages;
* the cumulative nack range matches the data actually lost (the pubends
  that were flowing through b1 during the stall);
* subscribers not on the failure path (s2 here, since its b1 link is
  fine; s3-s5 on the IB2 side) are unaffected;
* after rerouting, latency returns to normal, and delivery remains
  exactly-once for every subscriber.
"""

import pytest

from repro.experiments.fig678 import run_fault_experiment

from _bench_tables import print_series, print_table

FAULT_AT = 5.0
STALL = 2.5
OUTAGE = 10.0


def test_fig6_link_failure(benchmark):
    result = benchmark.pedantic(
        run_fault_experiment,
        args=("link_b1_s1",),
        kwargs={"fault_at": FAULT_AT, "stall": STALL, "link_outage": OUTAGE},
        rounds=1,
        iterations=1,
    )

    # Latency series at the affected subscriber (the paper's top plot):
    # show only the interesting window around the failure.
    window = [
        (t, lat)
        for t, lat in result.latency["sub_s1"]
        if FAULT_AT - 1 <= t <= FAULT_AT + STALL + 3
    ]
    print_series("Figure 6 (top) — s1 latency around the failure (s)",
                 window[:: max(len(window) // 40, 1)], "s")
    # Nack series (the paper's bottom plot is cumulative).
    cumulative = 0.0
    points = []
    for t, rng in result.nacks.get("s1", []):
        cumulative += rng
        points.append((t, cumulative))
    print_series("Figure 6 (bottom) — s1 cumulative nack range (ms)", points, "ms")

    steady = result.steady_latency("sub_s1", before=FAULT_AT - 1)
    peak = result.max_latency("sub_s1")
    print_table(
        "Figure 6 — summary",
        ["metric", "value"],
        [
            ["s1 steady latency (s)", f"{steady:.3f}"],
            ["s1 peak latency (s)", f"{peak:.3f}"],
            ["s1 nack messages", result.nack_count("s1")],
            ["s1 nack range (ms)", f"{result.nack_range_total('s1'):.0f}"],
            ["s2 nack messages", result.nack_count("s2")],
            ["s2 peak latency (s)", f"{result.max_latency('sub_s2'):.3f}"],
            ["all exactly-once", result.all_exactly_once()],
        ],
    )

    assert result.all_exactly_once()
    # Sawtooth peak: on the order of the stall duration (paper ~2.5 s for
    # a 2-3 s stall), far above steady state.
    assert STALL * 0.8 <= peak <= STALL + 1.5
    assert peak > 10 * steady
    # Chopping: the lost range is requested in several nack messages.
    assert result.nack_count("s1") >= 3
    # The nacked range corresponds to the stall loss for the pubends that
    # were flowing over b1 (half of the 4 pubends).
    assert 0.5 * 2 * STALL * 1000 <= result.nack_range_total("s1") <= 2.5 * 2 * STALL * 1000
    # Unaffected subscribers: no nacks, no latency disturbance.
    assert result.nack_count("s2") == 0
    assert result.nack_count("s3") == 0
    assert result.max_latency("sub_s2") < 3 * max(
        result.steady_latency("sub_s2", before=FAULT_AT - 1), 0.05
    )
    # Recovery: after the reroute, s1's latency is back to steady state.
    tail = [
        lat
        for t, lat in result.latency["sub_s1"]
        if t > FAULT_AT + STALL + 4
    ]
    assert tail and max(tail) < 3 * max(steady, 0.05)
