"""Scaling — broker-chain depth (beyond the paper's 3-level tree).

The GD protocol's headline structural property is that cost does *not*
accumulate with overlay depth: stable storage and its commit latency are
paid once at the PHB, and recovery is subscriber-driven end-to-end.  The
store-and-forward baseline pays logging at every hop.

This bench sweeps chain depth and reports steady-state median latency
for both protocols; GD's curve is flat in depth (plus per-hop wire
latency), store-and-forward's grows linearly.
"""

import pytest

from repro.baselines.store_forward import StoreForwardBroker
from repro.client import DeliveryChecker
from repro.core.config import LivenessParams
from repro.topology import Topology

from _bench_tables import print_table

COMMIT = 0.04
LINK_LATENCY = 0.002
DEPTHS = [1, 2, 4, 6]


def chain_of(depth: int) -> Topology:
    topo = Topology()
    topo.cell("PHB", "phb")
    previous_cell, previous_broker = "PHB", "phb"
    for i in range(depth):
        topo.cell(f"IB{i}", f"ib{i}")
        topo.link(previous_broker, f"ib{i}", latency=LINK_LATENCY)
        previous_cell, previous_broker = f"IB{i}", f"ib{i}"
    topo.cell("SHB", "shb")
    topo.link(previous_broker, "shb", latency=LINK_LATENCY)
    topo.pubend("P0", "phb")
    cells = ["PHB"] + [f"IB{i}" for i in range(depth)] + ["SHB"]
    for parent, child in zip(cells, cells[1:]):
        topo.route("P0", parent, child)
    return topo


def run(depth: int, protocol: str) -> float:
    topo = chain_of(depth)
    if protocol == "store-forward":
        def factory(*args, **kw):
            return StoreForwardBroker(*args, hop_commit_latency=COMMIT, **kw)
        system = topo.build(seed=31, broker_factory=factory)
    else:
        system = topo.build(
            seed=31,
            params=LivenessParams(gct=0.1, nrt_min=0.3),
            log_commit_latency=COMMIT,
        )
    sub = system.subscribe("a", "shb", ("P0",))
    publisher = system.publisher("P0", rate=40.0)
    publisher.start(at=0.1)
    system.run_until(4.0)
    publisher.stop()
    system.run_until(8.0)
    report = DeliveryChecker([publisher]).check(sub, system.subscriptions["a"])
    assert report.exactly_once, (protocol, depth)
    return system.metrics.latency.series("a").median()


def test_depth_scaling(benchmark):
    results = benchmark.pedantic(
        lambda: {
            (depth, protocol): run(depth, protocol)
            for depth in DEPTHS
            for protocol in ("gd", "store-forward")
        },
        rounds=1,
        iterations=1,
    )
    rows = []
    for depth in DEPTHS:
        gd = 1000 * results[(depth, "gd")]
        sf = 1000 * results[(depth, "store-forward")]
        rows.append([depth, depth + 1, f"{gd:.1f}", f"{sf:.1f}"])
    print_table(
        f"Median latency (ms) vs chain depth (commit {1000 * COMMIT:.0f} ms per log)",
        ["intermediates", "hops", "GD", "store-and-forward"],
        rows,
    )
    # GD: one commit regardless of depth — the growth across the sweep is
    # wire latency only (~2 ms per extra hop).
    gd_growth = results[(DEPTHS[-1], "gd")] - results[(DEPTHS[0], "gd")]
    assert gd_growth < 0.5 * COMMIT
    # S&F: one commit *per hop* — grows by about COMMIT per intermediate.
    sf_growth = results[(DEPTHS[-1], "store-forward")] - results[(DEPTHS[0], "store-forward")]
    expected = (DEPTHS[-1] - DEPTHS[0]) * COMMIT
    assert sf_growth == pytest.approx(expected, rel=0.35)
    # And at every depth, GD is the cheaper protocol end-to-end.
    for depth in DEPTHS:
        assert results[(depth, "gd")] < results[(depth, "store-forward")]
