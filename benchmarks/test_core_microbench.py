"""Microbenchmarks of the protocol's core data structures.

These are the per-message costs of the GD protocol itself: knowledge
accumulation into run-length streams, interval-map updates, and the
simulator's event loop.  They bound the throughput of a pure-Python
broker (and were used to calibrate the CPU cost model's knowledge_update
constant).
"""

import pytest

from repro.core.intervals import IntervalMap
from repro.core.lattice import K
from repro.core.streams import KnowledgeStream, Stream
from repro.core.ticks import TickRange
from repro.sim.scheduler import Scheduler


def test_interval_map_sequential_appends(benchmark):
    def run():
        m = IntervalMap(K.Q)
        for i in range(2000):
            m.set_range(TickRange(i * 10, i * 10 + 10), K.F if i % 2 else K.D)
        return m.run_count()

    count = benchmark(run)
    assert count > 0


def test_interval_map_point_queries(benchmark):
    m = IntervalMap(K.Q)
    for i in range(1000):
        m.set_range(TickRange(i * 20, i * 20 + 10), K.F)

    def run():
        total = 0
        for t in range(0, 20000, 7):
            total += int(m.get(t))
        return total

    assert benchmark(run) >= 0


def test_knowledge_stream_publish_pattern(benchmark):
    """The pubend's hot loop: bracket-finalize then accumulate one D."""

    def run():
        s = KnowledgeStream()
        tick = 0
        for i in range(2000):
            s.accumulate_final(TickRange(tick, tick + 40))
            tick += 40
            s.accumulate_data(tick, i)
            tick += 1
        return s.d_tick_count()

    assert benchmark(run) == 2000


def test_knowledge_stream_ack_gc(benchmark):
    """Prefix finalization (ack garbage collection) over a long stream."""

    def run():
        s = Stream()
        tick = 0
        for i in range(500):
            s.knowledge.accumulate_final(TickRange(tick, tick + 40))
            s.knowledge.accumulate_data(tick + 40, i)
            tick += 41
        for cut in range(0, tick, 400):
            s.set_ack(TickRange(0, cut + 1))
        s.set_ack(TickRange(0, tick))
        return s.knowledge.d_tick_count()

    assert benchmark(run) == 0  # everything acked and collected


def test_gd_protocol_message_throughput(benchmark):
    """End-to-end protocol cost: how many publish→deliver round trips per
    second of *wall* time the pure-Python broker pipeline sustains (two
    brokers, simulator transport, zero configured latencies)."""
    from repro.core.config import LivenessParams
    from repro.topology import two_broker_topology

    def run():
        topo = two_broker_topology(link_latency=0.0)
        topo.pubend("P0", "phb")
        topo.route("P0", "PHB", "SHB")
        system = topo.build(
            seed=1,
            params=LivenessParams(gct=0.1, nrt_min=0.3),
            log_commit_latency=0.0,
            client_latency=0.0,
        )
        client = system.subscribe("a", "shb", ("P0",))
        publisher = system.publisher("P0", rate=1000.0)
        publisher.start(at=0.001)
        system.run_until(2.0)
        publisher.stop()
        system.run_until(3.0)
        assert client.count() == len(publisher.published)
        return client.count()

    delivered = benchmark(run)
    assert delivered == 2000


def test_scheduler_event_throughput(benchmark):
    def run():
        scheduler = Scheduler()
        count = [0]

        def tick(n):
            count[0] += 1
            if n:
                scheduler.call_later(0.001, lambda: tick(n - 1))

        for lane in range(20):
            scheduler.call_at(0.0, lambda: tick(500))
        scheduler.run()
        return count[0]

    assert benchmark(run) == 20 * 501
