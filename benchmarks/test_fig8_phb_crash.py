"""Figure 8 — latency and nacks for the p1 (PHB) crash.

Paper setup: the pubend-hosting broker p1 is crashed and restarted ~20 s
later.  The publishers are connected to p1, so they are down with it —
unlike Figures 6/7 no new messages are published during the outage.

Claims reproduced:

* all five subscribers (s1-s5) are affected in the same way;
* with DCT = infinity, *no* nacks are sent while p1 is down: the stream
  simply stops advancing and no Q-gaps are created;
* messages logged (committed) before the crash but not sent out show the
  partial-sawtooth latency of roughly the downtime;
* on recovery, more than AET has elapsed, so p1 first sends an
  AckExpected carrying the last tick it logged; that triggers nacks from
  s1-s5, the backlog is delivered, and latency returns to normal;
* exactly-once delivery everywhere.
"""

import pytest

from repro.experiments.fig678 import run_fault_experiment

from _bench_tables import print_series, print_table

FAULT_AT = 5.0
DOWNTIME = 20.0
RESTART_AT = FAULT_AT + DOWNTIME


def test_fig8_phb_crash(benchmark):
    result = benchmark.pedantic(
        run_fault_experiment,
        args=("crash_p1",),
        kwargs={"fault_at": FAULT_AT, "phb_downtime": DOWNTIME},
        rounds=1,
        iterations=1,
    )

    window = [
        (t, lat)
        for t, lat in result.latency["sub_s1"]
        if FAULT_AT - 1 <= t <= RESTART_AT + 4
    ]
    print_series(
        "Figure 8 (top) — s1 latency (s); crash at t=5, restart at t=25",
        window[:: max(len(window) // 40, 1)],
        "s",
    )
    rows = []
    for shb in ("s1", "s2", "s3", "s4", "s5"):
        rows.append(
            [
                shb,
                result.nack_count(shb),
                f"{result.nack_range_total(shb):.0f}",
                f"{result.max_latency(f'sub_{shb}'):.2f}",
            ]
        )
    print_table(
        "Figure 8 — per-subscriber nacks and peak latency",
        ["SHB", "nack msgs", "nack range (ms)", "peak latency (s)"],
        rows,
    )

    assert result.all_exactly_once()
    for shb in ("s1", "s2", "s3", "s4", "s5"):
        # (1) No nacks while p1 is down (DCT = infinity): every nack is
        # after the restart-triggered AckExpected.
        for t, __ in result.nacks.get(shb, []):
            assert t >= RESTART_AT
        # (2) Everyone is affected similarly: the logged-but-unsent
        # messages arrive with ~downtime latency at all subscribers.
        peak = result.max_latency(f"sub_{shb}")
        assert DOWNTIME * 0.9 <= peak <= DOWNTIME + 3
    # (3) Nacks do happen after recovery (the AckExpected worked).
    assert any(result.nack_count(shb) > 0 for shb in ("s1", "s2", "s3", "s4", "s5"))
    # (4) Latency returns to normal after the backlog drains.
    steady = result.steady_latency("sub_s1", before=FAULT_AT - 1)
    tail = [lat for t, lat in result.latency["sub_s1"] if t > RESTART_AT + 3]
    assert tail and max(tail) < 3 * max(steady, 0.05)
