"""Pytest configuration for the benchmark harness.

Each benchmark module regenerates one figure of the paper's evaluation
(section 4) and prints the corresponding rows/series.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""
