"""Ablation — subend-driven vs pubend-driven liveness (section 3.2).

The protocol offers two recovery mechanisms and "can be run with one of
these approaches or anything in between":

* subend-driven: GCT gap timers + NRT repetition (fast, fine-grained);
* pubend-driven: AET AckExpected probes (slow, coarse, but covers cases
  where the subend cannot see a gap — e.g. the tail of the stream).

The paper runs "low GCT and NRT values, a higher AET, and an infinite
DCT … a mixture of both liveness approaches, with subend-driven liveness
dominating."  This ablation injects the same link failure under three
configurations and reports the recovery latency of the lost burst —
showing why the mixture is the right default.
"""

import math

import pytest

from repro.client import DeliveryChecker
from repro.core.config import LivenessParams
from repro.faults.injector import FaultInjector
from repro.topology import balanced_pubend_names, figure3_topology

from _bench_tables import print_table

CONFIGS = {
    # paper default: subend-driven dominates, AET as a backstop
    "mixed (paper)": LivenessParams(gct=0.2, nrt_min=0.6, aet=10.0, dct=math.inf),
    # pure subend-driven: no AckExpected probes
    "subend-only": LivenessParams(gct=0.2, nrt_min=0.6, aet=math.inf, dct=math.inf),
    # pure pubend-driven: gap curiosity disabled, AET must recover
    "pubend-only (AET=4s)": LivenessParams(
        gct=math.inf, nrt_min=0.6, aet=4.0, dct=math.inf
    ),
}


def run(params: LivenessParams):
    names = balanced_pubend_names(4)
    system = figure3_topology(n_pubends=4, pubend_names=names).build(
        seed=7, params=params
    )
    sub = system.subscribe("sub_s1", "s1", tuple(names))
    pubs = [system.publisher(name, rate=25.0) for name in names]
    injector = FaultInjector(system)
    injector.stall_then_fail_link("b1", "s1", at=5.0, stall=2.0, outage=8.0)
    for pub in pubs:
        pub.start(at=0.2)
    system.run_until(25.0)
    for pub in pubs:
        pub.stop()
    system.run_until(45.0)
    report = DeliveryChecker(pubs).check(sub, system.subscriptions["sub_s1"])
    lat = system.metrics.latency.series("sub_s1")
    return {
        "exactly_once": report.exactly_once,
        "peak_latency": lat.max(),
        "nacks": system.metrics.nacks.count("s1"),
    }


def test_ablation_liveness_mix(benchmark):
    results = benchmark.pedantic(
        lambda: {name: run(params) for name, params in CONFIGS.items()},
        rounds=1,
        iterations=1,
    )
    print_table(
        "Ablation — liveness configuration (b1-s1 stall 2 s + fail 8 s)",
        ["configuration", "exactly once", "peak latency (s)", "s1 nacks"],
        [
            [name, r["exactly_once"], f"{r['peak_latency']:.2f}", r["nacks"]]
            for name, r in results.items()
        ],
    )
    mixed = results["mixed (paper)"]
    subend = results["subend-only"]
    pubend = results["pubend-only (AET=4s)"]
    # Every configuration eventually delivers exactly once (liveness).
    assert all(r["exactly_once"] for r in results.values())
    # Subend-driven recovery reacts in O(GCT): peak ~ stall duration.
    assert mixed["peak_latency"] < 4.0
    assert subend["peak_latency"] < 4.0
    # Pubend-driven-only recovery waits for the AET probe: markedly
    # slower than the subend-driven configurations.
    assert pubend["peak_latency"] > mixed["peak_latency"] + 1.0
    assert pubend["nacks"] > 0  # probes did trigger nacks
