"""Figure 5 — local and remote median latency vs. number of subscribers.

Claims reproduced (see EXPERIMENTS.md for the scale mapping):

* remote latency increases with subscriber count for both protocols
  (fan-out queueing at the SHB);
* local latency is flat in subscriber count (the measuring client sits
  at the PHB while the load sits at the SHB);
* the GD - best-effort difference is approximately constant in N, equal
  to the logging delay (paper: ~100 ms), in both local and remote
  latencies.
"""

import pytest

from repro.experiments.fig45 import gd_minus_be, run_overhead_sweep

from _bench_tables import print_table

SUBSCRIBER_COUNTS = [100, 200, 400, 800, 1600]
INPUT_RATE = 200.0
LOG_LATENCY = 0.1  # the paper's observed ~100 ms logging delay


def test_fig5_latency(benchmark):
    sweep = benchmark.pedantic(
        run_overhead_sweep,
        args=(SUBSCRIBER_COUNTS,),
        kwargs={
            "input_rate": INPUT_RATE,
            "warmup": 1.5,
            "measure": 6.0,
            "log_commit_latency": LOG_LATENCY,
        },
        rounds=1,
        iterations=1,
    )
    by_key = {(p.protocol, p.n_subscribers): p for p in sweep}
    rows = []
    for n in SUBSCRIBER_COUNTS:
        gd = by_key[("gd", n)]
        be = by_key[("best-effort", n)]
        rows.append(
            [
                n,
                f"{gd.local_median_ms:.1f}",
                f"{be.local_median_ms:.1f}",
                f"{gd.remote_median_ms:.1f}",
                f"{be.remote_median_ms:.1f}",
                f"{gd.remote_median_ms - be.remote_median_ms:.1f}",
            ]
        )
    print_table(
        "Figure 5 — median latency (ms) vs subscribers",
        ["N subs", "GD local", "BE local", "GD remote", "BE remote", "GD-BE remote"],
        rows,
    )

    deltas = gd_minus_be(sweep)
    remote_gaps = [deltas[n]["remote_latency_gap_ms"] for n in SUBSCRIBER_COUNTS]
    local_gaps = [deltas[n]["local_latency_gap_ms"] for n in SUBSCRIBER_COUNTS]
    # (1) The GD - BE latency difference is the constant logging delay,
    # in both local and remote measurements (paper: ~100 ms constant).
    for gap in remote_gaps + local_gaps:
        assert abs(gap - 1000 * LOG_LATENCY) < 0.25 * 1000 * LOG_LATENCY
    assert max(remote_gaps) - min(remote_gaps) < 20.0
    # (2) Remote latency grows with subscriber count (queueing), local
    # latency does not.
    gd_remote = [by_key[("gd", n)].remote_median_ms for n in SUBSCRIBER_COUNTS]
    be_remote = [by_key[("best-effort", n)].remote_median_ms for n in SUBSCRIBER_COUNTS]
    assert gd_remote[-1] > gd_remote[0]
    assert be_remote[-1] > be_remote[0]
    gd_local = [by_key[("gd", n)].local_median_ms for n in SUBSCRIBER_COUNTS]
    assert max(gd_local) - min(gd_local) < 10.0


def test_fig5_latency_with_knowledge_batching(benchmark):
    """Batching's latency cost is bounded by the flush window.

    First-time data rides knowledge messages, so ``flush_delay`` adds at
    most one flush window to remote delivery latency (≈ ``flush_delay/2``
    at the median) per batching hop — and nothing to local latency, which
    bypasses the ostream flush path entirely.  Delivery counts must be
    identical: batching trades latency for message volume, never loses.
    """
    from repro.core.config import LivenessParams

    FLUSH = 0.05

    counts = [100, 400]
    kwargs = {
        "protocols": ("gd",),
        "input_rate": INPUT_RATE,
        "warmup": 1.5,
        "measure": 6.0,
        "log_commit_latency": LOG_LATENCY,
    }
    immediate = run_overhead_sweep(counts, **kwargs)
    batched = benchmark.pedantic(
        run_overhead_sweep,
        args=(counts,),
        kwargs={**kwargs, "params": LivenessParams(flush_delay=FLUSH)},
        rounds=1,
        iterations=1,
    )
    imm_by_n = {p.n_subscribers: p for p in immediate}
    bat_by_n = {p.n_subscribers: p for p in batched}
    rows = []
    for n in counts:
        imm, bat = imm_by_n[n], bat_by_n[n]
        rows.append(
            [
                n,
                f"{imm.remote_median_ms:.1f}",
                f"{bat.remote_median_ms:.1f}",
                f"{imm.shb_cpu * 100:.2f}%",
                f"{bat.shb_cpu * 100:.2f}%",
            ]
        )
    print_table(
        "Figure 5 check — GD latency, immediate vs batched knowledge",
        ["N subs", "imm remote", "batch remote", "imm SHB CPU", "batch SHB CPU"],
        rows,
    )
    for n in counts:
        imm, bat = imm_by_n[n], bat_by_n[n]
        # Batching never loses messages — only delays them.
        assert bat.delivered == imm.delivered > 0
        # Remote latency grows by at most one flush window (plus jitter
        # margin) and never shrinks below the immediate-mode floor.
        extra = bat.remote_median_ms - imm.remote_median_ms
        assert -5.0 < extra < 1000 * FLUSH + 10.0
        # Local delivery bypasses the ostream flush path entirely.
        assert abs(bat.local_median_ms - imm.local_median_ms) < 5.0
        # And batching never costs CPU on the subscriber-hosting broker.
        assert bat.shb_cpu <= imm.shb_cpu * 1.05
