"""Figures 4-5 at the paper's full parameters.

The default Figure 4/5 benches run a scaled-down sweep for speed; this
bench runs the paper's actual workload — 2000 msgs/s of 250-byte
messages, subscribers at 2 msgs/s each, up to 16000 subscribers — to
show the cost model lands in the paper's measured range at full scale:

* the paper's Figure 4 shows SHB utilization rising to roughly half the
  machine at 16000 subscribers; the cost model reproduces both the
  linear shape and that magnitude;
* PHB utilization is flat in N with the constant logging gap;
* the GD − best-effort latency difference stays the 100 ms commit delay.

Takes ~1 minute of wall time; the scaled sweep benches cover the same
claims in seconds.
"""

import pytest

from repro.experiments.fig45 import run_overhead_point

from _bench_tables import print_table

COUNTS = [4000, 8000, 16000]
FULL = dict(input_rate=2000.0, per_sub_rate=2.0, msg_bytes=250, warmup=1.0, measure=3.0)


def test_fig45_full_scale(benchmark):
    def run():
        points = {
            ("gd", n): run_overhead_point("gd", n, **FULL) for n in COUNTS
        }
        points[("best-effort", 16000)] = run_overhead_point(
            "best-effort", 16000, **FULL
        )
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for (protocol, n), p in sorted(points.items()):
        rows.append(
            [
                protocol,
                n,
                f"{100 * p.shb_cpu:.1f}%",
                f"{100 * p.phb_cpu:.1f}%",
                f"{p.remote_median_ms:.1f}",
            ]
        )
    print_table(
        "Figures 4-5 at paper scale (2000 msgs/s in, 2 msgs/s per subscriber)",
        ["protocol", "N subs", "SHB CPU", "PHB CPU", "remote median (ms)"],
        rows,
    )
    gd16 = points[("gd", 16000)]
    be16 = points[("best-effort", 16000)]
    # SHB utilization at 16000 subscribers lands in the paper's measured
    # range (roughly half the machine) and is ~linear in N.
    assert 0.35 <= gd16.shb_cpu <= 0.70
    gd4, gd8 = points[("gd", 4000)], points[("gd", 8000)]
    assert gd8.shb_cpu > 1.4 * gd4.shb_cpu
    assert gd16.shb_cpu > 1.4 * gd8.shb_cpu
    # PHB flat in N.
    assert abs(gd16.phb_cpu - gd4.phb_cpu) < 0.01
    # The GD - best-effort overheads at full scale: small constant CPU gap
    # at the SHB, logging gap at the PHB, 100 ms latency gap.
    assert 0 < gd16.shb_cpu - be16.shb_cpu < 0.06
    assert gd16.phb_cpu - be16.phb_cpu > gd16.shb_cpu - be16.shb_cpu
    assert gd16.remote_median_ms - be16.remote_median_ms == pytest.approx(100, abs=15)
