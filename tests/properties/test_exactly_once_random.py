"""Property-based end-to-end tests: exactly-once under *any* randomized
schedule of drops, stalls, link failures and broker crashes.

Hypothesis drives the fault schedule; every run asserts the paper's
service specification — safety (in-order, at-most-once, matching) via the
online client checks, and liveness (every published matching message
delivered) via the offline ground-truth comparison after a quiescent
drain.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import DeliveryChecker, FaultInjector, LivenessParams
from repro.topology import balanced_pubend_names, figure3_topology, two_broker_topology

# Faster liveness settings so drained runs converge quickly.
FAST_PARAMS = LivenessParams(gct=0.1, nrt_min=0.3, aet=3.0, dct=math.inf)

fault_specs = st.lists(
    st.tuples(
        st.sampled_from(
            [
                ("link", "b1", "s1"),
                ("link", "b2", "s1"),
                ("link", "p1", "b1"),
                ("stall_link", "b1", "s1"),
                ("crash", "b1", None),
                ("crash", "b2", None),
                ("crash", "p1", None),
            ]
        ),
        st.floats(1.0, 8.0),  # start time
        st.floats(0.5, 4.0),  # duration
    ),
    max_size=3,
)


def apply_fault(injector, spec, start, duration):
    kind = spec[0]
    if kind == "link":
        injector.at(start, lambda: injector.fail_link(spec[1], spec[2]))
        injector.at(start + duration, lambda: injector.recover_link(spec[1], spec[2]))
    elif kind == "stall_link":
        injector.at(start, lambda: injector.stall_link(spec[1], spec[2]))
        injector.at(start + duration, lambda: injector.recover_link(spec[1], spec[2]))
    else:
        injector.at(start, lambda: injector.crash_broker(spec[1]))
        injector.at(start + duration, lambda: injector.restart_broker(spec[1]))


class TestRandomFaultSchedules:
    @given(faults=fault_specs, seed=st.integers(0, 2**16), drop=st.floats(0.0, 0.08))
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_exactly_once_on_figure3(self, faults, seed, drop):
        names = balanced_pubend_names(2)
        system = figure3_topology(n_pubends=2, pubend_names=names).build(
            seed=seed, params=FAST_PARAMS
        )
        if drop:
            for link in system.network._links.values():
                link.drop_probability = drop
        sub1 = system.subscribe("c1", "s1", tuple(names))
        sub3 = system.subscribe("c3", "s3", tuple(names))
        pubs = [system.publisher(name, rate=20.0) for name in names]
        injector = FaultInjector(system)
        for spec, start, duration in faults:
            apply_fault(injector, spec, start, duration)
        for pub in pubs:
            pub.start(at=0.2)
        system.run_until(12.0)
        for pub in pubs:
            pub.stop()
        # Quiescent drain: all faults healed by t=12; liveness must finish.
        system.run_until(32.0)
        checker = DeliveryChecker(pubs)
        for name, client in (("c1", sub1), ("c3", sub3)):
            report = checker.check(client, system.subscriptions[name])
            assert report.exactly_once, (
                name,
                report.missing[:3],
                report.unexpected[:3],
                injector.log,
            )

    @given(
        drop=st.floats(0.0, 0.15),
        jitter=st.floats(0.0, 0.03),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_exactly_once_on_lossy_two_broker(self, drop, jitter, seed):
        topo = two_broker_topology()
        topo.pubend("P0", "phb")
        topo.route("P0", "PHB", "SHB")
        system = topo.build(seed=seed, params=FAST_PARAMS, log_commit_latency=0.01)
        link = system.network.link("phb", "shb")
        link.drop_probability = drop
        link.jitter = jitter
        sub = system.subscribe("a", "shb", ("P0",), "g = 1")
        pub = system.publisher("P0", rate=60.0, make_attributes=lambda i: {"g": i % 3})
        pub.start(at=0.1)
        system.run_until(5.0)
        pub.stop()
        system.run_until(20.0)
        report = DeliveryChecker([pub]).check(sub, system.subscriptions["a"])
        assert report.exactly_once, (report.missing[:3], report.unexpected[:3])

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None)
    def test_total_order_consistent_under_loss(self, seed):
        names = balanced_pubend_names(2)
        system = figure3_topology(n_pubends=2, pubend_names=names).build(
            seed=seed, params=FAST_PARAMS
        )
        for link in system.network._links.values():
            link.drop_probability = 0.05
        t1 = system.subscribe("t1", "s1", tuple(names), total_order=True)
        t2 = system.subscribe("t2", "s5", tuple(names), total_order=True)
        pubs = [system.publisher(name, rate=20.0) for name in names]
        for pub in pubs:
            pub.start(at=0.2)
        system.run_until(8.0)
        for pub in pubs:
            pub.stop()
        system.run_until(28.0)
        seq1 = [(p, t) for (p, t, __, ___) in t1.received]
        seq2 = [(p, t) for (p, t, __, ___) in t2.received]
        assert seq1 == seq2
        assert len(seq1) == sum(len(p.published) for p in pubs)
