"""Property-based end-to-end tests: exactly-once under *any* randomized
schedule of drops, stalls, link failures and broker crashes.

Hypothesis drives the fault schedule; every run asserts the paper's
service specification through the :class:`repro.check.OracleSuite` — the
same oracles the fuzzer (``python -m repro fuzz``) sweeps continuously:
delivery safety, knowledge-lattice monotonicity, truncation safety,
stream invariants while running, then exactly-once/gapless delivery and
total-order consistency after a quiescent drain.

The link-pathology dimension (clean, lossy, reordering, both) and the
topology dimension (single-path two-broker vs. redundant-path figure 3)
are pytest parameters, so each combination is a separately reported and
separately selectable case.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import FaultInjector, LivenessParams
from repro.check import OracleSuite
from repro.topology import (
    balanced_pubend_names,
    figure3_topology,
    two_broker_topology,
)

# Faster liveness settings so drained runs converge quickly.
FAST_PARAMS = LivenessParams(gct=0.1, nrt_min=0.3, aet=3.0, dct=math.inf)

#: Ambient link pathology: (drop probability, reorder jitter seconds).
LINK_PATHOLOGY = {
    "clean": (0.0, 0.0),
    "lossy": (0.08, 0.0),
    "reordering": (0.0, 0.02),
    "lossy-reordering": (0.05, 0.015),
}

fault_specs = st.lists(
    st.tuples(
        st.sampled_from(
            [
                ("link", "b1", "s1"),
                ("link", "b2", "s1"),
                ("link", "p1", "b1"),
                ("stall_link", "b1", "s1"),
                ("crash", "b1", None),
                ("crash", "b2", None),
                ("crash", "p1", None),
            ]
        ),
        st.floats(1.0, 8.0),  # start time
        st.floats(0.5, 4.0),  # duration
    ),
    max_size=3,
)


def apply_fault(injector, spec, start, duration):
    kind = spec[0]
    if kind == "link":
        injector.at(start, lambda: injector.fail_link(spec[1], spec[2]))
        injector.at(start + duration, lambda: injector.recover_link(spec[1], spec[2]))
    elif kind == "stall_link":
        injector.at(start, lambda: injector.stall_link(spec[1], spec[2]))
        injector.at(start + duration, lambda: injector.recover_link(spec[1], spec[2]))
    else:
        injector.at(start, lambda: injector.crash_broker(spec[1]))
        injector.at(start + duration, lambda: injector.restart_broker(spec[1]))


def set_pathology(system, pathology):
    drop, jitter = LINK_PATHOLOGY[pathology]
    for link in system.network._links.values():
        link.drop_probability = drop
        link.jitter = jitter


def run_and_judge(system, pubs, publish_until, drain_until):
    """Run under the full oracle suite; continuous oracles raise inside
    the run, the offline oracles are asserted after the drain."""
    suite = OracleSuite(system, pubs)
    suite.install()
    for pub in pubs:
        pub.start(at=0.2)
        system.scheduler.call_at(publish_until, pub.stop)
    system.run_until(drain_until)
    failures = suite.final_check(pubs)
    assert not failures, [str(f) for f in failures[:3]]
    assert suite.sweeps > 0
    return suite


def build_two_broker(seed):
    """Single path: PHB -> SHB, one pubend, a filtering subscriber."""
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    system = topo.build(seed=seed, params=FAST_PARAMS, log_commit_latency=0.01)
    system.subscribe("a", "shb", ("P0",), "g = 1")
    pubs = [
        system.publisher("P0", rate=60.0, make_attributes=lambda i: {"g": i % 3})
    ]
    return system, pubs


def build_figure3(seed):
    """Redundant paths: every SHB reaches the PHB through two IBs."""
    names = balanced_pubend_names(2)
    system = figure3_topology(n_pubends=2, pubend_names=names).build(
        seed=seed, params=FAST_PARAMS
    )
    system.subscribe("c1", "s1", tuple(names))
    system.subscribe("c3", "s3", tuple(names))
    pubs = [system.publisher(name, rate=20.0) for name in names]
    return system, pubs


TOPOLOGIES = {"two_broker": build_two_broker, "figure3": build_figure3}


class TestRandomFaultSchedules:
    @given(faults=fault_specs, seed=st.integers(0, 2**16), drop=st.floats(0.0, 0.08))
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_exactly_once_on_figure3(self, faults, seed, drop):
        system, pubs = build_figure3(seed)
        if drop:
            for link in system.network._links.values():
                link.drop_probability = drop
        injector = FaultInjector(system)
        for spec, start, duration in faults:
            apply_fault(injector, spec, start, duration)
        # Quiescent drain: all faults healed by t=12; liveness must finish.
        run_and_judge(system, pubs, publish_until=12.0, drain_until=32.0)


class TestLinkPathologies:
    @pytest.mark.parametrize("pathology", sorted(LINK_PATHOLOGY))
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=5, deadline=None)
    def test_exactly_once_under_pathology(self, topology, pathology, seed):
        system, pubs = TOPOLOGIES[topology](seed)
        set_pathology(system, pathology)
        horizon = 5.0 if topology == "two_broker" else 8.0
        run_and_judge(
            system, pubs, publish_until=horizon, drain_until=horizon + 18.0
        )


class TestTotalOrder:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None)
    def test_total_order_consistent_under_loss(self, seed):
        names = balanced_pubend_names(2)
        system = figure3_topology(n_pubends=2, pubend_names=names).build(
            seed=seed, params=FAST_PARAMS
        )
        set_pathology(system, "lossy")
        t1 = system.subscribe("t1", "s1", tuple(names), total_order=True)
        t2 = system.subscribe("t2", "s5", tuple(names), total_order=True)
        pubs = [system.publisher(name, rate=20.0) for name in names]
        run_and_judge(system, pubs, publish_until=8.0, drain_until=28.0)
        # The oracle already proved the sequences identical and complete;
        # spot-check the merge really interleaved both pubends.
        seq1 = [(p, t) for (p, t, __, ___) in t1.received]
        seq2 = [(p, t) for (p, t, __, ___) in t2.received]
        assert seq1 == seq2
        assert {p for p, __ in seq1} == set(names)
