"""Tests for the DCP-like store-and-forward baseline."""

from repro.baselines.store_forward import StoreForwardBroker
from repro.client import DeliveryChecker
from repro.topology import two_broker_topology


def sf_system(**kw):
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    return topo.build(seed=3, broker_factory=StoreForwardBroker, **kw)


class TestReliability:
    def test_delivers_everything_without_failures(self):
        system = sf_system()
        sub = system.subscribe("a", "shb", ("P0",))
        pub = system.publisher("P0", rate=100.0)
        pub.start(at=0.1)
        system.run_until(2.0)
        pub.stop()
        system.run_until(3.0)
        report = DeliveryChecker([pub]).check(sub, system.subscriptions["a"])
        assert report.exactly_once

    def test_recovers_from_drops_via_hop_retransmission(self):
        system = sf_system()
        system.network.link("phb", "shb").drop_probability = 0.1
        sub = system.subscribe("a", "shb", ("P0",))
        pub = system.publisher("P0", rate=50.0)
        pub.start(at=0.1)
        system.run_until(4.0)
        pub.stop()
        system.run_until(12.0)
        report = DeliveryChecker([pub]).check(sub, system.subscriptions["a"])
        assert report.exactly_once
        shb = system.brokers["phb"]
        assert shb.retransmissions > 0

    def test_in_order_delivery_under_reordering(self):
        system = sf_system()
        system.network.link("phb", "shb").jitter = 0.05
        sub = system.subscribe("a", "shb", ("P0",))
        pub = system.publisher("P0", rate=100.0)
        pub.start(at=0.1)
        system.run_until(3.0)
        pub.stop()
        system.run_until(8.0)
        ticks = sub.delivered_ticks("P0")
        assert ticks == sorted(ticks)
        report = DeliveryChecker([pub]).check(sub, system.subscriptions["a"])
        assert report.exactly_once


class TestStructuralWeaknesses:
    """The properties the paper criticizes (section 5)."""

    def test_gap_stalls_everything_behind_it(self):
        """A single lost message delays the whole stream at the hop —
        unlike GD, which keeps forwarding around the gap."""
        system = sf_system()
        sub = system.subscribe("a", "shb", ("P0",))
        pub = system.publisher("P0", rate=50.0)
        pub.start(at=0.1)
        # Drop exactly one window of messages mid-run.
        link = system.network.link("phb", "shb")
        system.scheduler.call_at(1.0, link.stall)
        system.scheduler.call_at(1.1, link.recover)
        system.run_until(4.0)
        pub.stop()
        system.run_until(10.0)
        report = DeliveryChecker([pub]).check(sub, system.subscriptions["a"])
        assert report.exactly_once  # eventually reliable...
        lat = system.metrics.latency.series("a")
        # ...but messages sent *after* the loss window also saw inflated
        # latency (head-of-line blocking while the gap was repaired).
        behind = [s.value for s in lat.samples if 1.1 < s.t < 1.4]
        steady = [s.value for s in lat.samples if s.t < 0.9]
        assert behind and max(behind) > max(steady) + 0.05

    def test_per_hop_commit_latency_accumulates(self):
        """Two hops, each paying commit latency: end-to-end latency is
        roughly twice the per-hop cost (vs GD's single PHB commit)."""
        system = sf_system()
        sub = system.subscribe("a", "shb", ("P0",))
        pub = system.publisher("P0", rate=20.0)
        pub.start(at=0.1)
        system.run_until(2.0)
        med = system.metrics.latency.series("a").median()
        assert med >= 2 * system.brokers["phb"].hop_commit_latency
