"""Tests for the best-effort baseline: delivers when healthy, loses
messages under failure (unlike GD), and costs less."""

from repro.baselines.best_effort import BestEffortBroker
from repro.client import DeliveryChecker
from repro.topology import two_broker_topology


def be_system(**kw):
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    return topo.build(seed=3, broker_factory=BestEffortBroker, **kw)


class TestHealthyPath:
    def test_delivers_everything_without_failures(self):
        system = be_system()
        sub = system.subscribe("a", "shb", ("P0",))
        pub = system.publisher("P0", rate=100.0)
        pub.start(at=0.1)
        system.run_until(2.0)
        pub.stop()
        system.run_until(2.5)
        report = DeliveryChecker([pub]).check(sub, system.subscriptions["a"])
        assert report.exactly_once

    def test_content_filtering(self):
        system = be_system()
        sub = system.subscribe("a", "shb", ("P0",), "g = 1")
        pub = system.publisher("P0", rate=100.0, make_attributes=lambda i: {"g": i % 2})
        pub.start(at=0.1)
        system.run_until(1.0)
        pub.stop()
        system.run_until(1.5)
        assert sub.count() == sum(1 for (__, ___, e) in pub.published if e["g"] == 1)

    def test_no_logging_means_lower_latency_than_gd(self):
        system = be_system()
        sub = system.subscribe("a", "shb", ("P0",))
        pub = system.publisher("P0", rate=50.0)
        pub.start(at=0.1)
        system.run_until(2.0)
        med = system.metrics.latency.series("a").median()
        assert med < 0.01  # no 100 ms commit delay

    def test_intermediate_edge_filter_respected(self):
        from repro.matching.parser import parse

        topo = two_broker_topology()
        topo.pubend("P0", "phb")
        topo.route("P0", "PHB", "SHB", predicate=parse("g = 0"))
        system = topo.build(seed=3, broker_factory=BestEffortBroker)
        sub = system.subscribe("a", "shb", ("P0",))
        pub = system.publisher("P0", rate=50.0, make_attributes=lambda i: {"g": i % 2})
        pub.start(at=0.1)
        system.run_until(1.0)
        pub.stop()
        system.run_until(1.5)
        assert sub.count() == sum(1 for (__, ___, e) in pub.published if e["g"] == 0)


class TestLossIsPermanent:
    def test_drops_are_never_recovered(self):
        """The defining difference vs GD: lost is lost."""
        system = be_system()
        system.network.link("phb", "shb").drop_probability = 0.2
        sub = system.subscribe("a", "shb", ("P0",))
        pub = system.publisher("P0", rate=100.0)
        pub.start(at=0.1)
        system.run_until(3.0)
        pub.stop()
        system.run_until(6.0)
        report = DeliveryChecker([pub]).check(sub, system.subscriptions["a"])
        assert not report.exactly_once
        assert len(report.missing) > 0
        # but whatever did arrive is in order and unduplicated (client
        # online checks did not raise)

    def test_gd_recovers_where_best_effort_loses(self):
        """Differential: same seed/workload/loss; GD exactly once, BE not."""

        def run(factory):
            topo = two_broker_topology()
            topo.pubend("P0", "phb")
            topo.route("P0", "PHB", "SHB")
            system = topo.build(
                seed=9, broker_factory=factory, log_commit_latency=0.01
            )
            system.network.link("phb", "shb").drop_probability = 0.1
            sub = system.subscribe("a", "shb", ("P0",))
            pub = system.publisher("P0", rate=50.0)
            pub.start(at=0.1)
            system.run_until(4.0)
            pub.stop()
            system.run_until(15.0)
            return DeliveryChecker([pub]).check(sub, system.subscriptions["a"])

        be = run(BestEffortBroker)
        gd = run(None)
        assert not be.exactly_once
        assert gd.exactly_once
