"""Tests of the abstract knowledge-graph model (paper section 2).

These check the *model-level* claims: the Figure 1 example behaves as
described, knowledge accumulation is monotone, E is unreachable, filters
and merges follow section 2.4, delivery is gapless/in-order, and under
fair re-emission every published message is eventually delivered despite
an adversary dropping, reordering, and forcing soft-state amnesia.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lattice import C, K, KnowledgeConflictError
from repro.core.ticks import TickRange
from repro.model.graph import KnowledgeGraph


def drain(graph, rng=None):
    """Deliver every in-flight transfer (in id order, or shuffled)."""
    transfers = sorted(graph.channel)
    if rng is not None:
        rng.shuffle(transfers)
    for transfer_id in transfers:
        graph.deliver(transfer_id)


def simple_chain():
    """pubend -> broker -> subend with an all-pass filter."""
    graph = KnowledgeGraph()
    graph.add_pubend("P")
    graph.add_node("B")
    graph.add_subend("S")
    graph.add_filter("P", "B")
    graph.add_filter("B", "S")
    return graph


class TestBasics:
    def test_publish_and_flow(self):
        graph = simple_chain()
        graph.publish("P", 5, "m5")
        graph.silence("P", TickRange(0, 5))
        graph.emit("P->B", TickRange(0, 6))
        drain(graph)
        graph.emit("B->S", TickRange(0, 6))
        drain(graph)
        assert graph.nodes["S"].value_at(5) == K.D
        assert graph.subend_deliver("S") == [(5, "m5")]

    def test_filter_converts_nonmatching_d_to_f(self):
        graph = KnowledgeGraph()
        graph.add_pubend("P")
        graph.add_subend("S")
        graph.add_filter("P", "S", predicate=lambda p: p == "yes")
        graph.publish("P", 1, "no")
        graph.publish("P", 2, "yes")
        graph.silence("P", TickRange(0, 1))
        graph.emit("P->S", TickRange(0, 3))
        drain(graph)
        assert graph.nodes["S"].value_at(1) == K.F
        assert graph.nodes["S"].value_at(2) == K.D
        assert graph.subend_deliver("S") == [(2, "yes")]

    def test_silence_passes_through(self):
        graph = simple_chain()
        graph.silence("P", TickRange(0, 10))
        graph.emit("P->B", TickRange(0, 10))
        drain(graph)
        assert graph.nodes["B"].value_at(5) == K.S

    def test_duplicates_are_idempotent(self):
        graph = simple_chain()
        graph.publish("P", 3, "m")
        graph.emit("P->B", TickRange(3, 4))
        graph.emit("P->B", TickRange(3, 4))  # duplicate emission
        drain(graph)
        assert graph.nodes["B"].value_at(3) == K.D

    def test_error_unreachable_via_protocol_moves(self):
        """S vs D conflicts cannot arise from correct pubend behaviour —
        publishing then silencing different ticks never collides."""
        graph = simple_chain()
        graph.publish("P", 3, "m")
        graph.silence("P", TickRange(0, 3))
        graph.silence("P", TickRange(0, 10))  # only Q ticks get S
        assert graph.nodes["P"].value_at(3) == K.D
        graph.check_no_error()

    def test_error_raised_on_contradiction(self):
        """A *broken* source asserting silence over data raises loudly."""
        graph = simple_chain()
        graph.publish("P", 3, "m")
        graph.emit("P->B", TickRange(3, 4))
        drain(graph)
        with pytest.raises(KnowledgeConflictError):
            graph.nodes["B"].accumulate(3, K.S)


class TestDoubtHorizonAndOrder:
    def test_gap_blocks_delivery(self):
        graph = simple_chain()
        graph.silence("P", TickRange(0, 3))
        graph.publish("P", 3, "a")
        graph.publish("P", 7, "b")
        graph.silence("P", TickRange(4, 7))
        graph.emit("P->B", TickRange(0, 8))
        drain(graph)
        # Lose the silence covering 4..6 on the way to S.
        for transfer_id in graph.emit("B->S", TickRange(0, 8)):
            transfer = graph.channel[transfer_id]
            if 4 <= transfer.tick <= 6:
                graph.drop(transfer_id)
            else:
                graph.deliver(transfer_id)
        assert graph.subend_deliver("S") == [(3, "a")]  # 7 blocked by gap
        # Re-emission fills the gap; now 7 is deliverable.
        graph.emit("B->S", TickRange(4, 7))
        drain(graph)
        assert graph.subend_deliver("S") == [(7, "b")]

    def test_out_of_order_arrival_never_reorders_delivery(self):
        import random

        graph = simple_chain()
        for tick in range(0, 20, 2):
            graph.publish("P", tick, f"m{tick}")
            graph.silence("P", TickRange(tick + 1, tick + 2))
        graph.emit("P->B", TickRange(0, 20))
        drain(graph)
        graph.emit("B->S", TickRange(0, 20))
        drain(graph, rng=random.Random(5))  # shuffled delivery
        delivered = graph.subend_deliver("S")
        ticks = [t for t, __ in delivered]
        assert ticks == sorted(ticks) == list(range(0, 20, 2))


class TestMerge:
    def merged_graph(self):
        graph = KnowledgeGraph()
        graph.add_pubend("P1")
        graph.add_pubend("P2")
        graph.add_subend("S")
        graph.add_merge(["P1", "P2"], "S", name="m")
        return graph

    def test_merge_interleaves_deterministically(self):
        graph = self.merged_graph()
        graph.publish("P1", 0, "a0")
        graph.silence("P1", TickRange(1, 6))
        graph.publish("P2", 1, "b1")
        graph.silence("P2", TickRange(0, 1))
        graph.silence("P2", TickRange(2, 6))
        graph.publish("P1", 6, "a6")
        graph.silence("P2", TickRange(6, 7))
        graph.emit("m", TickRange(0, 7))
        drain(graph)
        delivered = graph.subend_deliver("S")
        assert [t for t, __ in delivered] == [0, 1, 6]

    def test_merge_final_requires_all_inputs(self):
        graph = self.merged_graph()
        graph.silence("P1", TickRange(0, 5))
        graph.emit("m", TickRange(0, 5))
        drain(graph)
        # P2 still unknown: merged output was Q, nothing accumulated.
        assert graph.nodes["S"].value_at(2) == K.Q
        graph.silence("P2", TickRange(0, 5))
        graph.emit("m", TickRange(0, 5))
        drain(graph)
        assert graph.nodes["S"].value_at(2) == K.F

    def test_merge_curiosity_targets_q_inputs(self):
        graph = self.merged_graph()
        graph.silence("P1", TickRange(0, 5))
        graph.subend_curious("S", TickRange(0, 5))
        graph.propagate_curiosity()
        # P1 answered those ticks (non-Q), so curiosity goes to P2 only.
        assert graph.nodes["P2"].curiosity.get(2) == C.C
        assert graph.nodes["P1"].curiosity.get(2) != C.C


class TestForgettingAndAcks:
    def test_intermediate_may_forget_and_recover(self):
        graph = simple_chain()
        graph.publish("P", 2, "m")
        graph.silence("P", TickRange(0, 2))
        graph.emit("P->B", TickRange(0, 3))
        drain(graph)
        graph.forget("B", TickRange(0, 3))  # soft-state loss
        assert graph.nodes["B"].value_at(2) == K.Q
        graph.emit("P->B", TickRange(0, 3))  # pubend re-emits
        drain(graph)
        assert graph.nodes["B"].value_at(2) == K.D

    def test_pubend_never_forgets(self):
        graph = simple_chain()
        graph.publish("P", 2, "m")
        with pytest.raises(ValueError):
            graph.forget("P", TickRange(0, 3))

    def test_ack_consolidation_reaches_pubend(self):
        graph = simple_chain()
        graph.publish("P", 1, "m")
        graph.silence("P", TickRange(0, 1))
        graph.emit("P->B", TickRange(0, 2))
        drain(graph)
        graph.emit("B->S", TickRange(0, 2))
        drain(graph)
        graph.subend_deliver("S")
        graph.propagate_acks()
        # The delivered D tick became D* upstream (everyone downstream done).
        assert graph.nodes["P"].curiosity.get(1) == C.A
        assert graph.nodes["P"].value_at(1) == K.DSTAR
        # And D* is lowerable to F ("automatically lowered").
        graph.nodes["B"].lower_to_final(TickRange(0, 2))
        assert graph.nodes["B"].value_at(1) in (K.F, K.DSTAR)

    def test_two_subends_both_must_ack(self):
        graph = KnowledgeGraph()
        graph.add_pubend("P")
        graph.add_node("B")
        graph.add_subend("S1")
        graph.add_subend("S2")
        graph.add_filter("P", "B")
        graph.add_filter("B", "S1")
        graph.add_filter("B", "S2")
        graph.publish("P", 0, "m")
        graph.emit("P->B", TickRange(0, 1))
        drain(graph)
        graph.emit("B->S1", TickRange(0, 1))
        drain(graph)
        graph.subend_deliver("S1")
        graph.propagate_acks()
        assert graph.nodes["B"].curiosity.get(0) != C.A  # S2 pending
        graph.emit("B->S2", TickRange(0, 1))
        drain(graph)
        graph.subend_deliver("S2")
        graph.propagate_acks()
        assert graph.nodes["B"].curiosity.get(0) == C.A
        assert graph.nodes["P"].curiosity.get(0) == C.A


class TestAdversarialProperties:
    @given(seed=st.integers(0, 10_000), drop_rate=st.floats(0.0, 0.6))
    @settings(max_examples=60, deadline=None)
    def test_eventual_gapless_delivery_under_adversary(self, seed, drop_rate):
        """Liveness under fairness: if ticks are re-emitted infinitely
        often, everything arrives eventually (paper section 2.1) — and
        whatever arrives is delivered gaplessly, in order, exactly once."""
        import random

        rng = random.Random(seed)
        graph = simple_chain()
        published = []
        tick = 0
        for i in range(15):
            gap = rng.randint(1, 3)
            graph.silence("P", TickRange(tick, tick + gap))
            tick += gap
            graph.publish("P", tick, f"m{i}")
            published.append(tick)
            tick += 1
        horizon = tick
        # Adversary rounds: emit, randomly drop/deliver, sometimes forget.
        for round_no in range(40):
            graph.emit("P->B", TickRange(0, horizon))
            for transfer_id in sorted(graph.channel):
                if rng.random() < drop_rate:
                    graph.drop(transfer_id)
            drain(graph, rng=rng)
            if rng.random() < 0.2:
                lo = rng.randrange(0, horizon)
                graph.forget("B", TickRange(lo, min(lo + 5, horizon)))
            graph.emit("B->S", TickRange(0, horizon))
            for transfer_id in sorted(graph.channel):
                if rng.random() < drop_rate:
                    graph.drop(transfer_id)
            drain(graph, rng=rng)
            graph.subend_deliver("S")
            graph.check_no_error()
        # Fair closing phase: lossless re-emission.
        graph.emit("P->B", TickRange(0, horizon))
        drain(graph)
        graph.emit("B->S", TickRange(0, horizon))
        drain(graph)
        graph.subend_deliver("S")
        delivered = [t for t, __ in graph.delivered_at("S")]
        assert delivered == published  # exactly once, in order, gapless

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_knowledge_monotone_between_forgets(self, seed):
        import random

        rng = random.Random(seed)
        graph = simple_chain()
        for tick in range(0, 12, 3):
            graph.publish("P", tick, tick)
            graph.silence("P", TickRange(tick + 1, tick + 3))
        before = {}
        graph.emit("P->B", TickRange(0, 12))
        for transfer_id in sorted(graph.channel):
            if rng.random() < 0.5:
                graph.drop(transfer_id)
        snapshot = {t: graph.nodes["B"].value_at(t) for t in range(12)}
        drain(graph, rng=rng)
        graph.emit("P->B", TickRange(0, 12))
        drain(graph, rng=rng)
        for t in range(12):
            from repro.core.lattice import k_lub

            after = graph.nodes["B"].value_at(t)
            # monotone: join of old and new equals new (new >= old)
            assert k_lub(snapshot[t], after) == after
