"""Unit tests for stable-storage message logs, including crash recovery."""

import os

import pytest

from repro.storage.log import FileLog, LogEntry, MemoryLog


class TestMemoryLog:
    def test_append_and_read(self):
        log = MemoryLog()
        log.append(LogEntry("P", 5, "a"))
        log.append(LogEntry("P", 9, "b"))
        assert [e.tick for e in log.entries("P")] == [5, 9]
        assert log.last_tick("P") == 9

    def test_rejects_non_monotonic(self):
        log = MemoryLog()
        log.append(LogEntry("P", 5, "a"))
        with pytest.raises(ValueError):
            log.append(LogEntry("P", 5, "b"))
        with pytest.raises(ValueError):
            log.append(LogEntry("P", 4, "c"))

    def test_pubends_are_independent(self):
        log = MemoryLog()
        log.append(LogEntry("A", 5, "a"))
        log.append(LogEntry("B", 2, "b"))
        assert log.last_tick("A") == 5
        assert log.last_tick("B") == 2
        assert log.pubends() == ["A", "B"]

    def test_truncate(self):
        log = MemoryLog()
        for tick in (1, 5, 9):
            log.append(LogEntry("P", tick, tick))
        removed = log.truncate("P", 6)
        assert removed == 2
        assert [e.tick for e in log.entries("P")] == [9]
        assert log.truncated_below("P") == 6

    def test_truncation_point_is_monotone(self):
        log = MemoryLog()
        log.append(LogEntry("P", 10, "x"))
        log.truncate("P", 8)
        log.truncate("P", 3)
        assert log.truncated_below("P") == 8

    def test_empty_log(self):
        log = MemoryLog()
        assert log.entries("P") == []
        assert log.last_tick("P") is None
        assert log.truncated_below("P") == 0

    def test_commit_latency_configurable(self):
        assert MemoryLog(commit_latency=0.1).commit_latency == 0.1


class TestFileLog:
    def test_append_and_recover(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        log = FileLog(path)
        log.append(LogEntry("P", 5, {"k": "v"}))
        log.append(LogEntry("P", 9, "b"))
        log.close()
        recovered = FileLog(path)
        entries = recovered.entries("P")
        assert [e.tick for e in entries] == [5, 9]
        assert entries[0].payload == {"k": "v"}
        recovered.close()

    def test_rejects_non_monotonic(self, tmp_path):
        log = FileLog(str(tmp_path / "log.jsonl"))
        log.append(LogEntry("P", 5, "a"))
        with pytest.raises(ValueError):
            log.append(LogEntry("P", 5, "b"))
        log.close()

    def test_truncate_survives_restart(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        log = FileLog(path)
        log.append(LogEntry("P", 5, "a"))
        log.append(LogEntry("P", 9, "b"))
        log.truncate("P", 6)
        log.close()
        recovered = FileLog(path)
        assert [e.tick for e in recovered.entries("P")] == [9]
        assert recovered.truncated_below("P") == 6
        recovered.close()

    def test_torn_tail_is_discarded(self, tmp_path):
        """A crash mid-append leaves a torn final line: everything durable
        before it must recover, the torn entry is gone (never acked)."""
        path = str(tmp_path / "log.jsonl")
        log = FileLog(path)
        log.append(LogEntry("P", 5, "a"))
        log.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"pubend": "P", "tick": 9, "payl')  # torn write
        recovered = FileLog(path)
        assert [e.tick for e in recovered.entries("P")] == [5]
        recovered.close()

    def test_compact_rewrites_file(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        log = FileLog(path)
        for tick in range(0, 50, 5):
            log.append(LogEntry("P", tick, "x" * 50))
        log.truncate("P", 40)
        size_before = os.path.getsize(path)
        log.compact()
        size_after = os.path.getsize(path)
        assert size_after < size_before
        assert [e.tick for e in log.entries("P")] == [40, 45]
        log.close()
        recovered = FileLog(path)
        assert [e.tick for e in recovered.entries("P")] == [40, 45]
        assert recovered.truncated_below("P") == 40
        recovered.close()

    def test_append_after_recovery_continues(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        log = FileLog(path)
        log.append(LogEntry("P", 5, "a"))
        log.close()
        recovered = FileLog(path)
        recovered.append(LogEntry("P", 8, "b"))
        recovered.close()
        final = FileLog(path)
        assert [e.tick for e in final.entries("P")] == [5, 8]
        final.close()

    def test_fresh_file(self, tmp_path):
        log = FileLog(str(tmp_path / "new.jsonl"))
        assert log.entries("P") == []
        log.close()
