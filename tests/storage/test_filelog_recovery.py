"""FileLog crash-recovery: the durability story behind the aio runtime.

``tests/storage/test_log.py`` pins the basic MessageLog contract; this
module covers the recovery paths the asyncio runtime leans on — Event
payloads surviving the wire format, torn tails from mid-write crashes,
replay being idempotent across repeated reopens, and a ``Pubend``
rebuilding its knowledge stream from a reopened log.
"""

import json

from repro.core.pubend import Pubend
from repro.matching.events import Event
from repro.storage.log import FileLog, LogEntry


def reopen(log: FileLog) -> FileLog:
    path = log.path
    log.close()
    return FileLog(path)


class TestEventPayloads:
    def test_event_round_trips_through_replay(self, tmp_path):
        log = FileLog(str(tmp_path / "p.log"))
        event = Event({"sym": "IBM", "price": 104.5}, body=b"fill".decode())
        log.append(LogEntry("P0", 1, event))
        log.append(LogEntry("P0", 2, {"plain": "dict"}))

        log = reopen(log)
        first, second = log.entries("P0")
        assert isinstance(first.payload, Event)
        assert first.payload == event
        assert first.payload.body == event.body
        assert second.payload == {"plain": "dict"}
        log.close()

    def test_event_marker_is_explicit_on_disk(self, tmp_path):
        # The {"__event__": ...} marker is the recovery format; a plain
        # dict must never be mistaken for one.
        log = FileLog(str(tmp_path / "p.log"))
        log.append(LogEntry("P0", 1, Event({"g": 0})))
        log.close()
        lines = (tmp_path / "p.log").read_text().splitlines()
        # v2 framing: "R2 <crc:08x> <len:08x> <json payload>"
        assert lines[0].startswith("R2 ")
        assert "__event__" in json.loads(lines[0][21:])["payload"]


class TestTornTail:
    def test_torn_tail_dropped_then_appends_resume(self, tmp_path):
        path = tmp_path / "p.log"
        log = FileLog(str(path))
        log.append(LogEntry("P0", 1, {"n": 1}))
        log.append(LogEntry("P0", 2, {"n": 2}))
        log.close()

        # Crash mid-write: a partial JSON line at the end of the file.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"pubend": "P0", "tick": 3, "payl')

        log = FileLog(str(path))
        assert [e.tick for e in log.entries("P0")] == [1, 2]
        # Recovery resumes the sequence; the torn tick was never durable
        # so reusing it is legal.
        log.append(LogEntry("P0", 3, {"n": "3-retry"}))
        log = reopen(log)
        assert [e.tick for e in log.entries("P0")] == [1, 2, 3]
        assert log.entries("P0")[-1].payload == {"n": "3-retry"}
        log.close()


class TestIdempotentReplay:
    def test_repeated_reopen_is_stable(self, tmp_path):
        log = FileLog(str(tmp_path / "p.log"))
        for tick in (1, 2, 5):
            log.append(LogEntry("P0", tick, {"t": tick}))
        log.append(LogEntry("P1", 4, {"other": True}))
        log.truncate("P0", 2)

        first = reopen(log)
        snapshot = {p: first.entries(p) for p in first.pubends()}
        point = first.truncated_below("P0")
        second = reopen(first)
        assert {p: second.entries(p) for p in second.pubends()} == snapshot
        assert second.truncated_below("P0") == point == 2
        assert [e.tick for e in second.entries("P0")] == [2, 5]
        second.close()

    def test_truncate_marker_then_compact_round_trip(self, tmp_path):
        log = FileLog(str(tmp_path / "p.log"))
        for tick in range(1, 6):
            log.append(LogEntry("P0", tick, {"t": tick}))
        log.truncate("P0", 4)
        log.compact()
        log = reopen(log)
        assert [e.tick for e in log.entries("P0")] == [4, 5]
        assert log.truncated_below("P0") == 4
        log.close()


class TestPubendRecovery:
    def test_pubend_rebuilds_stream_from_reopened_log(self, tmp_path):
        log = FileLog(str(tmp_path / "p.log"))
        pubend = Pubend("P0", log)
        for i in range(3):
            pubend.publish({"seq": i}, now=0.1 * i)
        published = [e.tick for e in log.entries("P0")]
        log.close()  # broker process dies; the file survives

        log = FileLog(str(tmp_path / "p.log"))
        recovered = Pubend("P0", log)
        assert recovered.recover() == 3
        assert [e.tick for e in log.entries("P0")] == published
        # Post-recovery publishes continue past the replayed horizon.
        message = recovered.publish({"seq": 3}, now=1.0)
        assert message.data[-1].tick > max(published)
        log.close()

    def test_recover_honours_durable_truncation_point(self, tmp_path):
        log = FileLog(str(tmp_path / "p.log"))
        pubend = Pubend("P0", log)
        for i in range(4):
            pubend.publish({"seq": i}, now=0.1 * i)
        ticks = [e.tick for e in log.entries("P0")]
        log.truncate("P0", ticks[2])
        log.close()

        log = FileLog(str(tmp_path / "p.log"))
        recovered = Pubend("P0", log)
        assert recovered.recover() == 2
        assert recovered.acked_up_to == ticks[2]
        log.close()
