"""End-to-end integrity of the checksummed FileLog (docs/PROTOCOL.md §8).

``test_filelog_recovery.py`` covers the torn *tail* — the classic crash
mid-append.  This module covers the rest of the integrity story:

* at-rest corruption (bit flips, mid-record tears) at *every* record
  position is detected by checksum, quarantined into the ``.quarantine``
  sidecar, and healed out of the log — idempotently;
* legacy unchecksummed v1 files (and mixed files) replay transparently;
* write-path faults (``FaultyFile``: disk full, torn write, failed
  fsync) surface as :class:`LogAppendError` with the file rolled back to
  the previous record boundary;
* a :class:`Pubend` whose append fails never advertises the tick — the
  "only logged messages are published" invariant under a sick disk.
"""

import json

import pytest

from repro.core.pubend import Pubend
from repro.obs.instruments import Instruments
from repro.storage import (
    FaultyFile,
    FileLog,
    LogAppendError,
    corrupt_log_file,
)
from repro.storage.log import LogEntry


def write_log(path, ticks=(1, 2, 3), **kwargs):
    log = FileLog(str(path), **kwargs)
    for tick in ticks:
        log.append(LogEntry("P0", tick, {"n": tick}))
    log.close()


class TestAtRestCorruption:
    """Damage anywhere in the file — not just the tail — is detected,
    quarantined, and healed."""

    @pytest.mark.parametrize("index", [0, 1, 2])
    @pytest.mark.parametrize("mode", ["bitflip", "torn"])
    def test_every_position_and_kind(self, tmp_path, index, mode):
        path = tmp_path / "p.log"
        write_log(path)
        assert corrupt_log_file(str(path), seed=7, record_index=index, mode=mode)

        log = FileLog(str(path))
        if mode == "bitflip":
            # Exactly the damaged record is lost.
            lost = {index + 1}
        else:
            # A tear drops the line's newline, fusing it with the next
            # line — two records' damage, one unverifiable fused line
            # (except at the last record, where there is no next line).
            lost = {index + 1, min(index + 2, 3)}
        assert [e.tick for e in log.entries("P0")] == [
            t for t in (1, 2, 3) if t not in lost
        ]
        assert log.quarantined == 1
        log.close()

    def test_quarantine_sidecar_names_offset_and_reason(self, tmp_path):
        path = tmp_path / "p.log"
        write_log(path)
        original = path.read_bytes().splitlines(keepends=True)
        corrupt_log_file(str(path), seed=3, record_index=1)

        FileLog(str(path)).close()
        lines = (path.parent / "p.log.quarantine").read_bytes().splitlines(
            keepends=True
        )
        header = json.loads(lines[0])
        assert header["op"] == "quarantined"
        assert header["offset"] == len(original[0])
        # The reason names what failed (crc / length / framing — the
        # seeded flip decides which field it hits).
        assert header["reason"]
        # The damaged raw bytes follow the header, preserved verbatim
        # for forensics; they differ from the original by the one flip.
        assert len(lines[1]) == len(original[1])
        assert lines[1] != original[1]

    def test_heal_is_idempotent_and_appends_resume(self, tmp_path):
        path = tmp_path / "p.log"
        write_log(path)
        corrupt_log_file(str(path), seed=5, record_index=1)

        log = FileLog(str(path))
        assert log.quarantined == 1
        log.close()
        # The heal rewrote the file: a second replay finds only verified
        # records and quarantines nothing more.
        log = FileLog(str(path))
        assert log.quarantined == 0
        assert [e.tick for e in log.entries("P0")] == [1, 3]
        log.append(LogEntry("P0", 4, {"n": 4}))
        log.close()
        log = FileLog(str(path))
        assert [e.tick for e in log.entries("P0")] == [1, 3, 4]
        log.close()

    def test_quarantine_counts_into_instruments(self, tmp_path):
        path = tmp_path / "p.log"
        write_log(path)
        corrupt_log_file(str(path), seed=1, record_index=0)

        instruments = Instruments()
        FileLog(str(path), instruments=instruments).close()
        assert instruments.total("log_records_quarantined") == 1


class TestLegacyFormat:
    def test_v1_file_replays_under_v2(self, tmp_path):
        path = tmp_path / "p.log"
        write_log(path, record_format="v1")
        raw = path.read_bytes()
        assert not raw.startswith(b"R2 ")
        assert json.loads(raw.splitlines()[0])["tick"] == 1

        log = FileLog(str(path))  # default v2
        assert [e.tick for e in log.entries("P0")] == [1, 2, 3]
        assert log.quarantined == 0
        # New appends use the checksummed format; the file is now mixed.
        log.append(LogEntry("P0", 4, {"n": 4}))
        log.close()
        lines = path.read_bytes().splitlines()
        assert not lines[0].startswith(b"R2 ")
        assert lines[-1].startswith(b"R2 ")
        log = FileLog(str(path))
        assert [e.tick for e in log.entries("P0")] == [1, 2, 3, 4]
        log.close()

    def test_corrupt_legacy_record_still_quarantined(self, tmp_path):
        # A v1 record has no checksum, but an unparseable line is still
        # caught (JSON is a weak checksum) and quarantined, not fatal.
        path = tmp_path / "p.log"
        write_log(path, record_format="v1")
        raw = path.read_bytes().splitlines(keepends=True)
        raw[1] = raw[1][: len(raw[1]) // 2] + b"#garbage\n"
        path.write_bytes(b"".join(raw))

        log = FileLog(str(path))
        assert [e.tick for e in log.entries("P0")] == [1, 3]
        assert log.quarantined == 1
        log.close()


class TestWritePathFaults:
    def test_enospc_rolls_back_and_recovers(self, tmp_path):
        path = tmp_path / "p.log"
        log = FileLog(str(path))
        log.append(LogEntry("P0", 1, {"n": 1}))
        size_before = path.stat().st_size

        log.inject_fault("enospc")
        with pytest.raises(LogAppendError):
            log.append(LogEntry("P0", 2, {"n": 2}))
        # Neither on disk nor in memory — the record boundary held.
        assert path.stat().st_size == size_before
        assert [e.tick for e in log.entries("P0")] == [1]
        # The disk "recovers": the same tick can be retried.
        log.append(LogEntry("P0", 2, {"n": "2-retry"}))
        log.close()
        log = FileLog(str(path))
        assert [(e.tick, e.payload["n"]) for e in log.entries("P0")] == [
            (1, 1),
            (2, "2-retry"),
        ]
        assert log.quarantined == 0
        log.close()

    @pytest.mark.parametrize("fault", ["torn", "fsync"])
    def test_partial_or_unsynced_bytes_are_discarded(self, tmp_path, fault):
        # "torn" leaves half the record on disk before failing; "fsync"
        # leaves all of it, unsynced.  Either way the rollback truncates
        # to the previous boundary: durability was not promised.
        path = tmp_path / "p.log"
        log = FileLog(str(path))
        log.append(LogEntry("P0", 1, {"n": 1}))
        size_before = path.stat().st_size

        log.inject_fault(fault)
        with pytest.raises(LogAppendError):
            log.append(LogEntry("P0", 2, {"n": 2}))
        assert path.stat().st_size == size_before
        log.close()
        log = FileLog(str(path))
        assert [e.tick for e in log.entries("P0")] == [1]
        assert log.quarantined == 0
        log.close()

    def test_append_errors_count_into_instruments(self, tmp_path):
        instruments = Instruments()
        log = FileLog(str(tmp_path / "p.log"), instruments=instruments)
        log.inject_fault("enospc")
        with pytest.raises(LogAppendError):
            log.append(LogEntry("P0", 1, {"n": 1}))
        assert instruments.total("log_append_errors") == 1
        log.close()

    def test_faulty_file_disarms_after_firing(self, tmp_path):
        with open(tmp_path / "f.bin", "wb") as raw:
            fh = FaultyFile(raw)
            fh.arm("enospc")
            assert fh.armed() == ["enospc"]
            with pytest.raises(OSError):
                fh.write(b"x")
            assert fh.armed() == []
            assert fh.write(b"x") == 1
            assert fh.faults_injected == 1


class TestPubendNotAdvertised:
    def test_failed_append_publishes_nothing(self, tmp_path):
        instruments = Instruments()
        log = FileLog(str(tmp_path / "p.log"), instruments=instruments)
        pubend = Pubend("P0", log, instruments=instruments)
        pubend.publish({"n": 1}, now=0.1)
        horizon = pubend.stream.horizon()

        log.inject_fault("enospc")
        with pytest.raises(LogAppendError):
            pubend.publish({"n": 2}, now=0.2)
        # Nothing moved: no tick assigned to the stream, no publication
        # counted, nothing for downstream to learn about.
        assert pubend.stream.horizon() == horizon
        assert pubend.publish_count == 1
        assert len(log.entries("P0")) == 1
        assert instruments.total("repro_pubend_publish_failures_total") == 1

        # The retry publishes normally once the disk recovers.
        message = pubend.publish({"n": 2}, now=0.3)
        assert pubend.publish_count == 2
        assert message.data[0].payload == {"n": 2}
        log.close()
