"""FaultInjector lifecycle orderings.

The regression guarded here: ``restart_broker`` after ``stall_broker``
with *no intervening crash* must clear the stall — a "restarted" process
reads and forwards again, so its links cannot stay silently absorbing
traffic.  The orderings stall->restart and stall->unstall->crash are the
two ways a script can leave stall bookkeeping behind.
"""

from repro.core.config import LivenessParams
from repro.core.ticks import tick_of_time
from repro.faults.injector import FaultInjector
from repro.topology import two_broker_topology


def build_system(seed: int = 5):
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    return topo.build(seed=seed, params=LivenessParams(gct=0.1, nrt_min=0.3))


def links_of(system, broker_id):
    return list(system.network.links_of(broker_id))


class TestStallRestart:
    def test_restart_after_stall_clears_the_stall(self):
        system = build_system()
        injector = FaultInjector(system)

        injector.stall_broker("phb")
        assert all(link.stalled for link in links_of(system, "phb"))
        assert system.brokers["phb"].alive  # stalled, not dead

        # No crash in between: the broker process is bounced in place.
        injector.restart_broker("phb")
        assert system.brokers["phb"].alive
        assert all(not link.stalled for link in links_of(system, "phb"))
        assert all(link.up for link in links_of(system, "phb"))
        # Bookkeeping is clean: a later crash/restart cycle is unaffected.
        assert injector._stalled_brokers == set()

    def test_restarted_broker_forwards_again(self):
        system = build_system()
        injector = FaultInjector(system)
        client = system.subscribe("c", "shb", ("P0",))
        publisher = system.publisher("P0", rate=50.0)
        publisher.start(at=0.05)

        injector.at(0.5, lambda: injector.stall_broker("phb"))
        injector.at(1.5, lambda: injector.restart_broker("phb"))
        system.scheduler.call_at(3.0, publisher.stop)
        system.run_until(8.0)

        published = {tick for (_, tick, __) in publisher.published}
        received = {tick for (_, tick, __, ___) in client.received}
        assert published, "publisher must have published"
        assert received == published

    def test_stall_unstall_crash_ordering(self):
        system = build_system()
        injector = FaultInjector(system)

        injector.stall_broker("phb")
        injector.unstall_broker("phb")
        assert all(not link.stalled for link in links_of(system, "phb"))

        injector.crash_broker("phb")
        assert not system.brokers["phb"].alive
        # The stall was already lifted; crash bookkeeping stays clean and
        # the restart revives the broker with healthy links.
        assert injector._stalled_brokers == set()
        injector.restart_broker("phb")
        assert system.brokers["phb"].alive
        assert all(not link.stalled for link in links_of(system, "phb"))

    def test_stall_crash_restart_still_clears_stall(self):
        system = build_system()
        injector = FaultInjector(system)

        injector.stall_broker("phb")
        injector.crash_broker("phb")  # crash supersedes the stall
        assert injector._stalled_brokers == set()
        injector.restart_broker("phb")
        assert all(not link.stalled for link in links_of(system, "phb"))
        assert all(link.up for link in links_of(system, "phb"))


class TestFaultLogTimestamps:
    def test_log_and_events_use_the_scheduler_clock(self):
        system = build_system()
        injector = FaultInjector(system)

        injector.at(0.25, lambda: injector.stall_broker("phb"))
        injector.at(1.75, lambda: injector.restart_broker("phb"))
        system.run_until(2.0)

        assert [e.kind for e in injector.events] == [
            "stall_broker",
            "restart_broker",
        ]
        for event in injector.events:
            # The tick stamp is the same instant on the protocol tick axis.
            assert event.tick == tick_of_time(event.time)
        stall, restart = injector.events
        assert abs(stall.time - 0.25) < 1e-9
        assert abs(restart.time - 1.75) < 1e-9
        # The human-readable log carries the same clock, same order.
        assert injector.log[0].startswith("t=0.250 ")
        assert injector.log[1].startswith("t=1.750 ")
