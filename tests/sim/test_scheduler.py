"""Unit tests for the deterministic discrete-event scheduler."""

import pytest

from repro.sim.scheduler import Scheduler


class TestScheduling:
    def test_events_run_in_time_order(self):
        s = Scheduler()
        out = []
        s.call_at(2.0, lambda: out.append("b"))
        s.call_at(1.0, lambda: out.append("a"))
        s.call_at(3.0, lambda: out.append("c"))
        s.run()
        assert out == ["a", "b", "c"]

    def test_same_time_runs_in_scheduling_order(self):
        s = Scheduler()
        out = []
        for i in range(5):
            s.call_at(1.0, lambda i=i: out.append(i))
        s.run()
        assert out == [0, 1, 2, 3, 4]

    def test_clock_advances(self):
        s = Scheduler()
        seen = []
        s.call_at(1.5, lambda: seen.append(s.now))
        s.run()
        assert seen == [1.5]
        assert s.now == 1.5

    def test_call_later_is_relative(self):
        s = Scheduler()
        seen = []
        s.call_at(1.0, lambda: s.call_later(0.5, lambda: seen.append(s.now)))
        s.run()
        assert seen == [1.5]

    def test_past_events_run_now_not_backwards(self):
        s = Scheduler()
        seen = []
        s.call_at(2.0, lambda: s.call_at(1.0, lambda: seen.append(s.now)))
        s.run()
        assert seen == [2.0]

    def test_cancel(self):
        s = Scheduler()
        out = []
        handle = s.call_at(1.0, lambda: out.append("x"))
        handle.cancel()
        s.run()
        assert out == []

    def test_run_until_stops_at_deadline(self):
        s = Scheduler()
        out = []
        s.call_at(1.0, lambda: out.append(1))
        s.call_at(5.0, lambda: out.append(5))
        s.run_until(2.0)
        assert out == [1]
        assert s.now == 2.0
        s.run_until(6.0)
        assert out == [1, 5]

    def test_run_guard_against_runaway(self):
        s = Scheduler()

        def loop():
            s.call_later(0.0, loop)

        s.call_at(0.0, loop)
        with pytest.raises(RuntimeError):
            s.run(max_events=1000)

    def test_determinism_across_runs(self):
        def simulate(seed):
            s = Scheduler(seed=seed)
            trace = []

            def recurring(n):
                if n <= 0:
                    return
                trace.append((round(s.now, 6), s.rng.random()))
                s.call_later(s.rng.uniform(0.01, 0.1), lambda: recurring(n - 1))

            s.call_at(0.0, lambda: recurring(20))
            s.run()
            return trace

        assert simulate(42) == simulate(42)
        assert simulate(42) != simulate(43)

    def test_step_returns_false_when_empty(self):
        s = Scheduler()
        assert not s.step()

    def test_events_run_counter(self):
        s = Scheduler()
        for i in range(3):
            s.call_at(float(i), lambda: None)
        s.run()
        assert s.events_run == 3

    def test_cancelled_timers_not_counted_in_events_run(self):
        # events_run is used as a deterministic work metric (the bench
        # gate compares it across runs), so skipped-because-cancelled
        # handles must not inflate it.
        s = Scheduler()
        handles = [s.call_at(float(i), lambda: None) for i in range(5)]
        for handle in handles[1:4]:
            handle.cancel()
        s.run()
        assert s.events_run == 2

    def test_cancel_inside_callback_suppresses_later_event(self):
        s = Scheduler()
        out = []
        later = s.call_at(2.0, lambda: out.append("later"))
        s.call_at(1.0, later.cancel)
        s.run()
        assert out == []
        assert s.events_run == 1
