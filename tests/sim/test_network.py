"""Unit tests for simulated links and the network fabric."""

import pytest

from repro.sim.network import Node, SimNetwork
from repro.sim.scheduler import Scheduler


class Recorder(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def receive(self, src, message):
        self.received.append((src, message))


def make_net(**link_params):
    scheduler = Scheduler(seed=1)
    net = SimNetwork(scheduler)
    a, b = Recorder("a"), Recorder("b")
    net.add_node(a)
    net.add_node(b)
    net.connect("a", "b", **link_params)
    return scheduler, net, a, b


class TestDelivery:
    def test_basic_delivery_after_latency(self):
        scheduler, net, a, b = make_net(latency=0.01)
        net.send("a", "b", "hello")
        scheduler.run_until(0.005)
        assert b.received == []
        scheduler.run_until(0.02)
        assert b.received == [("a", "hello")]

    def test_bidirectional(self):
        scheduler, net, a, b = make_net()
        net.send("b", "a", "hi")
        scheduler.run()
        assert a.received == [("b", "hi")]

    def test_send_without_link_fails_quietly(self):
        scheduler, net, a, b = make_net()
        assert not net.send("a", "zzz", "x")

    def test_jitter_can_reorder(self):
        scheduler = Scheduler(seed=3)
        net = SimNetwork(scheduler)
        a, b = Recorder("a"), Recorder("b")
        net.add_node(a)
        net.add_node(b)
        net.connect("a", "b", latency=0.001, jitter=0.05)
        for i in range(50):
            net.send("a", "b", i)
        scheduler.run()
        order = [m for (__, m) in b.received]
        assert sorted(order) == list(range(50))
        assert order != list(range(50))  # reordering actually happened

    def test_random_drop(self):
        scheduler = Scheduler(seed=5)
        net = SimNetwork(scheduler)
        a, b = Recorder("a"), Recorder("b")
        net.add_node(a)
        net.add_node(b)
        link = net.connect("a", "b", drop_probability=0.5)
        for i in range(200):
            net.send("a", "b", i)
        scheduler.run()
        assert 0 < len(b.received) < 200
        assert link.stats.dropped_random > 0

    def test_bandwidth_serializes(self):
        scheduler, net, a, b = make_net(latency=0.0, bandwidth_bps=8000.0)
        # 100 bytes = 800 bits = 0.1 s each
        net.send("a", "b", 1, size_bytes=100)
        net.send("a", "b", 2, size_bytes=100)
        scheduler.run_until(0.15)
        assert [m for (__, m) in b.received] == [1]
        scheduler.run_until(0.25)
        assert [m for (__, m) in b.received] == [1, 2]


class TestFailures:
    def test_down_link_drops(self):
        scheduler, net, a, b = make_net()
        link = net.link("a", "b")
        link.fail()
        net.send("a", "b", "lost")
        scheduler.run()
        assert b.received == []
        assert link.stats.dropped_down == 1
        link.recover()
        net.send("a", "b", "ok")
        scheduler.run()
        assert [m for (__, m) in b.received] == ["ok"]

    def test_stalled_link_absorbs(self):
        scheduler, net, a, b = make_net()
        link = net.link("a", "b")
        link.stall()
        net.send("a", "b", "absorbed")
        scheduler.run()
        assert b.received == []
        assert link.stats.dropped_stalled == 1

    def test_stall_is_invisible_to_usability_check(self):
        scheduler, net, a, b = make_net()
        net.link("a", "b").stall()
        assert net.link_is_usable("a", "b")
        net.link("a", "b").fail()
        assert not net.link_is_usable("a", "b")

    def test_in_flight_lost_when_link_dies(self):
        scheduler, net, a, b = make_net(latency=0.1)
        net.send("a", "b", "in-flight")
        scheduler.run_until(0.05)
        net.link("a", "b").fail()
        scheduler.run()
        assert b.received == []

    def test_dead_node_receives_nothing(self):
        scheduler, net, a, b = make_net()
        b.alive = False
        net.send("a", "b", "x")
        scheduler.run()
        assert b.received == []

    def test_dead_node_cannot_send(self):
        scheduler, net, a, b = make_net()
        a.alive = False
        assert not net.send("a", "b", "x")

    def test_usability_sees_dead_peer(self):
        scheduler, net, a, b = make_net()
        b.alive = False
        assert not net.link_is_usable("a", "b")


class TestTopologyQueries:
    def test_neighbors(self):
        scheduler = Scheduler()
        net = SimNetwork(scheduler)
        for name in ("a", "b", "c"):
            net.add_node(Recorder(name))
        net.connect("a", "b")
        net.connect("a", "c")
        assert net.neighbors("a") == ["b", "c"]
        assert net.neighbors("b") == ["a"]

    def test_duplicate_node_rejected(self):
        net = SimNetwork(Scheduler())
        net.add_node(Recorder("a"))
        with pytest.raises(ValueError):
            net.add_node(Recorder("a"))

    def test_duplicate_link_rejected(self):
        net = SimNetwork(Scheduler())
        net.add_node(Recorder("a"))
        net.add_node(Recorder("b"))
        net.connect("a", "b")
        with pytest.raises(ValueError):
            net.connect("b", "a")

    def test_self_link_rejected(self):
        net = SimNetwork(Scheduler())
        net.add_node(Recorder("a"))
        with pytest.raises(ValueError):
            net.connect("a", "a")

    def test_links_of(self):
        net = SimNetwork(Scheduler())
        for name in ("a", "b", "c"):
            net.add_node(Recorder(name))
        net.connect("a", "b")
        net.connect("b", "c")
        assert len(net.links_of("b")) == 2
        assert len(net.links_of("a")) == 1
