"""Unit tests for crash/restart-aware simulated processes."""

from repro.sim.network import SimNetwork
from repro.sim.process import SimProcess
from repro.sim.scheduler import Scheduler


class Probe(SimProcess):
    def __init__(self, node_id, network, scheduler):
        super().__init__(node_id, network, scheduler)
        self.messages = []
        self.crashes = 0
        self.restarts = 0

    def on_message(self, src, message):
        self.messages.append((src, message))

    def on_crash(self):
        self.crashes += 1

    def on_restart(self):
        self.restarts += 1


def make():
    scheduler = Scheduler()
    net = SimNetwork(scheduler)
    a = Probe("a", net, scheduler)
    b = Probe("b", net, scheduler)
    net.add_node(a)
    net.add_node(b)
    net.connect("a", "b", latency=0.001)
    return scheduler, net, a, b


class TestLifecycle:
    def test_crash_calls_hook_once(self):
        __, __, a, __b = make()
        a.crash()
        a.crash()
        assert a.crashes == 1
        assert not a.alive

    def test_restart_calls_hook(self):
        __, __, a, __b = make()
        a.crash()
        a.restart()
        assert a.restarts == 1
        assert a.alive

    def test_restart_when_alive_is_noop(self):
        __, __, a, __b = make()
        a.restart()
        assert a.restarts == 0

    def test_crashed_process_ignores_messages(self):
        scheduler, net, a, b = make()
        b.crash()
        a.send("b", "x")
        scheduler.run()
        assert b.messages == []

    def test_crashed_process_cannot_send(self):
        scheduler, __, a, b = make()
        a.crash()
        assert not a.send("b", "x")


class TestEpochTimers:
    def test_timer_from_old_epoch_never_fires(self):
        scheduler, __, a, __b = make()
        fired = []
        a.schedule(1.0, lambda: fired.append("old"))
        a.crash()
        a.restart()
        a.schedule(1.0, lambda: fired.append("new"))
        scheduler.run()
        assert fired == ["new"]

    def test_timer_suppressed_while_crashed(self):
        scheduler, __, a, __b = make()
        fired = []
        a.schedule(1.0, lambda: fired.append("x"))
        a.crash()
        scheduler.run()
        assert fired == []

    def test_every_stops_on_crash(self):
        scheduler, __, a, __b = make()
        ticks = []
        a.every(1.0, lambda: ticks.append(a.now()))
        scheduler.run_until(3.5)
        assert len(ticks) == 3
        a.crash()
        scheduler.run_until(10.0)
        assert len(ticks) == 3

    def test_crash_cancels_pending_timers_in_scheduler(self):
        # Epoch gating alone would leave the dead timers in the heap as
        # counted no-ops; crash() must *cancel* them so events_run stays
        # a crash-timing-independent work metric.
        scheduler, __, a, __b = make()
        for i in range(10):
            a.schedule(1.0 + i, lambda: None)
        a.crash()
        scheduler.run()
        assert scheduler.events_run == 0
        assert not a._pending_timers

    def test_fired_timers_leave_tracking_set(self):
        scheduler, __, a, __b = make()
        a.schedule(1.0, lambda: None)
        a.schedule(2.0, lambda: None)
        scheduler.run()
        assert not a._pending_timers

    def test_externally_cancelled_timers_are_pruned(self):
        # Handles cancelled through cancel() (not via crash) must not
        # accumulate in the tracking set forever.
        from repro.sim.process import _PRUNE_THRESHOLD

        scheduler, __, a, __b = make()
        for __i in range(_PRUNE_THRESHOLD + 10):
            a.schedule(1.0, lambda: None).cancel()
        assert len(a._pending_timers) <= _PRUNE_THRESHOLD + 1
        scheduler.run()
        assert scheduler.events_run == 0

    def test_restart_after_crash_tracks_fresh_timers(self):
        scheduler, __, a, __b = make()
        fired = []
        a.schedule(1.0, lambda: fired.append("old"))
        a.crash()
        a.restart()
        a.schedule(2.0, lambda: fired.append("new"))
        scheduler.run()
        assert fired == ["new"]
        assert scheduler.events_run == 1
        assert not a._pending_timers

    def test_every_restarts_independently(self):
        scheduler, __, a, __b = make()
        ticks = []
        a.every(1.0, lambda: ticks.append("first"))
        scheduler.run_until(1.5)
        a.crash()
        a.restart()
        a.every(1.0, lambda: ticks.append("second"))
        scheduler.run_until(4.6)
        assert ticks.count("first") == 1
        assert ticks.count("second") == 3
