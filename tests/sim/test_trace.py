"""Tests for the structured event tracer."""

import io
import json

from repro.sim.trace import Tracer
from repro.topology import two_broker_topology


def traced_run(drop=0.0, seed=3):
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    system = topo.build(seed=seed, log_commit_latency=0.01)
    if drop:
        system.network.link("phb", "shb").drop_probability = drop
    tracer = Tracer(system).install()
    system.subscribe("a", "shb", ("P0",))
    pub = system.publisher("P0", rate=50.0)
    pub.start(at=0.1)
    system.run_until(1.0)
    pub.stop()
    system.run_until(3.0)
    return system, tracer, pub


class TestRecording:
    def test_records_publishes_sends_and_deliveries(self):
        __, tracer, pub = traced_run()
        counts = tracer.counts()
        assert counts["publish"] == len(pub.published)
        assert counts["send:knowledge"] >= len(pub.published)
        assert counts["deliver"] == len(pub.published)
        assert counts.get("send:ack", 0) > 0

    def test_link_status_suppressed_by_default(self):
        __, tracer, __p = traced_run()
        assert "send:link_status" not in tracer.counts()

    def test_nacks_traced_under_loss(self):
        __, tracer, __p = traced_run(drop=0.2, seed=9)
        counts = tracer.counts()
        assert counts.get("send:nack", 0) > 0
        assert counts.get("send:retransmit", 0) > 0

    def test_tracing_does_not_change_behaviour(self):
        def deliveries(traced):
            topo = two_broker_topology()
            topo.pubend("P0", "phb")
            topo.route("P0", "PHB", "SHB")
            system = topo.build(seed=5, log_commit_latency=0.01)
            system.network.link("phb", "shb").drop_probability = 0.1
            if traced:
                Tracer(system).install()
            client = system.subscribe("a", "shb", ("P0",))
            pub = system.publisher("P0", rate=50.0)
            pub.start(at=0.1)
            system.run_until(1.0)
            pub.stop()
            system.run_until(4.0)
            return [(p, t) for (p, t, __, ___) in client.received]

        assert deliveries(False) == deliveries(True)

    def test_deterministic_traces(self):
        __, t1, __a = traced_run(drop=0.1, seed=4)
        __, t2, __b = traced_run(drop=0.1, seed=4)
        assert t1.render() == t2.render()

    def test_install_idempotent(self):
        system, tracer, pub = traced_run()
        count = len(tracer)
        tracer.install()
        assert len(tracer) == count


class TestQueries:
    def test_filter_by_kind_node_msg_and_window(self):
        __, tracer, __p = traced_run()
        sends = tracer.filter(kind="send", node="phb", msg="knowledge")
        assert sends and all(e.node == "phb" for e in sends)
        early = tracer.filter(t1=0.15)
        late = tracer.filter(t0=0.15)
        assert len(early) + len(late) == len(tracer)

    def test_render_lines(self):
        __, tracer, __p = traced_run()
        text = tracer.render(tracer.filter(kind="deliver")[:3])
        assert text.count("\n") == 2
        assert "deliver" in text

    def test_jsonl_export(self):
        __, tracer, __p = traced_run()
        out = io.StringIO()
        rows = tracer.write_jsonl(out)
        lines = out.getvalue().strip().splitlines()
        assert rows == len(lines) == len(tracer)
        parsed = json.loads(lines[0])
        assert {"t", "kind", "node"} <= set(parsed)

    def test_record_fault(self):
        system, tracer, __p = traced_run()
        tracer.record_fault("link phb-shb failed")
        assert tracer.filter(kind="fault")
