"""Tests for the structured event tracer."""

import io
import json

from repro.obs import Tracer
from repro.topology import two_broker_topology


def traced_run(drop=0.0, seed=3):
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    system = topo.build(seed=seed, log_commit_latency=0.01)
    if drop:
        system.network.link("phb", "shb").drop_probability = drop
    tracer = Tracer(system).install()
    system.subscribe("a", "shb", ("P0",))
    pub = system.publisher("P0", rate=50.0)
    pub.start(at=0.1)
    system.run_until(1.0)
    pub.stop()
    system.run_until(3.0)
    return system, tracer, pub


class TestRecording:
    def test_records_publishes_sends_and_deliveries(self):
        __, tracer, pub = traced_run()
        counts = tracer.counts()
        assert counts["publish"] == len(pub.published)
        assert counts["send:knowledge"] >= len(pub.published)
        assert counts["deliver"] == len(pub.published)
        assert counts.get("send:ack", 0) > 0

    def test_link_status_suppressed_by_default(self):
        __, tracer, __p = traced_run()
        assert "send:link_status" not in tracer.counts()

    def test_nacks_traced_under_loss(self):
        __, tracer, __p = traced_run(drop=0.2, seed=9)
        counts = tracer.counts()
        assert counts.get("send:nack", 0) > 0
        assert counts.get("send:retransmit", 0) > 0

    def test_tracing_does_not_change_behaviour(self):
        def deliveries(traced):
            topo = two_broker_topology()
            topo.pubend("P0", "phb")
            topo.route("P0", "PHB", "SHB")
            system = topo.build(seed=5, log_commit_latency=0.01)
            system.network.link("phb", "shb").drop_probability = 0.1
            if traced:
                Tracer(system).install()
            client = system.subscribe("a", "shb", ("P0",))
            pub = system.publisher("P0", rate=50.0)
            pub.start(at=0.1)
            system.run_until(1.0)
            pub.stop()
            system.run_until(4.0)
            return [(p, t) for (p, t, __, ___) in client.received]

        assert deliveries(False) == deliveries(True)

    def test_deterministic_traces(self):
        __, t1, __a = traced_run(drop=0.1, seed=4)
        __, t2, __b = traced_run(drop=0.1, seed=4)
        assert t1.render() == t2.render()

    def test_install_idempotent(self):
        system, tracer, pub = traced_run()
        count = len(tracer)
        tracer.install()
        assert len(tracer) == count


class TestQueries:
    def test_filter_by_kind_node_msg_and_window(self):
        __, tracer, __p = traced_run()
        sends = tracer.filter(kind="send", node="phb", msg="knowledge")
        assert sends and all(e.node == "phb" for e in sends)
        early = tracer.filter(t1=0.15)
        late = tracer.filter(t0=0.15)
        assert len(early) + len(late) == len(tracer)

    def test_render_lines(self):
        __, tracer, __p = traced_run()
        text = tracer.render(tracer.filter(kind="deliver")[:3])
        assert text.count("\n") == 2
        assert "deliver" in text

    def test_jsonl_export(self):
        __, tracer, __p = traced_run()
        out = io.StringIO()
        rows = tracer.write_jsonl(out)
        lines = out.getvalue().strip().splitlines()
        assert rows == len(lines) == len(tracer)
        parsed = json.loads(lines[0])
        assert {"t", "kind", "node"} <= set(parsed)

    def test_record_fault(self):
        system, tracer, __p = traced_run()
        tracer.record_fault("link phb-shb failed")
        assert tracer.filter(kind="fault")


class TestSequenceNumbers:
    def test_seq_is_monotonic_and_orders_simultaneous_events(self):
        __, tracer, __p = traced_run(drop=0.1, seed=4)
        events = tracer.filter()
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        # (t, seq) is a total order even when timestamps collide.
        keys = [e.sort_key for e in sorted(events, key=lambda e: e.sort_key)]
        assert keys == sorted(keys)
        assert any(
            a.t == b.t and a.seq < b.seq for a, b in zip(events, events[1:])
        )


class TestFlushEvents:
    def flushed_run(self, drop=0.0, seed=9):
        from repro.core.config import LivenessParams

        topo = two_broker_topology()
        topo.pubend("P0", "phb")
        topo.route("P0", "PHB", "SHB")
        params = LivenessParams(gct=0.1, nrt_min=0.3, flush_delay=0.05)
        system = topo.build(seed=seed, params=params, log_commit_latency=0.01)
        if drop:
            system.network.link("phb", "shb").drop_probability = drop
        tracer = Tracer(system).install()
        system.subscribe("a", "shb", ("P0",))
        pub = system.publisher("P0", rate=50.0)
        pub.start(at=0.1)
        system.run_until(1.0)
        pub.stop()
        system.run_until(4.0)
        return system, tracer

    def test_batched_run_traces_knowledge_flushes(self):
        __, tracer = self.flushed_run()
        counts = tracer.counts()
        assert counts.get("knowledge_flush", 0) > 0
        flush = tracer.filter(kind="knowledge_flush")[0]
        assert flush.detail.get("pubend") == "P0"
        assert flush.detail.get("ticks", 0) > 0

    def test_cancelled_timer_maps_to_its_own_kind(self):
        # An empty coalesced flush (ticks finalized meanwhile) reports
        # sent=False through the hub; the flat tracer gives it a
        # distinct event kind.
        system, tracer = self.flushed_run()
        before = len(tracer)
        system.obs.lifecycle.knowledge_flushed(
            system.scheduler.now, "phb", "P0", "SHB", (), False
        )
        assert len(tracer) == before + 1
        cancelled = tracer.filter(kind="flush_timer_cancelled")
        assert cancelled and cancelled[-1].node == "phb"
