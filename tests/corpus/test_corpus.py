"""Replay every checked-in repro file as an ordinary pytest case.

Each ``*.json`` in this directory is a minimized scenario written by the
fuzzer (``python -m repro fuzz``) or checked in by hand after a bug hunt
(see docs/FUZZING.md for the check-in workflow).  Replays are fully
deterministic, so a repro's verdict — ``expect: pass`` for fixed
regressions, ``expect: fail`` for known-broken ablations — must reproduce
bit-for-bit on every run.
"""

import glob
import os

import pytest

from repro.check import load_repro, run_scenario

CORPUS_DIR = os.path.dirname(__file__)
REPRO_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_not_empty():
    assert REPRO_FILES, "tests/corpus must contain at least one repro file"


@pytest.mark.parametrize(
    "path", REPRO_FILES, ids=[os.path.basename(p) for p in REPRO_FILES]
)
def test_replay(path):
    scenario, expect = load_repro(path)
    result = run_scenario(scenario)
    verdict = "pass" if result.ok else "fail"
    assert verdict == expect, (
        f"{os.path.basename(path)}: expected {expect}, got {verdict}: "
        f"{result.failures[:3]}"
    )


@pytest.mark.parametrize(
    "path", REPRO_FILES, ids=[os.path.basename(p) for p in REPRO_FILES]
)
def test_replay_causal_timeline_matches_golden(path):
    """A failing repro's causal timeline is a byte-stable artifact.

    ``tests/corpus/golden/<stem>.timeline.txt`` pins the span timeline of
    the violating ``(pubend, tick)``; pass entries must produce none.
    The causal tracer is pure observation, so the digest stays identical
    to the plain replay either way.
    """
    scenario, expect = load_repro(path)
    plain = run_scenario(scenario)
    result = run_scenario(scenario, causal=True)
    assert result.digest == plain.digest, "causal tracing changed the run"
    stem = os.path.basename(path)[: -len(".json")]
    golden = os.path.join(CORPUS_DIR, "golden", f"{stem}.timeline.txt")
    if expect == "pass":
        assert not result.causal_timeline
        assert not os.path.exists(golden)
        return
    assert result.subjects, "failing repro should name a (pubend, tick)"
    assert result.causal_timeline
    with open(golden) as handle:
        assert result.causal_timeline == handle.read(), (
            f"causal timeline of {stem} diverged from {golden}; if the "
            f"change is intended, regenerate via "
            f"run_scenario(scenario, causal=True).causal_timeline"
        )
