"""Replay every checked-in conformance repro as an ordinary pytest case.

Each ``conformance/*.json`` is either a minimized divergence written by
the conformance campaign (``python -m repro conform``) or an agreement
pinning a subtle edge case of the comparison relation (see
docs/TESTING.md for the check-in workflow).  The aio leg runs on real
wall-clock timers, so these are marked slow; the verdict itself must
still reproduce on every run.
"""

import glob
import os

import pytest

from repro.check import replay_conformance

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "conformance")
REPRO_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_conformance_corpus_is_not_empty():
    assert REPRO_FILES, (
        "tests/corpus/conformance must contain at least one repro file"
    )


@pytest.mark.slow
@pytest.mark.parametrize(
    "path", REPRO_FILES, ids=[os.path.basename(p) for p in REPRO_FILES]
)
def test_replay(path):
    result, expect = replay_conformance(path)
    verdict = "agree" if result.ok else "diverge"
    assert verdict == expect, (
        f"{os.path.basename(path)}: expected {expect}, got {verdict}: "
        f"{result.divergences[:3]}"
    )
    if result.mutations:
        # A mutation repro only proves anything if the deliberate defect
        # actually fired during the replay.
        assert sum(result.aio.mutated.values()) > 0
