"""Tests of the experiment drivers (small configurations).

The benchmarks assert the paper's claims at full (scaled) size; these
tests assert the drivers themselves are sound: field plumbing, windowing,
determinism, and parameter validation.
"""

import pytest

from repro.experiments.fig45 import (
    gd_minus_be,
    run_overhead_point,
    run_overhead_sweep,
)
from repro.experiments.fig678 import FAULTS, run_fault_experiment


class TestOverheadDriver:
    def test_point_fields(self):
        point = run_overhead_point("gd", 40, input_rate=100, warmup=0.5, measure=2.0)
        assert point.protocol == "gd"
        assert point.n_subscribers == 40
        assert 0 <= point.shb_cpu <= 1
        assert 0 <= point.phb_cpu <= 1
        assert point.remote_median_ms > 0
        assert point.delivered > 0

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            run_overhead_point("carrier-pigeon", 10)

    def test_sweep_covers_grid(self):
        points = run_overhead_sweep(
            [10, 20], input_rate=60, warmup=0.5, measure=1.5
        )
        keys = {(p.protocol, p.n_subscribers) for p in points}
        assert keys == {
            ("gd", 10),
            ("gd", 20),
            ("best-effort", 10),
            ("best-effort", 20),
        }

    def test_gd_minus_be_deltas(self):
        points = run_overhead_sweep([10], input_rate=60, warmup=0.5, measure=1.5)
        deltas = gd_minus_be(points)
        assert set(deltas) == {10}
        assert deltas[10]["remote_latency_gap_ms"] > 50  # the logging delay

    def test_gd_latency_gap_tracks_commit_latency(self):
        fast = run_overhead_point(
            "gd", 10, input_rate=60, warmup=0.5, measure=1.5, log_commit_latency=0.02
        )
        slow = run_overhead_point(
            "gd", 10, input_rate=60, warmup=0.5, measure=1.5, log_commit_latency=0.08
        )
        assert slow.remote_median_ms - fast.remote_median_ms == pytest.approx(
            60, abs=15
        )

    def test_deterministic(self):
        a = run_overhead_point("gd", 15, input_rate=60, warmup=0.5, measure=1.5)
        b = run_overhead_point("gd", 15, input_rate=60, warmup=0.5, measure=1.5)
        assert a == b

    def test_row_renders(self):
        point = run_overhead_point("gd", 10, input_rate=60, warmup=0.5, measure=1.0)
        assert "gd" in point.row()


class TestFaultDriver:
    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError):
            run_fault_experiment("zombie-apocalypse")

    @pytest.mark.parametrize("fault", FAULTS)
    def test_small_runs_stay_exactly_once(self, fault):
        result = run_fault_experiment(
            fault,
            rate=10.0,
            n_pubends=2,
            fault_at=2.0,
            stall=1.0,
            link_outage=3.0,
            broker_downtime=4.0,
            phb_downtime=4.0,
            settle=8.0,
        )
        assert result.fault == fault
        assert result.all_exactly_once()
        assert set(result.latency) == {f"sub_s{i}" for i in range(1, 6)}

    def test_result_accessors(self):
        result = run_fault_experiment(
            "link_b1_s1",
            rate=10.0,
            n_pubends=2,
            fault_at=2.0,
            stall=1.0,
            link_outage=3.0,
            settle=8.0,
        )
        assert result.max_latency("sub_s1") >= result.steady_latency(
            "sub_s1", before=1.5
        )
        assert result.nack_range_total("s1") == sum(
            r for __, r in result.nacks.get("s1", [])
        )
        assert result.fault_log  # the injector narrated its actions

    def test_deterministic(self):
        kw = dict(
            rate=10.0, n_pubends=2, fault_at=2.0, stall=1.0,
            link_outage=3.0, settle=8.0,
        )
        a = run_fault_experiment("link_b1_s1", **kw)
        b = run_fault_experiment("link_b1_s1", **kw)
        assert a.latency == b.latency
        assert a.nacks == b.nacks
