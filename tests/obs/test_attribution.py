"""Latency attribution (repro.obs.attribution).

The acceptance bar for the causal tracing layer: on a seeded two-broker
run with a Figure-6-style link fault, **every** delivered message's
attribution components must sum (within float tolerance) to its
end-to-end latency — the decomposition never invents or loses time.
"""

from repro.core.config import LivenessParams
from repro.faults.injector import FaultInjector
from repro.obs.attribution import COMPONENTS, build_report
from repro.obs.causal import CausalTracer
from repro.topology import two_broker_topology


def attributed_run(
    seed=7, drop=0.0, flush_delay=0.0, link_fault=None, until=6.0
):
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    params = LivenessParams(gct=0.1, nrt_min=0.3, flush_delay=flush_delay)
    system = topo.build(seed=seed, params=params, log_commit_latency=0.01)
    if drop:
        system.network.link("phb", "shb").drop_probability = drop
    if link_fault is not None:
        down, up = link_fault
        injector = FaultInjector(system)
        injector.at(down, lambda: injector.fail_link("phb", "shb"))
        injector.at(up, lambda: injector.recover_link("phb", "shb"))
    tracer = CausalTracer(system).install()
    client = system.subscribe("a", "shb", ("P0",))
    pub = system.publisher("P0", rate=50.0)
    pub.start(at=0.1)
    system.run_until(2.0)
    pub.stop()
    system.run_until(until)
    return build_report(tracer), client


class TestComponentsSumToLatency:
    def test_every_delivery_under_link_fault(self):
        """Acceptance: seeded two_broker + link outage mid-run — each
        delivered message's components telescope exactly to its
        end-to-end (publish -> client observation) latency."""
        report, client = attributed_run(
            seed=7, link_fault=(0.6, 1.4), until=8.0
        )
        assert client.received
        assert len(report.breakdowns) == len(client.received)
        for b in report.breakdowns:
            assert b.check_sum(1e-9), (
                f"({b.pubend},{b.tick}) components {b.components} "
                f"do not sum to total {b.total}"
            )
            assert b.total >= 0
            assert set(b.components) == set(COMPONENTS)
            assert all(v >= -1e-9 for v in b.components.values())
        # The outage forces recovery: some deliveries waited on
        # retransmission or on publisher-order (horizon) hold-back.
        recovered = sum(
            b.components["retransmit_wait"] + b.components["horizon_wait"]
            for b in report.breakdowns
        )
        assert recovered > 0

    def test_every_delivery_under_random_drops(self):
        report, client = attributed_run(seed=11, drop=0.15, until=8.0)
        assert client.received
        assert all(b.check_sum(1e-9) for b in report.breakdowns)
        assert sum(
            b.components["retransmit_wait"] for b in report.breakdowns
        ) > 0

    def test_flush_wait_appears_under_batching(self):
        report, __ = attributed_run(seed=7, flush_delay=0.05, until=8.0)
        assert report.breakdowns
        assert all(b.check_sum(1e-9) for b in report.breakdowns)
        assert sum(
            b.components["flush_wait"] for b in report.breakdowns
        ) > 0

    def test_commit_latency_attributed_exactly(self):
        report, __ = attributed_run(seed=3)
        # log_commit_latency is 10 ms; every delivery paid exactly that.
        assert report.breakdowns
        for b in report.breakdowns:
            assert abs(b.components["commit"] - 0.01) < 1e-9


class TestReport:
    def test_routes_and_format(self):
        report, client = attributed_run(seed=7, drop=0.1, until=8.0)
        assert report.routes
        route = report.routes[0]
        assert route.pubend == "P0" and route.subscriber == "a"
        assert route.count == len(client.received)
        assert (
            route.p50["total"] <= route.p95["total"] <= route.peak["total"]
        )
        text = report.format(top=3)
        for component in ("commit", "transit", "retransmit_wait"):
            assert component in text
        assert "P0" in text and "a" in text
