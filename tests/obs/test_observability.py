"""The Observability facade, system wiring, and API-migration shims."""

import warnings

import pytest

import repro
from repro.obs import Observability
from repro.obs.hub import MetricsHub
from repro.topology import two_broker_topology


def small_system(seed=3):
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    return topo.build(seed=seed)


class TestFacade:
    def test_counter_gauge_histogram_and_timer(self):
        obs = Observability()
        obs.counter("c_total", broker="x").inc(4)
        obs.gauge("g").set(1.5)
        obs.histogram("h", boundaries=(1.0,)).observe(0.5)
        with obs.timer("t_seconds"):
            pass
        assert obs.instruments.total("c_total") == 4.0
        assert obs.instruments.get("g").value == 1.5
        assert obs.instruments.get("t_seconds").count == 1

    def test_owns_a_hub_or_adopts_one(self):
        hub = MetricsHub()
        assert Observability(hub=hub).hub is hub
        assert isinstance(Observability().hub, MetricsHub)

    def test_derived_gauges_from_accountants(self):
        class Acct:
            busy_time = 1.25

            def queue_delay(self):
                return 0.5

        obs = Observability()
        obs.register_accountant("b1", Acct())
        text = obs.prometheus()
        assert 'repro_broker_cpu_busy_seconds{broker="b1"} 1.25' in text
        assert 'repro_broker_cpu_queue_delay_seconds{broker="b1"} 0.5' in text


class TestSystemWiring:
    def test_system_exposes_obs(self):
        system = small_system()
        assert isinstance(system.obs, Observability)
        # The hub and the legacy system.metrics are the same object.
        assert system.obs.hub is system.metrics
        # Every broker shares the system registry and registered its
        # accountant.
        for broker in system.brokers.values():
            assert broker.obs is system.obs
        assert set(system.obs.accountants) == set(system.brokers)

    def test_restarted_engine_keeps_counting(self):
        system = small_system()
        pub = system.publisher("P0", rate=50.0)
        pub.start(at=0.1)
        system.subscribe("a", "shb", ("P0",))
        system.run_until(1.0)
        counter = system.obs.instruments.get(
            "repro_broker_knowledge_sent_total", broker="phb"
        )
        before = counter.value
        assert before > 0
        system.brokers["phb"].crash()
        system.run_for(0.2)
        system.brokers["phb"].restart()
        system.run_until(3.0)
        # Same child object, monotone across the restart.
        assert system.obs.instruments.get(
            "repro_broker_knowledge_sent_total", broker="phb"
        ) is counter
        assert counter.value > before

    def test_run_until_and_run_for_return_final_time(self):
        system = small_system()
        assert system.run_until(1.5) == pytest.approx(1.5)
        assert system.run_for(0.5) == pytest.approx(2.0)

    def test_tracer_registers_with_obs(self):
        from repro.obs.trace import Tracer

        system = small_system()
        tracer = Tracer(system)
        assert tracer in system.obs.tracers


class TestDeprecationShims:
    def test_metricshub_old_import_path_warns(self):
        from repro.metrics import recorder

        with pytest.warns(DeprecationWarning, match="moved to repro.obs.hub"):
            old = recorder.MetricsHub
        assert old is MetricsHub

    def test_metricshub_from_metrics_package_warns(self):
        import repro.metrics

        with pytest.warns(DeprecationWarning):
            old = repro.metrics.MetricsHub
        assert old is MetricsHub

    def test_tracer_old_import_path_warns(self):
        from repro.obs.trace import TraceEvent, Tracer
        from repro.sim import trace as old_trace

        with pytest.warns(DeprecationWarning, match="moved to repro.obs.trace"):
            assert old_trace.Tracer is Tracer
        with pytest.warns(DeprecationWarning):
            assert old_trace.TraceEvent is TraceEvent

    def test_new_import_paths_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from repro.obs import MetricsHub as hub  # noqa: F401
            from repro.obs import Tracer as tracer  # noqa: F401

            assert repro.MetricsHub is MetricsHub


class TestKeywordOnlyMigration:
    def test_subscribe_positional_total_order_warns_but_works(self):
        system = small_system()
        with pytest.warns(DeprecationWarning, match="total_order positionally"):
            client = system.subscribe("a", "shb", ("P0",), None, True)
        assert system.subscriptions["a"].total_order is True
        assert client is system.subscribers["a"]

    def test_subscribe_keyword_total_order_silent(self):
        system = small_system()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            system.subscribe("a", "shb", ("P0",), total_order=True)
        assert system.subscriptions["a"].total_order is True

    def test_subscribe_too_many_positionals_raises(self):
        system = small_system()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                system.subscribe("a", "shb", ("P0",), None, True, "extra")

    def test_pubend_positional_preassign_warns_but_works(self):
        topo = two_broker_topology()
        with pytest.warns(DeprecationWarning, match="preassign_window positionally"):
            topo.pubend("P0", "phb", 0.25)
        assert topo._pubends["P0"].preassign_window == 0.25

    def test_pubend_keyword_preassign_silent(self):
        topo = two_broker_topology()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            topo.pubend("P0", "phb", preassign_window=0.25)
        assert topo._pubends["P0"].preassign_window == 0.25
