"""Online anomaly detectors (repro.obs.detectors).

Each detector is exercised by constructing the pathology it watches
for: a permanent link failure stalls a subend's doubt horizon, heavy
loss drives the fleet retransmission rate over a low threshold, and a
sabotaged pubend (lazy silence disabled) violates the silence contract.
"""

from repro.core.config import LivenessParams
from repro.faults.injector import FaultInjector
from repro.obs.detectors import DetectorSet
from repro.topology import two_broker_topology


def build_system(seed=7, drop=0.0):
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    params = LivenessParams(gct=0.1, nrt_min=0.3)
    system = topo.build(seed=seed, params=params, log_commit_latency=0.01)
    if drop:
        system.network.link("phb", "shb").drop_probability = drop
    return system


def drive(system, until=5.0):
    system.subscribe("a", "shb", ("P0",))
    pub = system.publisher("P0", rate=50.0)
    pub.start(at=0.1)
    system.run_until(1.0)
    pub.stop()
    system.run_until(until)


def findings_by(detectors, name):
    return [f for f in detectors.findings if f.detector == name]


class TestHorizonStall:
    def test_permanent_link_failure_raises_stall(self):
        system = build_system(seed=9, drop=0.2)
        detectors = DetectorSet(
            system, interval=0.1, stall_after=0.5
        ).install()
        injector = FaultInjector(system)
        injector.at(0.6, lambda: injector.fail_link("phb", "shb"))
        drive(system, until=5.0)
        stalls = findings_by(detectors, "horizon_stall")
        assert stalls, "dead link with in-doubt ticks must raise a stall"
        finding = stalls[0]
        assert finding.node == "shb" and finding.pubend == "P0"
        assert finding.data["istream_max"] > finding.data["horizon"]
        assert finding.data["age"] >= 0.5

    def test_healthy_run_raises_nothing(self):
        system = build_system(seed=7)
        detectors = DetectorSet(
            system, interval=0.1, stall_after=0.5
        ).install()
        drive(system, until=5.0)
        assert not detectors.findings


class TestRetransmissionStorm:
    def test_heavy_loss_trips_low_threshold(self):
        system = build_system(seed=9, drop=0.3)
        detectors = DetectorSet(
            system, interval=0.25, storm_rate=4.0
        ).install()
        drive(system, until=5.0)
        storms = findings_by(detectors, "retransmission_storm")
        assert storms
        assert storms[0].data["rate"] >= 4.0
        # One finding per storm episode, not one per sweep.
        sweeps = int(5.0 / 0.25)
        assert len(storms) < sweeps


class TestSilenceViolation:
    def test_disabled_lazy_silence_is_flagged(self):
        system = build_system(seed=7)
        # Sabotage: the PHB's hosted pubend stops emitting idle silence,
        # exactly the pathology lazy silence exists to prevent.
        pubend = system.brokers["phb"].engine.pubends["P0"]
        pubend.maybe_silence = lambda now: None
        detectors = DetectorSet(
            system, interval=0.1, silence_factor=1.5
        ).install()
        drive(system, until=6.0)
        violations = findings_by(detectors, "silence_violation")
        assert violations
        finding = violations[0]
        assert finding.pubend == "P0" and finding.node == "phb"
        assert finding.data["age"] > finding.data["limit"]


class TestCorruptionStorm:
    def test_burst_of_detected_faults_trips_threshold(self):
        # The detector watches the *detection* counters (quarantines,
        # crc rejects, append errors), not the faults themselves, so a
        # burst is simulated by bumping the counters mid-run the way a
        # FileLog replay or FrameDecoder reject would.
        system = build_system(seed=7)
        detectors = DetectorSet(
            system, interval=0.1, corruption_rate=5.0
        ).install()
        quarantined = system.obs.counter("log_records_quarantined")
        rejected = system.obs.counter("aio_frames_rejected_crc")
        injector = FaultInjector(system)
        injector.at(0.51, lambda: quarantined.inc(2))
        injector.at(0.52, lambda: rejected.inc(1))
        drive(system, until=5.0)
        storms = findings_by(detectors, "corruption_storm")
        # 3 faults inside one 0.1 s sweep window = 30/s >= 5/s — and one
        # finding for the episode, not one per sweep.
        assert len(storms) == 1
        assert storms[0].data["rate"] >= 5.0
        assert storms[0].data["total"] == 3
        # The gauge decays back to zero once the burst passes.
        gauge = system.obs.gauge("repro_detector_corruption_rate")
        assert gauge.value == 0.0

    def test_slow_trickle_stays_below_threshold(self):
        # One fault per 0.25 s sweep window is 4/s — under the 5/s
        # threshold: isolated healed faults are not a storm.
        system = build_system(seed=7)
        detectors = DetectorSet(
            system, interval=0.25, corruption_rate=5.0
        ).install()
        errors = system.obs.counter("log_append_errors")
        injector = FaultInjector(system)
        for i in range(4):
            injector.at(0.5 + i, lambda: errors.inc())
        drive(system, until=5.0)
        assert not findings_by(detectors, "corruption_storm")


class TestReadOnly:
    def test_detectors_do_not_change_deliveries(self):
        def deliveries(with_detectors):
            system = build_system(seed=11, drop=0.15)
            if with_detectors:
                DetectorSet(system, interval=0.1, storm_rate=1.0).install()
            client = system.subscribe("a", "shb", ("P0",))
            pub = system.publisher("P0", rate=50.0)
            pub.start(at=0.1)
            system.run_until(1.0)
            pub.stop()
            system.run_until(5.0)
            return [(p, t) for (p, t, __, ___) in client.received]

        assert deliveries(False) == deliveries(True)

    def test_findings_are_counted_into_obs(self):
        system = build_system(seed=9, drop=0.3)
        detectors = DetectorSet(
            system, interval=0.25, storm_rate=4.0
        ).install()
        drive(system, until=5.0)
        assert detectors.findings
        text = system.obs.prometheus()
        assert 'repro_detector_findings_total{detector="retransmission_storm"}' in text
        for line in text.splitlines():
            if line.startswith(
                'repro_detector_findings_total{detector="retransmission_storm"}'
            ):
                assert float(line.rsplit(" ", 1)[1]) >= 1
