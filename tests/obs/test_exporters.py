"""Exporter format validity and parser round-trips."""

import io
import json

import pytest

from repro.obs.exporters import (
    json_lines,
    parse_prometheus,
    prometheus_text,
    snapshot,
)
from repro.obs.instruments import Instruments


def make_registry() -> Instruments:
    reg = Instruments()
    reg.counter("repro_x_total", help="Things counted.", broker="b1").inc(3)
    reg.counter("repro_x_total", broker="b2").inc(1)
    reg.gauge("repro_depth", help="A depth.").set(2.5)
    h = reg.histogram("repro_lat", help="Latency.", boundaries=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(10.0)
    return reg


class TestPrometheusText:
    def test_format_shape(self):
        text = prometheus_text(make_registry())
        lines = text.splitlines()
        assert "# HELP repro_x_total Things counted." in lines
        assert "# TYPE repro_x_total counter" in lines
        assert 'repro_x_total{broker="b1"} 3' in lines
        assert 'repro_x_total{broker="b2"} 1' in lines
        assert "# TYPE repro_depth gauge" in lines
        assert "repro_depth 2.5" in lines
        assert "# TYPE repro_lat histogram" in lines
        assert 'repro_lat_bucket{le="0.1"} 1' in lines
        assert 'repro_lat_bucket{le="1"} 2' in lines
        assert 'repro_lat_bucket{le="+Inf"} 3' in lines
        assert "repro_lat_sum 10.55" in lines
        assert "repro_lat_count 3" in lines
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        reg = Instruments()
        reg.counter("c_total", link='a"b\\c\nd').inc()
        text = prometheus_text(reg)
        parsed = parse_prometheus(text)
        (_, labels, value), = parsed["c_total"]["samples"]
        assert labels == {"link": 'a"b\\c\nd'}
        assert value == 1.0

    def test_deterministic_output(self):
        assert prometheus_text(make_registry()) == prometheus_text(make_registry())


class TestParsePrometheus:
    def test_round_trip(self):
        reg = make_registry()
        families = parse_prometheus(prometheus_text(reg))
        assert set(families) == {"repro_x_total", "repro_depth", "repro_lat"}
        assert families["repro_x_total"]["type"] == "counter"
        assert families["repro_x_total"]["help"] == "Things counted."
        values = {
            labels["broker"]: value
            for _, labels, value in families["repro_x_total"]["samples"]
        }
        assert values == {"b1": 3.0, "b2": 1.0}
        # Histogram samples attach to the base family.
        lat = families["repro_lat"]
        names = {name for name, _, _ in lat["samples"]}
        assert names == {"repro_lat_bucket", "repro_lat_sum", "repro_lat_count"}
        inf_bucket = [
            value for name, labels, value in lat["samples"]
            if name == "repro_lat_bucket" and labels.get("le") == "+Inf"
        ]
        assert inf_bucket == [3.0]

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("this_is_a_name_with_no_value\n")


class TestJsonExports:
    def test_snapshot_entries(self):
        entries = snapshot(make_registry())
        by_name = {}
        for entry in entries:
            by_name.setdefault(entry["name"], []).append(entry)
        assert len(by_name["repro_x_total"]) == 2
        (lat,) = by_name["repro_lat"]
        assert lat["count"] == 3
        assert lat["buckets"][-1] == {"le": "+Inf", "count": 3}

    def test_json_lines_parse_and_write(self):
        buffer = io.StringIO()
        text = json_lines(make_registry(), buffer)
        assert buffer.getvalue() == text
        parsed = [json.loads(line) for line in text.splitlines()]
        assert len(parsed) == len(snapshot(make_registry()))
        assert all("name" in entry and "type" in entry for entry in parsed)

    def test_empty_registry(self):
        assert json_lines(Instruments()) == ""
        assert prometheus_text(Instruments()) == "\n"
