"""Fault injections surface on the observability plane.

Every applied fault is recorded in ``system.obs`` twice: the
``repro_faults_injected_total`` counter (labelled by fault kind) and the
structured :class:`~repro.faults.injector.FaultEvent` list — so fault
activity lands in the same snapshot as the protocol counters it perturbs.
"""

from repro.core.config import LivenessParams
from repro.core.ticks import tick_of_time
from repro.faults.injector import FaultEvent, FaultInjector
from repro.topology import two_broker_topology


def build_system(seed: int = 9):
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    return topo.build(seed=seed, params=LivenessParams(gct=0.1, nrt_min=0.3))


def counter_value(obs, name, **labels):
    for entry in obs.snapshot():
        if entry["name"] == name and entry.get("labels", {}) == labels:
            return entry["value"]
    return None


class TestFaultEventObservability:
    def test_injections_count_into_obs_by_kind(self):
        system = build_system()
        injector = FaultInjector(system)

        injector.fail_link("phb", "shb")
        injector.recover_link("phb", "shb")
        injector.crash_broker("phb")
        injector.restart_broker("phb")
        injector.crash_broker("phb")
        injector.restart_broker("phb")

        assert counter_value(
            system.obs, "repro_faults_injected_total", kind="fail_link"
        ) == 1
        assert counter_value(
            system.obs, "repro_faults_injected_total", kind="crash_broker"
        ) == 2
        assert counter_value(
            system.obs, "repro_faults_injected_total", kind="restart_broker"
        ) == 2

    def test_structured_events_reach_obs_in_order(self):
        system = build_system()
        injector = FaultInjector(system)

        injector.at(0.5, lambda: injector.stall_broker("phb"))
        injector.at(1.0, lambda: injector.restart_broker("phb"))
        system.run_until(1.5)

        events = system.obs.fault_events
        assert [e.kind for e in events] == ["stall_broker", "restart_broker"]
        assert all(isinstance(e, FaultEvent) for e in events)
        assert events == injector.events
        for event in events:
            assert event.tick == tick_of_time(event.time)

    def test_fault_counter_appears_in_prometheus_export(self):
        system = build_system()
        injector = FaultInjector(system)
        injector.stall_broker("phb")
        text = system.obs.prometheus()
        assert "repro_faults_injected_total" in text
        assert 'kind="stall_broker"' in text
