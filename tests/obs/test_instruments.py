"""Unit tests for the instrument registry and its children."""

import math

import pytest

from repro.obs.instruments import (
    DEFAULT_BUCKETS,
    NULL_INSTRUMENTS,
    Counter,
    Histogram,
    Instruments,
    NullInstruments,
    ScopedTimer,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("events_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("events_total")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Instruments().gauge("depth")
        g.set(10.0)
        g.inc(3)
        g.dec()
        assert g.value == 12.0


class TestHistogram:
    def test_observe_buckets_cumulatively(self):
        h = Histogram("lat", boundaries=(1.0, 5.0, 10.0))
        for v in (0.5, 1.0, 2.0, 7.0, 100.0):
            h.observe(v)
        # le is an inclusive upper bound (Prometheus semantics).
        assert h.bucket_pairs() == [
            (1.0, 2),
            (5.0, 3),
            (10.0, 4),
            (math.inf, 5),
        ]
        assert h.count == 5
        assert h.sum == pytest.approx(110.5)

    def test_no_per_sample_storage(self):
        h = Histogram("lat", boundaries=(1.0,))
        for i in range(10_000):
            h.observe(float(i))
        # State is exactly the fixed-size buckets plus sum/count.
        assert len(h.counts) == 1
        assert h.count == 10_000

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", boundaries=(5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", boundaries=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_child(self):
        reg = Instruments()
        a = reg.counter("x_total", broker="b1")
        b = reg.counter("x_total", broker="b1")
        assert a is b
        assert len(reg) == 1

    def test_distinct_labels_make_distinct_children(self):
        reg = Instruments()
        a = reg.counter("x_total", broker="b1")
        b = reg.counter("x_total", broker="b2")
        assert a is not b
        a.inc(2)
        b.inc(3)
        assert reg.total("x_total") == 5.0

    def test_kind_conflict_raises(self):
        reg = Instruments()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_label_schema_conflict_raises(self):
        reg = Instruments()
        reg.counter("x_total", broker="b1")
        with pytest.raises(ValueError):
            reg.counter("x_total", link="l1")

    def test_histogram_boundary_mismatch_raises(self):
        reg = Instruments()
        reg.histogram("h", boundaries=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", boundaries=(1.0, 3.0))

    def test_families_sorted_and_get(self):
        reg = Instruments()
        reg.counter("b_total", broker="x")
        reg.gauge("a_gauge")
        assert reg.names() == ["a_gauge", "b_total"]
        assert [name for name, *_ in reg.families()] == ["a_gauge", "b_total"]
        assert reg.get("b_total", broker="x") is not None
        assert reg.get("b_total", broker="y") is None
        assert reg.get("missing") is None

    def test_help_kept_from_first_non_empty(self):
        reg = Instruments()
        reg.counter("x_total")
        reg.counter("x_total", help="late help")
        (_, _, help_text, _), = list(reg.families())
        assert help_text == "late help"


class TestNullInstruments:
    def test_all_instruments_are_shared_noops(self):
        null = NullInstruments()
        c = null.counter("anything", whatever="yes")
        assert c is NULL_INSTRUMENTS.counter("other")
        c.inc()
        c.inc(-5)  # even invalid increments are ignored on the null path
        null.gauge("g").set(3.0)
        null.histogram("h").observe(1.0)
        assert null.names() == []
        assert len(null) == 0


class _FakeAccountant:
    def __init__(self):
        self.charges = []

    def charge(self, cost, category):
        self.charges.append((cost, category))
        return 0.0


class TestScopedTimer:
    def test_times_block_into_histogram(self):
        ticks = iter([10.0, 10.5])
        h = Histogram("t", boundaries=DEFAULT_BUCKETS)
        with ScopedTimer(h, clock=lambda: next(ticks)) as timer:
            pass
        assert timer.elapsed == pytest.approx(0.5)
        assert h.count == 1
        assert h.sum == pytest.approx(0.5)

    def test_charges_accountant_with_model_cost(self):
        ticks = iter([0.0, 0.25])
        acct = _FakeAccountant()
        with ScopedTimer(
            None, accountant=acct, cost=0.001, category="match",
            clock=lambda: next(ticks),
        ):
            pass
        assert acct.charges == [(0.001, "match")]

    def test_charges_accountant_with_elapsed_when_no_cost(self):
        ticks = iter([0.0, 0.25])
        acct = _FakeAccountant()
        with ScopedTimer(None, accountant=acct, clock=lambda: next(ticks)):
            pass
        (cost, category), = acct.charges
        assert cost == pytest.approx(0.25)
        assert category == "misc"
