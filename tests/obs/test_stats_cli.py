"""The ``repro stats`` subcommand and its golden metric catalogue.

The golden file pins the *structure* of the snapshot — family names,
types, and label schemas — not the values, so it survives cost-model
tuning but catches accidentally dropped or renamed instruments.
"""

import json
from pathlib import Path

from repro.cli import main
from repro.obs.exporters import parse_prometheus

GOLDEN = Path(__file__).parent / "golden" / "stats_figure3.txt"


def stats_output(capsys, *extra):
    assert main(["stats", "--topology", "figure3", "--duration", "5", *extra]) == 0
    return capsys.readouterr().out


def structure(families):
    """family -> (type, sorted label-key tuple) for non-derived samples."""
    out = {}
    for name, info in sorted(families.items()):
        label_keys = set()
        for sample_name, labels, _ in info["samples"]:
            label_keys.update(k for k in labels if k != "le")
        out[name] = (info["type"], tuple(sorted(label_keys)))
    return out


class TestStatsCommand:
    def test_emits_valid_prometheus_with_broad_coverage(self, capsys):
        text = stats_output(capsys)
        families = parse_prometheus(text)  # raises on malformed lines
        names = set(families)
        assert len(names) >= 12
        # The snapshot spans all four instrumented layers.
        for prefix in (
            "repro_broker_",
            "repro_pubend_",
            "repro_subend_",
            "repro_network_",
        ):
            assert any(n.startswith(prefix) for n in names), prefix
        # The run actually did something.
        assert families["repro_pubend_publishes_total"]["samples"]
        deliveries = [
            value
            for _, _, value in families["repro_subend_deliveries_total"]["samples"]
        ]
        assert sum(deliveries) > 0

    def test_matches_golden_catalogue(self, capsys):
        text = stats_output(capsys)
        got = structure(parse_prometheus(text))
        want = structure(parse_prometheus(GOLDEN.read_text()))
        assert got == want

    def test_exports_causal_and_detector_gauges(self, capsys):
        """`repro stats` runs under the causal tracer and the online
        anomaly detectors, so the snapshot carries their families."""
        text = stats_output(capsys)
        families = parse_prometheus(text)
        spans = [v for _, _, v in families["repro_causal_spans"]["samples"]]
        assert spans and spans[0] > 0
        open_spans = [
            v for _, _, v in families["repro_causal_open_spans"]["samples"]
        ]
        assert open_spans and 0 <= open_spans[0] <= spans[0]
        assert families["repro_detector_findings_total"]["type"] == "counter"
        finding_labels = {
            labels.get("detector")
            for _, labels, _ in families["repro_detector_findings_total"]["samples"]
        }
        assert {
            "horizon_stall", "retransmission_storm", "silence_violation"
        } <= finding_labels
        for gauge in (
            "repro_detector_horizon_stall_seconds",
            "repro_detector_retransmission_rate",
            "repro_detector_silence_age_seconds",
        ):
            assert families[gauge]["type"] == "gauge", gauge
            assert families[gauge]["samples"], gauge

    def test_json_format(self, capsys):
        assert main(
            ["stats", "--topology", "two_broker", "--duration", "1",
             "--format", "json"]
        ) == 0
        lines = capsys.readouterr().out.splitlines()
        entries = [json.loads(line) for line in lines]
        assert {e["name"] for e in entries} >= {
            "repro_broker_knowledge_sent_total",
            "repro_pubend_publishes_total",
            "repro_network_sent_total",
        }

    def test_drop_flag_produces_nacks(self, capsys):
        text = stats_output(capsys, "--drop", "0.15", "--seed", "11")
        families = parse_prometheus(text)
        nacks = sum(
            value
            for _, _, value in families["repro_broker_nacks_sent_total"]["samples"]
        )
        assert nacks > 0
