"""The ``repro stats`` subcommand and its golden metric catalogue.

The golden file pins the *structure* of the snapshot — family names,
types, and label schemas — not the values, so it survives cost-model
tuning but catches accidentally dropped or renamed instruments.
"""

import json
from pathlib import Path

from repro.cli import main
from repro.obs.exporters import parse_prometheus

GOLDEN = Path(__file__).parent / "golden" / "stats_figure3.txt"


def stats_output(capsys, *extra):
    assert main(["stats", "--topology", "figure3", "--duration", "5", *extra]) == 0
    return capsys.readouterr().out


def structure(families):
    """family -> (type, sorted label-key tuple) for non-derived samples."""
    out = {}
    for name, info in sorted(families.items()):
        label_keys = set()
        for sample_name, labels, _ in info["samples"]:
            label_keys.update(k for k in labels if k != "le")
        out[name] = (info["type"], tuple(sorted(label_keys)))
    return out


class TestStatsCommand:
    def test_emits_valid_prometheus_with_broad_coverage(self, capsys):
        text = stats_output(capsys)
        families = parse_prometheus(text)  # raises on malformed lines
        names = set(families)
        assert len(names) >= 12
        # The snapshot spans all four instrumented layers.
        for prefix in (
            "repro_broker_",
            "repro_pubend_",
            "repro_subend_",
            "repro_network_",
        ):
            assert any(n.startswith(prefix) for n in names), prefix
        # The run actually did something.
        assert families["repro_pubend_publishes_total"]["samples"]
        deliveries = [
            value
            for _, _, value in families["repro_subend_deliveries_total"]["samples"]
        ]
        assert sum(deliveries) > 0

    def test_matches_golden_catalogue(self, capsys):
        text = stats_output(capsys)
        got = structure(parse_prometheus(text))
        want = structure(parse_prometheus(GOLDEN.read_text()))
        assert got == want

    def test_json_format(self, capsys):
        assert main(
            ["stats", "--topology", "two_broker", "--duration", "1",
             "--format", "json"]
        ) == 0
        lines = capsys.readouterr().out.splitlines()
        entries = [json.loads(line) for line in lines]
        assert {e["name"] for e in entries} >= {
            "repro_broker_knowledge_sent_total",
            "repro_pubend_publishes_total",
            "repro_network_sent_total",
        }

    def test_drop_flag_produces_nacks(self, capsys):
        text = stats_output(capsys, "--drop", "0.15", "--seed", "11")
        families = parse_prometheus(text)
        nacks = sum(
            value
            for _, _, value in families["repro_broker_nacks_sent_total"]["samples"]
        )
        assert nacks > 0
