"""Causal span-tree tracing (repro.obs.causal).

The tracer turns lifecycle hook events into one span tree per
publication identity ``(pubend, tick)``; these tests pin the causal
parenting rules (retransmissions under the nack that caused them, flush
sends under the batching timer), the pure-observation guarantee, and the
Chrome-trace export.
"""

import io
import json

from repro.core.config import LivenessParams
from repro.obs.causal import CausalTracer
from repro.topology import two_broker_topology


def traced_run(drop=0.0, seed=3, flush_delay=0.0, until=3.0, tracer_on=True):
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    params = LivenessParams(gct=0.1, nrt_min=0.3, flush_delay=flush_delay)
    system = topo.build(seed=seed, params=params, log_commit_latency=0.01)
    if drop:
        system.network.link("phb", "shb").drop_probability = drop
    tracer = CausalTracer(system).install() if tracer_on else None
    client = system.subscribe("a", "shb", ("P0",))
    pub = system.publisher("P0", rate=50.0)
    pub.start(at=0.1)
    system.run_until(1.0)
    pub.stop()
    system.run_until(until)
    return system, tracer, pub, client


def by_name(spans, name):
    return [s for s in spans if s.name == name]


class TestSpanTree:
    def test_delivery_chains_back_to_publish(self):
        __, tracer, pub, client = traced_run()
        assert client.received
        pubend, tick = "P0", client.received[0][1]
        spans = tracer.spans_for(pubend, tick)
        names = {s.name for s in spans}
        assert {"publish", "ingest", "transit", "deliver"} <= names
        deliver = by_name(spans, "deliver")[0]
        # Walk the causal parent chain from the delivery; it must reach
        # the publish span without leaving the recorded store.
        chain = []
        sid = deliver.sid
        while sid is not None:
            span = tracer.spans[sid]
            chain.append(span.name)
            sid = span.parent
        assert chain[-1] == "publish"
        assert "transit" in chain

    def test_publish_span_closed_by_commit(self):
        __, tracer, pub, __c = traced_run()
        publishes = by_name(tracer.spans, "publish")
        assert len(publishes) == len(pub.published)
        assert all(not s.open for s in publishes)
        # commit latency is 10 ms in this run
        assert all(abs(s.duration() - 0.01) < 1e-9 for s in publishes)

    def test_retransmission_is_child_of_nack_handle(self):
        __, tracer, __p, __c = traced_run(drop=0.2, seed=9, until=4.0)
        retransmits = [
            s
            for s in tracer.spans
            if s.name == "transit" and s.attrs.get("kind") == "retransmit"
        ]
        assert retransmits
        for span in retransmits:
            assert span.parent is not None
            assert tracer.spans[span.parent].name == "nack_handle"
        # ... and the nack_handle chains to the nack_send that carried the
        # curiosity, which chains to the subend's nack decision.
        handle = tracer.spans[retransmits[0].parent]
        assert handle.parent is not None
        send = tracer.spans[handle.parent]
        assert send.name == "nack_send"
        assert send.parent is not None
        assert tracer.spans[send.parent].name == "nack"

    def test_flush_send_is_child_of_flush_timer(self):
        __, tracer, __p, __c = traced_run(flush_delay=0.05, until=4.0)
        flush_sends = [
            s
            for s in tracer.spans
            if s.name == "transit" and s.attrs.get("kind") == "flush"
        ]
        assert flush_sends
        for span in flush_sends:
            assert span.parent is not None
            parent = tracer.spans[span.parent]
            assert parent.name == "flush_timer"
            assert parent.attrs.get("sent") is True
            # The timer span covers defer -> flush.
            assert parent.duration() is not None and parent.duration() > 0

    def test_lost_message_leaves_open_transit(self):
        __, tracer, __p, __c = traced_run(drop=0.3, seed=5, until=4.0)
        open_transits = [
            s for s in tracer.spans if s.name == "transit" and s.open
        ]
        assert open_transits  # dropped envelopes never close their hop span
        assert tracer.open_span_count() >= len(open_transits)


class TestPureObservation:
    def test_tracing_does_not_change_deliveries(self):
        def deliveries(tracer_on):
            __, __t, __p, client = traced_run(
                drop=0.15, seed=11, until=4.0, tracer_on=tracer_on
            )
            return [(p, t) for (p, t, __, ___) in client.received]

        assert deliveries(False) == deliveries(True)

    def test_timeline_is_deterministic(self):
        __, t1, __p, c1 = traced_run(drop=0.1, seed=4)
        __, t2, __p2, __c2 = traced_run(drop=0.1, seed=4)
        assert len(t1.spans) == len(t2.spans)
        tick = c1.received[0][1]
        assert t1.render_timeline("P0", tick) == t2.render_timeline("P0", tick)


class TestChromeExport:
    def test_export_is_loadable_and_complete(self):
        __, tracer, __p, __c = traced_run(drop=0.1, seed=4)
        out = io.StringIO()
        count = tracer.export_chrome(out)
        trace = json.loads(out.getvalue())
        events = trace["traceEvents"]
        assert count == len(events)
        phases = {e["ph"] for e in events}
        assert "X" in phases  # spans
        assert "M" in phases  # process/thread names
        assert "s" in phases and "f" in phases  # causal flow arrows
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == len(tracer.spans)
        # every span event sits on a named process lane
        pids = {
            e["pid"] for e in events if e.get("name") == "process_name"
        }
        assert all(e["pid"] in pids for e in spans)
        assert all(e["dur"] >= 1.0 for e in spans)
