"""Tests for predicate covering and subscription summarization, including
the soundness property: covers(g, s) implies g matches whenever s does."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.ast import (
    And,
    Comparison,
    Exists,
    FalseP,
    Not,
    Or,
    TrueP,
    predicate_from_wire,
    predicate_to_wire,
)
from repro.matching.covering import covers, summarize_subscriptions
from repro.matching.events import Event
from repro.matching.parser import parse


class TestCovers:
    @pytest.mark.parametrize(
        "general,specific",
        [
            ("true", "a = 1"),
            ("a > 5", "a > 10"),
            ("a > 5", "a >= 6"),
            ("a >= 5", "a > 5"),
            ("a < 10", "a < 5"),
            ("a <= 10", "a = 7"),
            ("a > 5", "a = 7"),
            ("a != 3", "a = 4"),
            ("a != 3", "a > 3"),
            ("a != 3", "a < 3"),
            ("exists a", "a = 1"),
            ("exists a", "a > 0"),
            ("a = 1", "a = 1 and b = 2"),
            ("a = 1 and b = 2", "b = 2 and a = 1 and c = 3"),
            ("a = 1 or b = 2", "b = 2"),
            ("sym = 'IBM'", "sym = 'IBM' and price > 100"),
            ("a = 1 or b = 2", "a = 1 and c = 9"),
        ],
    )
    def test_positive_cases(self, general, specific):
        assert covers(parse(general), parse(specific))

    @pytest.mark.parametrize(
        "general,specific",
        [
            ("a = 1", "true"),
            ("a > 10", "a > 5"),
            ("a = 1", "a = 2"),
            ("a = 1", "b = 1"),
            ("a = 1 and b = 2", "a = 1"),
            ("a != 3", "a != 4"),
            ("a > 5", "a != 3"),
            ("exists a", "b = 1"),
            ("a = 1", "a = 1 or b = 2"),
            ("a = 1", "a = true"),  # bool vs int type fidelity
        ],
    )
    def test_negative_cases(self, general, specific):
        assert not covers(parse(general), parse(specific))

    def test_false_is_covered_by_anything(self):
        assert covers(parse("a = 1"), FalseP())

    def test_unsupported_shapes_fall_back_to_equality(self):
        negation = Not(Comparison("a", "=", 1))
        assert covers(negation, negation)
        assert not covers(negation, parse("a = 2"))


class TestCoversEdgeCases:
    def test_equality_is_type_faithful_across_numeric_types(self):
        # 1 == 1.0 in Python, but `a = 1` must not claim to cover
        # `a = 1.0`: type fidelity is part of the subscription contract.
        assert not covers(parse("a = 1"), parse("a = 1.0"))

    def test_incomparable_bound_types_are_not_proven(self):
        # A numeric bound can't be ordered against a string bound; the
        # check must fall back to "not proven", never raise.
        assert not covers(parse("a > 1"), parse("a > 'z'"))
        assert not covers(parse("a < 'z'"), parse("a < 1"))

    def test_string_bounds_order_lexicographically(self):
        assert covers(parse("s < 'm'"), parse("s < 'a'"))
        assert not covers(parse("s < 'a'"), parse("s < 'm'"))

    def test_strict_versus_inclusive_upper_bounds(self):
        assert covers(parse("a <= 5"), parse("a < 5"))
        assert not covers(parse("a < 5"), parse("a <= 5"))

    def test_inclusive_bound_does_not_prove_inequality(self):
        # a >= 3 admits a = 3, so it cannot prove a != 3 ...
        assert not covers(parse("a != 3"), parse("a >= 3"))
        # ... but a >= 4 strictly excludes 3.
        assert covers(parse("a != 3"), parse("a >= 4"))

    def test_inequality_implies_presence(self):
        # `a != 3` only matches events that carry `a` (missing attributes
        # collapse to false), so existence is implied.
        assert covers(parse("exists a"), parse("a != 3"))

    def test_unsatisfiable_specific_is_covered(self):
        # `a = 1 and a = 2` matches nothing, so any general predicate
        # covers it soundly.
        assert covers(parse("a = 1"), parse("a = 1 and a = 2"))

    def test_disjunction_on_both_sides(self):
        # Proven when a single general disjunct covers the whole
        # specific disjunction ...
        assert covers(parse("a > 0 or b > 0"), parse("a > 1 or a > 2"))
        # ... but not when each specific disjunct needs a *different*
        # general disjunct: the check tries general terms one at a time
        # (incomplete, still sound — False only means "not proven").
        assert not covers(parse("a > 0 or b > 0"), parse("a > 1 or b > 1"))

    def test_tightest_bound_wins_in_a_conjunction(self):
        # The specific's effective lower bound is the tightest one.
        assert covers(parse("a > 5"), parse("a > 2 and a > 7"))
        assert not covers(parse("a > 5"), parse("a > 2 and a > 4"))


# --- soundness property: covers => implication on all events -------------------

attr_names = st.sampled_from(["a", "b"])
scalar = st.one_of(st.integers(-3, 3), st.sampled_from(["x", "y"]))
comparison = st.builds(
    Comparison,
    attr=attr_names,
    op=st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    value=scalar,
)
leaf = st.one_of(comparison, st.builds(Exists, attr=attr_names), st.just(TrueP()))
conjunction = st.one_of(
    leaf,
    st.builds(lambda a, b: And((a, b)), leaf, leaf),
    st.builds(lambda a, b, c: And((a, b, c)), leaf, leaf, leaf),
)
predicates = st.one_of(
    conjunction, st.builds(lambda a, b: Or((a, b)), conjunction, conjunction)
)
events = st.dictionaries(attr_names, scalar, max_size=2).map(Event)


class TestSoundness:
    @given(predicates, predicates, st.lists(events, max_size=10))
    @settings(max_examples=400, deadline=None)
    def test_covers_implies_implication(self, general, specific, evts):
        if covers(general, specific):
            for event in evts:
                if specific.evaluate(event):
                    assert general.evaluate(event), (general, specific, event)


class TestSummarize:
    def test_empty_population(self):
        assert summarize_subscriptions([]) == FalseP()

    def test_covered_members_dropped(self):
        summary = summarize_subscriptions(
            [parse("a > 5"), parse("a > 10"), parse("a = 7")]
        )
        assert summary == parse("a > 5")

    def test_true_absorbs_everything(self):
        summary = summarize_subscriptions([parse("a = 1"), TrueP()])
        assert summary == TrueP()

    def test_union_of_disjoint(self):
        summary = summarize_subscriptions([parse("a = 1"), parse("a = 2")])
        assert summary.evaluate({"a": 1})
        assert summary.evaluate({"a": 2})
        assert not summary.evaluate({"a": 3})

    def test_later_broad_predicate_evicts_earlier(self):
        summary = summarize_subscriptions([parse("a > 10"), parse("a > 5")])
        assert summary == parse("a > 5")

    def test_size_cap_falls_back_to_match_all(self):
        population = [parse(f"g = {i}") for i in range(100)]
        summary = summarize_subscriptions(population, max_terms=10)
        assert summary == TrueP()

    def test_summary_never_loses_a_match(self):
        population = [parse("a = 1 and b = 2"), parse("a = 3"), parse("b > 9")]
        summary = summarize_subscriptions(population)
        for attrs in ({"a": 1, "b": 2}, {"a": 3}, {"b": 10}, {"a": 3, "b": 0}):
            event = Event(attrs)
            if any(p.evaluate(event) for p in population):
                assert summary.evaluate(event), attrs


class TestPredicateWire:
    @given(predicates)
    @settings(max_examples=200)
    def test_round_trip(self, predicate):
        import json

        wire = json.loads(json.dumps(predicate_to_wire(predicate)))
        assert predicate_from_wire(wire) == predicate

    def test_not_round_trip(self):
        predicate = Not(Or((Comparison("a", "=", 1), Exists("b"))))
        assert predicate_from_wire(predicate_to_wire(predicate)) == predicate

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            predicate_from_wire(["quantum"])
