"""Unit and differential tests for the matching engines.

The IndexedMatcher must agree with BruteForceMatcher on every input —
verified exhaustively on hand-picked corner cases and via hypothesis over
generated subscription sets and events.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.ast import And, Comparison, Exists, Not, Or, TrueP
from repro.matching.engine import BruteForceMatcher, IndexedMatcher
from repro.matching.events import Event
from repro.matching.parser import parse


def both_matchers(subs):
    brute, indexed = BruteForceMatcher(), IndexedMatcher()
    for sub_id, predicate in subs.items():
        brute.add(sub_id, predicate)
        indexed.add(sub_id, predicate)
    return brute, indexed


class TestBasicMatching:
    def test_equality_index(self):
        brute, indexed = both_matchers(
            {f"s{i}": parse(f"group = {i}") for i in range(100)}
        )
        event = Event({"group": 42})
        assert indexed.match(event) == brute.match(event) == {"s42"}

    def test_range_index(self):
        brute, indexed = both_matchers(
            {
                "low": parse("p < 10"),
                "mid": parse("p >= 10 and p <= 20"),
                "high": parse("p > 20"),
                "edge": parse("p >= 20"),
            }
        )
        for p in (5, 10, 15, 20, 21):
            event = Event({"p": p})
            assert indexed.match(event) == brute.match(event)

    def test_conjunction_requires_all_terms(self):
        __, indexed = both_matchers({"s": parse("Loc = 'NY' and p > 3")})
        assert indexed.match(Event({"Loc": "NY", "p": 4})) == {"s"}
        assert indexed.match(Event({"Loc": "NY", "p": 2})) == set()
        assert indexed.match(Event({"Loc": "NY"})) == set()

    def test_match_all_subscription(self):
        __, indexed = both_matchers({"all": TrueP()})
        assert indexed.match(Event({"x": 1})) == {"all"}
        assert indexed.match(Event({})) == {"all"}

    def test_fallback_for_or(self):
        brute, indexed = both_matchers({"s": parse("a = 1 or b = 2")})
        for attrs in ({"a": 1}, {"b": 2}, {"a": 2, "b": 3}):
            event = Event(attrs)
            assert indexed.match(event) == brute.match(event)

    def test_fallback_for_not(self):
        brute, indexed = both_matchers({"s": parse("not a = 1")})
        for attrs in ({"a": 1}, {"a": 2}, {}):
            event = Event(attrs)
            assert indexed.match(event) == brute.match(event)

    def test_exists(self):
        __, indexed = both_matchers({"s": parse("exists vol")})
        assert indexed.match(Event({"vol": 0})) == {"s"}
        assert indexed.match(Event({"p": 1})) == set()

    def test_ne_index(self):
        __, indexed = both_matchers({"s": parse("a != 5")})
        assert indexed.match(Event({"a": 4})) == {"s"}
        assert indexed.match(Event({"a": 5})) == set()
        assert indexed.match(Event({})) == set()  # missing attr never matches

    def test_bool_equality_has_type_fidelity(self):
        __, indexed = both_matchers({"s": parse("flag = true")})
        assert indexed.match(Event({"flag": True})) == {"s"}
        assert indexed.match(Event({"flag": 1})) == set()

    def test_string_range(self):
        brute, indexed = both_matchers({"s": parse("name >= 'm'")})
        for name in ("alpha", "m", "zebra"):
            event = Event({"name": name})
            assert indexed.match(event) == brute.match(event)

    def test_mixed_type_attribute_values(self):
        brute, indexed = both_matchers({"s": parse("v > 5")})
        assert indexed.match(Event({"v": "zzz"})) == brute.match(Event({"v": "zzz"})) == set()


class TestMutation:
    def test_remove_subscription(self):
        __, indexed = both_matchers({"a": parse("x = 1"), "b": parse("x = 1")})
        indexed.remove("a")
        assert indexed.match(Event({"x": 1})) == {"b"}
        assert len(indexed) == 1

    def test_re_add_replaces(self):
        indexed = IndexedMatcher()
        indexed.add("s", parse("x = 1"))
        indexed.add("s", parse("x = 2"))
        assert indexed.match(Event({"x": 1})) == set()
        assert indexed.match(Event({"x": 2})) == {"s"}

    def test_remove_fallback_subscription(self):
        indexed = IndexedMatcher()
        indexed.add("s", parse("a = 1 or b = 2"))
        indexed.remove("s")
        assert indexed.match(Event({"a": 1})) == set()

    def test_remove_unknown_is_noop(self):
        indexed = IndexedMatcher()
        indexed.remove("ghost")
        assert len(indexed) == 0


# --- hypothesis differential test --------------------------------------------

attr_names = st.sampled_from(["a", "b", "c", "d"])
scalar = st.one_of(
    st.integers(-5, 5),
    st.sampled_from(["x", "y", "z"]),
    st.booleans(),
    st.floats(-5, 5, allow_nan=False),
)
comparison = st.builds(
    Comparison,
    attr=attr_names,
    op=st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    value=scalar,
)
leaf = st.one_of(comparison, st.builds(Exists, attr=attr_names), st.just(TrueP()))


def predicates(depth=2):
    if depth == 0:
        return leaf
    sub = predicates(depth - 1)
    return st.one_of(
        leaf,
        st.builds(lambda a, b: And((a, b)), sub, sub),
        st.builds(lambda a, b: Or((a, b)), sub, sub),
        st.builds(Not, sub),
    )


events = st.dictionaries(attr_names, scalar, max_size=4).map(Event)


class TestDifferential:
    @given(st.lists(predicates(), min_size=0, max_size=12), st.lists(events, max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_indexed_equals_brute_force(self, preds, evts):
        subs = {f"s{i}": p for i, p in enumerate(preds)}
        brute, indexed = both_matchers(subs)
        for event in evts:
            assert indexed.match(event) == brute.match(event)


class TestMatchCache:
    def test_repeat_match_hits_cache_with_equal_result(self):
        indexed = IndexedMatcher(cache_size=8)
        indexed.add("s", parse("group = 7"))
        event = Event({"group": 7, "price": 3})
        first = indexed.match(event)
        second = indexed.match(Event({"group": 7, "price": 3}))
        assert first == second == {"s"}
        assert indexed.cache_misses == 1
        assert indexed.cache_hits == 1

    def test_add_invalidates_cache(self):
        indexed = IndexedMatcher(cache_size=8)
        indexed.add("a", parse("x = 1"))
        event = Event({"x": 1})
        assert indexed.match(event) == {"a"}
        indexed.add("b", parse("x = 1"))
        assert indexed.match(event) == {"a", "b"}

    def test_remove_invalidates_cache(self):
        indexed = IndexedMatcher(cache_size=8)
        indexed.add("a", parse("x = 1"))
        indexed.add("b", parse("x = 1"))
        event = Event({"x": 1})
        assert indexed.match(event) == {"a", "b"}
        indexed.remove("a")
        assert indexed.match(event) == {"b"}

    def test_cached_result_is_a_private_copy(self):
        indexed = IndexedMatcher(cache_size=8)
        indexed.add("s", parse("x = 1"))
        event = Event({"x": 1})
        indexed.match(event).add("poison")
        assert indexed.match(event) == {"s"}

    def test_signature_distinguishes_true_from_one(self):
        # Event({"flag": True}) and Event({"flag": 1}) must never share a
        # cache entry, exactly as the eq index keeps them apart.
        indexed = IndexedMatcher(cache_size=8)
        indexed.add("s", parse("flag = true"))
        assert indexed.match(Event({"flag": True})) == {"s"}
        assert indexed.match(Event({"flag": 1})) == set()
        assert indexed.match(Event({"flag": True})) == {"s"}
        assert indexed.cache_misses == 2

    def test_cache_size_zero_disables_caching(self):
        indexed = IndexedMatcher(cache_size=0)
        indexed.add("s", parse("x = 1"))
        for __ in range(3):
            assert indexed.match(Event({"x": 1})) == {"s"}
        assert indexed.cache_hits == 0
        assert indexed.cache_misses == 0

    def test_lru_eviction_bounds_cache(self):
        indexed = IndexedMatcher(cache_size=4)
        indexed.add("s", parse("x = 1"))
        for i in range(20):
            indexed.match(Event({"x": i}))
        assert len(indexed._cache) <= 4
        # The most recent entry is still warm ...
        indexed.match(Event({"x": 19}))
        assert indexed.cache_hits == 1
        # ... but the oldest was evicted.
        indexed.match(Event({"x": 0}))
        assert indexed.cache_misses == 21

    def test_unhashable_attribute_value_bypasses_cache(self):
        # Event() rejects non-scalar values, but match() accepts any
        # mapping; the cache layer must shrug off unhashable values
        # instead of raising, and simply skip memoization.
        indexed = IndexedMatcher(cache_size=8)
        indexed.add("s", parse("x = 1"))
        weird = {"x": 1, "blob": [1, 2]}
        assert indexed.match(weird) == {"s"}
        assert indexed.match(weird) == {"s"}
        assert indexed.cache_hits == 0
        assert len(indexed._cache) == 0

    @given(
        st.lists(predicates(), min_size=1, max_size=8),
        st.lists(events, min_size=1, max_size=10),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_cached_matcher_equals_brute_force_under_churn(
        self, preds, evts, data
    ):
        # Interleave match calls with add/remove churn; the cached matcher
        # must track the brute-force reference at every step.
        brute, cached = BruteForceMatcher(), IndexedMatcher(cache_size=4)
        live = {}
        for i, p in enumerate(preds):
            live[f"s{i}"] = p
            brute.add(f"s{i}", p)
            cached.add(f"s{i}", p)
        for event in evts:
            # Match twice so warm cache entries are also compared.
            assert cached.match(event) == brute.match(event)
            assert cached.match(event) == brute.match(event)
            action = data.draw(st.sampled_from(["none", "remove", "re_add"]))
            if action == "remove" and live:
                victim = data.draw(st.sampled_from(sorted(live)))
                del live[victim]
                brute.remove(victim)
                cached.remove(victim)
            elif action == "re_add" and preds:
                sub_id = f"s{data.draw(st.integers(0, len(preds) - 1))}"
                predicate = data.draw(st.sampled_from(preds))
                live[sub_id] = predicate
                brute.remove(sub_id)
                brute.add(sub_id, predicate)
                cached.add(sub_id, predicate)
