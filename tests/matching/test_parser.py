"""Unit tests for the subscription language parser."""

import pytest

from repro.matching.ast import And, Comparison, Exists, FalseP, Not, Or, TrueP
from repro.matching.parser import ParseError, parse


class TestAtoms:
    def test_equality(self):
        assert parse("Loc = 'NY'") == Comparison("Loc", "=", "NY")

    def test_numbers(self):
        assert parse("p > 3") == Comparison("p", ">", 3)
        assert parse("p <= 2.5") == Comparison("p", "<=", 2.5)
        assert parse("p < -4") == Comparison("p", "<", -4)
        assert parse("p = 1e3") == Comparison("p", "=", 1000.0)

    def test_booleans(self):
        assert parse("flag = true") == Comparison("flag", "=", True)
        assert parse("flag != false") == Comparison("flag", "!=", False)

    def test_string_escaping(self):
        assert parse("s = 'it''s'") == Comparison("s", "=", "it's")

    def test_exists(self):
        assert parse("exists volume") == Exists("volume")

    def test_constants(self):
        assert parse("true") == TrueP()
        assert parse("false") == FalseP()

    def test_empty_is_match_all(self):
        assert parse("") == TrueP()
        assert parse("   ") == TrueP()

    def test_dotted_identifiers(self):
        assert parse("order.price > 10") == Comparison("order.price", ">", 10)


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        pred = parse("a = 1 or b = 2 and c = 3")
        assert isinstance(pred, Or)
        assert pred.terms[0] == Comparison("a", "=", 1)
        assert isinstance(pred.terms[1], And)

    def test_parentheses_override(self):
        pred = parse("(a = 1 or b = 2) and c = 3")
        assert isinstance(pred, And)
        assert isinstance(pred.terms[0], Or)

    def test_not_binds_tightest(self):
        pred = parse("not a = 1 and b = 2")
        assert isinstance(pred, And)
        assert isinstance(pred.terms[0], Not)

    def test_nested_not(self):
        pred = parse("not not a = 1")
        assert pred == Not(Not(Comparison("a", "=", 1)))

    def test_keywords_case_insensitive(self):
        assert parse("a = 1 AND b = 2") == parse("a = 1 and b = 2")
        assert parse("NOT a = 1") == parse("not a = 1")

    def test_paper_example(self):
        """Figure 1's subscription: Loc = 'NY' and p > 3."""
        pred = parse("Loc = 'NY' and p > 3")
        assert pred.evaluate({"Loc": "NY", "p": 4})
        assert not pred.evaluate({"Loc": "NY", "p": 3})
        assert not pred.evaluate({"Loc": "SF", "p": 4})


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "a =",
            "= 3",
            "a = 1 and",
            "(a = 1",
            "a = 1)",
            "a ~ 1",
            "a = 'unterminated",
            "exists",
            "a = 1 b = 2",
        ],
    )
    def test_bad_input_raises(self, text):
        with pytest.raises(ParseError):
            parse(text)

    def test_error_carries_position(self):
        try:
            parse("a = 1 and ???")
        except ParseError as exc:
            assert exc.position > 0
        else:  # pragma: no cover
            pytest.fail("expected ParseError")


# --- render → parse round trip ------------------------------------------------
#
# AST nodes promise (see repro.matching.ast) that str(node) parses back to
# an equal AST.  Random predicates are built through conjoin/disjoin so the
# generated trees stay in the parser's canonical shape (the renderer
# flattens directly-nested same-connective terms, exactly like the
# combinators do).

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.matching.ast import conjoin, disjoin  # noqa: E402

_KEYWORDS = {"and", "or", "not", "true", "false", "exists"}

identifiers = st.from_regex(
    r"[A-Za-z_][A-Za-z0-9_.]{0,10}", fullmatch=True
).filter(lambda name: name.lower() not in _KEYWORDS)
literals = st.one_of(
    st.integers(-(10**6), 10**6),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.text(max_size=12),
)
leaves = st.one_of(
    st.builds(
        Comparison,
        attr=identifiers,
        op=st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        value=literals,
    ),
    st.builds(Exists, attr=identifiers),
    st.just(TrueP()),
    st.just(FalseP()),
)
rendered_predicates = st.recursive(
    leaves,
    lambda children: st.one_of(
        st.lists(children, min_size=2, max_size=3).map(lambda ts: conjoin(*ts)),
        st.lists(children, min_size=2, max_size=3).map(lambda ts: disjoin(*ts)),
        children.map(Not),
    ),
    max_leaves=8,
)


class TestRenderParseRoundTrip:
    @given(rendered_predicates)
    @settings(max_examples=400, deadline=None)
    def test_round_trip(self, predicate):
        assert parse(str(predicate)) == predicate

    @given(rendered_predicates)
    @settings(max_examples=100, deadline=None)
    def test_rendering_is_stable(self, predicate):
        # Rendering the reparsed AST must reproduce the same string —
        # str() is a canonical form, not just parseable output.
        assert str(parse(str(predicate))) == str(predicate)

    @pytest.mark.parametrize(
        "value",
        ["", "it's", "''", "a 'quoted' b", "line\nbreak", "ünïcødé"],
    )
    def test_string_literal_round_trip(self, value):
        predicate = Comparison("s", "=", value)
        assert parse(str(predicate)) == predicate

    @pytest.mark.parametrize("value", [1e-5, 1e16, -0.5, 5e-324, 2.0])
    def test_float_literal_round_trip(self, value):
        predicate = Comparison("p", "<", value)
        assert parse(str(predicate)) == predicate

    @pytest.mark.parametrize(
        "name", ["Anderson", "order", "not_x", "existsX", "TRUEISH", "a.b.c"]
    )
    def test_keyword_prefixed_identifiers_survive(self, name):
        predicate = Exists(name)
        assert parse(str(predicate)) == predicate
