"""Unit tests for the subscription language parser."""

import pytest

from repro.matching.ast import And, Comparison, Exists, FalseP, Not, Or, TrueP
from repro.matching.parser import ParseError, parse


class TestAtoms:
    def test_equality(self):
        assert parse("Loc = 'NY'") == Comparison("Loc", "=", "NY")

    def test_numbers(self):
        assert parse("p > 3") == Comparison("p", ">", 3)
        assert parse("p <= 2.5") == Comparison("p", "<=", 2.5)
        assert parse("p < -4") == Comparison("p", "<", -4)
        assert parse("p = 1e3") == Comparison("p", "=", 1000.0)

    def test_booleans(self):
        assert parse("flag = true") == Comparison("flag", "=", True)
        assert parse("flag != false") == Comparison("flag", "!=", False)

    def test_string_escaping(self):
        assert parse("s = 'it''s'") == Comparison("s", "=", "it's")

    def test_exists(self):
        assert parse("exists volume") == Exists("volume")

    def test_constants(self):
        assert parse("true") == TrueP()
        assert parse("false") == FalseP()

    def test_empty_is_match_all(self):
        assert parse("") == TrueP()
        assert parse("   ") == TrueP()

    def test_dotted_identifiers(self):
        assert parse("order.price > 10") == Comparison("order.price", ">", 10)


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        pred = parse("a = 1 or b = 2 and c = 3")
        assert isinstance(pred, Or)
        assert pred.terms[0] == Comparison("a", "=", 1)
        assert isinstance(pred.terms[1], And)

    def test_parentheses_override(self):
        pred = parse("(a = 1 or b = 2) and c = 3")
        assert isinstance(pred, And)
        assert isinstance(pred.terms[0], Or)

    def test_not_binds_tightest(self):
        pred = parse("not a = 1 and b = 2")
        assert isinstance(pred, And)
        assert isinstance(pred.terms[0], Not)

    def test_nested_not(self):
        pred = parse("not not a = 1")
        assert pred == Not(Not(Comparison("a", "=", 1)))

    def test_keywords_case_insensitive(self):
        assert parse("a = 1 AND b = 2") == parse("a = 1 and b = 2")
        assert parse("NOT a = 1") == parse("not a = 1")

    def test_paper_example(self):
        """Figure 1's subscription: Loc = 'NY' and p > 3."""
        pred = parse("Loc = 'NY' and p > 3")
        assert pred.evaluate({"Loc": "NY", "p": 4})
        assert not pred.evaluate({"Loc": "NY", "p": 3})
        assert not pred.evaluate({"Loc": "SF", "p": 4})


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "a =",
            "= 3",
            "a = 1 and",
            "(a = 1",
            "a = 1)",
            "a ~ 1",
            "a = 'unterminated",
            "exists",
            "a = 1 b = 2",
        ],
    )
    def test_bad_input_raises(self, text):
        with pytest.raises(ParseError):
            parse(text)

    def test_error_carries_position(self):
        try:
            parse("a = 1 and ???")
        except ParseError as exc:
            assert exc.position > 0
        else:  # pragma: no cover
            pytest.fail("expected ParseError")
