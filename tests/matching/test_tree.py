"""Tests for the PODC '99 parallel matching tree, including differential
testing against the brute-force matcher."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.engine import BruteForceMatcher
from repro.matching.events import Event
from repro.matching.parser import parse
from repro.matching.tree import MatchingTree


def both(subs):
    brute, tree = BruteForceMatcher(), MatchingTree()
    for sub_id, predicate in subs.items():
        brute.add(sub_id, predicate)
        tree.add(sub_id, predicate)
    return brute, tree


class TestBasics:
    def test_single_equality(self):
        __, tree = both({"s": parse("topic = 'sports'")})
        assert tree.match(Event({"topic": "sports"})) == {"s"}
        assert tree.match(Event({"topic": "news"})) == set()
        assert tree.match(Event({})) == set()

    def test_conjunction_of_equalities(self):
        __, tree = both({"s": parse("a = 1 and b = 2")})
        assert tree.match(Event({"a": 1, "b": 2})) == {"s"}
        assert tree.match(Event({"a": 1, "b": 3})) == set()
        assert tree.match(Event({"a": 1})) == set()

    def test_dont_care_edges(self):
        """A subscription not testing an attribute matches any value."""
        __, tree = both(
            {
                "ab": parse("a = 1 and b = 2"),
                "a_only": parse("a = 1"),
                "b_only": parse("b = 2"),
                "all": parse("true"),
            }
        )
        assert tree.match(Event({"a": 1, "b": 2})) == {"ab", "a_only", "b_only", "all"}
        assert tree.match(Event({"a": 1, "b": 9})) == {"a_only", "all"}
        assert tree.match(Event({"b": 2})) == {"b_only", "all"}
        assert tree.match(Event({"c": 7})) == {"all"}

    def test_residual_range_terms(self):
        __, tree = both({"s": parse("sym = 'IBM' and price > 100")})
        assert tree.match(Event({"sym": "IBM", "price": 101})) == {"s"}
        assert tree.match(Event({"sym": "IBM", "price": 99})) == set()

    def test_fallback_for_disjunction(self):
        __, tree = both({"s": parse("a = 1 or b = 2")})
        assert tree.match(Event({"b": 2})) == {"s"}

    def test_duplicate_attribute_equalities(self):
        """a = 1 and a = 2 can never match (second test is residual)."""
        __, tree = both({"s": parse("a = 1 and a = 2")})
        assert tree.match(Event({"a": 1})) == set()
        assert tree.match(Event({"a": 2})) == set()

    def test_bool_vs_int_edges(self):
        __, tree = both({"b": parse("f = true"), "n": parse("f = 1")})
        assert tree.match(Event({"f": True})) == {"b"}
        assert tree.match(Event({"f": 1})) == {"n"}

    def test_shared_prefix_structure(self):
        tree = MatchingTree()
        for i in range(50):
            tree.add(f"s{i}", parse(f"topic = 'sports' and team = {i}"))
        # one root level (topic) + one team level: 50 leaves but only a
        # few dozen internal nodes, not 50 independent chains.
        assert tree.depth() == 2
        assert tree.node_count() <= 2 + 1 + 50 + 2


class TestMutation:
    def test_remove(self):
        __, tree = both({"a": parse("x = 1"), "b": parse("x = 1")})
        tree.remove("a")
        assert tree.match(Event({"x": 1})) == {"b"}
        assert len(tree) == 1

    def test_re_add_replaces(self):
        tree = MatchingTree()
        tree.add("s", parse("x = 1"))
        tree.add("s", parse("x = 2"))
        assert tree.match(Event({"x": 1})) == set()
        assert tree.match(Event({"x": 2})) == {"s"}

    def test_attribute_introduced_later(self):
        """Subscriptions added before an attribute existed keep matching."""
        tree = MatchingTree()
        tree.add("old", parse("a = 1"))
        tree.add("new", parse("a = 1 and b = 2 and c = 3"))
        assert tree.match(Event({"a": 1})) == {"old"}
        assert tree.match(Event({"a": 1, "b": 2, "c": 3})) == {"old", "new"}


# --- differential -------------------------------------------------------------

from repro.matching.ast import And, Comparison, Exists, Not, Or, TrueP

attr_names = st.sampled_from(["a", "b", "c", "d"])
scalar = st.one_of(
    st.integers(-3, 3), st.sampled_from(["x", "y"]), st.booleans()
)
comparison = st.builds(
    Comparison,
    attr=attr_names,
    op=st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    value=scalar,
)
leaf = st.one_of(comparison, st.builds(Exists, attr=attr_names), st.just(TrueP()))
compound = st.one_of(
    leaf,
    st.builds(lambda a, b: And((a, b)), leaf, leaf),
    st.builds(lambda a, b: And((a, b)), leaf, st.builds(lambda x, y: And((x, y)), leaf, leaf)),
    st.builds(lambda a, b: Or((a, b)), leaf, leaf),
    st.builds(Not, leaf),
)
events = st.dictionaries(attr_names, scalar, max_size=4).map(Event)


class TestDifferential:
    @given(st.lists(compound, max_size=15), st.lists(events, max_size=8))
    @settings(max_examples=250, deadline=None)
    def test_tree_equals_brute_force(self, predicates, evts):
        subs = {f"s{i}": p for i, p in enumerate(predicates)}
        brute, tree = both(subs)
        for event in evts:
            assert tree.match(event) == brute.match(event)

    @given(
        st.lists(compound, min_size=4, max_size=12),
        st.lists(st.integers(0, 11), max_size=4),
        st.lists(events, max_size=6),
    )
    @settings(max_examples=120, deadline=None)
    def test_tree_after_removals(self, predicates, removals, evts):
        subs = {f"s{i}": p for i, p in enumerate(predicates)}
        brute, tree = both(subs)
        for index in removals:
            brute.remove(f"s{index}")
            tree.remove(f"s{index}")
        for event in evts:
            assert tree.match(event) == brute.match(event)
