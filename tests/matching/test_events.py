"""Unit tests for the event model."""

import pytest

from repro.matching.events import Event


class TestEvent:
    def test_mapping_interface(self):
        e = Event({"a": 1, "b": "x"})
        assert e["a"] == 1
        assert "b" in e
        assert "c" not in e
        assert len(e) == 2
        assert set(e) == {"a", "b"}

    def test_get_attr(self):
        e = Event({"a": 1})
        assert e.get_attr("a") == 1
        assert e.get_attr("zz") is None

    def test_rejects_bad_attribute_types(self):
        with pytest.raises(TypeError):
            Event({"a": [1, 2]})
        with pytest.raises(TypeError):
            Event({1: "x"})

    def test_equality_and_hash(self):
        a = Event({"x": 1}, body="b")
        b = Event({"x": 1}, body="b")
        c = Event({"x": 2}, body="b")
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not an event"

    def test_body(self):
        assert Event({}, body="payload").body == "payload"
        assert Event({}).body is None

    def test_wire_round_trip(self):
        e = Event({"a": 1, "f": 2.5, "s": "x", "b": True}, body="data")
        assert Event.from_wire(e.to_wire()) == e

    def test_wire_without_body(self):
        e = Event({"a": 1})
        wire = e.to_wire()
        assert "b" not in wire
        assert Event.from_wire(wire) == e

    def test_coerce(self):
        e = Event({"a": 1})
        assert Event.coerce(e) is e
        assert Event.coerce({"a": 1}) == e
        assert Event.coerce(e.to_wire()) == e
        assert Event.coerce("raw") is None
        assert Event.coerce({"a": [1]}) is None

    def test_immutability_of_source_dict(self):
        source = {"a": 1}
        e = Event(source)
        source["a"] = 99
        assert e["a"] == 1
