"""Unit tests for the predicate AST."""

import pytest

from repro.matching.ast import (
    And,
    Comparison,
    Exists,
    FalseP,
    Not,
    Or,
    TrueP,
    conjoin,
    disjoin,
)
from repro.matching.events import Event


EVENT = Event({"Loc": "NY", "p": 5, "active": True, "name": "trade"})


class TestComparison:
    def test_equality(self):
        assert Comparison("Loc", "=", "NY").evaluate(EVENT)
        assert not Comparison("Loc", "=", "SF").evaluate(EVENT)

    def test_inequality(self):
        assert Comparison("Loc", "!=", "SF").evaluate(EVENT)
        assert not Comparison("Loc", "!=", "NY").evaluate(EVENT)

    def test_ordering(self):
        assert Comparison("p", ">", 3).evaluate(EVENT)
        assert Comparison("p", ">=", 5).evaluate(EVENT)
        assert Comparison("p", "<", 6).evaluate(EVENT)
        assert Comparison("p", "<=", 5).evaluate(EVENT)
        assert not Comparison("p", ">", 5).evaluate(EVENT)

    def test_missing_attribute_is_false(self):
        assert not Comparison("volume", ">", 0).evaluate(EVENT)
        assert not Comparison("volume", "=", 0).evaluate(EVENT)
        assert not Comparison("volume", "!=", 0).evaluate(EVENT)

    def test_type_mismatch_is_false(self):
        assert not Comparison("Loc", ">", 3).evaluate(EVENT)
        assert not Comparison("p", "=", "5").evaluate(EVENT)

    def test_bool_does_not_equal_int(self):
        assert Comparison("active", "=", True).evaluate(EVENT)
        assert not Comparison("active", "=", 1).evaluate(EVENT)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison("p", "~", 3)

    def test_string_ordering(self):
        assert Comparison("name", ">", "apple").evaluate(EVENT)


class TestConnectives:
    def test_exists(self):
        assert Exists("Loc").evaluate(EVENT)
        assert not Exists("volume").evaluate(EVENT)

    def test_and(self):
        pred = And((Comparison("Loc", "=", "NY"), Comparison("p", ">", 3)))
        assert pred.evaluate(EVENT)
        pred2 = And((Comparison("Loc", "=", "NY"), Comparison("p", ">", 10)))
        assert not pred2.evaluate(EVENT)

    def test_and_requires_two_terms(self):
        with pytest.raises(ValueError):
            And((TrueP(),))

    def test_or(self):
        pred = Or((Comparison("Loc", "=", "SF"), Comparison("p", ">", 3)))
        assert pred.evaluate(EVENT)

    def test_not(self):
        assert Not(Comparison("Loc", "=", "SF")).evaluate(EVENT)
        assert not Not(TrueP()).evaluate(EVENT)

    def test_constants(self):
        assert TrueP().evaluate(EVENT)
        assert not FalseP().evaluate(EVENT)

    def test_attributes_collected(self):
        pred = And((Comparison("a", "=", 1), Or((Exists("b"), Comparison("c", "<", 2)))))
        assert pred.attributes() == {"a", "b", "c"}

    def test_callable_interface_rejects_non_mapping(self):
        assert not Comparison("p", ">", 0)("a string payload")

    def test_callable_interface_accepts_event_and_dict(self):
        pred = Comparison("p", ">", 3)
        assert pred(EVENT)
        assert pred({"p": 4})


class TestComposition:
    def test_conjoin_flattens(self):
        pred = conjoin(
            Comparison("a", "=", 1),
            And((Comparison("b", "=", 2), Comparison("c", "=", 3))),
        )
        assert isinstance(pred, And)
        assert len(pred.terms) == 3

    def test_conjoin_drops_true(self):
        pred = conjoin(TrueP(), Comparison("a", "=", 1))
        assert pred == Comparison("a", "=", 1)

    def test_conjoin_short_circuits_false(self):
        assert conjoin(Comparison("a", "=", 1), FalseP()) == FalseP()

    def test_conjoin_empty_is_true(self):
        assert conjoin() == TrueP()

    def test_disjoin_flattens(self):
        pred = disjoin(
            Comparison("a", "=", 1),
            Or((Comparison("b", "=", 2), Comparison("c", "=", 3))),
        )
        assert isinstance(pred, Or)
        assert len(pred.terms) == 3

    def test_disjoin_short_circuits_true(self):
        assert disjoin(FalseP(), TrueP()) == TrueP()

    def test_disjoin_empty_is_false(self):
        assert disjoin() == FalseP()

    def test_path_predicate_semantics(self):
        """Section 2.3: subscription = OR over paths of AND along path."""
        path1 = conjoin(Comparison("Loc", "=", "NY"), Comparison("p", ">", 3))
        path2 = conjoin(Comparison("Loc", "=", "SF"), Comparison("p", ">", 3))
        subscription = disjoin(path1, path2)
        assert subscription.evaluate(EVENT)
        assert not subscription.evaluate(Event({"Loc": "LA", "p": 5}))


class TestStringRoundTrip:
    def test_str_parses_back(self):
        from repro.matching.parser import parse

        predicates = [
            Comparison("p", ">", 3),
            Comparison("Loc", "=", "NY"),
            Comparison("s", "=", "it''s"),
            And((Comparison("a", "=", 1), Comparison("b", "<=", 2.5))),
            Or((Comparison("a", "=", 1), Comparison("b", "!=", True))),
            Not(Comparison("a", "=", 1)),
            Exists("x"),
            TrueP(),
            FalseP(),
        ]
        for predicate in predicates:
            assert parse(str(predicate)) == predicate, str(predicate)
