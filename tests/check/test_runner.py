"""The fuzz harness: bit-for-bit determinism, verdicts, repro files."""

import json

from repro.check import (
    ORACLES,
    fuzz,
    generate,
    load_repro,
    run_scenario,
    run_seed,
    scenario_seed,
    write_repro,
)

# A seed whose scenario runs quickly and passes (stays stable because
# generation is deterministic).
PASS_SEED = scenario_seed(42, 0)


class TestDeterminism:
    def test_same_seed_bit_identical_digest(self):
        first = run_seed(PASS_SEED)
        second = run_seed(PASS_SEED)
        assert first.digest == second.digest
        assert first.published == second.published
        assert first.delivered == second.delivered
        assert first.fault_log == second.fault_log

    def test_different_seeds_different_digests(self):
        a = run_seed(scenario_seed(42, 0))
        b = run_seed(scenario_seed(42, 1))
        assert a.digest != b.digest


class TestVerdicts:
    def test_clean_scenario_passes_all_oracles(self):
        result = run_seed(PASS_SEED)
        assert result.ok, result.failures
        assert result.oracles_failed == []
        assert result.sweeps > 0  # the continuous oracles actually ran
        assert result.published > 0
        assert result.delivered > 0

    def test_disable_recovery_ablation_is_caught(self):
        # With curiosity, nacks and AET all disabled, ambient drops become
        # permanent losses; the oracle suite must notice.
        scenario = generate(PASS_SEED).with_(
            disable_recovery=True, drop_probability=0.08
        )
        result = run_scenario(scenario)
        assert not result.ok
        assert set(result.oracles_failed) <= set(ORACLES)

    def test_fuzz_campaign_reports_runs(self):
        report = fuzz(base_seed=42, runs=3, shrink_failures=False)
        assert report.runs == 3
        assert report.ok
        assert report.elapsed > 0


class TestReproFiles:
    def test_write_and_load_round_trip(self, tmp_path):
        scenario = generate(PASS_SEED)
        result = run_scenario(scenario)
        path = write_repro(
            scenario, result, directory=str(tmp_path), stem="round-trip"
        )
        loaded, expect = load_repro(path)
        assert loaded == scenario
        assert expect == ("pass" if result.ok else "fail")

    def test_repro_file_is_stable_json(self, tmp_path):
        scenario = generate(PASS_SEED)
        path = write_repro(scenario, directory=str(tmp_path), stem="stable")
        with open(path) as handle:
            obj = json.load(handle)
        assert obj["scenario"]["seed"] == PASS_SEED
        assert obj["expect"] in ("pass", "fail")
