"""Tests for the differential sim↔asyncio conformance harness.

The fast half exercises the pure machinery — workload budgeting,
parameter scaling, transport normalization, repro serialization, and the
comparison relation on hand-built outcomes.  The slow half actually runs
both stacks: a trunk-agreement smoke and the deliberate-mutation
self-test that proves the harness *can* see a divergence (a harness that
never fires is indistinguishable from a broken one).
"""

import asyncio
import math
from collections import Counter

import pytest

from repro.check.conformance import (
    DEFAULT_TIME_SCALE,
    StackOutcome,
    compare_outcomes,
    load_conformance_repro,
    message_counts,
    normalize_for_transport,
    publisher_start,
    run_conformance,
    write_conformance_repro,
)
from repro.check.scenario import (
    FaultSpec,
    PublisherSpec,
    Scenario,
    SubscriberSpec,
    generate,
    scenario_seed,
)
from repro.core.config import INFINITY, LivenessParams


def tiny_scenario(**overrides):
    base = dict(
        seed=7,
        topology="two_broker",
        drop_probability=0.0,
        flush_delay=0.01,
        publish_until=1.2,
        drain_until=4.0,
        pubends=("P0",),
        publishers=(PublisherSpec(pubend="P0", rate=25.0, modulus=2),),
        subscribers=(
            SubscriberSpec(
                subscriber="c1",
                broker="shb",
                pubends=("P0",),
                predicate=None,
                total_order=False,
            ),
        ),
        faults=(),
    )
    base.update(overrides)
    return Scenario(**base)


def outcome(stack, seqs=(0, 1, 2), **overrides):
    """An internally consistent StackOutcome for tiny_scenario."""
    pairs = {("P0", seq) for seq in seqs}
    fields = dict(
        stack=stack,
        published={"P0": list(seqs)},
        attempts={"P0": len(seqs)},
        delivered={"c1": set(pairs)},
        failures=[],
        converged={"P0": True},
        committed=Counter({pair: 1 for pair in pairs}),
        lifecycle_delivered=Counter({("c1",) + pair: 1 for pair in pairs}),
    )
    fields.update(overrides)
    return StackOutcome(**fields)


class TestWorkloadBudget:
    def test_message_counts_follow_rate_and_window(self):
        scenario = tiny_scenario(publish_until=2.0)
        window = 2.0 - publisher_start(0)
        assert message_counts(scenario) == {"P0": int(25.0 * window)}

    def test_message_counts_floor_at_one(self):
        scenario = tiny_scenario(
            publish_until=0.001,
            publishers=(PublisherSpec(pubend="P0", rate=1.0, modulus=2),),
        )
        assert message_counts(scenario) == {"P0": 1}

    def test_publisher_starts_are_staggered_and_deterministic(self):
        starts = [publisher_start(i) for i in range(3)]
        assert starts == sorted(starts)
        assert len(set(starts)) == 3
        assert starts == [publisher_start(i) for i in range(3)]


class TestTransportNormalization:
    def test_local_is_identity(self):
        scenario = tiny_scenario(drop_probability=0.2)
        assert normalize_for_transport(scenario, "local") is scenario

    def test_tcp_strips_wire_loss(self):
        scenario = tiny_scenario(
            drop_probability=0.2,
            jitter=0.05,
            faults=(
                FaultSpec(kind="drop_burst", target=("phb", "shb"), at=1.0,
                          duration=0.5, intensity=0.5),
                FaultSpec(kind="crash", target=("phb",), at=1.0, duration=0.5),
            ),
        )
        clean = normalize_for_transport(scenario, "tcp")
        assert clean.drop_probability == 0.0
        assert clean.jitter == 0.0
        assert [fault.kind for fault in clean.faults] == ["crash"]


class TestComparisonRelation:
    def test_identical_outcomes_conform(self):
        scenario = tiny_scenario()
        assert compare_outcomes(scenario, outcome("sim"), outcome("aio")) == []

    def test_stack_failures_are_prefixed(self):
        scenario = tiny_scenario()
        aio = outcome("aio", failures=["oracle: boom"])
        lines = compare_outcomes(scenario, outcome("sim"), aio)
        assert lines == ["[aio] oracle: boom"]

    def test_attempt_budget_violation_is_flagged(self):
        scenario = tiny_scenario()
        aio = outcome("aio", attempts={"P0": 5})
        lines = compare_outcomes(scenario, outcome("sim"), aio)
        assert any("count budget" in line for line in lines)

    def test_missing_delivery_diverges_on_both_axes(self):
        scenario = tiny_scenario()
        aio = outcome("aio")
        aio.delivered["c1"].discard(("P0", 1))
        lines = compare_outcomes(scenario, outcome("sim"), aio)
        assert any("never delivered" in line and "[aio]" in line
                   for line in lines)
        assert any("stacks disagree" in line for line in lines)

    def test_publication_difference_is_tolerated(self):
        # The sim published seq 3, the aio stack's attempt for it failed
        # mid-fault: each stack is exactly-once against its own record,
        # and the cross-stack delivery difference is fully explained by
        # the publication difference.
        scenario = tiny_scenario()
        sim = outcome("sim", seqs=(0, 1, 2, 3))
        aio = outcome("aio", seqs=(0, 1, 2), attempts={"P0": 4})
        sim.attempts = {"P0": 4}
        assert compare_outcomes(scenario, sim, aio) == []

    def test_non_matching_delivery_is_flagged(self):
        scenario = tiny_scenario(
            subscribers=(
                SubscriberSpec(subscriber="c1", broker="shb",
                               pubends=("P0",), predicate="g = 0",
                               total_order=False),
            ),
        )
        sim = outcome("sim", seqs=(0, 1, 2))
        sim.delivered["c1"] = {("P0", 0), ("P0", 2)}
        sim.lifecycle_delivered = Counter(
            {("c1", "P0", 0): 1, ("c1", "P0", 2): 1}
        )
        aio = outcome("aio", seqs=(0, 1, 2))
        aio.delivered["c1"] = {("P0", 0), ("P0", 1), ("P0", 2)}
        aio.lifecycle_delivered = Counter(
            {("c1", "P0", 0): 1, ("c1", "P0", 1): 1, ("c1", "P0", 2): 1}
        )
        lines = compare_outcomes(scenario, sim, aio)
        assert any("non-matching" in line and "[aio]" in line
                   for line in lines)

    def test_commit_undercount_is_tolerated(self):
        # A crash inside the log's commit-latency window loses the
        # committed *event* while the append survives — not a divergence.
        scenario = tiny_scenario()
        sim = outcome("sim")
        del sim.committed[("P0", 1)]
        assert compare_outcomes(scenario, sim, outcome("aio")) == []

    def test_phantom_commit_is_a_divergence(self):
        scenario = tiny_scenario()
        sim = outcome("sim")
        sim.committed[("P0", 99)] = 1
        lines = compare_outcomes(scenario, sim, outcome("aio"))
        assert any("absent from the publish record" in line
                   for line in lines)

    def test_duplicate_commit_event_is_a_divergence(self):
        scenario = tiny_scenario()
        aio = outcome("aio")
        aio.committed[("P0", 0)] = 2
        lines = compare_outcomes(scenario, outcome("sim"), aio)
        assert any("duplicate commit" in line and "[aio]" in line
                   for line in lines)

    def test_duplicate_delivery_event_is_a_divergence(self):
        scenario = tiny_scenario()
        aio = outcome("aio")
        aio.lifecycle_delivered[("c1", "P0", 0)] = 2
        lines = compare_outcomes(scenario, outcome("sim"), aio)
        assert any("non-exactly-once delivery" in line for line in lines)

    def test_delivered_events_must_match_client_records(self):
        scenario = tiny_scenario()
        sim = outcome("sim")
        del sim.lifecycle_delivered[("c1", "P0", 2)]
        lines = compare_outcomes(scenario, sim, outcome("aio"))
        assert any("client records" in line and "[sim]" in line
                   for line in lines)

    def test_residual_doubt_is_a_divergence(self):
        scenario = tiny_scenario()
        aio = outcome("aio", converged={"P0": False})
        lines = compare_outcomes(scenario, outcome("sim"), aio)
        assert any("residual doubt" in line and "[aio]" in line
                   for line in lines)


class TestReproFiles:
    def test_round_trip(self, tmp_path):
        scenario = tiny_scenario()
        path = write_conformance_repro(
            scenario, directory=str(tmp_path), stem="case"
        )
        loaded, expect, options = load_conformance_repro(path)
        assert loaded == scenario
        assert expect == "diverge"  # no result recorded → assume divergent
        assert options["transport"] == "local"
        assert options["time_scale"] == DEFAULT_TIME_SCALE
        assert options["mutations"] == ()

    def test_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "repro-conform/99", "scenario": {}}')
        with pytest.raises(ValueError, match="format"):
            load_conformance_repro(str(path))

    def test_rejects_bad_expectation(self, tmp_path):
        scenario = tiny_scenario()
        path = write_conformance_repro(
            scenario, directory=str(tmp_path), stem="case"
        )
        text = (tmp_path / "case.json").read_text()
        (tmp_path / "case.json").write_text(
            text.replace('"diverge"', '"maybe"')
        )
        with pytest.raises(ValueError, match="expect"):
            load_conformance_repro(str(path))


class TestMutationRegistry:
    def test_unknown_mutation_is_rejected(self):
        from repro.aio.runtime import AioSystem
        from repro.aio.transport import LocalTransport
        from repro.topology import two_broker_topology

        topo = two_broker_topology()
        topo.pubend("P0", "phb")
        topo.route("P0", "PHB", "SHB")

        async def build():
            AioSystem(
                topo,
                params=LivenessParams(gct=0.05, nrt_min=0.1, dct=math.inf),
                transport=LocalTransport(seed=1),
                mutations=("drop-everything",),
            )

        with pytest.raises(ValueError, match="drop-everything"):
            asyncio.run(build())


@pytest.mark.slow
class TestDifferentialRuns:
    def test_trunk_agrees_on_a_generated_scenario(self):
        result = run_conformance(generate(scenario_seed(0, 0)))
        assert result.ok, result.divergences
        assert result.sim.attempts == result.aio.attempts
        assert not result.aio.mutated

    def test_suppressed_retransmissions_are_detected(self, tmp_path):
        """The self-test: with retransmissions deliberately suppressed in
        the aio path and a lossy wire, the aio stack must lose matching
        deliveries and the harness must say so."""
        scenario = tiny_scenario(drop_probability=0.3, seed=7)
        result = run_conformance(scenario, mutations=("suppress-retransmit",))
        assert not result.ok
        assert result.aio.mutated["suppress-retransmit"] > 0
        assert any("[aio]" in line and "never delivered" in line
                   for line in result.divergences)
        # The divergence persists as a replayable repro.
        path = write_conformance_repro(
            scenario, result, directory=str(tmp_path), stem="mutant"
        )
        loaded, expect, options = load_conformance_repro(path)
        assert loaded == scenario
        assert expect == "diverge"
        assert options["mutations"] == ("suppress-retransmit",)


def test_scale_params_skips_infinities():
    from repro.check.conformance import _scale_params

    params = LivenessParams(gct=0.1, nrt_min=0.3, aet=3.0, dct=INFINITY)
    scaled = _scale_params(params, 0.5)
    assert scaled.gct == pytest.approx(0.05)
    assert scaled.nrt_min == pytest.approx(0.15)
    assert scaled.aet == pytest.approx(1.5)
    assert scaled.dct == INFINITY
