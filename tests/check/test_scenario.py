"""Scenario generation and serialization: determinism and fairness."""

import json

from repro.check import (
    FORMAT,
    FaultSpec,
    Scenario,
    build_topology,
    generate,
    scenario_seed,
)

SEEDS = [scenario_seed(7, i) for i in range(20)]


class TestGeneration:
    def test_same_seed_same_scenario(self):
        for seed in SEEDS[:5]:
            assert generate(seed) == generate(seed)

    def test_different_seeds_differ(self):
        scenarios = [generate(seed) for seed in SEEDS]
        assert len({s.to_json() for s in scenarios}) > 1

    def test_scenario_seed_is_deterministic_and_mixed(self):
        assert scenario_seed(7, 3) == scenario_seed(7, 3)
        assert scenario_seed(7, 3) != scenario_seed(7, 4)
        assert scenario_seed(7, 3) != scenario_seed(8, 3)

    def test_faults_heal_before_the_drain_ends(self):
        # Fairness: every fault is healed with slack before the drain
        # deadline, so a failing run is a protocol bug, not an unfair
        # schedule.
        for seed in SEEDS:
            scenario = generate(seed)
            for fault in scenario.faults:
                assert fault.healed_at <= scenario.publish_until + 3.0 + 1e-9

    def test_shb_brokers_are_never_crashed(self):
        # Crashing an SHB voids its subscriptions (outside the paper's
        # failure model), so generated schedules must never do it.
        for seed in SEEDS:
            scenario = generate(seed)
            meta = build_topology(scenario)
            shbs = set(meta.shb_brokers)
            for fault in scenario.faults:
                if fault.kind in ("crash", "stall_crash", "stall_restart"):
                    assert fault.target[0] not in shbs

    def test_fault_targets_exist_in_the_topology(self):
        for seed in SEEDS:
            scenario = generate(seed)
            meta = build_topology(scenario)
            links = {frozenset(pair) for pair in meta.links}
            for fault in scenario.faults:
                if len(fault.target) == 2:
                    assert frozenset(fault.target) in links
                else:
                    assert fault.target[0] in meta.crashable_brokers


class TestSerialization:
    def test_json_round_trip(self):
        for seed in SEEDS[:10]:
            scenario = generate(seed)
            again = Scenario.from_json(scenario.to_json())
            assert again == scenario

    def test_format_marker(self):
        scenario = generate(SEEDS[0])
        obj = json.loads(scenario.to_json())
        assert obj["format"] == FORMAT

    def test_with_replaces_fields(self):
        scenario = generate(SEEDS[0])
        ablated = scenario.with_(disable_recovery=True, faults=())
        assert ablated.disable_recovery
        assert ablated.faults == ()
        assert ablated.seed == scenario.seed
        assert not scenario.disable_recovery  # original untouched

    def test_disable_recovery_params(self):
        scenario = generate(SEEDS[0]).with_(disable_recovery=True)
        params = scenario.params()
        assert params.gct == float("inf")
        assert params.aet == float("inf")

    def test_fault_spec_round_trip(self):
        fault = FaultSpec(
            kind="stall_crash", target=("b1",), at=1.5, duration=2.0, stall=0.5
        )
        scenario = generate(SEEDS[0]).with_(faults=(fault,))
        again = Scenario.from_json(scenario.to_json())
        assert again.faults == (fault,)
