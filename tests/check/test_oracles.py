"""The oracle suite catches violations and stays quiet on healthy runs."""

import pytest

from repro.check import ORACLES, OracleFailure, OracleSuite
from repro.core.config import LivenessParams
from repro.topology import two_broker_topology


def build_system(seed=11, **params):
    defaults = dict(gct=0.1, nrt_min=0.3)
    defaults.update(params)
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    return topo.build(seed=seed, params=LivenessParams(**defaults))


class TestHealthyRun:
    def test_no_failures_on_a_lossy_but_recovering_run(self):
        system = build_system()
        system.network.link("phb", "shb").drop_probability = 0.1
        system.subscribe("c", "shb", ("P0",))
        publisher = system.publisher("P0", rate=100.0)
        publisher.start(at=0.1)
        suite = OracleSuite(system, [publisher])
        suite.install()
        system.scheduler.call_at(2.0, publisher.stop)
        system.run_until(8.0)  # raises OracleFailure on violation
        assert suite.final_check([publisher]) == []
        assert suite.sweeps > 10

    def test_install_is_idempotent(self):
        system = build_system()
        suite = OracleSuite(system)
        suite.install()
        suite.install()
        system.run_until(1.0)
        first = suite.sweeps
        assert first == pytest.approx(1.0 / suite.check_interval, abs=2)


class TestViolationsAreCaught:
    def test_truncation_oracle_fires_when_recovery_is_disabled(self):
        # gct/aet disabled: a dropped message is never re-fetched, but the
        # pubend still consolidates acks over paths that saw only silence
        # and finality — eventually truncating data a subscriber needs.
        system = build_system(gct=float("inf"), aet=float("inf"))
        system.network.link("phb", "shb").drop_probability = 0.25
        system.subscribe("c", "shb", ("P0",))
        publisher = system.publisher("P0", rate=100.0)
        publisher.start(at=0.1)
        suite = OracleSuite(system, [publisher])
        suite.install()
        system.scheduler.call_at(2.0, publisher.stop)
        try:
            system.run_until(8.0)
            failures = suite.final_check([publisher])
        except OracleFailure as exc:
            failures = [exc]
        assert failures, "losses must be caught by at least one oracle"
        assert all(f.oracle in ORACLES for f in failures)

    def test_final_check_reports_missing_deliveries(self):
        system = build_system()
        client = system.subscribe("c", "shb", ("P0",))
        publisher = system.publisher("P0", rate=50.0)
        publisher.start(at=0.1)
        suite = OracleSuite(system, [publisher])
        system.scheduler.call_at(1.0, publisher.stop)
        system.run_until(4.0)
        # Forge a loss: drop one delivered record from the client's view.
        assert client.received
        pubend, tick, _, __ = client.received[0]
        client.received.pop(0)
        client._seen.discard((pubend, tick))
        failures = suite.final_check([publisher])
        assert any(f.oracle == "exactly-once" for f in failures)

    def test_oracle_failure_is_an_assertion_error(self):
        failure = OracleFailure("exactly-once", "boom")
        assert isinstance(failure, AssertionError)
        assert failure.oracle == "exactly-once"
        assert "[exactly-once]" in str(failure)


class TestOracleNames:
    def test_oracle_registry_is_complete(self):
        assert set(ORACLES) == {
            "delivery-safety",
            "knowledge-monotonic",
            "subend-horizon-monotonic",
            "truncation-safety",
            "stream-invariants",
            "exactly-once",
            "total-order",
        }
