"""Shrinking: minimized scenarios still fail, and passing ones are kept."""

from repro.check import (
    ShrinkStats,
    generate,
    run_scenario,
    scenario_seed,
    shrink,
)

PASS_SEED = scenario_seed(42, 0)


def failing_scenario():
    """A deterministic failure: ambient drops with recovery disabled."""
    return generate(PASS_SEED).with_(disable_recovery=True, drop_probability=0.08)


class TestShrinkFailing:
    def test_result_still_fails_and_is_no_larger(self):
        scenario = failing_scenario()
        stats = ShrinkStats()
        small, result = shrink(scenario, run_scenario, stats=stats)
        assert not result.ok
        assert len(small.faults) <= len(scenario.faults)
        assert len(small.subscribers) <= len(scenario.subscribers)
        assert stats.accepted >= 1  # something actually simplified
        assert "shrunk from seed" in (small.note or "")

    def test_shrunk_scenario_replays_to_the_same_verdict(self):
        small, result = shrink(failing_scenario(), run_scenario)
        replay = run_scenario(small)
        assert not replay.ok
        assert replay.digest == result.digest  # deterministic repro

    def test_budget_bounds_the_search(self):
        stats = ShrinkStats()
        shrink(failing_scenario(), run_scenario, max_runs=3, stats=stats)
        assert stats.attempts <= 3

    def test_memoization_skips_duplicate_candidates(self):
        # Different structural passes can propose the same candidate (e.g.
        # dropping the only fault vs. dropping the whole schedule); the
        # memo must collapse them instead of re-running.
        fault = generate(PASS_SEED).faults
        scenario = failing_scenario()
        if not scenario.faults:
            scenario = scenario.with_(faults=fault[:1])
        stats = ShrinkStats()
        shrink(scenario, run_scenario, stats=stats)
        assert stats.skipped >= 1


class TestShrinkPassing:
    def test_passing_scenario_returned_unchanged_after_one_run(self):
        scenario = generate(PASS_SEED)
        stats = ShrinkStats()
        small, result = shrink(scenario, run_scenario, stats=stats)
        assert result.ok
        assert small == scenario
        assert stats.attempts == 1
