"""Unit tests for workload generators."""

import pytest

from repro.matching.events import Event
from repro.workloads import (
    bursty_rate,
    group_partition,
    market_ticks,
    subscription_population,
    zipf_symbols,
)


class TestGroupPartition:
    def test_round_robin(self):
        make = group_partition(4)
        assert [make(i)["group"] for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_rejects_zero_groups(self):
        with pytest.raises(ValueError):
            group_partition(0)


class TestZipf:
    def test_skew_favors_head(self):
        make = zipf_symbols(["A", "B", "C", "D"], s=1.2, seed=1)
        counts = {}
        for i in range(2000):
            symbol = make(i)["symbol"]
            counts[symbol] = counts.get(symbol, 0) + 1
        assert counts["A"] > counts["D"] * 2

    def test_deterministic(self):
        a = zipf_symbols(["A", "B"], seed=5)
        b = zipf_symbols(["A", "B"], seed=5)
        assert [a(i) for i in range(50)] == [b(i) for i in range(50)]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_symbols([])


class TestMarketTicks:
    def test_schema(self):
        make = market_ticks(["IBM", "ACME"], seed=2)
        event = Event(make(0))
        assert set(event) == {"symbol", "price", "volume", "side"}
        assert event["symbol"] in ("IBM", "ACME")
        assert event["price"] > 0
        assert event["side"] in ("buy", "sell")

    def test_prices_random_walk(self):
        make = market_ticks(["IBM"], volatility=0.05, seed=2)
        prices = [make(i)["price"] for i in range(100)]
        assert len(set(prices)) > 50  # actually moving


class TestBurstyRate:
    def test_profile(self):
        rate = bursty_rate(base_rate=10, burst_rate=100, burst_every=1.0, burst_length=0.2)
        assert rate(0.1) == 100
        assert rate(0.5) == 10
        assert rate(1.1) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            bursty_rate(0, 1, 1, 0.1)


class TestSubscriptionPopulation:
    def test_mix_and_determinism(self):
        a = subscription_population(100, ["IBM", "ACME"], seed=3)
        b = subscription_population(100, ["IBM", "ACME"], seed=3)
        assert [s.predicate for s in a] == [s.predicate for s in b]
        assert len({s.sub_id for s in a}) == 100

    def test_predicates_evaluate(self):
        population = subscription_population(50, ["IBM"], seed=3)
        make = market_ticks(["IBM"], seed=4)
        event = Event(make(0))
        for spec in population:
            spec.predicate.evaluate(event)  # no exceptions

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            subscription_population(10, ["A"], equality_fraction=0.8, range_fraction=0.5)
