"""Unit tests for the topology builder and canned networks."""

import pytest

from repro.broker.engine import stable_hash
from repro.topology import (
    Topology,
    balanced_pubend_names,
    figure3_topology,
    two_broker_topology,
)


class TestDeclaration:
    def test_duplicate_cell_rejected(self):
        topo = Topology().cell("A", "a1")
        with pytest.raises(ValueError):
            topo.cell("A", "a2")

    def test_broker_in_two_cells_rejected(self):
        topo = Topology().cell("A", "x")
        with pytest.raises(ValueError):
            topo.cell("B", "x")

    def test_empty_cell_rejected(self):
        with pytest.raises(ValueError):
            Topology().cell("A")

    def test_duplicate_pubend_rejected(self):
        topo = Topology().cell("A", "a1").pubend("P", "a1")
        with pytest.raises(ValueError):
            topo.pubend("P", "a1")


class TestRouteComputation:
    def make(self):
        topo = Topology()
        topo.cell("ROOT", "r")
        topo.cell("MID", "m1", "m2")
        topo.cell("LEAF1", "l1")
        topo.cell("LEAF2", "l2")
        topo.link("r", "m1").link("r", "m2").link("m1", "m2")
        topo.link("m1", "l1").link("m2", "l1").link("m1", "l2").link("m2", "l2")
        topo.pubend("P", "r")
        topo.route("P", "ROOT", "MID")
        topo.route("P", "MID", "LEAF1")
        topo.route("P", "MID", "LEAF2")
        return topo

    def test_root_route(self):
        system = self.make().build()
        info = system.brokers["r"].topo
        route = info.routes["P"]
        assert route.upstream_cell is None
        assert set(route.downstream) == {"MID"}
        assert route.subtree["MID"] == frozenset({"LEAF1", "LEAF2"})

    def test_mid_route_shared_by_cell_members(self):
        system = self.make().build()
        for broker_id in ("m1", "m2"):
            route = system.brokers[broker_id].topo.routes["P"]
            assert route.upstream_cell == "ROOT"
            assert set(route.downstream) == {"LEAF1", "LEAF2"}

    def test_leaf_route(self):
        system = self.make().build()
        route = system.brokers["l1"].topo.routes["P"]
        assert route.upstream_cell == "MID"
        assert route.downstream == {}

    def test_peers(self):
        system = self.make().build()
        assert system.brokers["m1"].topo.peers() == ("m2",)
        assert system.brokers["r"].topo.peers() == ()

    def test_pubend_hosted_at_root(self):
        system = self.make().build()
        assert "P" in system.brokers["r"].engine.pubends
        assert system.pubend_hosts["P"] == "r"

    def test_pubend_slots_distinct(self):
        topo = self.make()
        topo.pubend("Q", "r")
        topo.route("Q", "ROOT", "MID")
        system = topo.build()
        slots = {
            pid: pb.slot
            for pid, pb in system.brokers["r"].engine.pubends.items()
        }
        assert slots["P"] != slots["Q"]


class TestCannedTopologies:
    def test_two_broker(self):
        topo = two_broker_topology()
        topo.pubend("P0", "phb").route("P0", "PHB", "SHB")
        system = topo.build()
        assert set(system.brokers) == {"phb", "shb"}
        assert system.network.has_link("phb", "shb")

    def test_figure3_shape(self):
        system = figure3_topology().build()
        assert len(system.brokers) == 10
        net = system.network
        # p1 connects to all four intermediates
        assert net.neighbors("p1") == ["b1", "b2", "b3", "b4"]
        # cell-internal links
        assert net.has_link("b1", "b2")
        assert net.has_link("b3", "b4")
        # SHB bundles
        for s in ("s1", "s2"):
            assert net.neighbors(s) == ["b1", "b2"]
        for s in ("s3", "s4", "s5"):
            assert net.neighbors(s) == ["b3", "b4"]

    def test_figure3_routes(self):
        system = figure3_topology(n_pubends=1).build()
        b1_route = system.brokers["b1"].topo.routes["P0"]
        assert b1_route.upstream_cell == "PHB"
        assert set(b1_route.downstream) == {"SHB1", "SHB2"}
        b3_route = system.brokers["b3"].topo.routes["P0"]
        assert set(b3_route.downstream) == {"SHB3", "SHB4", "SHB5"}
        p1_route = system.brokers["p1"].topo.routes["P0"]
        assert p1_route.subtree["IB1"] == frozenset({"SHB1", "SHB2"})

    def test_balanced_pubend_names(self):
        names = balanced_pubend_names(4)
        parities = [stable_hash(n) % 2 for n in names]
        assert sorted(parities) == [0, 0, 1, 1]
        assert parities[0] != parities[1]  # alternating

    def test_balanced_names_wider_bundle(self):
        names = balanced_pubend_names(6, bundle_width=3)
        residues = [stable_hash(n) % 3 for n in names]
        assert sorted(residues) == [0, 0, 1, 1, 2, 2]


class TestSystemHelpers:
    def test_subscribe_parses_string_predicates(self):
        topo = two_broker_topology()
        topo.pubend("P0", "phb").route("P0", "PHB", "SHB")
        system = topo.build()
        system.subscribe("a", "shb", ("P0",), "x > 3")
        predicate = system.subscriptions["a"].predicate
        assert predicate({"x": 4})
        assert not predicate({"x": 3})

    def test_run_until_is_monotone(self):
        topo = two_broker_topology()
        topo.pubend("P0", "phb").route("P0", "PHB", "SHB")
        system = topo.build()
        system.run_until(1.0)
        assert system.now == 1.0
        system.run_for(0.5)
        assert system.now == 1.5
