"""Unit tests for the work-unit CPU model."""

import pytest

from repro.metrics.cpu import CostModel, CpuAccountant


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestCpuAccountant:
    def test_charge_accumulates_busy_time(self):
        clock = FakeClock()
        acct = CpuAccountant(clock)
        acct.charge(0.5)
        acct.charge(0.25)
        assert acct.busy_time == pytest.approx(0.75)

    def test_charge_returns_completion_time(self):
        clock = FakeClock()
        acct = CpuAccountant(clock)
        assert acct.charge(0.5) == pytest.approx(0.5)
        # second charge queues behind the first
        assert acct.charge(0.5) == pytest.approx(1.0)

    def test_idle_gap_resets_queue(self):
        clock = FakeClock()
        acct = CpuAccountant(clock)
        acct.charge(0.1)
        clock.t = 10.0
        assert acct.charge(0.1) == pytest.approx(10.1)

    def test_queue_delay(self):
        clock = FakeClock()
        acct = CpuAccountant(clock)
        acct.charge(2.0)
        assert acct.queue_delay() == pytest.approx(2.0)
        clock.t = 1.0
        assert acct.queue_delay() == pytest.approx(1.0)
        clock.t = 5.0
        assert acct.queue_delay() == 0.0

    def test_capacity_scales_service(self):
        clock = FakeClock()
        acct = CpuAccountant(clock, capacity=2.0)
        assert acct.charge(1.0) == pytest.approx(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CpuAccountant(FakeClock(), capacity=0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            CpuAccountant(FakeClock()).charge(-1)

    def test_utilization_window(self):
        clock = FakeClock()
        acct = CpuAccountant(clock)
        clock.t = 10.0
        acct.reset_window()
        acct.charge(1.0)
        clock.t = 14.0
        assert acct.utilization() == pytest.approx(0.25)

    def test_utilization_capped_at_one(self):
        clock = FakeClock()
        acct = CpuAccountant(clock)
        acct.reset_window()
        acct.charge(100.0)
        clock.t = 1.0
        assert acct.utilization() == 1.0

    def test_by_category(self):
        clock = FakeClock()
        acct = CpuAccountant(clock)
        acct.charge(0.1, "log")
        acct.charge(0.2, "log")
        acct.charge(0.3, "send")
        cats = acct.by_category()
        assert cats["log"] == pytest.approx(0.3)
        assert cats["send"] == pytest.approx(0.3)


class TestCostModel:
    def test_defaults_are_positive(self):
        model = CostModel()
        assert model.log_append > model.msg_receive
        assert model.client_send > 0
        assert model.gd_subend_update > 0
