"""Fast Figure-4 consistency checks for the calibrated CPU cost model.

``benchmarks/test_fig4_cpu_utilization.py`` reproduces the paper's full
curves and is too slow for tier 1.  This file pins the *calibration
invariants* that keep the curves stable across hot-path work — the new
``knowledge_flush`` constant, the relative ordering of the cost table,
and the sign/magnitude of the GD-vs-BE gap on a miniature sweep — so a
perf PR that breaks the Figure-4 shape fails in seconds, not in the
nightly benchmark run.
"""

import pytest

from repro.core.config import LivenessParams
from repro.experiments.fig45 import gd_minus_be, run_overhead_sweep
from repro.metrics.cpu import CostModel


class TestCostTableCalibration:
    def test_knowledge_flush_between_update_and_receive(self):
        # One coalesced flush costs more than one incremental update
        # (it walks the dirty window) but far less than the per-message
        # overhead it saves; outside this band, batching either looks
        # free or can never pay for itself and Figure 4 drifts.
        model = CostModel()
        assert model.knowledge_update < model.knowledge_flush
        assert model.knowledge_flush < model.msg_receive

    def test_gd_costs_dominate_be_costs(self):
        # Figure 4's premise: GD adds work on top of best-effort.
        model = CostModel()
        assert model.knowledge_update > 0
        assert model.gd_subend_update > 0
        assert model.log_append > model.msg_receive


class TestMiniatureFigure4:
    @pytest.fixture(scope="class")
    def gaps(self):
        points = run_overhead_sweep(
            [40], input_rate=100.0, warmup=1.0, measure=3.0
        )
        return gd_minus_be(points)[40]

    def test_gd_shb_cpu_gap_is_small_and_positive(self, gaps):
        # The paper's headline: GD overhead on the SHB is a few percent.
        assert 0.0 < gaps["shb_cpu_gap"] < 0.04

    def test_gd_phb_cpu_gap_exceeds_shb_gap(self, gaps):
        # The PHB pays for logging, so its gap dominates the SHB's.
        assert gaps["phb_cpu_gap"] > gaps["shb_cpu_gap"]

    def test_batching_does_not_inflate_shb_cpu(self):
        # flush_delay trades latency for message volume; SHB utilization
        # must not regress when batching is on.
        immediate = run_overhead_sweep(
            [40], protocols=("gd",), input_rate=100.0, warmup=1.0, measure=3.0
        )[0]
        batched = run_overhead_sweep(
            [40],
            protocols=("gd",),
            input_rate=100.0,
            warmup=1.0,
            measure=3.0,
            params=LivenessParams(flush_delay=0.05),
        )[0]
        assert batched.shb_cpu <= immediate.shb_cpu * 1.05
