"""Unit tests for metric series, reducers, and recorders."""

import pytest

from repro.metrics.recorder import (
    LatencyRecorder,
    NackRecorder,
    Series,
    median,
    percentile,
)
from repro.obs import MetricsHub


class TestReducers:
    def test_median_odd(self):
        assert median([3, 1, 2]) == 2

    def test_median_even_interpolates(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_median_single(self):
        assert median([7]) == 7

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    def test_percentiles(self):
        values = list(range(101))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 100
        assert percentile(values, 99) == 99

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([1], -0.5)

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_percentile_single_sample_any_pct(self):
        for pct in (0, 37.5, 50, 100):
            assert percentile([42.0], pct) == 42.0

    def test_percentile_extremes_are_min_and_max(self):
        values = [9.0, -3.0, 4.0]
        assert percentile(values, 0) == -3.0
        assert percentile(values, 100) == 9.0

    def test_percentile_linear_interpolation(self):
        # rank = pct/100 * (n-1); 25% of [0, 10] interpolates, it does
        # not snap to the nearest rank.
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)


class TestSeries:
    def test_basic_stats(self):
        s = Series("x")
        for i in range(1, 6):
            s.add(float(i), float(i))
        assert s.median() == 3
        assert s.mean() == 3
        assert s.max() == 5
        assert len(s) == 5

    def test_between(self):
        s = Series("x")
        for i in range(10):
            s.add(float(i), float(i))
        window = s.between(3.0, 6.0)
        assert window.values() == [3.0, 4.0, 5.0]

    def test_cumulative(self):
        s = Series("x")
        s.add(2.0, 10.0)
        s.add(1.0, 5.0)
        assert s.cumulative() == [(1.0, 5.0), (2.0, 15.0)]


class TestLatencyRecorder:
    def test_records_per_subscriber(self):
        rec = LatencyRecorder()
        rec.record("alice", send_time=1.0, recv_time=1.2)
        rec.record("bob", send_time=1.0, recv_time=1.5)
        assert rec.series("alice").values() == [pytest.approx(0.2)]
        assert rec.subscribers() == ["alice", "bob"]
        assert rec.delivered == 2

    def test_merged_sorted_by_send_time(self):
        rec = LatencyRecorder()
        rec.record("a", 2.0, 2.1)
        rec.record("b", 1.0, 1.1)
        merged = rec.merged()
        assert [s.t for s in merged.samples] == [1.0, 2.0]

    def test_all_values(self):
        rec = LatencyRecorder()
        rec.record("a", 0.0, 0.5)
        rec.record("b", 0.0, 0.25)
        assert sorted(rec.all_values()) == [0.25, 0.5]


class TestNackRecorder:
    def test_count_and_range(self):
        rec = NackRecorder()
        rec.record("s1", 1.0, 100)
        rec.record("s1", 2.0, 50)
        rec.record("b2", 2.5, 75)
        assert rec.count("s1") == 2
        assert rec.total_range("s1") == 150
        assert rec.total_range("b2") == 75
        assert rec.nodes() == ["b2", "s1"]

    def test_unknown_node_is_zero(self):
        rec = NackRecorder()
        assert rec.count("zz") == 0
        assert rec.total_range("zz") == 0.0


class TestMetricsHub:
    def test_counters(self):
        hub = MetricsHub()
        hub.bump("x")
        hub.bump("x", 4)
        assert hub.counters["x"] == 5

    def test_custom_series(self):
        hub = MetricsHub()
        hub.series("util").add(1.0, 0.5)
        assert hub.series("util").values() == [0.5]
