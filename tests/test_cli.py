"""Tests for the experiment command line."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_commands_share_seed_flag(self):
        for name in ("fig6", "fig7", "fig8"):
            args = build_parser().parse_args([name, "--seed", "11"])
            assert args.seed == 11

    def test_overhead_defaults(self):
        args = build_parser().parse_args(["overhead"])
        assert args.subs == [100, 400, 1600]
        assert args.rate == 200.0


class TestBenchParser:
    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.json is None
        assert args.check is None
        assert args.tolerance == 0.05
        assert args.repeat == 3

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.seed == 0
        assert args.runs == 1
        assert args.duration == 2.0
        assert args.transport == "tcp"
        assert args.data_dir is None

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.duration == 5.0
        assert args.settle == 2.0
        assert args.rate == 40.0
        assert args.data_dir is None

    def test_fuzz_and_replay_take_flush_delay(self):
        assert build_parser().parse_args(
            ["fuzz", "--flush-delay", "0.05"]
        ).flush_delay == 0.05
        assert build_parser().parse_args(
            ["replay", "x.json", "--flush-delay", "0.02"]
        ).flush_delay == 0.02

    def test_conform_defaults(self):
        args = build_parser().parse_args(["conform"])
        assert args.seed == 0
        assert args.runs == 25
        assert args.replay is None
        assert args.shrink is True
        assert args.transport == "local"
        assert args.time_scale is None
        assert args.mutate is None

    def test_conform_takes_mutations_and_replay_list(self):
        args = build_parser().parse_args(
            ["conform", "--mutate", "suppress-retransmit", "--transport", "tcp"]
        )
        assert args.mutate == ["suppress-retransmit"]
        assert args.transport == "tcp"
        replay = build_parser().parse_args(
            ["conform", "--replay", "a.json", "b.json"]
        )
        assert replay.replay == ["a.json", "b.json"]


class TestBenchCommand:
    def test_bench_emits_report_and_baseline(self, capsys, tmp_path):
        import json

        report_path = tmp_path / "BENCH.json"
        baseline_path = tmp_path / "baseline.json"
        assert main([
            "bench",
            "--repeat", "1",
            "--json", str(report_path),
            "--write-baseline", str(baseline_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "batching reduction" in out

        report = json.loads(report_path.read_text())
        assert report["bench_version"] >= 4
        assert set(report["benchmarks"]) == {
            "interval_map_appends",
            "knowledge_publish_pattern",
            "matching_engine",
            "chain_batching",
            "trace_overhead",
            "integrity_overhead",
            "aio_throughput",
            "aio_wire",
            "message_alloc",
        }
        # The acceptance floors this PR is gated on.
        assert report["derived"]["batching_reduction"] >= 2.0
        assert report["derived"]["interval_fast_speedup"] >= 1.0
        assert "trace_overhead" in report["derived"]
        assert report["counters"]["trace_causal_spans"] > 0
        # Wire batching: frame reduction gate counters must be clean and
        # every published message delivered exactly once.
        assert report["counters"]["aio_wire_excess_frames"] == 0
        assert report["counters"]["aio_wire_latency_violations"] == 0
        assert report["counters"]["aio_wire_undelivered"] == 0
        assert report["counters"]["aio_throughput_undelivered"] == 0

        baseline = json.loads(baseline_path.read_text())
        assert baseline["counters"] == report["counters"]
        assert all(
            isinstance(v, int) for v in baseline["counters"].values()
        )

    def test_gate_logic(self):
        from repro.bench import compare_counters

        baseline = {"a": 100, "b": 0, "c": 50}
        assert compare_counters({"a": 100, "b": 0, "c": 52}, baseline) == []
        assert compare_counters({"a": 111, "b": 0, "c": 50}, baseline)
        assert compare_counters({"a": 100, "b": 1, "c": 50}, baseline)
        # A counter vanishing from the report must fail loudly.
        assert compare_counters({"a": 100, "b": 0}, baseline)


class TestCommands:
    def test_quickcheck_passes(self, capsys):
        assert main(["quickcheck"]) == 0
        out = capsys.readouterr().out
        assert "exactly once: True" in out

    def test_overhead_prints_table(self, capsys):
        assert main(["overhead", "--subs", "50", "--measure", "2"]) == 0
        out = capsys.readouterr().out
        assert "gd" in out and "best-effort" in out

    def test_fig6_runs(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "exactly once" in out
        assert "nack" in out

    def test_chaos_command_runs(self, capsys, tmp_path):
        assert main([
            "chaos",
            "--duration", "1.0",
            "--settle", "1.5",
            "--min-published", "5",
            "--data-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_serve_command_runs(self, capsys):
        assert main(["serve", "--duration", "0.5", "--settle", "1.5"]) == 0
        out = capsys.readouterr().out
        assert "listening" in out
        assert "exactly once: True" in out
