"""Tests for the experiment command line."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_commands_share_seed_flag(self):
        for name in ("fig6", "fig7", "fig8"):
            args = build_parser().parse_args([name, "--seed", "11"])
            assert args.seed == 11

    def test_overhead_defaults(self):
        args = build_parser().parse_args(["overhead"])
        assert args.subs == [100, 400, 1600]
        assert args.rate == 200.0


class TestCommands:
    def test_quickcheck_passes(self, capsys):
        assert main(["quickcheck"]) == 0
        out = capsys.readouterr().out
        assert "exactly once: True" in out

    def test_overhead_prints_table(self, capsys):
        assert main(["overhead", "--subs", "50", "--measure", "2"]) == 0
        out = capsys.readouterr().out
        assert "gd" in out and "best-effort" in out

    def test_fig6_runs(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "exactly once" in out
        assert "nack" in out
