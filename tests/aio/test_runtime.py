"""Integration tests for the asyncio runtime (real wall-clock timers)."""

import asyncio
import math

from repro.aio.runtime import AioSystem
from repro.aio.transport import LocalTransport, TcpTransport
from repro.client import DeliveryChecker
from repro.core.config import LivenessParams
from repro.topology import two_broker_topology

# Tight liveness settings so wall-clock tests stay fast.
FAST = LivenessParams(gct=0.05, nrt_min=0.1, aet=1.0, dct=math.inf,
                      silence_interval=0.1, link_status_interval=0.1,
                      nrt_max=2.0)


def gd_topology():
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    return topo


def check(system, publisher, client, sub_id):
    class Ground:
        def __init__(self, pub):
            self.pubend = pub.pubend
            self.published = pub.published

    return DeliveryChecker([Ground(publisher)]).check(
        client, system.subscriptions[sub_id]
    )


async def settle(system, publisher, client, sub_id, rounds=16, step=0.5):
    """Poll for exactly-once convergence instead of racing a fixed drain
    window: recovery time depends on where the nack backoff lands (up to
    nrt_max), so any fixed settle is a flake waiting to happen."""
    report = check(system, publisher, client, sub_id)
    for __ in range(rounds):
        if report.exactly_once:
            break
        await system.run_for(step)
        report = check(system, publisher, client, sub_id)
    return report


class TestLocalTransport:
    def test_end_to_end_exactly_once(self):
        async def scenario():
            system = AioSystem(
                gd_topology(), params=FAST, transport=LocalTransport(seed=1)
            )
            await system.start()
            client = system.subscribe("a", "shb", ("P0",))
            publisher = system.publisher("P0", rate=200.0)
            publisher.start()
            await system.run_for(0.5)
            await publisher.stop()
            report = await settle(system, publisher, client, "a")
            await system.shutdown()
            return report, publisher

        report, publisher = asyncio.run(scenario())
        assert len(publisher.published) > 50
        assert report.exactly_once

    def test_recovers_from_random_drops(self):
        async def scenario():
            transport = LocalTransport(drop_probability=0.15, seed=7)
            system = AioSystem(gd_topology(), params=FAST, transport=transport)
            await system.start()
            client = system.subscribe("a", "shb", ("P0",))
            publisher = system.publisher("P0", rate=200.0)
            publisher.start()
            await system.run_for(0.6)
            await publisher.stop()
            report = await settle(system, publisher, client, "a")
            await system.shutdown()
            return report, transport

        report, transport = asyncio.run(scenario())
        assert transport.dropped > 0
        assert report.exactly_once

    def test_content_filtering(self):
        async def scenario():
            system = AioSystem(
                gd_topology(), params=FAST, transport=LocalTransport(seed=3)
            )
            await system.start()
            client = system.subscribe("a", "shb", ("P0",), "g = 0")
            publisher = system.publisher(
                "P0", rate=200.0, make_attributes=lambda i: {"g": i % 2}
            )
            publisher.start()
            await system.run_for(0.4)
            await publisher.stop()
            report = await settle(system, publisher, client, "a")
            await system.shutdown()
            return report, publisher

        report, publisher = asyncio.run(scenario())
        assert report.exactly_once
        assert report.matching_published < len(publisher.published)

    def test_broker_crash_and_recovery(self):
        async def scenario():
            transport = LocalTransport(seed=11)
            system = AioSystem(
                gd_topology(), params=FAST, transport=transport
            )
            await system.start()
            client = system.subscribe("a", "shb", ("P0",))
            publisher = system.publisher("P0", rate=100.0)
            publisher.start()
            await system.run_for(0.3)
            system.brokers["phb"].crash()
            await system.run_for(0.3)  # publishes fail while down
            system.brokers["phb"].restart()
            await system.run_for(0.5)
            await publisher.stop()
            report = await settle(system, publisher, client, "a")
            await system.shutdown()
            return report, publisher

        report, publisher = asyncio.run(scenario())
        assert publisher.failed_attempts > 0
        assert report.exactly_once


class TestSubscriptionPropagationOverAio:
    def test_summaries_prune_traffic_in_real_time(self):
        async def scenario():
            params = FAST.with_(
                subscription_propagation=True, link_status_interval=0.05
            )
            transport = LocalTransport(seed=13)
            system = AioSystem(gd_topology(), params=params, transport=transport)
            await system.start()
            client = system.subscribe("a", "shb", ("P0",), "g = 0")
            await system.run_for(0.2)  # summary reaches the PHB
            publisher = system.publisher(
                "P0", rate=200.0, make_attributes=lambda i: {"g": i % 4}
            )
            publisher.start()
            await system.run_for(0.4)
            await publisher.stop()
            report = await settle(system, publisher, client, "a")
            phb_stats = system.brokers["phb"].engine.stats()
            await system.shutdown()
            return report, publisher, phb_stats

        report, publisher, phb_stats = asyncio.run(scenario())
        assert report.exactly_once
        # The PHB's ostream marks only ~1/4 of ticks as D (the rest were
        # pruned by the advertised summary before ever being sent).
        sent = phb_stats["counters"].get("knowledge_sent", 0)
        assert sent < len(publisher.published)


class TestTcpTransport:
    def test_frames_round_trip(self):
        from repro.aio.transport import decode_frame, encode_frame
        from repro.broker.state import Envelope, LinkStatusMessage
        from repro.core.messages import AckMessage, DataTick, KnowledgeMessage
        from repro.core.ticks import TickRange

        for message in (
            Envelope(
                KnowledgeMessage(
                    pubend="P",
                    fin_prefix=10,
                    f_ranges=(TickRange(12, 20),),
                    data=(DataTick(25, {"a": {"x": 1}}),),
                )
            ),
            Envelope(AckMessage("P", 99), target_cell="SHB", sideways=True),
            LinkStatusMessage("b1", frozenset({"SHB1"})),
        ):
            assert decode_frame(encode_frame(message)) == message

    def test_end_to_end_over_tcp(self):
        async def scenario():
            transport = TcpTransport()
            system = AioSystem(gd_topology(), params=FAST, transport=transport)
            await system.start()
            client = system.subscribe("a", "shb", ("P0",))
            publisher = system.publisher("P0", rate=100.0)
            publisher.start()
            await system.run_for(0.6)
            await publisher.stop()
            report = await settle(system, publisher, client, "a")
            await system.shutdown()
            return report, publisher

        report, publisher = asyncio.run(scenario())
        assert len(publisher.published) > 20
        assert report.exactly_once

    def test_corrupt_frames_heal_via_reconnect_and_resend(self):
        """A frame damaged in flight is rejected by CRC, never delivered;
        the transport treats it as a torn connection and the resent
        backlog keeps delivery exactly-once (docs/PROTOCOL.md §8)."""

        async def scenario():
            transport = TcpTransport(seed=5)
            system = AioSystem(gd_topology(), params=FAST, transport=transport)
            await system.start()
            client = system.subscribe("a", "shb", ("P0",))
            publisher = system.publisher("P0", rate=100.0)
            publisher.start()
            await system.run_for(0.3)
            transport.corrupt_next_frames(2)
            await system.run_for(0.3)
            await publisher.stop()
            report = await settle(system, publisher, client, "a")
            rejected = transport.frames_rejected_crc
            await system.shutdown()
            return report, publisher, rejected

        report, publisher, rejected = asyncio.run(scenario())
        assert len(publisher.published) > 20
        assert rejected >= 1, "the damaged frame must be caught by CRC"
        # The connection was dropped and re-established, the unpopped
        # backlog re-sent, and no corrupt payload ever delivered:
        assert report.exactly_once
