"""The figure-3 network on the asyncio runtime (real wall-clock)."""

import asyncio
import math

import pytest

from repro.aio.runtime import AioSystem
from repro.aio.transport import LocalTransport
from repro.client import DeliveryChecker
from repro.core.config import LivenessParams
from repro.topology import balanced_pubend_names, figure3_topology

FAST = LivenessParams(
    gct=0.05,
    nrt_min=0.1,
    nrt_max=2.0,
    aet=1.0,
    dct=math.inf,
    silence_interval=0.1,
    link_status_interval=0.1,
)


class Ground:
    def __init__(self, publisher):
        self.pubend = publisher.pubend
        self.published = publisher.published


@pytest.mark.slow
def test_figure3_with_crash_over_asyncio():
    async def scenario():
        names = balanced_pubend_names(2)
        transport = LocalTransport(latency=0.001, drop_probability=0.02, seed=5)
        system = AioSystem(
            figure3_topology(n_pubends=2, pubend_names=names),
            params=FAST,
            transport=transport,
        )
        await system.start()
        clients = {
            shb: system.subscribe(f"sub_{shb}", shb, tuple(names))
            for shb in ("s1", "s3")
        }
        publishers = [system.publisher(name, rate=50.0) for name in names]
        for publisher in publishers:
            publisher.start()
        await system.run_for(0.4)
        # Crash an intermediate broker mid-run, restart shortly after.
        system.brokers["b1"].crash()
        await system.run_for(0.3)
        system.brokers["b1"].restart()
        await system.run_for(0.5)
        for publisher in publishers:
            await publisher.stop()
        # Drain (nacks, retransmissions, acks) by polling for convergence
        # rather than racing a fixed window: recovery time depends on
        # where each nack backoff lands, up to nrt_max.
        checker = DeliveryChecker([Ground(p) for p in publishers])

        def reports_now():
            return {
                shb: checker.check(client, system.subscriptions[f"sub_{shb}"])
                for shb, client in clients.items()
            }

        reports = reports_now()
        for __ in range(16):
            if all(r.exactly_once for r in reports.values()):
                break
            await system.run_for(0.5)
            reports = reports_now()
        await system.shutdown()
        return reports, publishers, transport

    reports, publishers, transport = asyncio.run(scenario())
    assert sum(len(p.published) for p in publishers) > 30
    for shb, report in reports.items():
        assert report.exactly_once, (shb, report.missing[:3])
