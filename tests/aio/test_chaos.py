"""The seeded real-time chaos harness (acceptance tests for PR 7).

The headline scenario: FileLog-backed pubends over real TCP, a seeded
schedule that kills and restarts the publisher-hosting broker mid-stream
and severs/heals a link — and the ``repro.check``-style offline verdict
must still be exactly-once with zero missing deliveries, with recovery
needing no manual intervention beyond the scheduled heal/restart.
"""

import pytest

from repro.aio.chaos import chaos_schedule, run_chaos


class TestSchedule:
    def test_schedule_is_a_pure_function_of_seed(self):
        for seed in range(10):
            assert chaos_schedule(seed, 2.0) == chaos_schedule(seed, 2.0)
        assert chaos_schedule(0, 2.0) != chaos_schedule(1, 2.0)

    def test_schedule_always_crashes_the_publishing_broker(self):
        for seed in range(10):
            actions = chaos_schedule(seed, 2.0)
            kinds = {(a.kind, a.target) for a in actions}
            assert ("kill", "b0") in kinds
            assert ("restart", "b0") in kinds
            assert any(k == "sever" for k, __ in kinds)
            assert any(k == "heal" for k, __ in kinds)

    def test_every_outage_closes_inside_the_fault_window(self):
        for seed in range(10):
            actions = chaos_schedule(seed, 2.0)
            assert actions == sorted(actions, key=lambda a: a.t)
            open_faults = {}
            for action in actions:
                if action.kind in ("kill", "sever"):
                    open_faults[action.target] = action
                else:
                    assert action.target in open_faults
                    del open_faults[action.target]
                assert action.t <= 0.72 * 2.0 + 1e-9
            assert not open_faults

    def test_corrupt_rate_zero_leaves_schedule_untouched(self):
        # The corruption draws happen after the base draws, so existing
        # seeds reproduce their exact schedules when the dial is off.
        for seed in range(10):
            assert chaos_schedule(seed, 2.0, corrupt_rate=0.0) == (
                chaos_schedule(seed, 2.0)
            )

    def test_corrupt_rate_one_schedules_all_three_kinds(self):
        for seed in range(10):
            actions = chaos_schedule(seed, 2.0, corrupt_rate=1.0)
            base = chaos_schedule(seed, 2.0)
            assert [a for a in actions if a.kind not in
                    ("corrupt-log", "corrupt-wire", "disk-full")] == list(base)
            by_kind = {a.kind: a for a in actions}
            kill = next(
                a.t for a in actions if a.kind == "kill" and a.target == "b0"
            )
            restart = next(
                a.t for a in actions if a.kind == "restart" and a.target == "b0"
            )
            # Log corruption lands while b0 is down (its logs are closed;
            # every record it damages was delivered long before).
            assert kill < by_kind["corrupt-log"].t < restart
            assert by_kind["corrupt-log"].target == "b0"
            assert by_kind["corrupt-wire"].target == "wire"
            # Disk-full fires after every outage has healed (0.8×duration
            # vs the 0.72×duration fault-window close).
            assert by_kind["disk-full"].t == pytest.approx(0.8 * 2.0)
            assert actions == sorted(actions, key=lambda a: a.t)


class TestChaosRuns:
    @pytest.mark.slow
    def test_tcp_filelog_phb_crash_exactly_once(self, tmp_path):
        """The acceptance scenario: durable pubends over TCP survive a
        real kill+restart of their hosting broker."""
        report = run_chaos(
            seed=0, duration=1.5, transport="tcp", data_dir=str(tmp_path)
        )
        assert report.ok, report.render()
        assert report.published > 20, "run carried too little traffic"
        assert report.reports["sub0"].missing == []
        assert report.reports["sub0"].unexpected == []
        assert ("kill", "b0") in {(a.kind, a.target) for a in report.actions}
        assert report.counters["broker_restarts"] >= 1

    @pytest.mark.slow
    def test_severed_link_heals_without_intervention(self):
        # Seed 2's schedule severs b0|b1 before any crash (see the
        # deterministic schedule); the supervised transport must carry
        # the backlog through after the heal.
        report = run_chaos(seed=2, duration=1.5, transport="tcp")
        assert report.ok, report.render()
        assert any(a.kind == "sever" for a in report.actions)

    @pytest.mark.slow
    def test_local_transport_profile(self):
        report = run_chaos(seed=3, duration=1.2, transport="local", settle=2.0)
        assert report.ok, report.render()

    def test_rejects_unknown_transport(self):
        with pytest.raises(ValueError, match="transport"):
            run_chaos(transport="carrier-pigeon")

    @pytest.mark.slow
    def test_corruption_injection_detected_and_healed(self, tmp_path):
        """The integrity acceptance scenario: log bit-flips while the
        broker is down, a damaged wire frame, and a full disk — all in
        one run — and delivery is still exactly-once, with every
        injected fault accounted for by a detection counter."""
        report = run_chaos(
            seed=0,
            duration=1.5,
            transport="tcp",
            data_dir=str(tmp_path),
            corrupt_rate=1.0,
        )
        assert report.ok, report.render()
        assert report.reports["sub0"].missing == []
        assert report.reports["sub0"].unexpected == []
        kinds = {a.kind for a in report.actions}
        assert {"corrupt-log", "corrupt-wire", "disk-full"} <= kinds
        # Every kind injected AND detected (run_chaos itself fails the
        # verdict on an injected-but-undetected fault; assert both ways).
        assert report.counters["log_corruptions_injected"] >= 1
        assert report.counters["log_records_quarantined"] >= 1
        assert report.counters["wire_corruptions_injected"] >= 1
        assert report.counters["frames_rejected_crc"] >= 1
        assert report.counters["disk_full_injected"] >= 1
        assert report.counters["log_append_errors"] >= 1
        # The quarantine sidecars survive for forensics.
        assert any(tmp_path.glob("*.log.quarantine"))
