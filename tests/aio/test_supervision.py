"""Connection supervision, timer tracking, and inbox flow control."""

import asyncio
import json
import math

from repro.aio.runtime import AioSystem
from repro.aio.transport import TcpTransport
from repro.broker.state import Envelope
from repro.core.config import LivenessParams
from repro.core.messages import AckMessage
from repro.topology import two_broker_topology

FAST = LivenessParams(gct=0.05, nrt_min=0.1, aet=1.0, dct=math.inf,
                      silence_interval=0.1, link_status_interval=0.1,
                      nrt_max=2.0)


def gd_topology():
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    return topo


def ack(tick: int) -> Envelope:
    return Envelope(AckMessage("P0", tick))


async def eventually(predicate, timeout: float = 5.0, interval: float = 0.02):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


class TestTcpSupervision:
    def test_reconnects_after_peer_restart_on_new_port(self):
        """A message sent while the peer is down is held in the bounded
        outbox and delivered once the peer listens again — on a *new*
        ephemeral port, which the supervisor re-resolves."""

        async def scenario():
            transport = TcpTransport(
                heartbeat_interval=0.05, reconnect_base=0.02, reconnect_max=0.2
            )
            received = []
            await transport.start_broker("a", lambda s, m: None)
            await transport.start_broker(
                "b", lambda s, m: received.append((s, m))
            )
            transport.send("a", "b", ack(1))
            assert await eventually(lambda: len(received) == 1)

            old_port = transport.addresses["b"][1]
            await transport.stop_broker("b")
            transport.send("a", "b", ack(2))  # queued while b is down
            await asyncio.sleep(0.2)
            assert await eventually(lambda: not transport.link_usable("a", "b"))

            await transport.start_broker(
                "b", lambda s, m: received.append((s, m))
            )
            new_port = transport.addresses["b"][1]
            ok = await eventually(lambda: len(received) == 2)
            reconnects = transport.reconnects
            await transport.close()
            return ok, received, old_port, new_port, reconnects

        ok, received, old_port, new_port, reconnects = asyncio.run(scenario())
        assert ok, "queued frame never arrived after restart"
        assert [m.payload.up_to for __, m in received] == [1, 2]
        assert old_port != new_port
        assert reconnects >= 1

    def test_heartbeat_detects_half_open_peer(self):
        """A peer that accepts the connection but never acks heartbeats
        (half-open: writes still 'succeed') is detected and the link is
        reported unusable."""

        async def scenario():
            transport = TcpTransport(heartbeat_interval=0.05)
            await transport.start_broker("a", lambda s, m: None)

            async def mute(reader, writer):
                while await reader.readline():
                    pass  # swallow everything, never reply

            server = await asyncio.start_server(mute, host="127.0.0.1", port=0)
            transport.addresses["mute"] = server.sockets[0].getsockname()[:2]

            transport.send("a", "mute", ack(1))
            assert await eventually(lambda: transport.link_usable("a", "mute"))
            detected = await eventually(
                lambda: transport.heartbeat_failures > 0
            )
            down = await eventually(
                lambda: not transport.link_usable("a", "mute")
            )
            server.close()
            await server.wait_closed()
            await transport.close()
            return detected, down

        detected, down = asyncio.run(scenario())
        assert detected, "heartbeat watchdog never fired"
        assert down, "half-open link still reported usable"

    def test_sever_and_heal_drive_link_usable(self):
        async def scenario():
            transport = TcpTransport(heartbeat_interval=0.05)
            received = []
            await transport.start_broker("a", lambda s, m: None)
            await transport.start_broker(
                "b", lambda s, m: received.append(m)
            )
            transport.send("a", "b", ack(1))
            assert await eventually(lambda: len(received) == 1)

            transport.fail_link("a", "b")
            assert not transport.link_usable("a", "b")
            assert not transport.link_usable("b", "a")
            assert transport.send("a", "b", ack(2)) is False
            await asyncio.sleep(0.2)
            assert len(received) == 1  # the wire is cut

            transport.recover_link("a", "b")
            transport.send("a", "b", ack(3))
            healed = await eventually(lambda: len(received) == 2)
            await transport.close()
            return healed, received

        healed, received = asyncio.run(scenario())
        assert healed, "link never recovered after heal"
        assert received[-1].payload.up_to == 3

    def test_outbox_bounded_sheds_oldest_while_down(self):
        async def scenario():
            transport = TcpTransport(reconnect_base=0.5, reconnect_max=0.5)
            transport.OUTBOX_LIMIT = 4
            await transport.start_broker("a", lambda s, m: None)
            # "b" never listens: frames pile up in the bounded outbox.
            for i in range(10):
                transport.send("a", "b", ack(i))
            conn = transport._conns[("a", "b")]
            depth, shed = len(conn.outbox), transport.shed
            await transport.close()
            return depth, shed

        depth, shed = asyncio.run(scenario())
        assert depth == 4
        assert shed == 6

    def test_unknown_frame_kind_rejected(self):
        from repro.aio.transport import decode_frame

        try:
            decode_frame(json.dumps({"kind": "mystery"}).encode())
        except ValueError as exc:
            assert "mystery" in str(exc)
        else:
            raise AssertionError("decode_frame accepted an unknown kind")


class TestTimerTracking:
    def test_crash_cancels_outstanding_timers(self):
        async def scenario():
            system = AioSystem(gd_topology(), params=FAST)
            await system.start()
            broker = system.brokers["phb"]
            fired = []
            broker.services.schedule(0.05, lambda: fired.append("engine"))
            handles = set(broker._pending_timers)
            assert handles, "engine start armed no timers"
            broker.crash()
            leaked = [h for h in handles if not h.cancelled()]
            remaining = set(broker._pending_timers)
            await asyncio.sleep(0.15)
            await system.shutdown()
            return leaked, remaining, fired

        leaked, remaining, fired = asyncio.run(scenario())
        assert leaked == []
        assert remaining == set()
        assert fired == []

    def test_shutdown_cancels_outstanding_timers(self):
        async def scenario():
            system = AioSystem(gd_topology(), params=FAST)
            await system.start()
            broker = system.brokers["shb"]
            fired = []
            broker.services.schedule(0.05, lambda: fired.append("late"))
            handles = set(broker._pending_timers)
            await system.shutdown()
            leaked = [h for h in handles if not h.cancelled()]
            await asyncio.sleep(0.15)
            return leaked, fired

        leaked, fired = asyncio.run(scenario())
        assert leaked == []
        assert fired == []

    def test_tracking_set_prunes_cancelled_handles(self):
        async def scenario():
            system = AioSystem(gd_topology(), params=FAST)
            await system.start()
            broker = system.brokers["phb"]
            handles = [
                broker.services.schedule(30.0, lambda: None) for __ in range(300)
            ]
            for handle in handles[:290]:
                handle.cancel()
            broker.services.schedule(30.0, lambda: None)  # triggers prune
            size = len(broker._pending_timers)
            await system.shutdown()
            return size

        size = asyncio.run(scenario())
        assert size < 60  # 300+ tracked before the prune

    def test_stale_epoch_callback_is_inert_after_restart(self):
        async def scenario():
            system = AioSystem(gd_topology(), params=FAST)
            await system.start()
            broker = system.brokers["phb"]
            fired = []
            broker.services.schedule(0.1, lambda: fired.append("stale"))
            broker.crash()
            broker.restart()
            await asyncio.sleep(0.2)
            await system.shutdown()
            return fired

        assert asyncio.run(scenario()) == []


class TestInboxFlowControl:
    def test_shed_policy_counts_overflow(self):
        async def scenario():
            system = AioSystem(
                gd_topology(), params=FAST, inbox_limit=2, slow_consumer="shed"
            )
            await system.start()
            broker = system.brokers["shb"]
            # Synchronous burst: nothing drains between these calls.
            for i in range(7):
                broker.on_receive("phb", ack(i))
            shed = broker.shed_count
            counter = system.obs.instruments.counter(
                "aio_inbox_shed", broker="shb"
            ).value
            broker.crash()  # drop the queue before garbage reaches the engine
            await system.shutdown()
            return shed, counter

        shed, counter = asyncio.run(scenario())
        assert shed == 5
        assert counter == 5

    def test_backpressure_policy_processes_inline_never_drops(self):
        async def scenario():
            system = AioSystem(
                gd_topology(), params=FAST, inbox_limit=1,
                slow_consumer="backpressure",
            )
            await system.start()
            client = system.subscribe("a", "shb", ("P0",))
            publisher = system.publisher("P0", rate=300.0)
            publisher.start()
            await system.run_for(0.4)
            await publisher.stop()
            await system.run_for(0.6)
            delivered = len(client.received)
            published = len(publisher.published)
            shed = system.brokers["shb"].shed_count
            await system.shutdown()
            return published, delivered, shed

        published, delivered, shed = asyncio.run(scenario())
        assert shed == 0
        assert published > 30
        assert delivered == published

    def test_rejects_unknown_policy(self):
        try:
            AioSystem(gd_topology(), params=FAST, slow_consumer="discard")
        except ValueError as exc:
            assert "slow_consumer" in str(exc)
        else:
            raise AssertionError("bad slow_consumer accepted")
