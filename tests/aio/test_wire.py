"""Binary wire protocol: framing edge cases, differential codec,
serialize-once cache, and exactly-once under aggressive batching."""

import asyncio
import json
import math

import pytest

from repro.aio import wire
from repro.aio.transport import TcpTransport, decode_frame, encode_frame
from repro.aio.wire import (
    FRAME_BATCH,
    FrameDecoder,
    FrameError,
    OversizedFrame,
    SerializeCache,
    decode_batch_body,
    decode_wire_message,
    encode_batch_frame,
    encode_wire_message,
)
from repro.broker.state import Envelope, LinkStatusMessage
from repro.client import DeliveryChecker
from repro.core.config import LivenessParams
from repro.core.messages import (
    AckExpectedMessage,
    AckMessage,
    DataTick,
    KnowledgeMessage,
    NackMessage,
)
from repro.core.ticks import TickRange

FAST = LivenessParams(gct=0.05, nrt_min=0.1, aet=1.0, dct=math.inf,
                      silence_interval=0.1, link_status_interval=0.1,
                      nrt_max=2.0)


def wire_message_corpus():
    """Every wire-message shape the brokers exchange."""
    return [
        Envelope(
            KnowledgeMessage(
                pubend="P0",
                fin_prefix=7,
                f_ranges=(TickRange(9, 12), TickRange(20, 25)),
                data=(DataTick(13, {"seq": 1}), DataTick(16, {"seq": 2})),
            )
        ),
        Envelope(
            KnowledgeMessage(pubend="P1", fin_prefix=3, retransmit=True),
            target_cell="C2",
        ),
        Envelope(KnowledgeMessage(pubend="P0"), sideways=True),
        Envelope(AckMessage("P0", 42), target_cell="C0", sideways=True),
        Envelope(NackMessage("P0", (TickRange(1, 5), TickRange(8, 9)))),
        Envelope(AckExpectedMessage("P1", 64)),
        LinkStatusMessage("b1", frozenset({"C0", "C2"})),
    ]


async def eventually(predicate, timeout: float = 5.0, interval: float = 0.02):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


class TestFrameDecoder:
    def test_torn_length_prefix_across_segments(self):
        """TCP may split a frame anywhere — including inside the 13-byte
        header.  Feeding one byte at a time must still decode every
        frame, in order, with nothing left over."""
        messages = wire_message_corpus()
        stream = b"".join(
            encode_batch_frame([encode_wire_message(m)]) for m in messages
        )
        decoder = FrameDecoder()
        decoded = []
        for i in range(len(stream)):
            decoder.feed(stream[i : i + 1])
            for frame_type, body in decoder.frames():
                assert frame_type == FRAME_BATCH
                for payload in decode_batch_body(body):
                    decoded.append(decode_wire_message(payload))
        assert decoder.pending() == 0
        assert decoded == messages

    def test_torn_at_every_split_point(self):
        """One frame split at every possible boundary decodes whole."""
        frame = encode_batch_frame(
            [encode_wire_message(m) for m in wire_message_corpus()]
        )
        for split in range(1, len(frame)):
            decoder = FrameDecoder()
            decoder.feed(frame[:split])
            assert list(decoder.frames()) == [] or split == len(frame)
            decoder.feed(frame[split:])
            frames = list(decoder.frames())
            assert len(frames) == 1
            assert len(decode_batch_body(frames[0][1])) == len(
                wire_message_corpus()
            )

    def test_oversized_frame_rejected_from_header_alone(self):
        """A hostile header announcing a huge body raises before any
        body bytes arrive — no unbounded buffering.  The header must be
        internally valid (correct header CRC) to even reach the length
        check, so pack it with the real helper."""
        decoder = FrameDecoder(max_frame_bytes=1024)
        header = wire.pack_header(1 << 20, FRAME_BATCH)
        decoder.feed(header)
        with pytest.raises(OversizedFrame):
            list(decoder.frames())

    def test_corrupt_length_prefix_rejected_immediately(self):
        """A flipped bit in the length prefix *below* the oversize cap
        used to make the decoder buffer forever waiting for a garbage
        frame that never completes.  The header CRC self-check rejects
        it as soon as the header is complete."""
        frame = bytearray(encode_batch_frame([b"hello"]))
        frame[2] ^= 0x01  # length now claims a few hundred extra bytes
        decoder = FrameDecoder()
        decoder.feed(bytes(frame))
        with pytest.raises(wire.CorruptFrame):
            list(decoder.frames())

    def test_corrupt_body_rejected_by_crc(self):
        """A bit flipped anywhere in the body fails the body CRC — a
        corrupt payload is never surfaced as a decoded frame."""
        good = encode_batch_frame([encode_wire_message(m) for m in wire_message_corpus()])
        for pos in range(wire.HEADER_SIZE, len(good)):
            frame = bytearray(good)
            frame[pos] ^= 0x10
            decoder = FrameDecoder()
            decoder.feed(bytes(frame))
            with pytest.raises(wire.CorruptFrame):
                list(decoder.frames())

    def test_corrupt_header_crc_field_rejected(self):
        frame = bytearray(encode_batch_frame([b"hello"]))
        frame[wire.HEADER_SIZE - 1] ^= 0x80  # damage the header CRC itself
        decoder = FrameDecoder()
        decoder.feed(bytes(frame))
        with pytest.raises(wire.CorruptFrame):
            list(decoder.frames())

    def test_build_frame_rejects_oversized_body(self):
        with pytest.raises(OversizedFrame):
            wire.build_frame(FRAME_BATCH, b"x" * (wire.MAX_FRAME_BYTES + 1))

    def test_torn_batch_body_rejected(self):
        frame = encode_batch_frame([b"hello"])
        __, body = wire.decode_one_frame(frame)
        with pytest.raises(FrameError):
            decode_batch_body(body[:-2])  # truncated payload
        with pytest.raises(FrameError):
            decode_batch_body(body + b"\x00\x00")  # torn trailing length


class TestDifferentialCodec:
    def test_round_trip_matches_legacy_json_codec(self):
        """The binary codec and the old JSON-lines codec must agree on
        the full corpus: same decoded object, and the binary body is the
        same dict schema the JSON codec used."""
        for message in wire_message_corpus():
            legacy_line = json.dumps(message.to_wire()).encode("utf-8")
            via_legacy = decode_frame(legacy_line)  # old-format path
            via_binary = decode_wire_message(encode_wire_message(message))
            assert via_legacy == via_binary == message
            assert json.loads(encode_wire_message(message)) == json.loads(
                legacy_line
            )

    def test_encode_decode_frame_wrappers(self):
        for message in wire_message_corpus():
            assert decode_frame(encode_frame(message)) == message

    def test_unknown_wire_kind_raises(self):
        payload = json.dumps({"kind": "mystery"}).encode()
        with pytest.raises(ValueError, match="mystery"):
            decode_wire_message(payload)
        with pytest.raises(ValueError, match="mystery"):
            decode_frame(encode_batch_frame([payload]))

    def test_batch_frame_carries_many_messages_in_order(self):
        messages = wire_message_corpus() * 3
        frame = encode_batch_frame([encode_wire_message(m) for m in messages])
        frame_type, body = wire.decode_one_frame(frame)
        assert frame_type == FRAME_BATCH
        decoded = [decode_wire_message(p) for p in decode_batch_body(body)]
        assert decoded == messages


class TestSerializeCache:
    def test_same_object_hits_equal_object_misses(self):
        cache = SerializeCache()
        message = Envelope(AckMessage("P0", 1))
        twin = Envelope(AckMessage("P0", 1))
        first = cache.encode(message)
        assert cache.encode(message) is first  # identity hit
        assert cache.hits == 1
        cache.encode(twin)  # equal but distinct object: no false sharing
        assert cache.misses == 2
        assert cache.encode(twin) == first

    def test_lru_bounded_and_pins_entries(self):
        cache = SerializeCache(capacity=4)
        messages = [Envelope(AckMessage("P0", i)) for i in range(10)]
        for message in messages:
            cache.encode(message)
        assert len(cache) == 4
        # The newest four are retained and hit; the oldest were evicted.
        assert cache.encode(messages[-1]) and cache.hits == 1
        cache.encode(messages[0])
        assert cache.misses == 11

    def test_fanout_serializes_once_per_message(self):
        """N destinations share one encoding — the transport counter
        records N-1 cache hits per fanned-out message."""

        async def scenario():
            transport = TcpTransport(flush_delay=0.0)
            received = []
            await transport.start_broker("hub", lambda s, m: None)
            for peer in ("x", "y", "z"):
                await transport.start_broker(
                    peer, lambda s, m: received.append(m)
                )
            message = Envelope(AckMessage("P0", 5))
            for peer in ("x", "y", "z"):
                transport.send("hub", peer, message)
            ok = await eventually(lambda: len(received) == 3)
            hits = transport.serialize_cache_hits
            await transport.close()
            return ok, hits, received

        ok, hits, received = asyncio.run(scenario())
        assert ok
        assert hits == 2  # encoded once, shared twice
        assert all(m.payload.up_to == 5 for m in received)


class TestBatchingTransport:
    def test_coalesces_queued_messages_into_one_frame(self):
        async def scenario():
            transport = TcpTransport(flush_delay=0.02)
            received = []
            await transport.start_broker("a", lambda s, m: None)
            await transport.start_broker("b", lambda s, m: received.append(m))
            # Prime the connection so the burst below is corked together.
            transport.send("a", "b", Envelope(AckMessage("P0", 0)))
            assert await eventually(lambda: len(received) == 1)
            frames_before = transport.frames_sent
            for i in range(1, 21):
                transport.send("a", "b", Envelope(AckMessage("P0", i)))
            assert await eventually(lambda: len(received) == 21)
            data_frames = transport.frames_sent - frames_before
            await transport.close()
            return received, data_frames

        received, data_frames = asyncio.run(scenario())
        assert [m.payload.up_to for m in received] == list(range(21))
        # 20 messages queued within one cork window: a handful of frames
        # at most (one per flush window), not one per message.
        assert data_frames <= 4

    def test_max_batch_msgs_compat_one_frame_per_message(self):
        async def scenario():
            transport = TcpTransport(flush_delay=0.0, max_batch_msgs=1)
            received = []
            await transport.start_broker("a", lambda s, m: None)
            await transport.start_broker("b", lambda s, m: received.append(m))
            for i in range(5):
                transport.send("a", "b", Envelope(AckMessage("P0", i)))
            assert await eventually(lambda: len(received) == 5)
            stats = (transport.frames_sent, transport.msgs_sent)
            await transport.close()
            return stats

        frames, msgs = asyncio.run(scenario())
        assert frames == msgs == 5

    def test_drain_flushes_cork_window(self):
        async def scenario():
            transport = TcpTransport(flush_delay=0.05)
            received = []
            await transport.start_broker("a", lambda s, m: None)
            await transport.start_broker("b", lambda s, m: received.append(m))
            transport.send("a", "b", Envelope(AckMessage("P0", 1)))
            assert await eventually(lambda: transport.link_usable("a", "b"))
            transport.send("a", "b", Envelope(AckMessage("P0", 2)))
            drained = await transport.drain(timeout=2.0)
            depth = sum(len(c.outbox) for c in transport._conns.values())
            await transport.close()
            return drained, depth

        drained, depth = asyncio.run(scenario())
        assert drained
        assert depth == 0

    def test_inflight_batch_resent_after_peer_restart(self):
        """Payloads are popped only after a successful write+drain, so a
        batch in flight when the peer dies is re-sent whole from the
        outbox head after reconnect — nothing is lost."""

        async def scenario():
            transport = TcpTransport(
                flush_delay=0.02,
                heartbeat_interval=0.05,
                reconnect_base=0.02,
                reconnect_max=0.2,
            )
            received = []
            await transport.start_broker("a", lambda s, m: None)
            await transport.start_broker("b", lambda s, m: received.append(m))
            transport.send("a", "b", Envelope(AckMessage("P0", 0)))
            assert await eventually(lambda: len(received) == 1)
            await transport.stop_broker("b")
            # Queued while the peer is down (and possibly mid-teardown):
            # these form the in-flight/queued batch that must survive.
            for i in range(1, 11):
                transport.send("a", "b", Envelope(AckMessage("P0", i)))
            await asyncio.sleep(0.2)
            await transport.start_broker("b", lambda s, m: received.append(m))
            ok = await eventually(
                lambda: {m.payload.up_to for m in received} >= set(range(11))
            )
            await transport.close()
            return ok, received

        ok, received = asyncio.run(scenario())
        assert ok, "queued batch lost across peer restart"
        # At-least-once at the transport: re-sent frames may duplicate,
        # but everything queued arrived, in order per incarnation.
        assert {m.payload.up_to for m in received} == set(range(11))


class TestExactlyOnceUnderBatching:
    def test_broker_outage_with_aggressive_batching(self):
        """A mid-chain broker dies and restarts under live traffic with
        an aggressive cork window: the delivery oracle must still report
        exactly-once — batching is invisible to the protocol."""
        from repro.aio.chaos import chain_topology
        from repro.aio.runtime import AioSystem

        async def scenario():
            transport = TcpTransport(
                seed=3,
                flush_delay=0.005,
                heartbeat_interval=0.05,
                reconnect_base=0.02,
                reconnect_max=0.2,
            )
            system = AioSystem(
                chain_topology(), params=FAST, transport=transport
            )
            await system.start()
            client = system.subscribe("sub", "b2", ("P0", "P1"))
            publishers = [
                system.publisher(p, rate=150.0) for p in ("P0", "P1")
            ]
            for publisher in publishers:
                publisher.start()
            await asyncio.sleep(0.3)
            await system.kill_broker("b1")  # partial batches die with it
            await asyncio.sleep(0.25)
            await system.restart_broker("b1")
            await asyncio.sleep(0.45)
            for publisher in publishers:
                await publisher.stop()
            published = sum(len(p.published) for p in publishers)
            await eventually(
                lambda: len(client.received) >= published, timeout=8.0
            )
            report = DeliveryChecker(publishers).check(
                client, system.subscriptions["sub"]
            )
            failures = [
                f"{bid}: {b.failure!r}"
                for bid, b in system.brokers.items()
                if b.failure is not None
            ]
            await system.shutdown()
            return report, published, failures

        report, published, failures = asyncio.run(scenario())
        assert failures == []
        assert published > 30, "run carried too little traffic to mean anything"
        assert report.exactly_once, (
            f"missing={len(report.missing)} unexpected={len(report.unexpected)}"
        )


class TestPiggybackFlush:
    def test_dirty_ostreams_tracks_pending_flushes(self):
        from repro.aio.runtime import AioSystem
        from repro.topology import two_broker_topology

        async def scenario():
            topo = two_broker_topology()
            topo.pubend("P0", "phb")
            topo.route("P0", "PHB", "SHB")
            import dataclasses

            system = AioSystem(
                topo, params=dataclasses.replace(FAST, flush_delay=0.5)
            )
            await system.start()
            client = system.subscribe("sub", "shb", ("P0",))
            broker = system.brokers["phb"]
            broker.publish("P0", {"seq": 0})
            dirty = broker.engine.dirty_ostreams
            flushed = broker.engine.flush_dirty_ostreams()
            dirty_after = broker.engine.dirty_ostreams
            # The eager flush sends immediately: delivery must not wait
            # out the 0.5s flush timer.
            delivered = await eventually(
                lambda: len(client.received) == 1, timeout=0.4
            )
            await system.shutdown()
            return dirty, flushed, dirty_after, delivered

        dirty, flushed, dirty_after, delivered = asyncio.run(scenario())
        assert dirty == 1
        assert flushed == 1
        assert dirty_after == 0
        assert delivered, "eager flush did not deliver ahead of the timer"
