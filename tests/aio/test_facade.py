"""The unified SystemFacade across both backends.

Pins the API-convergence contract: the simulator's ``System`` and the
real-time ``AioSystem`` expose the same public surface (subscribe /
publisher / host_pubend / obs), accept the same predicate forms, return
elapsed time from ``run_for``, and keep the legacy positional
``total_order`` working behind a DeprecationWarning on both paths.
"""

import asyncio
import math
import os

import pytest

from repro.aio.runtime import AioSystem
from repro.client import DeliveryChecker
from repro.core.config import LivenessParams
from repro.facade import SystemFacade
from repro.matching.parser import parse
from repro.storage.log import FileLog, MemoryLog
from repro.topology import two_broker_topology

FAST = LivenessParams(gct=0.05, nrt_min=0.1, aet=1.0, dct=math.inf,
                      silence_interval=0.1, link_status_interval=0.1,
                      nrt_max=2.0)


def gd_topology():
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    return topo


def sim_system():
    return gd_topology().build(seed=1, params=LivenessParams())


class TestProtocol:
    def test_both_backends_satisfy_the_facade(self):
        assert isinstance(sim_system(), SystemFacade)

        async def scenario():
            system = AioSystem(gd_topology(), params=FAST)
            try:
                return isinstance(system, SystemFacade)
            finally:
                await system.shutdown()

        assert asyncio.run(scenario())


class TestLegacySignatures:
    def test_sim_subscribe_positional_total_order_warns(self):
        system = sim_system()
        with pytest.warns(DeprecationWarning, match="total_order positionally"):
            client = system.subscribe("a", "shb", ("P0",), None, True)
        assert system.subscriptions["a"].total_order is True
        assert client.check_total_order is True

    def test_aio_subscribe_positional_total_order_warns(self):
        async def scenario():
            system = AioSystem(gd_topology(), params=FAST)
            await system.start()
            try:
                with pytest.warns(
                    DeprecationWarning,
                    match="total_order positionally to AioSystem.subscribe",
                ):
                    client = system.subscribe("a", "shb", ("P0",), None, True)
                return system.subscriptions["a"].total_order, client.check_total_order
            finally:
                await system.shutdown()

        total_order, checked = asyncio.run(scenario())
        assert total_order is True
        assert checked is True

    def test_aio_subscribe_rejects_too_many_positionals(self):
        async def scenario():
            system = AioSystem(gd_topology(), params=FAST)
            await system.start()
            try:
                with pytest.warns(DeprecationWarning):
                    with pytest.raises(TypeError):
                        system.subscribe("a", "shb", ("P0",), None, True, "x")
            finally:
                await system.shutdown()

        asyncio.run(scenario())

    def test_keyword_form_does_not_warn(self):
        async def scenario():
            system = AioSystem(gd_topology(), params=FAST)
            await system.start()
            try:
                import warnings

                with warnings.catch_warnings():
                    warnings.simplefilter("error")
                    system.subscribe("a", "shb", ("P0",), total_order=True)
            finally:
                await system.shutdown()

        asyncio.run(scenario())


class TestPredicateForms:
    def test_aio_accepts_string_ast_and_callable_uniformly(self):
        async def scenario():
            system = AioSystem(gd_topology(), params=FAST)
            await system.start()
            clients = {
                "s_str": system.subscribe("s_str", "shb", ("P0",), "g = 0"),
                "s_ast": system.subscribe("s_ast", "shb", ("P0",), parse("g = 0")),
                "s_call": system.subscribe(
                    "s_call", "shb", ("P0",), lambda e: e["g"] == 0
                ),
            }
            publisher = system.publisher(
                "P0", rate=200.0, make_attributes=lambda i: {"g": i % 2}
            )
            publisher.start()
            await system.run_for(0.4)
            await publisher.stop()
            await system.run_for(0.5)
            checker = DeliveryChecker([publisher])
            reports = {
                name: checker.check(client, system.subscriptions[name])
                for name, client in clients.items()
            }
            received = {
                name: {(p, t) for p, t, __, ___ in client.received}
                for name, client in clients.items()
            }
            await system.shutdown()
            return reports, received

        reports, received = asyncio.run(scenario())
        for name, report in reports.items():
            assert report.exactly_once, name
        assert received["s_str"] == received["s_ast"] == received["s_call"]
        assert received["s_str"]


class TestRunForAndHosting:
    def test_aio_run_for_returns_elapsed_time(self):
        async def scenario():
            system = AioSystem(gd_topology(), params=FAST)
            try:
                return await system.run_for(0.05)
            finally:
                await system.shutdown()

        elapsed = asyncio.run(scenario())
        assert elapsed >= 0.05

    def test_sim_host_pubend_registers_and_returns_log(self):
        system = sim_system()
        log = system.host_pubend("PX", "phb")
        assert isinstance(log, MemoryLog)
        assert system.pubend_hosts["PX"] == "phb"

    def test_aio_host_pubend_publishes_into_returned_log(self):
        async def scenario():
            system = AioSystem(gd_topology(), params=FAST)
            await system.start()
            log = system.host_pubend("PX", "phb", slot=0, n_slots=1)
            tick = system.brokers["phb"].publish("PX", {"k": 1})
            await system.shutdown()
            return log, tick

        log, tick = asyncio.run(scenario())
        assert tick is not None
        # With no downstream routes the publication is immediately fully
        # acked and truncated, so assert on the append itself.
        assert log.append_count == 1

    def test_data_dir_gives_every_pubend_a_file_log(self, tmp_path):
        async def scenario():
            system = AioSystem(
                gd_topology(), params=FAST, data_dir=str(tmp_path)
            )
            log = system.brokers["phb"]._logs["P0"]
            await system.shutdown()
            return log

        log = asyncio.run(scenario())
        assert isinstance(log, FileLog)
        assert os.path.dirname(log.path) == str(tmp_path)
