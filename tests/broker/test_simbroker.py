"""Unit tests of the simulator-hosted broker: lifecycle, CPU accounting,
client fan-out scheduling."""

from repro.broker.simbroker import SimBroker, SubscriberHooks
from repro.broker.state import BrokerTopologyInfo, PubendRoute
from repro.core.config import LivenessParams
from repro.core.edges import FilterEdge, MATCH_ALL
from repro.core.subend import Subscription
from repro.sim.network import SimNetwork
from repro.sim.scheduler import Scheduler
from repro.storage.log import MemoryLog


class Client(SubscriberHooks):
    def __init__(self):
        self.deliveries = []

    def on_delivery(self, pubend, tick, payload, time):
        self.deliveries.append((pubend, tick, payload, time))


def standalone_phb_shb():
    """A connected PHB + SHB pair of SimBrokers."""
    scheduler = Scheduler(seed=1)
    network = SimNetwork(scheduler)
    phb_info = BrokerTopologyInfo(
        broker_id="phb",
        cell="PHB",
        neighbors=frozenset({"shb"}),
        cell_of={"phb": "PHB", "shb": "SHB"},
        brokers_of_cell={"PHB": ("phb",), "SHB": ("shb",)},
        routes={
            "P": PubendRoute(
                pubend="P",
                upstream_cell=None,
                downstream={"SHB": FilterEdge(MATCH_ALL)},
                subtree={"SHB": frozenset()},
            )
        },
    )
    shb_info = BrokerTopologyInfo(
        broker_id="shb",
        cell="SHB",
        neighbors=frozenset({"phb"}),
        cell_of={"phb": "PHB", "shb": "SHB"},
        brokers_of_cell={"PHB": ("phb",), "SHB": ("shb",)},
        routes={"P": PubendRoute(pubend="P", upstream_cell="PHB", downstream={})},
    )
    params = LivenessParams(gct=0.1, nrt_min=0.3)
    phb = SimBroker("phb", network, scheduler, phb_info, params)
    shb = SimBroker("shb", network, scheduler, shb_info, params)
    network.add_node(phb)
    network.add_node(shb)
    network.connect("phb", "shb", latency=0.001)
    return scheduler, phb, shb


class TestDataPath:
    def test_publish_delivers_to_remote_client(self):
        scheduler, phb, shb = standalone_phb_shb()
        client = Client()
        shb.add_subscription(Subscription("a", pubends=("P",)), client)
        log = MemoryLog(commit_latency=0.05)
        phb.host_pubend("P", log)
        phb.start()
        shb.start()
        scheduler.call_at(0.1, lambda: phb.publish("P", {"x": 1}))
        scheduler.run_until(1.0)
        assert len(client.deliveries) == 1
        __, tick, payload, when = client.deliveries[0]
        assert payload == {"x": 1}
        assert when >= 0.15  # commit latency honoured

    def test_publish_while_dead_returns_none(self):
        scheduler, phb, shb = standalone_phb_shb()
        phb.host_pubend("P", MemoryLog())
        phb.crash()
        assert phb.publish("P", {"x": 1}) is None

    def test_cpu_charged_for_publish_and_receive(self):
        scheduler, phb, shb = standalone_phb_shb()
        shb.add_subscription(Subscription("a", pubends=("P",)), Client())
        phb.host_pubend("P", MemoryLog())
        phb.start()
        shb.start()
        scheduler.call_at(0.1, lambda: phb.publish("P", {"x": 1}))
        scheduler.run_until(1.0)
        assert phb.accountant.busy_time > 0
        assert shb.accountant.busy_time > 0
        assert "publish" in phb.accountant.by_category()

    def test_fanout_serializes_client_sends(self):
        scheduler, phb, shb = standalone_phb_shb()
        clients = [Client() for _ in range(20)]
        for i, client in enumerate(clients):
            shb.add_subscription(Subscription(f"c{i}", pubends=("P",)), client)
        phb.host_pubend("P", MemoryLog())
        phb.start()
        shb.start()
        scheduler.call_at(0.1, lambda: phb.publish("P", {"x": 1}))
        scheduler.run_until(1.0)
        times = [c.deliveries[0][3] for c in clients]
        assert len(set(times)) > 1  # the 20 socket writes are serialized
        assert max(times) > min(times)


class TestLifecycle:
    def test_crash_discards_engine_soft_state(self):
        scheduler, phb, shb = standalone_phb_shb()
        phb.host_pubend("P", MemoryLog())
        phb.start()
        shb.start()
        scheduler.call_at(0.1, lambda: phb.publish("P", {"x": 1}))
        scheduler.run_until(0.5)
        phb.crash()
        assert phb.engine is None

    def test_restart_recovers_pubends_from_log(self):
        scheduler, phb, shb = standalone_phb_shb()
        log = MemoryLog()
        phb.host_pubend("P", log)
        phb.start()
        shb.start()
        # Cut the link so no ack can come back: the publication must stay
        # un-truncated in the log and recover as D after the crash.
        phb.network.link("phb", "shb").fail()
        published = []
        scheduler.call_at(0.1, lambda: published.append(phb.publish("P", {"x": 1})))
        scheduler.run_until(0.5)
        phb.crash()
        scheduler.run_until(1.0)
        phb.restart()
        recovered = phb.engine.pubends["P"]
        assert recovered.stream.value_at(published[0]).name == "D"
        assert log.entries("P")  # still durable, not yet acknowledged

    def test_restart_charges_warmup(self):
        scheduler, phb, shb = standalone_phb_shb()
        phb.restart_warmup = 0.5
        phb.host_pubend("P", MemoryLog())
        phb.crash()
        busy_before = phb.accountant.busy_time
        phb.restart()
        assert phb.accountant.busy_time >= busy_before + 0.5

    def test_messages_ignored_while_crashed(self):
        scheduler, phb, shb = standalone_phb_shb()
        client = Client()
        shb.add_subscription(Subscription("a", pubends=("P",)), client)
        phb.host_pubend("P", MemoryLog())
        phb.start()
        shb.start()
        shb.crash()
        scheduler.call_at(0.1, lambda: phb.publish("P", {"x": 1}))
        scheduler.run_until(1.0)
        assert client.deliveries == []

    def test_exactly_once_across_phb_crash(self):
        scheduler, phb, shb = standalone_phb_shb()
        client = Client()
        shb.add_subscription(Subscription("a", pubends=("P",)), client)
        log = MemoryLog(commit_latency=0.05)
        phb.host_pubend("P", log)
        phb.start()
        shb.start()
        ticks = []

        def pub():
            tick = phb.publish("P", {"x": len(ticks)})
            if tick is not None:
                ticks.append(tick)

        for i in range(20):
            scheduler.call_at(0.1 + i * 0.05, pub)
        # crash right after a commit window, restart later
        scheduler.call_at(0.42, phb.crash)
        scheduler.call_at(0.9, phb.restart)
        scheduler.run_until(30.0)
        delivered = [t for (__, t, ___, ____) in client.deliveries]
        assert delivered == sorted(set(delivered))
        assert set(delivered) == set(ticks)
