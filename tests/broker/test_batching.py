"""Batched delta knowledge propagation (``LivenessParams.flush_delay``).

The flush knob trades knowledge-message volume for propagation latency:
``flush_delay=0`` (the default) keeps the original send-per-update
semantics, while ``flush_delay>0`` accumulates dirty ticks per ostream
and flushes one coalesced KnowledgeMessage per window.  These tests pin
the contract: coalescing really happens, exactly-once is preserved under
loss and crashes, retransmissions are never delayed, and the default is
bit-identical to the pre-batching behaviour.
"""

from repro.core.config import LivenessParams
from repro.faults.injector import FaultInjector
from repro.topology import Topology


def chain_system(flush_delay, seed=1, drop=0.0):
    """PHB -> MID -> SHB chain, one pubend, one remote subscriber."""
    topo = Topology()
    topo.cell("PHB", "p")
    topo.cell("MID", "m")
    topo.cell("SHB", "s")
    topo.link("p", "m", latency=0.002)
    topo.link("m", "s", latency=0.002)
    topo.pubend("P0", "p")
    topo.route_all("PHB", "MID")
    topo.route_all("MID", "SHB")
    system = topo.build(
        seed=seed,
        params=LivenessParams(gct=0.1, nrt_min=0.3, flush_delay=flush_delay),
        log_commit_latency=0.0,
    )
    if drop:
        system.network.link("p", "m").drop_probability = drop
        system.network.link("m", "s").drop_probability = drop
    subscriber = system.subscribe("sub", "s", ("P0",))
    publisher = system.publisher("P0", rate=200.0)
    return system, publisher, subscriber


def run_chain(flush_delay, seed=1, drop=0.0, publish_until=1.5, drain=6.0):
    system, publisher, subscriber = chain_system(flush_delay, seed, drop)
    publisher.start(at=0.05)
    system.run_until(publish_until)
    publisher.stop()
    system.run_for(drain)
    return system, publisher, subscriber


def knowledge_sent(system):
    return sum(
        broker.engine.counters.get("knowledge_sent", 0)
        for broker in system.brokers.values()
        if getattr(broker, "engine", None) is not None
    )


def knowledge_flushes(system):
    return sum(
        broker.engine.counters.get("knowledge_flushes", 0)
        for broker in system.brokers.values()
        if getattr(broker, "engine", None) is not None
    )


class TestCoalescing:
    def test_batching_coalesces_knowledge_messages(self):
        sys_imm, pub_imm, sub_imm = run_chain(0.0)
        sys_bat, pub_bat, sub_bat = run_chain(0.05)
        assert sub_imm.count() == len(pub_imm.published) > 0
        assert sub_bat.count() == len(pub_bat.published) > 0
        sent_imm, sent_bat = knowledge_sent(sys_imm), knowledge_sent(sys_bat)
        # The acceptance bar for this PR: at least a 2x reduction.
        assert sent_imm >= 2 * sent_bat, (sent_imm, sent_bat)

    def test_immediate_mode_never_flushes(self):
        system, __, ___ = run_chain(0.0)
        assert knowledge_flushes(system) == 0

    def test_batched_mode_counts_flushes(self):
        system, __, ___ = run_chain(0.05)
        flushes = knowledge_flushes(system)
        assert flushes > 0
        # One coalesced send costs one flush; flushed sends can't exceed
        # total knowledge sends.
        assert flushes <= knowledge_sent(system)

    def test_flush_counter_on_observability_plane(self):
        system, __, ___ = run_chain(0.05)
        total = system.obs.instruments.total(
            "repro_broker_knowledge_flushes_total"
        )
        assert total == knowledge_flushes(system) > 0


class TestExactlyOnce:
    def test_exactly_once_with_batching_and_loss(self):
        # Retransmissions (curiosity answers) must bypass the flush
        # window, so a lossy chain still converges within the drain.
        system, publisher, subscriber = run_chain(
            0.05, seed=3, drop=0.1, drain=10.0
        )
        assert len(publisher.published) > 0
        assert subscriber.count() == len(publisher.published)
        ticks = sorted(t for (__, t, ___, ____) in subscriber.received)
        assert ticks == sorted(set(ticks)), "duplicate delivery"

    def test_exactly_once_across_mid_broker_crash(self):
        # A crash while flushes are pending must not lose the window's
        # ticks (epoch gating + timer cancellation + recovery nacks).
        system, publisher, subscriber = chain_system(0.05, seed=5)
        injector = FaultInjector(system)
        injector.at(0.6, lambda: injector.crash_broker("m"))
        injector.at(1.1, lambda: injector.restart_broker("m"))
        publisher.start(at=0.05)
        system.run_until(1.5)
        publisher.stop()
        system.run_for(10.0)
        assert len(publisher.published) > 0
        assert subscriber.count() == len(publisher.published)

    def test_default_params_disable_batching(self):
        assert LivenessParams().flush_delay == 0.0
