"""Unit tests for the GD broker engine with a fake transport.

These exercise the protocol rules in isolation: knowledge propagation,
lazy silence bracketing, retransmission targeting, nack satisfaction and
consolidation, ack consolidation, link selection, and sideways routing.
"""

import pytest

from repro.broker.engine import BrokerServices, GDBrokerEngine, stable_hash
from repro.broker.state import BrokerTopologyInfo, Envelope, LinkStatusMessage, PubendRoute
from repro.core.config import LivenessParams
from repro.core.edges import FilterEdge, MATCH_ALL
from repro.core.lattice import K
from repro.core.messages import (
    AckExpectedMessage,
    AckMessage,
    DataTick,
    KnowledgeMessage,
    NackMessage,
)
from repro.core.pubend import Pubend
from repro.core.subend import Subscription
from repro.core.ticks import TickRange
from repro.storage.log import MemoryLog


class FakeServices(BrokerServices):
    def __init__(self):
        self.time = 0.0
        self.sent = []  # (dst, message)
        self.delivered = []  # (subscriber, pubend, tick, payload)
        self.dead_links = set()
        self.timers = []

    def now(self):
        return self.time

    def schedule(self, delay, fn):
        class H:
            cancelled = False

            def cancel(self):
                self.cancelled = True

        handle = H()
        self.timers.append((self.time + delay, fn, handle))
        return handle

    def send(self, dst, message, size=100):
        if dst in self.dead_links:
            return False
        self.sent.append((dst, message))
        return True

    def link_usable(self, neighbor):
        return neighbor not in self.dead_links

    def deliver(self, subscriber, pubend, tick, payload):
        self.delivered.append((subscriber, pubend, tick, payload))

    # helpers -------------------------------------------------------------

    def knowledge_to(self, dst=None):
        out = []
        for target, message in self.sent:
            if isinstance(message, Envelope) and isinstance(
                message.payload, KnowledgeMessage
            ):
                if dst is None or target == dst:
                    out.append((target, message))
        return out

    def payloads(self, cls, dst=None):
        return [
            (target, message.payload)
            for target, message in self.sent
            if isinstance(message, Envelope) and isinstance(message.payload, cls)
            and (dst is None or target == dst)
        ]


# Topology: this broker is b1 in IB1; upstream cell PHB {p1}; downstream
# cells SHB1 {s1} (all-pass) and SHB2 {s2} (filtered v > 10).
def intermediate_topo(filter2=None):
    routes = {
        "P": PubendRoute(
            pubend="P",
            upstream_cell="PHB",
            downstream={
                "SHB1": FilterEdge(MATCH_ALL),
                "SHB2": FilterEdge(filter2 or (lambda p: p["v"] > 10)),
            },
            subtree={"SHB1": frozenset(), "SHB2": frozenset()},
        )
    }
    return BrokerTopologyInfo(
        broker_id="b1",
        cell="IB1",
        neighbors=frozenset({"p1", "b2", "s1", "s2"}),
        cell_of={
            "b1": "IB1",
            "b2": "IB1",
            "p1": "PHB",
            "s1": "SHB1",
            "s2": "SHB2",
        },
        brokers_of_cell={
            "IB1": ("b1", "b2"),
            "PHB": ("p1",),
            "SHB1": ("s1",),
            "SHB2": ("s2",),
        },
        routes=routes,
    )


def make_engine(topo=None, params=None):
    services = FakeServices()
    engine = GDBrokerEngine(
        topo or intermediate_topo(), params or LivenessParams(), services
    )
    return services, engine


def data_msg(tick, value, fin=0, f=()):
    return KnowledgeMessage(
        pubend="P",
        fin_prefix=fin,
        f_ranges=tuple(TickRange(a, b) for a, b in f),
        data=(DataTick(tick, {"v": value}),),
    )


class TestKnowledgePropagation:
    def test_first_time_data_forwarded_to_matching_paths(self):
        services, engine = make_engine()
        engine.on_envelope("p1", Envelope(data_msg(5, 99, f=[(0, 5)])))
        assert len(services.knowledge_to("s1")) == 1
        assert len(services.knowledge_to("s2")) == 1  # 99 > 10 matches

    def test_filtered_data_not_forwarded_as_data(self):
        services, engine = make_engine()
        engine.on_envelope("p1", Envelope(data_msg(5, 1, f=[(0, 5)])))
        assert len(services.knowledge_to("s1")) == 1
        # v=1 fails the SHB2 filter: no message at all (silence suppressed,
        # conveyed lazily with the next matching data).
        assert services.knowledge_to("s2") == []

    def test_lazy_silence_bracket_covers_filtered_ticks(self):
        services, engine = make_engine()
        engine.on_envelope("p1", Envelope(data_msg(5, 1, f=[(0, 5)])))
        engine.on_envelope("p1", Envelope(data_msg(9, 50, f=[(6, 9)])))
        sent = services.knowledge_to("s2")
        assert len(sent) == 1
        message = sent[0][1].payload
        assert message.data_ticks == [9]
        # The bracket must finalize everything below 9, including the
        # filtered tick 5 and its surrounding silence.
        covered = set()
        for rng in message.merged_f_ranges():
            covered.update(range(rng.start, rng.stop))
        assert covered >= set(range(0, 9))

    def test_istream_accumulates(self):
        services, engine = make_engine()
        engine.on_envelope("p1", Envelope(data_msg(5, 99, f=[(0, 5)])))
        ist = engine.istreams["P"]
        assert ist.stream.knowledge.value_at(5) == K.D
        assert ist.stream.knowledge.value_at(3) == K.F
        assert ist.last_upstream_sender == "p1"

    def test_duplicate_knowledge_is_idempotent(self):
        services, engine = make_engine()
        message = data_msg(5, 99, f=[(0, 5)])
        engine.on_envelope("p1", Envelope(message))
        count = len(services.knowledge_to("s1"))
        engine.on_envelope("p1", Envelope(message))
        # A re-received first-time message is re-sent downstream (the
        # istream is unchanged, but dedup happens at the receivers).
        ist = engine.istreams["P"]
        assert ist.stream.knowledge.value_at(5) == K.D

    def test_sideways_envelope_propagates_only_to_target_cell(self):
        services, engine = make_engine()
        env = Envelope(data_msg(5, 99, f=[(0, 5)]), target_cell="SHB1", sideways=True)
        engine.on_envelope("b2", env)
        assert len(services.knowledge_to("s1")) == 1
        assert services.knowledge_to("s2") == []

    def test_unroutable_pubend_dropped(self):
        services, engine = make_engine()
        message = KnowledgeMessage(pubend="GHOST", data=(DataTick(5, {"v": 1}),))
        engine.on_envelope("p1", Envelope(message))
        assert engine.counters.get("knowledge_unroutable") == 1


class TestSidewaysRouting:
    def test_dead_downstream_link_routes_via_peer(self):
        services, engine = make_engine()
        services.dead_links.add("s1")
        engine.on_envelope("p1", Envelope(data_msg(5, 99, f=[(0, 5)])))
        sideways = [
            (dst, message)
            for dst, message in services.knowledge_to("b2")
        ]
        assert len(sideways) == 1
        env = sideways[0][1]
        assert env.sideways
        assert env.target_cell == "SHB1"

    def test_no_sideways_of_sideways(self):
        services, engine = make_engine()
        services.dead_links.add("s1")
        env = Envelope(data_msg(5, 99), target_cell="SHB1", sideways=True)
        engine.on_envelope("b2", env)
        # Cannot reach SHB1 and must not bounce back to b2.
        assert services.knowledge_to("b2") == []
        assert engine.counters.get("knowledge_undeliverable") == 1

    def test_peer_preference_respects_link_status(self):
        services, engine = make_engine()
        services.dead_links.add("s1")
        # b2 reports it cannot reach SHB1 either: no sideways target.
        engine.on_message("b2", LinkStatusMessage("b2", frozenset({"SHB2"})))
        engine.on_envelope("p1", Envelope(data_msg(5, 99)))
        assert services.knowledge_to("b2") == []


class TestNackHandling:
    def seed(self, services, engine):
        engine.on_envelope("p1", Envelope(data_msg(5, 99, f=[(0, 5)])))
        engine.on_envelope("p1", Envelope(data_msg(9, 50, f=[(6, 9)])))
        services.sent.clear()

    def test_nack_satisfied_from_local_state(self):
        services, engine = make_engine()
        self.seed(services, engine)
        engine.on_envelope("s1", Envelope(NackMessage("P", (TickRange(0, 10),))))
        retransmissions = services.knowledge_to("s1")
        assert len(retransmissions) == 1
        message = retransmissions[0][1].payload
        assert message.retransmit
        assert message.data_ticks == [5, 9]
        # Nothing had to go upstream.
        assert services.payloads(NackMessage, "p1") == []

    def test_unsatisfiable_nack_forwarded_upstream_once(self):
        services, engine = make_engine()
        self.seed(services, engine)
        engine.on_envelope("s1", Envelope(NackMessage("P", (TickRange(20, 30),))))
        assert len(services.payloads(NackMessage, "p1")) == 1
        # Second nack for the same range is consolidated away.
        engine.on_envelope("s1", Envelope(NackMessage("P", (TickRange(20, 30),))))
        assert len(services.payloads(NackMessage, "p1")) == 1
        assert engine.counters.get("nacks_consolidated", 0) >= 1

    def test_nack_consolidation_across_paths(self):
        """Paper Figure 7: two downstream paths nack the same range; only
        one nack goes upstream."""
        services, engine = make_engine(
            topo=intermediate_topo(filter2=MATCH_ALL)
        )
        engine.on_envelope("s1", Envelope(NackMessage("P", (TickRange(0, 100),))))
        engine.on_envelope("s2", Envelope(NackMessage("P", (TickRange(0, 100),))))
        upstream = services.payloads(NackMessage, "p1")
        assert len(upstream) == 1
        assert upstream[0][1].tick_count() == 100

    def test_curiosity_forgetting_lets_repeats_through(self):
        services, engine = make_engine()
        engine.on_envelope("s1", Envelope(NackMessage("P", (TickRange(0, 50),))))
        assert len(services.payloads(NackMessage, "p1")) == 1
        engine._curiosity_sweep()  # the periodic C->N forgetting
        engine.on_envelope("s1", Envelope(NackMessage("P", (TickRange(0, 50),))))
        assert len(services.payloads(NackMessage, "p1")) == 2

    def test_late_knowledge_satisfies_pending_curiosity(self):
        services, engine = make_engine()
        engine.on_envelope("s1", Envelope(NackMessage("P", (TickRange(0, 10),))))
        services.sent.clear()
        engine.on_envelope(
            "p1",
            Envelope(
                KnowledgeMessage(
                    pubend="P",
                    f_ranges=(TickRange(0, 5),),
                    data=(DataTick(5, {"v": 99}),),
                    retransmit=True,
                )
            ),
        )
        retr = services.knowledge_to("s1")
        assert len(retr) == 1
        assert retr[0][1].payload.data_ticks == [5]

    def test_retransmission_not_sent_to_uncurious_path(self):
        services, engine = make_engine(topo=intermediate_topo(filter2=MATCH_ALL))
        engine.on_envelope("s1", Envelope(NackMessage("P", (TickRange(0, 10),))))
        services.sent.clear()
        engine.on_envelope(
            "p1",
            Envelope(
                KnowledgeMessage(
                    pubend="P",
                    f_ranges=(TickRange(0, 10),),
                    retransmit=True,
                )
            ),
        )
        assert len(services.knowledge_to("s1")) == 1
        assert services.knowledge_to("s2") == []  # s2 never asked


class TestAckHandling:
    def seed_two_path(self):
        services, engine = make_engine(topo=intermediate_topo(filter2=MATCH_ALL))
        engine.on_envelope("p1", Envelope(data_msg(5, 99, f=[(0, 5)])))
        services.sent.clear()
        return services, engine

    def test_ack_consolidation_requires_all_paths(self):
        services, engine = self.seed_two_path()
        engine.on_envelope("s1", Envelope(AckMessage("P", 6)))
        # s2 has not acked the D tick at 5: only the silent prefix [0, 5)
        # (final on every path, hence implicitly acked) may go upstream.
        upstream = services.payloads(AckMessage, "p1")
        assert [a.up_to for (__, a) in upstream] == [5]
        engine.on_envelope("s2", Envelope(AckMessage("P", 6)))
        upstream = services.payloads(AckMessage, "p1")
        assert [a.up_to for (__, a) in upstream] == [5, 6]

    def test_ack_garbage_collects_istream(self):
        services, engine = self.seed_two_path()
        ist = engine.istreams["P"]
        assert ist.stream.knowledge.has_payload(5)
        engine.on_envelope("s1", Envelope(AckMessage("P", 6)))
        engine.on_envelope("s2", Envelope(AckMessage("P", 6)))
        assert not ist.stream.knowledge.has_payload(5)
        assert ist.stream.knowledge.value_at(5) == K.F

    def test_ack_monotone_no_duplicate_upstream(self):
        services, engine = self.seed_two_path()
        engine.on_envelope("s1", Envelope(AckMessage("P", 6)))
        engine.on_envelope("s2", Envelope(AckMessage("P", 6)))
        before = len(services.payloads(AckMessage, "p1"))
        engine.on_envelope("s2", Envelope(AckMessage("P", 6)))  # duplicate
        assert len(services.payloads(AckMessage, "p1")) == before
        ups = [a.up_to for (__, a) in services.payloads(AckMessage, "p1")]
        assert ups == sorted(ups)

    def test_filtered_path_acks_implicitly(self):
        """A path whose filter rejected the data must not block the ack."""
        services, engine = make_engine()  # SHB2 filters v <= 10
        engine.on_envelope("p1", Envelope(data_msg(5, 1, f=[(0, 5)])))  # only s1 gets it
        services.sent.clear()
        engine.on_envelope("s1", Envelope(AckMessage("P", 6)))
        upstream = services.payloads(AckMessage, "p1")
        assert len(upstream) == 1
        assert upstream[0][1].up_to == 6


class TestAckExpected:
    def test_forwarded_only_on_unacked_paths(self):
        services, engine = make_engine(topo=intermediate_topo(filter2=MATCH_ALL))
        engine.on_envelope("p1", Envelope(data_msg(5, 99, f=[(0, 5)])))
        engine.on_envelope("s1", Envelope(AckMessage("P", 6)))
        services.sent.clear()
        engine.on_envelope("p1", Envelope(AckExpectedMessage("P", 6)))
        assert services.payloads(AckExpectedMessage, "s2")
        assert services.payloads(AckExpectedMessage, "s1") == []


class TestPubendHosting:
    def phb_topo(self):
        return BrokerTopologyInfo(
            broker_id="p1",
            cell="PHB",
            neighbors=frozenset({"b1"}),
            cell_of={"p1": "PHB", "b1": "IB1"},
            brokers_of_cell={"PHB": ("p1",), "IB1": ("b1",)},
            routes={
                "P": PubendRoute(
                    pubend="P",
                    upstream_cell=None,
                    downstream={"IB1": FilterEdge(MATCH_ALL)},
                    subtree={"IB1": frozenset()},
                )
            },
        )

    def test_publish_propagates_after_commit(self):
        services = FakeServices()
        engine = GDBrokerEngine(self.phb_topo(), LivenessParams(), services)
        log = MemoryLog(commit_latency=0.1)
        engine.host_pubend(Pubend("P", log))
        services.time = 1.0
        tick = engine.publish("P", {"v": 1})
        assert services.knowledge_to("b1") == []  # not yet committed
        assert services.timers  # commit scheduled
        when, fn, __ = services.timers[-1]
        assert when == pytest.approx(1.1)
        fn()
        sent = services.knowledge_to("b1")
        assert len(sent) == 1
        assert sent[0][1].payload.data_ticks == [tick]

    def test_publish_with_zero_latency_is_immediate(self):
        services = FakeServices()
        engine = GDBrokerEngine(self.phb_topo(), LivenessParams(), services)
        engine.host_pubend(Pubend("P", MemoryLog()))
        engine.publish("P", {"v": 1})
        assert len(services.knowledge_to("b1")) == 1

    def test_phb_answers_nacks_from_log_backed_state(self):
        services = FakeServices()
        engine = GDBrokerEngine(self.phb_topo(), LivenessParams(), services)
        engine.host_pubend(Pubend("P", MemoryLog()))
        services.time = 1.0
        tick = engine.publish("P", {"v": 1})
        services.sent.clear()
        engine.on_envelope("b1", Envelope(NackMessage("P", (TickRange(0, tick + 1),))))
        retr = services.knowledge_to("b1")
        assert len(retr) == 1
        assert tick in retr[0][1].payload.data_ticks

    def test_consolidated_ack_truncates_log(self):
        services = FakeServices()
        engine = GDBrokerEngine(self.phb_topo(), LivenessParams(), services)
        log = MemoryLog()
        engine.host_pubend(Pubend("P", log))
        services.time = 1.0
        tick = engine.publish("P", {"v": 1})
        engine.on_envelope("b1", Envelope(AckMessage("P", tick + 1)))
        assert log.entries("P") == []
        assert log.truncated_below("P") == tick + 1

    def test_recovery_reseeds_istream(self):
        log = MemoryLog()
        pb = Pubend("P", log)
        services = FakeServices()
        engine = GDBrokerEngine(self.phb_topo(), LivenessParams(), services)
        engine.host_pubend(pb)
        services.time = 1.0
        tick = engine.publish("P", {"v": 1})
        # crash: fresh engine + recovered pubend
        services2 = FakeServices()
        engine2 = GDBrokerEngine(self.phb_topo(), LivenessParams(), services2)
        pb2 = Pubend("P", log)
        pb2.recover()
        engine2.host_pubend(pb2)
        assert engine2.istreams["P"].stream.knowledge.value_at(tick) == K.D
        engine2.on_envelope("b1", Envelope(NackMessage("P", (TickRange(0, tick + 1),))))
        assert len(services2.knowledge_to("b1")) == 1


class TestSubendIntegration:
    def shb_topo(self):
        return BrokerTopologyInfo(
            broker_id="s1",
            cell="SHB1",
            neighbors=frozenset({"b1", "b2"}),
            cell_of={"s1": "SHB1", "b1": "IB1", "b2": "IB1"},
            brokers_of_cell={"SHB1": ("s1",), "IB1": ("b1", "b2")},
            routes={
                "P": PubendRoute(pubend="P", upstream_cell="IB1", downstream={})
            },
        )

    def test_local_delivery_and_ack(self):
        services = FakeServices()
        engine = GDBrokerEngine(self.shb_topo(), LivenessParams(), services)
        engine.add_subscription(Subscription("alice", pubends=("P",)))
        engine.on_envelope("b1", Envelope(data_msg(5, 99, f=[(0, 5)])))
        assert services.delivered == [("alice", "P", 5, {"v": 99})]
        acks = services.payloads(AckMessage, "b1")
        assert acks and acks[0][1].up_to == 6

    def test_ack_goes_to_last_sender(self):
        services = FakeServices()
        engine = GDBrokerEngine(self.shb_topo(), LivenessParams(), services)
        engine.add_subscription(Subscription("alice", pubends=("P",)))
        engine.on_envelope("b2", Envelope(data_msg(5, 99, f=[(0, 5)])))
        assert services.payloads(AckMessage, "b2")
        assert services.payloads(AckMessage, "b1") == []

    def test_upstream_broadcast_when_sender_unknown(self):
        services = FakeServices()
        engine = GDBrokerEngine(self.shb_topo(), LivenessParams(), services)
        engine.add_subscription(Subscription("alice", pubends=("P",)))
        engine.local_nack("P", [TickRange(0, 10)])
        # No last sender: nack goes to every broker of the upstream cell.
        assert services.payloads(NackMessage, "b1")
        assert services.payloads(NackMessage, "b2")

    def test_ack_expected_reasserts_ack(self):
        services = FakeServices()
        engine = GDBrokerEngine(self.shb_topo(), LivenessParams(), services)
        engine.add_subscription(Subscription("alice", pubends=("P",)))
        engine.on_envelope("b1", Envelope(data_msg(5, 99, f=[(0, 5)])))
        services.sent.clear()
        # Upstream restarted and lost all ack state; probes again.
        engine.on_envelope("b1", Envelope(AckExpectedMessage("P", 6)))
        acks = services.payloads(AckMessage, "b1")
        assert acks and acks[0][1].up_to >= 6


class TestLinkSelection:
    def test_hash_spreads_pubends(self):
        picks = {stable_hash(f"P{i}") % 2 for i in range(32)}
        assert picks == {0, 1}

    def test_link_status_steers_away_from_cut_broker(self):
        # p1's view: cell IB1 = {b1, b2}; pubend tree needs SHB1 below IB1.
        topo = BrokerTopologyInfo(
            broker_id="p1",
            cell="PHB",
            neighbors=frozenset({"b1", "b2"}),
            cell_of={"p1": "PHB", "b1": "IB1", "b2": "IB1", "s1": "SHB1"},
            brokers_of_cell={"PHB": ("p1",), "IB1": ("b1", "b2"), "SHB1": ("s1",)},
            routes={
                "P": PubendRoute(
                    pubend="P",
                    upstream_cell=None,
                    downstream={"IB1": FilterEdge(MATCH_ALL)},
                    subtree={"IB1": frozenset({"SHB1"})},
                )
            },
        )
        services = FakeServices()
        engine = GDBrokerEngine(topo, LivenessParams(), services)
        # Without reports, hash decides among both.
        assert engine._pick_downstream_broker("P", "IB1") in ("b1", "b2")
        # b1 reports it can no longer reach SHB1.
        engine.on_message("b1", LinkStatusMessage("b1", frozenset()))
        engine.on_message("b2", LinkStatusMessage("b2", frozenset({"SHB1"})))
        assert engine._pick_downstream_broker("P", "IB1") == "b2"
        # If no candidate reaches the subtree, fall back to hash anyway.
        engine.on_message("b2", LinkStatusMessage("b2", frozenset()))
        assert engine._pick_downstream_broker("P", "IB1") in ("b1", "b2")
