"""Unit tests for broker soft state and envelopes."""

from repro.broker.state import (
    BrokerTopologyInfo,
    Envelope,
    LinkStatusMessage,
    OStream,
)
from repro.core.edges import FilterEdge, MATCH_ALL
from repro.core.messages import AckMessage, DataTick, KnowledgeMessage
from repro.core.ticks import TickRange


class TestOStream:
    def test_ack_prefix_from_downstream_ack(self):
        ost = OStream("P", "CELL", FilterEdge(MATCH_ALL))
        assert ost.ack_prefix() == 0
        ost.stream.set_ack(TickRange(0, 50))
        assert ost.ack_prefix() == 50

    def test_filtered_data_is_immediately_ackable(self):
        """Paper: D ticks filtered at an intermediate broker can be acked
        by it without waiting for downstream."""
        ost = OStream("P", "CELL", FilterEdge(lambda p: False))
        ost.stream.accumulate_final(TickRange(0, 10))  # filtered D -> F
        assert ost.ack_prefix() == 10


class TestTopologyInfo:
    def make(self):
        return BrokerTopologyInfo(
            broker_id="b1",
            cell="IB1",
            neighbors=frozenset({"b2", "p1", "s1"}),
            cell_of={"b1": "IB1", "b2": "IB1", "p1": "PHB", "s1": "SHB1"},
            brokers_of_cell={"IB1": ("b1", "b2"), "PHB": ("p1",), "SHB1": ("s1",)},
            routes={},
        )

    def test_peers_are_cell_internal_neighbors(self):
        assert self.make().peers() == ("b2",)

    def test_adjacent_in_cell(self):
        info = self.make()
        assert info.adjacent_in_cell("PHB") == ("p1",)
        assert info.adjacent_in_cell("SHB1") == ("s1",)
        assert info.adjacent_in_cell("ZZZ") == ()


class TestEnvelope:
    def test_wire_round_trip_plain(self):
        env = Envelope(AckMessage("P", 100))
        assert Envelope.from_wire(env.to_wire()) == env

    def test_wire_round_trip_sideways(self):
        msg = KnowledgeMessage(
            pubend="P", fin_prefix=2, data=(DataTick(5, {"x": 1}),)
        )
        env = Envelope(msg, target_cell="SHB1", sideways=True)
        decoded = Envelope.from_wire(env.to_wire())
        assert decoded == env
        assert decoded.target_cell == "SHB1"
        assert decoded.sideways


class TestLinkStatus:
    def test_wire_round_trip(self):
        status = LinkStatusMessage("b1", frozenset({"SHB1", "SHB2"}))
        assert LinkStatusMessage.from_wire(status.to_wire()) == status
