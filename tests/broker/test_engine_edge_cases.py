"""Edge-case tests of the GD engine: retransmission trimming, strict
silence rules, curiosity bookkeeping, timers, and counters."""

import pytest

from repro.broker.engine import GDBrokerEngine
from repro.broker.state import Envelope
from repro.core.config import LivenessParams
from repro.core.edges import MATCH_ALL
from repro.core.lattice import C
from repro.core.messages import (
    AckExpectedMessage,
    AckMessage,
    KnowledgeMessage,
    NackMessage,
)
from repro.core.ticks import TickRange

from .test_engine import FakeServices, data_msg, intermediate_topo


def make_engine(params=None, topo=None):
    services = FakeServices()
    engine = GDBrokerEngine(
        topo or intermediate_topo(filter2=MATCH_ALL),
        params or LivenessParams(),
        services,
    )
    return services, engine


class TestRetransmissionTrimming:
    def test_d_ticks_removed_when_path_not_curious_for_them(self):
        """Paper 3.1: 'A D tick in a retransmitted message is transformed
        into a Q if the downstream cell is not curious for the D tick
        (but is curious for some of the F ticks in the message).'"""
        services, engine = make_engine()
        # Two data messages known locally.
        engine.on_envelope("p1", Envelope(data_msg(5, 99, f=[(0, 5)])))
        engine.on_envelope("p1", Envelope(data_msg(9, 50, f=[(6, 9)])))
        services.sent.clear()
        # s1 nacks ONLY the silent range 6..8 (it already has 5 and 9).
        engine.on_envelope("s1", Envelope(NackMessage("P", (TickRange(6, 9),))))
        answers = services.knowledge_to("s1")
        assert len(answers) == 1
        message = answers[0][1].payload
        assert message.retransmit
        assert message.data_ticks == []  # no D the path did not ask for
        covered = set()
        for rng in message.merged_f_ranges():
            covered.update(rng)
        assert covered >= {6, 7, 8}

    def test_partial_d_curiosity(self):
        services, engine = make_engine()
        engine.on_envelope("p1", Envelope(data_msg(5, 99, f=[(0, 5)])))
        engine.on_envelope("p1", Envelope(data_msg(9, 50, f=[(6, 9)])))
        services.sent.clear()
        engine.on_envelope("s1", Envelope(NackMessage("P", (TickRange(9, 10),))))
        message = services.knowledge_to("s1")[0][1].payload
        assert message.data_ticks == [9]  # tick 5 not included


class TestStrictSilenceRule:
    def test_filtered_data_suppressed_until_curious(self):
        """With silence_broadcast False (the paper's strict rule), a
        fully filtered first-time message produces no traffic; the
        knowledge arrives later, on demand."""
        services, engine = make_engine(
            params=LivenessParams(silence_broadcast=False),
            topo=intermediate_topo(),  # SHB2 filters v <= 10
        )
        engine.on_envelope("p1", Envelope(data_msg(5, 1, f=[(0, 5)])))
        assert services.knowledge_to("s2") == []
        # s2 eventually nacks the unknown range; now the F answer flows.
        engine.on_envelope("s2", Envelope(NackMessage("P", (TickRange(0, 6),))))
        answers = services.knowledge_to("s2")
        assert len(answers) == 1
        assert answers[0][1].payload.is_silence

    def test_pubend_silence_suppressed_without_broadcast(self):
        services, engine = make_engine(
            params=LivenessParams(silence_broadcast=False)
        )
        silence = KnowledgeMessage(pubend="P", f_ranges=(TickRange(0, 100),))
        engine.on_envelope("p1", Envelope(silence))
        assert services.knowledge_to("s1") == []
        assert services.knowledge_to("s2") == []

    def test_pubend_silence_forwarded_with_broadcast(self):
        services, engine = make_engine(
            params=LivenessParams(silence_broadcast=True)
        )
        silence = KnowledgeMessage(pubend="P", f_ranges=(TickRange(0, 100),))
        engine.on_envelope("p1", Envelope(silence))
        assert len(services.knowledge_to("s1")) == 1
        assert len(services.knowledge_to("s2")) == 1


class TestCuriosityBookkeeping:
    def test_istream_curiosity_cleared_by_arriving_data(self):
        services, engine = make_engine()
        engine.on_envelope("s1", Envelope(NackMessage("P", (TickRange(5, 6),))))
        ist = engine.istreams["P"]
        assert ist.stream.curiosity.value_at(5) == C.C
        engine.on_envelope("p1", Envelope(data_msg(5, 99)))
        assert ist.stream.curiosity.value_at(5) == C.N

    def test_ostream_curiosity_reset_after_service(self):
        services, engine = make_engine()
        engine.on_envelope("p1", Envelope(data_msg(5, 99, f=[(0, 5)])))
        engine.on_envelope("s1", Envelope(NackMessage("P", (TickRange(5, 6),))))
        ost = engine.ostreams["P"]["SHB1"]
        # Serviced immediately from local state: back to N, so the next
        # knowledge message does not re-trigger a retransmission.
        assert ost.stream.curiosity.value_at(5) == C.N

    def test_nack_entirely_final_is_absorbed(self):
        """A nack for ticks the path itself already acked produces a
        silence answer and nothing upstream."""
        services, engine = make_engine()
        engine.on_envelope("p1", Envelope(data_msg(5, 99, f=[(0, 5)])))
        engine.on_envelope("s1", Envelope(AckMessage("P", 6)))
        services.sent.clear()
        engine.on_envelope("s1", Envelope(NackMessage("P", (TickRange(0, 6),))))
        assert services.payloads(NackMessage, "p1") == []
        answers = services.knowledge_to("s1")
        assert answers and answers[0][1].payload.is_silence


class TestTimersAndCounters:
    def test_start_arms_sweep_and_link_status(self):
        services, engine = make_engine()
        engine.start()
        delays = sorted(when for when, __, ___ in services.timers)
        params = engine.params
        assert params.nrt_min in delays
        assert params.link_status_interval in delays

    def test_periodic_timer_reschedules(self):
        services, engine = make_engine()
        engine.start()
        count_before = len(services.timers)
        # fire every armed timer once
        for when, fn, __ in list(services.timers):
            fn()
        assert len(services.timers) >= 2 * count_before - 2

    def test_unknown_pubend_publish_raises(self):
        services, engine = make_engine()
        with pytest.raises(KeyError):
            engine.publish("GHOST", {"v": 1})

    def test_upstream_unreachable_counter(self):
        services, engine = make_engine()
        services.dead_links.update({"p1"})
        engine.on_envelope("s1", Envelope(NackMessage("P", (TickRange(0, 5),))))
        assert engine.counters.get("upstream_unreachable") == 1

    def test_ack_expected_with_target_cell(self):
        services, engine = make_engine()
        engine.on_envelope("p1", Envelope(data_msg(5, 99, f=[(0, 5)])))
        services.sent.clear()
        probe = Envelope(AckExpectedMessage("P", 6), target_cell="SHB1")
        engine.on_envelope("p1", probe)
        assert services.payloads(AckExpectedMessage, "s1")
        assert services.payloads(AckExpectedMessage, "s2") == []


class TestConsolidationAblation:
    def test_disabled_consolidation_forwards_everything(self):
        services, engine = make_engine(
            params=LivenessParams(nack_consolidation=False)
        )
        engine.on_envelope("s1", Envelope(NackMessage("P", (TickRange(0, 50),))))
        engine.on_envelope("s2", Envelope(NackMessage("P", (TickRange(0, 50),))))
        upstream = services.payloads(NackMessage, "p1")
        assert len(upstream) == 2  # both forwarded verbatim
        assert all(n.tick_count() == 50 for (__, n) in upstream)
