"""Unit tests for clients and the exactly-once checker."""

import pytest

from repro.client import (
    DeliveryChecker,
    DuplicateDelivery,
    OrderViolation,
    SubscriberClient,
)
from repro.core.subend import Subscription
from repro.matching.events import Event
from repro.obs import MetricsHub


class TestSubscriberClient:
    def test_records_deliveries(self):
        client = SubscriberClient("a")
        client.on_delivery("P", 5, "m5", 1.0)
        client.on_delivery("P", 9, "m9", 1.1)
        assert client.count() == 2
        assert client.delivered_ticks("P") == [5, 9]

    def test_rejects_duplicates(self):
        client = SubscriberClient("a")
        client.on_delivery("P", 5, "m", 1.0)
        with pytest.raises(DuplicateDelivery):
            client.on_delivery("P", 5, "m", 1.1)

    def test_rejects_out_of_order_per_pubend(self):
        client = SubscriberClient("a")
        client.on_delivery("P", 9, "m", 1.0)
        with pytest.raises(OrderViolation):
            client.on_delivery("P", 5, "m", 1.1)

    def test_interleaving_across_pubends_allowed_in_publisher_order(self):
        client = SubscriberClient("a")
        client.on_delivery("P", 9, "m", 1.0)
        client.on_delivery("Q", 5, "m", 1.1)  # older tick, other pubend: fine
        assert client.count() == 2

    def test_total_order_checks_global_ticks(self):
        client = SubscriberClient("a", check_total_order=True)
        client.on_delivery("P", 9, "m", 1.0)
        with pytest.raises(OrderViolation):
            client.on_delivery("Q", 5, "m", 1.1)

    def test_latency_recorded_from_event_ts(self):
        hub = MetricsHub()
        client = SubscriberClient("a", metrics=hub)
        client.on_delivery("P", 5, Event({"ts": 1.0}), 1.25)
        assert hub.latency.series("a").values() == [pytest.approx(0.25)]

    def test_latency_recorded_from_dict_ts(self):
        hub = MetricsHub()
        client = SubscriberClient("a", metrics=hub)
        client.on_delivery("P", 5, {"ts": 2.0}, 2.5)
        assert hub.latency.series("a").values() == [pytest.approx(0.5)]

    def test_no_latency_without_ts(self):
        hub = MetricsHub()
        client = SubscriberClient("a", metrics=hub)
        client.on_delivery("P", 5, "opaque", 1.0)
        assert len(hub.latency.series("a")) == 0


class FakePublisher:
    def __init__(self, pubend, published):
        self.pubend = pubend
        self.published = published  # (seq, tick, event)


class TestDeliveryChecker:
    def make(self):
        events = [
            (0, 100, Event({"g": 0})),
            (1, 140, Event({"g": 1})),
            (2, 180, Event({"g": 0})),
        ]
        return FakePublisher("P", events)

    def sub(self, predicate=None):
        from repro.matching.parser import parse

        return Subscription(
            "a",
            predicate=parse(predicate) if predicate else (lambda p: True),
            pubends=("P",),
        )

    def test_complete_delivery_passes(self):
        pub = self.make()
        client = SubscriberClient("a")
        for __, tick, event in pub.published:
            client.on_delivery("P", tick, event, 1.0)
        report = DeliveryChecker([pub]).check(client, self.sub())
        assert report.exactly_once
        assert report.delivered == 3

    def test_missing_message_detected(self):
        pub = self.make()
        client = SubscriberClient("a")
        client.on_delivery("P", 100, pub.published[0][2], 1.0)
        client.on_delivery("P", 180, pub.published[2][2], 1.1)
        report = DeliveryChecker([pub]).check(client, self.sub())
        assert not report.exactly_once
        assert report.missing == [("P", 140)]

    def test_unexpected_delivery_detected(self):
        pub = self.make()
        client = SubscriberClient("a")
        client.on_delivery("P", 999, Event({"g": 0}), 1.0)
        report = DeliveryChecker([pub]).check(client, self.sub())
        assert ("P", 999) in report.unexpected

    def test_filter_restricts_expectations(self):
        pub = self.make()
        client = SubscriberClient("a")
        for __, tick, event in pub.published:
            if event["g"] == 0:
                client.on_delivery("P", tick, event, 1.0)
        report = DeliveryChecker([pub]).check(client, self.sub("g = 0"))
        assert report.exactly_once
        assert report.matching_published == 2

    def test_unrelated_pubend_ignored(self):
        pub = self.make()
        other = FakePublisher("OTHER", [(0, 50, Event({"g": 0}))])
        client = SubscriberClient("a")
        for __, tick, event in pub.published:
            client.on_delivery("P", tick, event, 1.0)
        report = DeliveryChecker([pub, other]).check(client, self.sub())
        assert report.exactly_once
