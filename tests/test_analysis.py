"""Unit tests for the analysis/rendering utilities."""

import io

import pytest

from repro.analysis import (
    ascii_plot,
    cumulative,
    resample_max,
    sparkline,
    summarize,
    write_series_csv,
)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series(self):
        line = sparkline([1.0] * 10)
        assert len(set(line)) == 1

    def test_peak_visible(self):
        line = sparkline([0, 0, 0, 10, 0, 0], width=6)
        assert line[3] == "@"
        assert line[0] == " "

    def test_width_respected(self):
        line = sparkline(list(range(1000)), width=50)
        assert len(line) <= 51


class TestResample:
    def test_keeps_peaks(self):
        series = [(float(i), 0.1) for i in range(100)]
        series[42] = (42.0, 9.9)
        out = resample_max(series, bins=10)
        assert max(y for __, y in out) == 9.9
        assert len(out) <= 10

    def test_empty(self):
        assert resample_max([], 5) == []

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            resample_max([(0.0, 1.0)], 0)

    def test_x_centres_ordered(self):
        out = resample_max([(float(i), float(i)) for i in range(50)], bins=5)
        xs = [x for x, __ in out]
        assert xs == sorted(xs)


class TestCumulative:
    def test_running_sum_in_x_order(self):
        out = cumulative([(2.0, 5.0), (1.0, 3.0)])
        assert out == [(1.0, 3.0), (2.0, 8.0)]


class TestAsciiPlot:
    def test_contains_points_and_axis_labels(self):
        text = ascii_plot([(0.0, 0.0), (1.0, 1.0)], width=20, height=5, title="T")
        assert "T" in text
        assert "*" in text
        assert "1.000" in text

    def test_empty(self):
        assert "(no data)" in ascii_plot([], title="x")


class TestSummarize:
    def test_statistics(self):
        stats = summarize(list(range(1, 101)))
        assert stats["min"] == 1
        assert stats["max"] == 100
        assert stats["median"] == pytest.approx(50.5)
        assert stats["mean"] == pytest.approx(50.5)
        assert stats["p99"] == pytest.approx(99.01)
        assert stats["count"] == 100

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestCsv:
    def test_long_form_rows(self):
        out = io.StringIO()
        rows = write_series_csv(
            out, {"a": [(1.0, 2.0)], "b": [(0.5, 1.5), (0.7, 2.5)]}
        )
        assert rows == 3
        lines = out.getvalue().strip().splitlines()
        assert lines[0] == "series,t,value"
        assert lines[1].startswith("a,1.000000")
        assert lines[2].startswith("b,0.500000")
