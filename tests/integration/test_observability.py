"""End-to-end observability: instruments agree with the legacy recorders.

Runs the paper's Figure 6 scenario (b1-s1 link stall/fail/recover on the
figure3 topology) and cross-checks every layer's instruments against the
independent ground truth: the MetricsHub recorders the figures are drawn
from, the subscriber clients' own delivery counts, and the
DeliveryChecker's exactly-once verdict.
"""

import pytest

from repro.client import DeliveryChecker
from repro.core.config import PAPER_FAULT_PARAMS
from repro.faults.injector import FaultInjector
from repro.topology import balanced_pubend_names, figure3_topology

SHBS = ("s1", "s2", "s3", "s4", "s5")


@pytest.fixture(scope="module")
def faulted_run():
    names = balanced_pubend_names(4)
    system = figure3_topology(pubend_names=names).build(
        seed=7, params=PAPER_FAULT_PARAMS
    )
    clients = {
        shb: system.subscribe(f"sub_{shb}", shb, tuple(names)) for shb in SHBS
    }
    publishers = [system.publisher(name, rate=20.0) for name in names]
    injector = FaultInjector(system)
    injector.stall_then_fail_link("b1", "s1", at=2.0, stall=1.0, outage=3.0)
    for publisher in publishers:
        publisher.start(at=0.2)
    system.run_until(10.0)
    for publisher in publishers:
        publisher.stop()
    system.run_until(20.0)
    system.check_invariants()
    return system, clients, publishers


class TestInstrumentsAgreeWithRecorders:
    def test_fault_actually_exercised_nacks(self, faulted_run):
        system, _, _ = faulted_run
        assert system.obs.instruments.total("repro_broker_nacks_sent_total") > 0
        # The stall phase absorbs traffic on the b1-s1 link (senders cannot
        # tell), which is what creates the gaps the nacks repair.
        stalled = system.obs.instruments.get(
            "repro_network_dropped_total", link="b1-s1", reason="stalled"
        )
        assert stalled is not None and stalled.value > 0

    def test_nack_counter_matches_nack_recorder(self, faulted_run):
        system, _, _ = faulted_run
        recorder = system.metrics.nacks
        for node in system.brokers:
            child = system.obs.instruments.get(
                "repro_broker_nacks_sent_total", broker=node
            )
            assert child is not None
            assert child.value == recorder.count(node), node

    def test_nack_range_histogram_matches_nack_recorder(self, faulted_run):
        system, _, _ = faulted_run
        recorder = system.metrics.nacks
        for node in system.brokers:
            hist = system.obs.instruments.get(
                "repro_broker_nack_range_ticks", broker=node
            )
            assert hist is not None
            assert hist.sum == pytest.approx(recorder.total_range(node)), node
            assert hist.count == recorder.count(node), node

    def test_delivery_counter_matches_clients_and_hub(self, faulted_run):
        system, clients, _ = faulted_run
        total = sum(client.count() for client in clients.values())
        assert total > 0
        assert system.obs.instruments.total("repro_subend_deliveries_total") == total
        assert system.metrics.latency.delivered == total

    def test_exactly_once_under_the_fault(self, faulted_run):
        system, clients, publishers = faulted_run
        checker = DeliveryChecker(publishers)
        for shb, client in clients.items():
            report = checker.check(
                client, system.subscriptions[f"sub_{shb}"]
            )
            assert report.exactly_once, shb

    def test_pubend_instruments_match_publishers(self, faulted_run):
        system, _, publishers = faulted_run
        published = sum(len(p.published) for p in publishers)
        assert system.obs.instruments.total(
            "repro_pubend_publishes_total"
        ) == published
        assert system.obs.instruments.total(
            "repro_pubend_log_appends_total"
        ) == published

    def test_network_counters_match_link_stats(self, faulted_run):
        system, _, _ = faulted_run
        for link in system.network.links_of("p1"):
            name = "-".join(sorted(link.endpoints()))
            sent = system.obs.instruments.get("repro_network_sent_total", link=name)
            delivered = system.obs.instruments.get(
                "repro_network_delivered_total", link=name
            )
            assert sent.value == link.stats.sent
            assert delivered.value == link.stats.delivered
