"""Soft-state boundedness: the protocol's memory claim.

"[Our protocol] requires persistent storage only at the publishing site
... and maintains only soft state at intermediate nodes."  Soft state is
only viable if acknowledgement-driven garbage collection keeps it *small*:
a long-running broker must not accumulate per-message state.  These tests
run long simulated sessions and assert, via the engine stats API, that
every stream's run-length footprint and payload count stay bounded and
that the pubend log is continuously truncated.
"""

from repro import LivenessParams
from repro.topology import balanced_pubend_names, figure3_topology, two_broker_topology


def long_run(duration=60.0, rate=50.0):
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    system = topo.build(
        seed=3, params=LivenessParams(gct=0.1, nrt_min=0.3), log_commit_latency=0.01
    )
    system.subscribe("a", "shb", ("P0",))
    pub = system.publisher("P0", rate=rate)
    pub.start(at=0.1)
    system.run_until(duration)
    return system, pub


class TestBoundedness:
    def test_stream_runs_stay_small_over_long_sessions(self):
        system, pub = long_run(duration=60.0)
        assert len(pub.published) > 2500  # a genuinely long session
        for broker_id in ("phb", "shb"):
            stats = system.brokers[broker_id].engine.stats()
            for pubend, entry in stats["streams"].items():
                # Run-length state: an F prefix, the working window, Q tail.
                assert entry["istream_runs"] < 30, (broker_id, entry)
                assert entry["curiosity_runs"] < 30, (broker_id, entry)
                # Payloads: only the not-yet-acked working window.
                assert entry["istream_payloads"] < 100, (broker_id, entry)

    def test_log_is_continuously_truncated(self):
        system, pub = long_run(duration=60.0)
        stats = system.brokers["phb"].engine.stats()
        live_entries = stats["log_entries"]["P0"]
        assert live_entries < 100  # not the ~3000 published
        log = system.brokers["phb"].engine.pubends["P0"].log
        assert log.truncated_below("P0") > 0.9 * 60_000

    def test_footprint_is_flat_not_growing(self):
        """Sample the footprint twice, far apart: no upward trend."""
        topo = two_broker_topology()
        topo.pubend("P0", "phb")
        topo.route("P0", "PHB", "SHB")
        system = topo.build(
            seed=3,
            params=LivenessParams(gct=0.1, nrt_min=0.3),
            log_commit_latency=0.01,
        )
        system.subscribe("a", "shb", ("P0",))
        pub = system.publisher("P0", rate=50.0)
        pub.start(at=0.1)
        system.run_until(15.0)
        early = system.brokers["shb"].engine.stats()["streams"]["P0"]
        system.run_until(75.0)
        late = system.brokers["shb"].engine.stats()["streams"]["P0"]
        assert late["istream_runs"] <= early["istream_runs"] + 10
        assert late["istream_payloads"] <= early["istream_payloads"] + 20

    def test_bounded_under_loss(self):
        """Retransmission traffic must not leak state either."""
        topo = two_broker_topology()
        topo.pubend("P0", "phb")
        topo.route("P0", "PHB", "SHB")
        system = topo.build(
            seed=9,
            params=LivenessParams(gct=0.1, nrt_min=0.3),
            log_commit_latency=0.01,
        )
        system.network.link("phb", "shb").drop_probability = 0.1
        system.subscribe("a", "shb", ("P0",))
        pub = system.publisher("P0", rate=50.0)
        pub.start(at=0.1)
        system.run_until(45.0)
        pub.stop()
        system.run_until(60.0)
        for broker_id in ("phb", "shb"):
            stats = system.brokers[broker_id].engine.stats()
            entry = stats["streams"]["P0"]
            assert entry["istream_runs"] < 40, (broker_id, entry)
            assert entry["istream_payloads"] < 120, (broker_id, entry)

    def test_figure3_brokers_bounded(self):
        names = balanced_pubend_names(2)
        system = figure3_topology(n_pubends=2, pubend_names=names).build(
            seed=7, params=LivenessParams(gct=0.1, nrt_min=0.3)
        )
        for shb in ("s1", "s3"):
            system.subscribe(f"sub_{shb}", shb, tuple(names))
        pubs = [system.publisher(n, rate=25.0) for n in names]
        for pub in pubs:
            pub.start(at=0.2)
        system.run_until(40.0)
        for broker_id in ("p1", "b1", "b2", "b3", "s1"):
            stats = system.brokers[broker_id].engine.stats()
            for pubend, entry in stats["streams"].items():
                assert entry["istream_payloads"] < 150, (broker_id, pubend, entry)
                assert entry["istream_runs"] < 40, (broker_id, pubend, entry)


class TestStatsApi:
    def test_snapshot_shape(self):
        system, __ = long_run(duration=5.0)
        stats = system.brokers["phb"].engine.stats()
        assert stats["broker"] == "phb"
        assert stats["pubends_hosted"] == ["P0"]
        assert "P0" in stats["streams"]
        assert "SHB" in stats["streams"]["P0"]["ostreams"]
        assert stats["streams"]["P0"]["ostreams"]["SHB"]["ack_prefix"] > 0
