"""Fault-injection integration tests: the paper's section 4.2 scenarios
plus harsher conditions (lossy links, repeated faults, log recovery)."""

from repro import DeliveryChecker, FaultInjector, PAPER_FAULT_PARAMS, figure3_topology
from repro.topology import Topology, balanced_pubend_names, two_broker_topology


def fig3_system(n_pubends=2, seed=7, **build_kw):
    names = balanced_pubend_names(n_pubends)
    system = figure3_topology(n_pubends=n_pubends, pubend_names=names).build(
        seed=seed, params=PAPER_FAULT_PARAMS, **build_kw
    )
    return system, names


def run_with_fault(system, names, fault_fn, until=20.0, drain=12.0, shbs=("s1", "s2", "s3")):
    subs = {s: system.subscribe(f"sub_{s}", s, tuple(names)) for s in shbs}
    pubs = [system.publisher(name, rate=25.0) for name in names]
    injector = FaultInjector(system)
    fault_fn(injector)
    for pub in pubs:
        pub.start(at=0.2)
    system.run_until(until)
    for pub in pubs:
        pub.stop()
    system.run_until(until + drain)
    checker = DeliveryChecker(pubs)
    reports = {
        s: checker.check(client, system.subscriptions[f"sub_{s}"])
        for s, client in subs.items()
    }
    system.check_invariants()
    return subs, pubs, reports


class TestLinkFailure:
    def test_stall_then_fail_recovers_exactly_once(self):
        system, names = fig3_system()
        __, pubs, reports = run_with_fault(
            system,
            names,
            lambda inj: inj.stall_then_fail_link("b1", "s1", at=3.0, stall=1.5, outage=5.0),
        )
        assert all(r.exactly_once for r in reports.values())
        assert sum(len(p.published) for p in pubs) > 0

    def test_messages_lost_in_stall_are_nacked(self):
        system, names = fig3_system()
        run_with_fault(
            system,
            names,
            lambda inj: inj.stall_then_fail_link("b1", "s1", at=3.0, stall=1.5, outage=5.0),
        )
        assert system.metrics.nacks.count("s1") > 0
        # subscribers not on the failure path never nack
        assert system.metrics.nacks.count("s3") == 0

    def test_clean_link_failure_loses_nothing(self):
        """Without a stall, adjacent detection is immediate and traffic
        switches paths without loss (paper: 'many such failures did not
        result in even a single message loss')."""
        system, names = fig3_system()
        __, __p, reports = run_with_fault(
            system,
            names,
            lambda inj: (
                inj.at(3.0, lambda: inj.fail_link("b1", "s1")),
                inj.at(9.0, lambda: inj.recover_link("b1", "s1")),
            ),
        )
        assert all(r.exactly_once for r in reports.values())
        assert system.metrics.nacks.count("s1") == 0

    def test_both_bundle_links_down_then_recovery(self):
        """Cut s1 off completely; liveness must recover after repair."""
        system, names = fig3_system()

        def fault(inj):
            inj.at(3.0, lambda: inj.fail_link("b1", "s1"))
            inj.at(3.0, lambda: inj.fail_link("b2", "s1"))
            inj.at(8.0, lambda: inj.recover_link("b1", "s1"))
            inj.at(8.0, lambda: inj.recover_link("b2", "s1"))

        __, __p, reports = run_with_fault(system, names, fault, until=25.0, drain=15.0)
        assert all(r.exactly_once for r in reports.values())


class TestBrokerCrash:
    def test_intermediate_crash_and_restart(self):
        system, names = fig3_system()
        __, __p, reports = run_with_fault(
            system,
            names,
            lambda inj: inj.stall_then_crash_broker("b1", at=3.0, stall=1.5, downtime=8.0),
            until=20.0,
            drain=12.0,
        )
        assert all(r.exactly_once for r in reports.values())

    def test_intermediate_crash_without_restart(self):
        """The surviving cell member carries the load alone."""
        system, names = fig3_system()
        __, __p, reports = run_with_fault(
            system,
            names,
            lambda inj: inj.stall_then_crash_broker("b1", at=3.0, stall=1.5, downtime=None),
            until=18.0,
        )
        assert all(r.exactly_once for r in reports.values())

    def test_nack_consolidation_at_surviving_peer(self):
        system, names = fig3_system(n_pubends=4)
        run_with_fault(
            system,
            names,
            lambda inj: inj.stall_then_crash_broker("b1", at=3.0, stall=1.5, downtime=8.0),
            until=20.0,
            drain=12.0,
            shbs=("s1", "s2"),
        )
        s1 = system.metrics.nacks.total_range("s1")
        s2 = system.metrics.nacks.total_range("s2")
        b2 = system.metrics.nacks.total_range("b2")
        assert s1 > 0 and s2 > 0
        # b2 forwards roughly half of the combined downstream nack range.
        assert b2 <= 0.75 * (s1 + s2)

    def test_repeated_crashes(self):
        system, names = fig3_system()

        def fault(inj):
            inj.stall_then_crash_broker("b1", at=3.0, stall=1.0, downtime=4.0)
            inj.stall_then_crash_broker("b1", at=12.0, stall=1.0, downtime=4.0)

        __, __p, reports = run_with_fault(system, names, fault, until=25.0, drain=15.0)
        assert all(r.exactly_once for r in reports.values())


class TestPhbCrash:
    def test_phb_crash_blocks_publishing_but_stays_exactly_once(self):
        system, names = fig3_system()

        def fault(inj):
            inj.at(3.0, lambda: inj.crash_broker("p1"))
            inj.at(10.0, lambda: inj.restart_broker("p1"))

        __, pubs, reports = run_with_fault(system, names, fault, until=25.0, drain=15.0)
        assert all(r.exactly_once for r in reports.values())
        assert all(p.failed_attempts > 0 for p in pubs)  # down while crashed

    def test_no_nacks_while_phb_down_with_infinite_dct(self):
        system, names = fig3_system()

        def fault(inj):
            inj.at(3.0, lambda: inj.crash_broker("p1"))
            inj.at(13.0, lambda: inj.restart_broker("p1"))

        run_with_fault(system, names, fault, until=28.0, drain=12.0)
        # Any nacks must come after the restart-triggered AckExpected.
        for node in system.metrics.nacks.nodes():
            for sample in system.metrics.nacks.series(node).samples:
                assert sample.t >= 13.0

    def test_logged_but_unsent_messages_survive_crash(self):
        """Messages committed before the crash but never propagated must
        be delivered after recovery (the paper's partial sawtooth)."""
        system, names = fig3_system(n_pubends=1)
        name = names[0]
        sub = system.subscribe("s", "s1", (name,))
        pub = system.publisher(name, rate=25.0)
        injector = FaultInjector(system)
        # Crash immediately after a publish commits but (possibly) before
        # the send: with 100 ms commit latency, crash 50 ms after publish.
        pub.start(at=0.2)
        injector.at(3.01, lambda: injector.crash_broker("p1"))
        injector.at(8.0, lambda: injector.restart_broker("p1"))
        system.run_until(25.0)
        pub.stop()
        system.run_until(40.0)
        report = DeliveryChecker([pub]).check(sub, system.subscriptions["s"])
        assert report.exactly_once


class TestLossyLinks:
    def test_random_drops_everywhere(self):
        """5% i.i.d. loss on every link: GD must still be exactly once."""
        topo = figure3_topology(n_pubends=2, pubend_names=balanced_pubend_names(2))
        lossy = Topology()
        # rebuild the same topology with drop_probability on every link
        system = topo.build(seed=13, params=PAPER_FAULT_PARAMS)
        for link in list(system.network._links.values()):
            link.drop_probability = 0.05
        names = balanced_pubend_names(2)
        subs = {s: system.subscribe(f"sub_{s}", s, tuple(names)) for s in ("s1", "s4")}
        pubs = [system.publisher(name, rate=25.0) for name in names]
        for pub in pubs:
            pub.start(at=0.2)
        system.run_until(15.0)
        for pub in pubs:
            pub.stop()
        system.run_until(35.0)
        checker = DeliveryChecker(pubs)
        for sub_id, client in subs.items():
            report = checker.check(client, system.subscriptions[f"sub_{sub_id}"])
            assert report.exactly_once, report.missing[:5]

    def test_reordering_jitter(self):
        """Heavy jitter reorders messages; delivery order must hold."""
        topo = two_broker_topology()
        topo.pubend("P0", "phb")
        topo.route("P0", "PHB", "SHB")
        system = topo.build(seed=17, params=PAPER_FAULT_PARAMS)
        system.network.link("phb", "shb").jitter = 0.05
        sub = system.subscribe("a", "shb", ("P0",))
        pub = system.publisher("P0", rate=100.0)
        pub.start(at=0.1)
        system.run_until(5.0)
        pub.stop()
        system.run_until(12.0)
        report = DeliveryChecker([pub]).check(sub, system.subscriptions["a"])
        assert report.exactly_once
        ticks = sub.delivered_ticks("P0")
        assert ticks == sorted(ticks)


class TestFileLogRecovery:
    def test_phb_crash_with_file_log(self, tmp_path):
        from repro.storage.log import FileLog

        topo = two_broker_topology()
        topo.pubend("P0", "phb")
        topo.route("P0", "PHB", "SHB")
        system = topo.build(
            seed=3,
            params=PAPER_FAULT_PARAMS,
            log_factory=lambda p: FileLog(str(tmp_path / f"{p}.jsonl"), commit_latency=0.05),
        )
        sub = system.subscribe("a", "shb", ("P0",))
        pub = system.publisher("P0", rate=25.0)
        injector = FaultInjector(system)
        injector.at(2.0, lambda: injector.crash_broker("phb"))
        injector.at(6.0, lambda: injector.restart_broker("phb"))
        pub.start(at=0.2)
        system.run_until(20.0)
        pub.stop()
        system.run_until(35.0)
        report = DeliveryChecker([pub]).check(sub, system.subscriptions["a"])
        assert report.exactly_once
