"""Integration tests for subscription propagation: edge filters derived
dynamically from the subscriptions below each path."""

from repro import DeliveryChecker, LivenessParams
from repro.obs import Tracer
from repro.topology import Topology, balanced_pubend_names, figure3_topology

PROPAGATION = LivenessParams(
    gct=0.1, nrt_min=0.3, subscription_propagation=True, link_status_interval=0.2
)


def chain():
    topo = Topology()
    topo.cell("PHB", "phb").cell("IB", "ib").cell("SHB", "shb")
    topo.link("phb", "ib").link("ib", "shb")
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "IB").route("P0", "IB", "SHB")
    return topo


def knowledge_data_count(tracer, node, to):
    """D ticks actually shipped from ``node`` to ``to``."""
    return sum(
        event.detail.get("d", 0)
        for event in tracer.filter(kind="send", node=node)
        if event.detail.get("to") == to
        and event.detail.get("msg") in ("knowledge", "retransmit")
    )


class TestTrafficPruning:
    def test_narrow_subscription_prunes_upstream_links(self):
        system = chain().build(seed=3, params=PROPAGATION, log_commit_latency=0.01)
        tracer = Tracer(system).install()
        sub = system.subscribe("a", "shb", ("P0",), "g = 0")
        system.run_until(0.5)  # let the summary propagate
        pub = system.publisher("P0", rate=50.0, make_attributes=lambda i: {"g": i % 5})
        pub.start(at=0.6)
        system.run_until(3.0)
        pub.stop()
        system.run_until(5.0)
        report = DeliveryChecker([pub]).check(sub, system.subscriptions["a"])
        assert report.exactly_once
        matching = sum(1 for (__, ___, e) in pub.published if e["g"] == 0)
        shipped_to_shb = knowledge_data_count(tracer, "ib", "shb")
        shipped_to_ib = knowledge_data_count(tracer, "phb", "ib")
        # Both hops carry only the matching fifth of the data.
        assert shipped_to_shb == matching
        assert shipped_to_ib == matching

    def test_without_propagation_everything_is_shipped(self):
        params = PROPAGATION.with_(subscription_propagation=False)
        system = chain().build(seed=3, params=params, log_commit_latency=0.01)
        tracer = Tracer(system).install()
        system.subscribe("a", "shb", ("P0",), "g = 0")
        pub = system.publisher("P0", rate=50.0, make_attributes=lambda i: {"g": i % 5})
        pub.start(at=0.6)
        system.run_until(3.0)
        pub.stop()
        system.run_until(5.0)
        assert knowledge_data_count(tracer, "phb", "ib") == len(pub.published)

    def test_new_subscriber_widens_filters(self):
        system = chain().build(seed=3, params=PROPAGATION, log_commit_latency=0.01)
        sub0 = system.subscribe("zero", "shb", ("P0",), "g = 0")
        system.run_until(0.5)
        pub = system.publisher("P0", rate=50.0, make_attributes=lambda i: {"g": i % 2})
        pub.start(at=0.6)
        system.run_until(2.0)
        # A g=1 subscriber arrives mid-run; summaries widen within the
        # re-advertisement period and it starts receiving.
        sub1 = system.subscribe("one", "shb", ("P0",), "g = 1")
        joined_at = system.now
        system.run_until(5.0)
        pub.stop()
        system.run_until(7.0)
        late_matching = sum(
            1
            for (__, ___, e) in pub.published
            if e["g"] == 1 and e["ts"] > joined_at + 0.5
        )
        assert late_matching > 0
        assert sub1.count() >= late_matching
        # The original subscriber is untouched.
        report = DeliveryChecker([pub]).check(sub0, system.subscriptions["zero"])
        assert report.exactly_once

    def test_unsubscribe_narrows_filters(self):
        system = chain().build(seed=3, params=PROPAGATION, log_commit_latency=0.01)
        tracer = Tracer(system).install()
        system.subscribe("a", "shb", ("P0",), "g = 0")
        system.subscribe("b", "shb", ("P0",), "g = 1")
        system.run_until(0.5)
        pub = system.publisher("P0", rate=50.0, make_attributes=lambda i: {"g": i % 2})
        pub.start(at=0.6)
        system.run_until(2.0)

        def leave():
            system.brokers["shb"].engine.remove_subscription("b")

        system.scheduler.call_at(2.0, leave)
        system.run_until(5.0)
        pub.stop()
        system.run_until(7.0)
        # After the narrowing settles, g=1 data stops flowing to the SHB.
        late_g1 = [
            event
            for event in tracer.filter(kind="send", node="ib", t0=3.0)
            if event.detail.get("to") == "shb" and event.detail.get("d", 0) > 0
        ]
        late_published_g1 = sum(
            1 for (__, ___, e) in pub.published if e["g"] == 1 and e["ts"] > 3.0
        )
        shipped_late = sum(e.detail.get("d", 0) for e in late_g1)
        late_published_g0 = sum(
            1 for (__, ___, e) in pub.published if e["g"] == 0 and e["ts"] > 3.0
        )
        assert shipped_late <= late_published_g0 + 2  # g=1 pruned


class TestPropagationRobustness:
    def test_summaries_survive_intermediate_restart(self):
        from repro.faults.injector import FaultInjector

        names = balanced_pubend_names(2)
        system = figure3_topology(n_pubends=2, pubend_names=names).build(
            seed=7, params=PROPAGATION
        )
        sub = system.subscribe("a", "s1", tuple(names), "g = 0")
        system.run_until(0.5)
        pubs = [
            system.publisher(n, rate=20.0, make_attributes=lambda i: {"g": i % 2})
            for n in names
        ]
        injector = FaultInjector(system)
        injector.stall_then_crash_broker("b1", at=2.0, stall=1.0, downtime=3.0)
        for pub in pubs:
            pub.start(at=0.6)
        system.run_until(10.0)
        for pub in pubs:
            pub.stop()
        system.run_until(20.0)
        report = DeliveryChecker(pubs).check(sub, system.subscriptions["a"])
        assert report.exactly_once

    def test_exactly_once_under_loss_with_propagation(self):
        system = chain().build(seed=11, params=PROPAGATION, log_commit_latency=0.01)
        for link in system.network._links.values():
            link.drop_probability = 0.08
        sub = system.subscribe("a", "shb", ("P0",), "g = 0")
        system.run_until(0.5)
        pub = system.publisher("P0", rate=50.0, make_attributes=lambda i: {"g": i % 3})
        pub.start(at=0.6)
        system.run_until(4.0)
        pub.stop()
        system.run_until(15.0)
        report = DeliveryChecker([pub]).check(sub, system.subscriptions["a"])
        assert report.exactly_once

    def test_opaque_predicate_collapses_summary_to_match_all(self):
        system = chain().build(seed=3, params=PROPAGATION, log_commit_latency=0.01)
        tracer = Tracer(system).install()
        sub = system.subscribe("a", "shb", ("P0",), lambda e: e["g"] == 0)
        system.run_until(0.5)
        pub = system.publisher("P0", rate=50.0, make_attributes=lambda i: {"g": i % 5})
        pub.start(at=0.6)
        system.run_until(2.0)
        pub.stop()
        system.run_until(4.0)
        # Conservative: everything shipped, delivery still filtered locally.
        assert knowledge_data_count(tracer, "phb", "ib") == len(pub.published)
        report = DeliveryChecker([pub]).check(sub, system.subscriptions["a"])
        assert report.exactly_once
