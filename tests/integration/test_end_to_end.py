"""End-to-end integration tests on full simulated systems (failure-free)."""

from repro import (
    DeliveryChecker,
    figure3_topology,
    two_broker_topology,
)


def simple_system(**build_kw):
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    return topo.build(seed=3, **build_kw)


class TestBasicDelivery:
    def test_single_publisher_single_subscriber(self):
        system = simple_system()
        sub = system.subscribe("alice", "shb", ("P0",))
        pub = system.publisher("P0", rate=50.0)
        pub.start(at=0.1)
        system.run_until(2.0)
        pub.stop()
        system.run_until(3.0)
        report = DeliveryChecker([pub]).check(sub, system.subscriptions["alice"])
        assert report.exactly_once
        assert report.delivered == len(pub.published) > 50

    def test_delivery_in_publisher_order(self):
        system = simple_system()
        sub = system.subscribe("alice", "shb", ("P0",))
        pub = system.publisher("P0", rate=100.0)
        pub.start(at=0.1)
        system.run_until(1.0)
        pub.stop()
        system.run_until(2.0)
        ticks = sub.delivered_ticks("P0")
        assert ticks == sorted(ticks)
        published_ticks = [t for (__, t, ___) in pub.published]
        assert ticks == published_ticks

    def test_content_filter_selects_subset(self):
        system = simple_system()
        evens = system.subscribe("evens", "shb", ("P0",), "parity = 0")
        odds = system.subscribe("odds", "shb", ("P0",), "parity = 1")
        pub = system.publisher(
            "P0", rate=100.0, make_attributes=lambda i: {"parity": i % 2}
        )
        pub.start(at=0.1)
        system.run_until(1.0)
        pub.stop()
        system.run_until(2.0)
        checker = DeliveryChecker([pub])
        for name, client in (("evens", evens), ("odds", odds)):
            report = checker.check(client, system.subscriptions[name])
            assert report.exactly_once
            assert 0 < report.delivered < len(pub.published)
        assert evens.count() + odds.count() == len(pub.published)

    def test_latency_includes_commit_delay(self):
        system = simple_system(log_commit_latency=0.05)
        sub = system.subscribe("alice", "shb", ("P0",))
        pub = system.publisher("P0", rate=50.0)
        pub.start(at=0.1)
        system.run_until(2.0)
        pub.stop()
        system.run_until(3.0)
        med = system.metrics.latency.series("alice").median()
        assert 0.05 <= med <= 0.08

    def test_intermediate_filtering(self):
        """A filter on the tree edge prunes traffic for a whole subtree
        while subscribers still get a gapless matching subsequence."""
        topo = two_broker_topology()
        topo.pubend("P0", "phb")
        from repro.matching.parser import parse

        topo.route("P0", "PHB", "SHB", predicate=parse("v >= 5"))
        system = topo.build(seed=3)
        sub = system.subscribe("alice", "shb", ("P0",), "v >= 5")
        pub = system.publisher("P0", rate=50.0, make_attributes=lambda i: {"v": i % 10})
        pub.start(at=0.1)
        system.run_until(2.0)
        pub.stop()
        system.run_until(3.5)
        report = DeliveryChecker([pub]).check(sub, system.subscriptions["alice"])
        assert report.exactly_once
        assert report.delivered == sum(
            1 for (__, ___, e) in pub.published if e["v"] >= 5
        )


class TestMultiPubend:
    def build(self):
        system = figure3_topology(
            n_pubends=2, pubend_names=["P0", "P1"]
        ).build(seed=11)
        return system

    def test_publisher_order_across_pubends(self):
        system = self.build()
        sub = system.subscribe("alice", "s3", ("P0", "P1"))
        pubs = [system.publisher(p, rate=40.0) for p in ("P0", "P1")]
        for pub in pubs:
            pub.start(at=0.1)
        system.run_until(2.0)
        for pub in pubs:
            pub.stop()
        system.run_until(3.5)
        checker = DeliveryChecker(pubs)
        report = checker.check(sub, system.subscriptions["alice"])
        assert report.exactly_once
        # per-pubend order enforced by the client online check already
        assert sub.count() == sum(len(p.published) for p in pubs)

    def test_total_order_subscribers_agree(self):
        system = self.build()
        t1 = system.subscribe("t1", "s1", ("P0", "P1"), total_order=True)
        t2 = system.subscribe("t2", "s1", ("P0", "P1"), total_order=True)
        t3 = system.subscribe("t3", "s4", ("P0", "P1"), total_order=True)
        pubs = [system.publisher(p, rate=40.0) for p in ("P0", "P1")]
        for pub in pubs:
            pub.start(at=0.1)
        system.run_until(2.5)
        for pub in pubs:
            pub.stop()
        system.run_until(5.0)
        seq1 = [(p, t) for (p, t, __, ___) in t1.received]
        seq2 = [(p, t) for (p, t, __, ___) in t2.received]
        seq3 = [(p, t) for (p, t, __, ___) in t3.received]
        assert seq1 == seq2 == seq3
        assert len(seq1) == sum(len(p.published) for p in pubs)
        ticks = [t for (__, t) in seq1]
        assert ticks == sorted(ticks)

    def test_mixed_order_subscribers_coexist(self):
        system = self.build()
        po = system.subscribe("po", "s2", ("P0", "P1"))
        to = system.subscribe("to", "s2", ("P0", "P1"), total_order=True)
        pubs = [system.publisher(p, rate=30.0) for p in ("P0", "P1")]
        for pub in pubs:
            pub.start(at=0.1)
        system.run_until(2.0)
        for pub in pubs:
            pub.stop()
        system.run_until(4.0)
        assert po.count() == to.count() == sum(len(p.published) for p in pubs)


class TestFanOut:
    def test_many_subscribers_all_exactly_once(self):
        system = simple_system()
        subs = {}
        for i in range(40):
            subs[f"c{i}"] = system.subscribe(f"c{i}", "shb", ("P0",), f"g = {i % 8}")
        pub = system.publisher("P0", rate=80.0, make_attributes=lambda i: {"g": i % 8})
        pub.start(at=0.1)
        system.run_until(2.0)
        pub.stop()
        system.run_until(3.0)
        checker = DeliveryChecker([pub])
        for name, client in subs.items():
            report = checker.check(client, system.subscriptions[name])
            assert report.exactly_once, (name, report.missing[:3])

    def test_idle_pubend_does_not_block_others(self):
        system = figure3_topology(n_pubends=2, pubend_names=["P0", "P1"]).build(
            seed=5
        )
        sub = system.subscribe("t", "s1", ("P0", "P1"), total_order=True)
        pub = system.publisher("P0", rate=40.0)  # P1 stays silent
        pub.start(at=0.1)
        system.run_until(3.0)
        pub.stop()
        system.run_until(5.0)
        # Total order over {P0, P1} must still advance thanks to silence
        # broadcast from the idle pubend P1.
        assert sub.count() == len(pub.published) > 0


class TestSystemBookkeeping:
    def test_log_truncation_happens(self):
        system = simple_system()
        system.subscribe("alice", "shb", ("P0",))
        pub = system.publisher("P0", rate=50.0)
        pub.start(at=0.1)
        system.run_until(3.0)
        pub.stop()
        system.run_until(6.0)
        phb = system.brokers["phb"]
        log = phb.engine.pubends["P0"].log
        # Acks flowed back and the log prefix was truncated.
        assert log.truncated_below("P0") > 0
        assert len(log.entries("P0")) < len(pub.published)

    def test_soft_state_gc_at_shb(self):
        system = simple_system()
        system.subscribe("alice", "shb", ("P0",))
        pub = system.publisher("P0", rate=50.0)
        pub.start(at=0.1)
        system.run_until(3.0)
        pub.stop()
        system.run_until(5.0)
        shb = system.brokers["shb"]
        ist = shb.engine.istreams["P0"]
        # Delivered-and-acked payloads are garbage collected.
        assert ist.stream.knowledge.d_tick_count() == 0

    def test_system_invariants_after_run(self):
        system = simple_system()
        system.subscribe("alice", "shb", ("P0",))
        pub = system.publisher("P0", rate=50.0)
        pub.start(at=0.1)
        system.run_until(3.0)
        pub.stop()
        system.run_until(5.0)
        system.check_invariants()

    def test_deterministic_runs(self):
        def run(seed):
            system = simple_system()
            sub = system.subscribe("a", "shb", ("P0",))
            pub = system.publisher("P0", rate=50.0)
            pub.start(at=0.1)
            system.run_until(2.0)
            return [(p, t) for (p, t, __, ___) in sub.received]

        assert run(3) == run(3)
