"""Integration tests for the optional/extension features:

* pre-assigned finality (Aguilera & Strom 2000, paper section 2.2);
* dynamic subscriptions (paper: supported by Gryphon, scoped out of the
  static model — here: subscribers may come and go at an SHB mid-run);
* silence broadcast on/off (the paper's strict first-time-silence rule).
"""

import math

from repro import DeliveryChecker, LivenessParams
from repro.topology import balanced_pubend_names, figure3_topology, two_broker_topology


class TestPreassignedFinality:
    def run_merge_lag(self, params, slow_window=None):
        """Total-order subscriber over a fast and a slow pubend: how long
        do the fast pubend's messages wait for the slow one?

        ``slow_window`` pre-assigns finality at the *slow* pubend only
        (the paper's framing: a pubend aware of its own expected
        publication period).
        """
        names = balanced_pubend_names(2)
        fast, slow = names
        preassign = {slow: slow_window} if slow_window else None
        system = figure3_topology(
            n_pubends=2, pubend_names=names, preassign=preassign
        ).build(seed=31, params=params)
        sub = system.subscribe("t", "s1", tuple(names), total_order=True)
        fast_pub = system.publisher(fast, rate=50.0)
        slow_pub = system.publisher(slow, rate=2.0)
        fast_pub.start(at=0.2)
        slow_pub.start(at=0.2)
        system.run_until(6.0)
        fast_pub.stop()
        slow_pub.stop()
        system.run_until(12.0)
        report_ok = all(
            DeliveryChecker([fast_pub, slow_pub])
            .check(sub, system.subscriptions["t"])
            .exactly_once
            for __ in (0,)
        )
        lat = system.metrics.latency.series("t")
        return report_ok, lat.median()

    def test_preassign_cuts_merge_latency(self):
        base = LivenessParams(silence_interval=0.5)
        ok_without, lag_without = self.run_merge_lag(base)
        ok_with, lag_with = self.run_merge_lag(base, slow_window=0.5)
        assert ok_without and ok_with
        # Without pre-assigned F, the merged stream waits for the slow
        # pubend's next message or silence (~hundreds of ms); with it,
        # every publication finalizes the next 500 ms up front.
        assert lag_with < lag_without / 2

    def test_preassign_preserves_tick_monotonicity(self):
        from repro.core.pubend import Pubend
        from repro.storage.log import MemoryLog

        pb = Pubend("P", MemoryLog(), preassign_window=0.2)
        t1 = pb.publish("a", 1.0).data[0].tick
        # Publishing "too early" is pushed past the pre-assigned window.
        t2 = pb.publish("b", 1.01).data[0].tick
        assert t2 >= t1 + 200
        pb.stream.check_invariants()

    def test_preassign_message_carries_future_finality(self):
        from repro.core.pubend import Pubend
        from repro.storage.log import MemoryLog

        pb = Pubend("P", MemoryLog(), preassign_window=0.1)
        message = pb.publish("a", 1.0)
        tick = message.data[0].tick
        future = [r for r in message.f_ranges if r.start == tick + 1]
        assert future and len(future[0]) == 100


class TestDynamicSubscriptions:
    def test_subscriber_joining_mid_run_gets_the_future(self):
        topo = two_broker_topology()
        topo.pubend("P0", "phb")
        topo.route("P0", "PHB", "SHB")
        system = topo.build(seed=5)
        early = system.subscribe("early", "shb", ("P0",))
        pub = system.publisher("P0", rate=50.0)
        pub.start(at=0.1)
        system.run_until(2.0)
        published_before_join = len(pub.published)
        late = system.subscribe("late", "shb", ("P0",))
        system.run_until(4.0)
        pub.stop()
        system.run_until(6.0)
        # The late subscriber sees (at least) everything published after
        # it joined, in order, without duplicates — and nothing breaks
        # for the early one.
        assert late.count() >= len(pub.published) - published_before_join - 5
        assert late.count() < len(pub.published)
        ticks = late.delivered_ticks("P0")
        assert ticks == sorted(ticks)
        report = DeliveryChecker([pub]).check(early, system.subscriptions["early"])
        assert report.exactly_once

    def test_unsubscribe_mid_run(self):
        topo = two_broker_topology()
        topo.pubend("P0", "phb")
        topo.route("P0", "PHB", "SHB")
        system = topo.build(seed=5)
        fickle = system.subscribe("fickle", "shb", ("P0",))
        stable = system.subscribe("stable", "shb", ("P0",))
        pub = system.publisher("P0", rate=50.0)
        pub.start(at=0.1)
        system.run_until(2.0)

        def leave():
            system.brokers["shb"].engine.subend.unsubscribe("fickle")

        system.scheduler.call_at(2.0, leave)
        count_at_leave = fickle.count()
        system.run_until(4.0)
        pub.stop()
        system.run_until(6.0)
        assert fickle.count() <= count_at_leave + 10  # nothing after leaving
        report = DeliveryChecker([pub]).check(stable, system.subscriptions["stable"])
        assert report.exactly_once


class TestSilenceBroadcastAblation:
    def test_paper_strict_silence_rule_still_exactly_once(self):
        """silence_broadcast=False is the paper's strict rule: first-time
        silence only to curious paths.  Liveness then leans on AET."""
        params = LivenessParams(
            gct=0.1, nrt_min=0.3, aet=2.0, dct=math.inf, silence_broadcast=False
        )
        topo = two_broker_topology()
        topo.pubend("P0", "phb")
        topo.route("P0", "PHB", "SHB")
        system = topo.build(seed=9, params=params, log_commit_latency=0.01)
        system.network.link("phb", "shb").drop_probability = 0.05
        sub = system.subscribe("a", "shb", ("P0",))
        pub = system.publisher("P0", rate=40.0)
        pub.start(at=0.1)
        system.run_until(4.0)
        pub.stop()
        system.run_until(20.0)
        report = DeliveryChecker([pub]).check(sub, system.subscriptions["a"])
        assert report.exactly_once
