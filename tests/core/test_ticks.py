"""Unit tests for tick ranges and range algebra."""

import pytest

from repro.core.ticks import (
    TICKS_PER_SECOND,
    TickRange,
    merge_ranges,
    subtract_ranges,
    tick_of_time,
    time_of_tick,
)


class TestTickRange:
    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            TickRange(5, 5)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            TickRange(6, 5)

    def test_len_and_contains(self):
        rng = TickRange(3, 7)
        assert len(rng) == 4
        assert 3 in rng
        assert 6 in rng
        assert 7 not in rng
        assert 2 not in rng

    def test_iteration_yields_every_tick(self):
        assert list(TickRange(2, 5)) == [2, 3, 4]

    def test_single(self):
        rng = TickRange.single(9)
        assert list(rng) == [9]

    def test_inclusive(self):
        rng = TickRange.inclusive(3, 5)
        assert list(rng) == [3, 4, 5]

    def test_overlaps(self):
        assert TickRange(0, 5).overlaps(TickRange(4, 10))
        assert not TickRange(0, 5).overlaps(TickRange(5, 10))
        assert TickRange(3, 4).overlaps(TickRange(0, 10))

    def test_touches_includes_adjacency(self):
        assert TickRange(0, 5).touches(TickRange(5, 10))
        assert not TickRange(0, 5).touches(TickRange(6, 10))

    def test_intersection(self):
        assert TickRange(0, 5).intersection(TickRange(3, 10)) == TickRange(3, 5)
        assert TickRange(0, 5).intersection(TickRange(5, 10)) is None

    def test_union_of_touching(self):
        assert TickRange(0, 5).union(TickRange(5, 10)) == TickRange(0, 10)

    def test_union_of_disjoint_raises(self):
        with pytest.raises(ValueError):
            TickRange(0, 5).union(TickRange(6, 10))

    def test_subtract_middle_splits(self):
        assert TickRange(0, 10).subtract(TickRange(3, 6)) == [
            TickRange(0, 3),
            TickRange(6, 10),
        ]

    def test_subtract_prefix(self):
        assert TickRange(0, 10).subtract(TickRange(0, 4)) == [TickRange(4, 10)]

    def test_subtract_cover_leaves_nothing(self):
        assert TickRange(3, 6).subtract(TickRange(0, 10)) == []

    def test_subtract_disjoint_keeps_all(self):
        assert TickRange(0, 3).subtract(TickRange(5, 8)) == [TickRange(0, 3)]

    def test_split_chops_evenly(self):
        pieces = TickRange(0, 10).split(4)
        assert pieces == [TickRange(0, 4), TickRange(4, 8), TickRange(8, 10)]

    def test_split_no_op_when_small(self):
        assert TickRange(0, 3).split(10) == [TickRange(0, 3)]

    def test_split_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TickRange(0, 3).split(0)

    def test_ordering_is_positional(self):
        assert sorted([TickRange(5, 6), TickRange(0, 2)]) == [
            TickRange(0, 2),
            TickRange(5, 6),
        ]


class TestRangeAlgebra:
    def test_merge_coalesces_adjacent(self):
        assert merge_ranges([TickRange(0, 3), TickRange(3, 6)]) == [TickRange(0, 6)]

    def test_merge_coalesces_overlapping(self):
        assert merge_ranges([TickRange(0, 4), TickRange(2, 6)]) == [TickRange(0, 6)]

    def test_merge_keeps_disjoint(self):
        out = merge_ranges([TickRange(5, 6), TickRange(0, 2)])
        assert out == [TickRange(0, 2), TickRange(5, 6)]

    def test_merge_empty(self):
        assert merge_ranges([]) == []

    def test_subtract_ranges(self):
        base = [TickRange(0, 10), TickRange(20, 30)]
        removals = [TickRange(5, 25)]
        assert subtract_ranges(base, removals) == [TickRange(0, 5), TickRange(25, 30)]

    def test_subtract_ranges_no_removals(self):
        assert subtract_ranges([TickRange(1, 2)], []) == [TickRange(1, 2)]


class TestTimeConversion:
    def test_round_trip(self):
        assert tick_of_time(1.5) == 1500
        assert time_of_tick(1500) == 1.5

    def test_granularity(self):
        assert TICKS_PER_SECOND == 1000
        assert tick_of_time(0.0004) == 0
        assert tick_of_time(0.001) == 1
