"""Property-based wire-codec round trips: every message survives
encode -> JSON -> decode exactly."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broker.state import Envelope, LinkStatusMessage
from repro.core.messages import (
    AckExpectedMessage,
    AckMessage,
    DataTick,
    KnowledgeMessage,
    NackMessage,
    decode_message,
    encode_message,
)
from repro.core.ticks import TickRange
from repro.matching.events import Event

pubend_ids = st.text(
    alphabet="abcdefgP0123456789_", min_size=1, max_size=12
)

scalars = st.one_of(
    st.integers(-(10**6), 10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=10),
    st.booleans(),
)

events = st.builds(
    Event,
    st.dictionaries(
        st.text(alphabet="abcxyz", min_size=1, max_size=6), scalars, max_size=4
    ),
    body=st.one_of(st.none(), st.text(max_size=20)),
)

payloads = st.one_of(
    scalars,
    events,
    st.dictionaries(st.text(max_size=5), scalars, max_size=3),
)


@st.composite
def tick_ranges(draw, lo=0, hi=10_000):
    start = draw(st.integers(lo, hi - 1))
    stop = draw(st.integers(start + 1, hi))
    return TickRange(start, stop)


@st.composite
def knowledge_messages(draw):
    fin = draw(st.integers(0, 1000))
    n_f = draw(st.integers(0, 4))
    f_ranges = []
    cursor = fin
    for __ in range(n_f):
        start = cursor + draw(st.integers(0, 50))
        stop = start + draw(st.integers(1, 50))
        f_ranges.append(TickRange(start, stop))
        cursor = stop
    n_d = draw(st.integers(0, 3))
    data = []
    tick = max(fin, cursor)
    for __ in range(n_d):
        tick += draw(st.integers(1, 40))
        data.append(DataTick(tick, draw(payloads)))
    return KnowledgeMessage(
        pubend=draw(pubend_ids),
        fin_prefix=fin,
        f_ranges=tuple(f_ranges),
        data=tuple(data),
        retransmit=draw(st.booleans()),
    )


gd_messages = st.one_of(
    knowledge_messages(),
    st.builds(AckMessage, pubend=pubend_ids, up_to=st.integers(0, 10**9)),
    st.builds(
        NackMessage,
        pubend=pubend_ids,
        ranges=st.lists(tick_ranges(), min_size=1, max_size=4).map(tuple),
    ),
    st.builds(
        AckExpectedMessage, pubend=pubend_ids, up_to=st.integers(0, 10**9)
    ),
)


class TestGDMessageCodec:
    @given(gd_messages)
    @settings(max_examples=300)
    def test_round_trip_through_json(self, message):
        wire = json.loads(json.dumps(encode_message(message)))
        assert decode_message(wire) == message


class TestEnvelopeCodec:
    @given(
        gd_messages,
        st.one_of(st.none(), st.text(alphabet="ABCS12", min_size=1, max_size=6)),
        st.booleans(),
    )
    @settings(max_examples=200)
    def test_round_trip_through_json(self, message, target_cell, sideways):
        envelope = Envelope(message, target_cell=target_cell, sideways=sideways)
        wire = json.loads(json.dumps(envelope.to_wire()))
        assert Envelope.from_wire(wire) == envelope


class TestLinkStatusCodec:
    @given(
        st.text(alphabet="bps123", min_size=1, max_size=6),
        st.frozensets(st.text(alphabet="SHBI12", min_size=1, max_size=6), max_size=5),
    )
    @settings(max_examples=100)
    def test_round_trip_through_json(self, sender, cells):
        status = LinkStatusMessage(sender, cells)
        wire = json.loads(json.dumps(status.to_wire()))
        assert LinkStatusMessage.from_wire(wire) == status


class TestEventCodec:
    @given(events)
    @settings(max_examples=200)
    def test_round_trip_through_json(self, event):
        wire = json.loads(json.dumps(event.to_wire()))
        assert Event.from_wire(wire) == event
