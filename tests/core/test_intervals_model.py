"""Differential model test for :class:`repro.core.intervals.IntervalMap`.

The RLE map now has two update paths — the general splice engine and the
O(1) tail-append fast path (``IntervalMap.fast_path``) — and both must
agree exactly with the obvious reference model: a plain ``{tick: value}``
dict.  This test drives long random operation sequences through every
public mutator (``set_range`` / ``set_value`` / ``clear_range`` /
``combine_range`` / ``transform_range``) against both implementations,
checks :meth:`IntervalMap.check_invariants` after **every** operation,
and compares the full materialized contents after every operation.

Sequences are biased toward the publish pattern that motivated the fast
path (monotone appends at the growing tail) as well as uniformly random
splices, so both branches of ``_apply`` see heavy traffic; a counter
assertion at the end proves each branch actually ran.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

import pytest

from repro.core.intervals import STATS, IntervalMap
from repro.core.ticks import TickRange

SPAN = 120  # model universe is ticks [0, SPAN)
DEFAULT = 0

# Value transformers used by combine_range / transform_range.  Named
# functions (not lambdas) so failures print readably.


def _max(old: int, new: int) -> int:
    return max(old, new)


def _add(old: int, new: int) -> int:
    return old + new


def _bump(old: int) -> int:
    return old + 1


def _clamp(old: int) -> int:
    return min(old, 3)


class DictModel:
    """The reference implementation: a dense dict over [0, SPAN)."""

    def __init__(self) -> None:
        self.data: Dict[int, int] = {}

    def get(self, tick: int) -> int:
        return self.data.get(tick, DEFAULT)

    def set_range(self, rng: TickRange, value: int) -> None:
        for t in range(rng.start, rng.stop):
            self.data[t] = value

    def set_value(self, tick: int, value: int) -> None:
        self.data[tick] = value

    def clear_range(self, rng: TickRange) -> None:
        for t in range(rng.start, rng.stop):
            self.data.pop(t, None)

    def combine_range(
        self, rng: TickRange, value: int, fn: Callable[[int, int], int]
    ) -> None:
        for t in range(rng.start, rng.stop):
            self.data[t] = fn(self.get(t), value)

    def transform_range(self, rng: TickRange, fn: Callable[[int], int]) -> None:
        for t in range(rng.start, rng.stop):
            self.data[t] = fn(self.get(t))

    def to_dict(self, lo: int, hi: int) -> Dict[int, int]:
        return {t: self.get(t) for t in range(lo, hi)}


Op = Tuple  # (name, *args) — applied by name to both implementations


def _random_ops(rng: random.Random, count: int) -> List[Op]:
    """A mixed op sequence: uniform splices plus tail-append bursts."""
    ops: List[Op] = []
    tail = 0  # grows monotonically; appends at/past it hit the fast path
    while len(ops) < count:
        roll = rng.random()
        if roll < 0.35:
            # Tail-append burst: the pubend publish pattern.
            width = rng.randint(1, 6)
            value = rng.randint(0, 4)
            kind = rng.choice(("set", "combine", "transform"))
            stop = min(SPAN, tail + width)
            if tail >= stop:
                tail = 0  # hit the end of the universe; restart the appends
                continue
            r = TickRange(tail, stop)
            if kind == "set":
                ops.append(("set_range", r, value))
            elif kind == "combine":
                ops.append(("combine_range", r, value, rng.choice((_max, _add))))
            else:
                ops.append(("transform_range", r, rng.choice((_bump, _clamp))))
            tail = r.stop
        elif roll < 0.75:
            # Uniform random splice anywhere in the universe.
            start = rng.randint(0, SPAN - 1)
            stop = min(SPAN, start + rng.randint(1, 25))
            r = TickRange(start, stop)
            kind = rng.random()
            if kind < 0.4:
                ops.append(("set_range", r, rng.randint(0, 4)))
            elif kind < 0.6:
                ops.append(("clear_range", r))
            elif kind < 0.8:
                ops.append(
                    ("combine_range", r, rng.randint(0, 4), rng.choice((_max, _add)))
                )
            else:
                ops.append(("transform_range", r, rng.choice((_bump, _clamp))))
        else:
            ops.append(("set_value", rng.randint(0, SPAN - 1), rng.randint(0, 4)))
    return ops


def _apply_op(target, op: Op) -> None:
    name, args = op[0], op[1:]
    getattr(target, name)(*args)


def _run_sequence(ops: List[Op], fast_path: bool) -> None:
    imap: IntervalMap[int] = IntervalMap(default=DEFAULT)
    model = DictModel()
    saved = IntervalMap.fast_path
    IntervalMap.fast_path = fast_path
    try:
        for step, op in enumerate(ops):
            _apply_op(imap, op)
            _apply_op(model, op)
            imap.check_invariants()
            got = imap.to_dict(0, SPAN)
            want = model.to_dict(0, SPAN)
            assert got == want, (
                f"divergence after step {step} {op[0]}{op[1:]} "
                f"(fast_path={fast_path}): "
                f"{ {t: (got[t], want[t]) for t in got if got[t] != want[t]} }"
            )
    finally:
        IntervalMap.fast_path = saved


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("fast_path", (True, False))
def test_random_ops_match_dict_model(seed: int, fast_path: bool) -> None:
    rng = random.Random(0xBEEF00 + seed)
    _run_sequence(_random_ops(rng, 120), fast_path)


def test_fast_path_and_splice_path_both_exercised() -> None:
    """The op mix must drive both branches of ``_apply`` — otherwise the
    parametrized differential above silently stops covering one of them."""
    before_tail, before_splice = STATS.tail_appends, STATS.splices
    rng = random.Random(0xFA57)
    _run_sequence(_random_ops(rng, 200), True)
    # Uniform splices quickly extend the stored tail, so only the early
    # append bursts qualify for the fast path — a handful is enough here;
    # test_pure_append_workload_is_splice_free covers it in depth.
    assert STATS.tail_appends - before_tail >= 10
    assert STATS.splices - before_splice > 20


def test_fast_path_off_never_tail_appends() -> None:
    before = STATS.tail_appends
    rng = random.Random(0x510)
    _run_sequence(_random_ops(rng, 100), False)
    assert STATS.tail_appends == before


def test_pure_append_workload_is_splice_free() -> None:
    """The motivating claim: a monotone publish pattern does zero splices."""
    imap: IntervalMap[int] = IntervalMap(default=DEFAULT)
    model = DictModel()
    before = STATS.splices
    for i in range(300):
        r = TickRange(i * 3, i * 3 + 3)
        op: Op = ("set_range", r, 1 + (i % 2))
        _apply_op(imap, op)
        _apply_op(model, op)
    imap.check_invariants()
    assert STATS.splices == before
    assert imap.to_dict(0, 40) == model.to_dict(0, 40)
    assert imap.get(299 * 3 + 2) == model.get(299 * 3 + 2)
