"""Unit tests for the pubend: tick assignment, logging, silence, AET,
retransmission, and crash recovery."""

import pytest

from repro.core.lattice import K
from repro.core.pubend import Pubend
from repro.core.ticks import TickRange
from repro.storage.log import MemoryLog


def make_pubend(**kw):
    return Pubend("P", MemoryLog(), **kw)


class TestTickAssignment:
    def test_tick_at_or_after_now(self):
        pb = make_pubend()
        assert pb.assign_tick(1.5) >= 1500

    def test_ticks_strictly_increase(self):
        pb = make_pubend()
        t1 = pb.publish("a", 1.0).data[0].tick
        t2 = pb.publish("b", 1.0).data[0].tick  # same instant
        assert t2 > t1

    def test_slot_congruence(self):
        pb = Pubend("P", MemoryLog(), slot=3, n_slots=4)
        for i in range(5):
            tick = pb.publish(f"m{i}", 1.0 + i * 0.0001).data[0].tick
            assert tick % 4 == 3

    def test_slot_validation(self):
        with pytest.raises(ValueError):
            Pubend("P", MemoryLog(), slot=4, n_slots=4)

    def test_distinct_slots_never_collide(self):
        a = Pubend("A", MemoryLog(), slot=0, n_slots=2)
        b = Pubend("B", MemoryLog(), slot=1, n_slots=2)
        ticks_a = {a.publish(i, 2.0).data[0].tick for i in range(20)}
        ticks_b = {b.publish(i, 2.0).data[0].tick for i in range(20)}
        assert not ticks_a & ticks_b


class TestPublish:
    def test_message_has_paper_form(self):
        """F*Q*F*DF*Q*: final prefix + bracketing F + single D."""
        pb = make_pubend()
        pb.publish("a", 1.0)
        msg = pb.publish("b", 2.0)
        assert len(msg.data) == 1
        tick = msg.data[0].tick
        # The bracket finalizes everything between the two D ticks.
        assert any(r.stop == tick for r in msg.f_ranges)

    def test_publish_logs_before_returning(self):
        log = MemoryLog()
        pb = Pubend("P", log)
        msg = pb.publish("hello", 1.0)
        entries = log.entries("P")
        assert len(entries) == 1
        assert entries[0].tick == msg.data[0].tick
        assert entries[0].payload == "hello"

    def test_stream_form_is_prefix_then_data(self):
        """Stream shape F* [D|F]* Q* from section 2.2."""
        pb = make_pubend()
        for i in range(3):
            pb.publish(f"m{i}", 1.0 + 0.1 * i)
        horizon = pb.stream.horizon()
        seen_q = False
        for t in range(horizon):
            value = pb.stream.value_at(t)
            assert value in (K.D, K.F)
        assert pb.stream.value_at(horizon) == K.Q


class TestSilence:
    def test_no_silence_when_recent(self):
        pb = make_pubend(silence_interval=0.5)
        pb.publish("a", 1.0)
        assert pb.maybe_silence(1.2) is None

    def test_silence_finalizes_idle_range(self):
        pb = make_pubend(silence_interval=0.5)
        pb.publish("a", 1.0)
        horizon = pb.stream.horizon()
        msg = pb.maybe_silence(2.0)
        assert msg is not None
        assert msg.is_silence
        assert msg.f_ranges == (TickRange(horizon, 2000),)
        assert pb.stream.value_at(1800) == K.F

    def test_publish_after_silence_never_collides(self):
        pb = make_pubend(silence_interval=0.1)
        pb.publish("a", 1.0)
        pb.maybe_silence(2.0)
        msg = pb.publish("b", 1.5)  # clock skew: "now" before silence end
        assert msg.data[0].tick >= 2000


class TestAckAndAet:
    def test_record_ack_truncates_log(self):
        log = MemoryLog()
        pb = Pubend("P", log)
        msg = pb.publish("a", 1.0)
        tick = msg.data[0].tick
        assert pb.record_ack(tick + 1)
        assert log.entries("P") == []
        assert log.truncated_below("P") == tick + 1
        assert pb.stream.value_at(tick) == K.F

    def test_record_ack_monotone(self):
        pb = make_pubend()
        pb.publish("a", 1.0)
        assert pb.record_ack(500)
        assert not pb.record_ack(400)

    def test_aet_quiet_when_acked(self):
        pb = make_pubend(aet=10.0)
        msg = pb.publish("a", 1.0)
        pb.record_ack(msg.data[0].tick + 1)
        assert pb.ack_expected_tick(100.0) is None

    def test_aet_fires_for_old_unacked(self):
        pb = make_pubend(aet=10.0)
        pb.publish("a", 1.0)
        assert pb.ack_expected_tick(5.0) is None  # not old enough
        threshold = pb.ack_expected_tick(20.0)
        assert threshold is not None

    def test_aet_capped_at_horizon(self):
        """After recovery the probe carries the last logged tick, not
        wall-clock time (paper Figure 8)."""
        pb = make_pubend(aet=10.0)
        pb.publish("a", 1.0)
        horizon = pb.stream.horizon()
        assert pb.ack_expected_tick(1000.0) == horizon


class TestRetransmission:
    def test_answers_d_and_f(self):
        pb = make_pubend()
        m1 = pb.publish("a", 1.0)
        m2 = pb.publish("b", 2.0)
        t1, t2 = m1.data[0].tick, m2.data[0].tick
        out = pb.retransmission([TickRange(0, t2 + 1)])
        assert out is not None
        assert out.retransmit
        assert [d.tick for d in out.data] == [t1, t2]
        assert out.f_ranges  # the silent gaps

    def test_unknown_future_stays_q(self):
        pb = make_pubend()
        pb.publish("a", 1.0)
        horizon = pb.stream.horizon()
        out = pb.retransmission([TickRange(horizon, horizon + 100)])
        assert out is None


class TestRecovery:
    def test_recover_replays_log(self):
        log = MemoryLog()
        pb = Pubend("P", log)
        ticks = [pb.publish(f"m{i}", 1.0 + i * 0.1).data[0].tick for i in range(5)]
        fresh = Pubend("P", log)
        assert fresh.recover() == 5
        for tick, i in zip(ticks, range(5)):
            assert fresh.stream.value_at(tick) == K.D
            assert fresh.stream.payload_at(tick) == f"m{i}"
        assert fresh.stream.horizon() == pb.stream.horizon()

    def test_recover_respects_truncation(self):
        log = MemoryLog()
        pb = Pubend("P", log)
        first = pb.publish("a", 1.0).data[0].tick
        second = pb.publish("b", 2.0).data[0].tick
        pb.record_ack(first + 1)
        fresh = Pubend("P", log)
        fresh.recover()
        assert fresh.acked_up_to == first + 1
        assert fresh.stream.value_at(first) == K.F
        assert fresh.stream.value_at(second) == K.D

    def test_recover_empty_log(self):
        pb = Pubend("P", MemoryLog())
        assert pb.recover() == 0
        assert pb.stream.horizon() == 0
