"""Unit and property tests for the knowledge/curiosity lattices."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.lattice import C, K, KnowledgeConflictError, c_meet, k_is_final, k_lub

SAFE = [K.Q, K.S, K.D, K.F, K.DSTAR]


class TestKnowledgeLub:
    def test_q_is_bottom(self):
        for value in SAFE:
            assert k_lub(K.Q, value) == value
            assert k_lub(value, K.Q) == value

    def test_idempotent(self):
        for value in SAFE:
            assert k_lub(value, value) == value

    def test_commutative(self):
        for a, b in itertools.product(SAFE, SAFE):
            try:
                left = k_lub(a, b)
            except KnowledgeConflictError:
                with pytest.raises(KnowledgeConflictError):
                    k_lub(b, a)
                continue
            assert left == k_lub(b, a)

    def test_associative_where_defined(self):
        for a, b, c in itertools.product(SAFE, SAFE, SAFE):
            try:
                left = k_lub(k_lub(a, b), c)
            except KnowledgeConflictError:
                continue
            try:
                right = k_lub(a, k_lub(b, c))
            except KnowledgeConflictError:
                continue
            assert left == right

    def test_data_plus_final_is_delivered(self):
        assert k_lub(K.D, K.F) == K.DSTAR

    def test_silence_plus_final_is_final(self):
        assert k_lub(K.S, K.F) == K.F

    def test_silence_vs_data_conflicts(self):
        with pytest.raises(KnowledgeConflictError):
            k_lub(K.S, K.D)

    def test_dstar_vs_silence_conflicts(self):
        with pytest.raises(KnowledgeConflictError):
            k_lub(K.DSTAR, K.S)

    def test_error_element_always_raises(self):
        for value in SAFE:
            with pytest.raises(KnowledgeConflictError):
                k_lub(K.E, value)

    def test_monotone_growth(self):
        """Accumulating more knowledge never lowers a final verdict."""
        assert k_lub(k_lub(K.Q, K.D), K.F) == K.DSTAR
        assert k_lub(k_lub(K.Q, K.S), K.F) == K.F


class TestFinality:
    def test_final_values(self):
        assert k_is_final(K.F)
        assert k_is_final(K.DSTAR)
        assert k_is_final(K.S)

    def test_nonfinal_values(self):
        assert not k_is_final(K.Q)
        assert not k_is_final(K.D)


class TestCuriosityMeet:
    def test_any_curious_wins(self):
        assert c_meet(C.C, C.A) == C.C
        assert c_meet(C.C, C.N) == C.C

    def test_all_anticurious_required(self):
        assert c_meet(C.A, C.A) == C.A
        assert c_meet(C.A, C.N) == C.N

    @given(st.sampled_from(list(C)), st.sampled_from(list(C)))
    def test_commutative(self, a, b):
        assert c_meet(a, b) == c_meet(b, a)

    @given(
        st.sampled_from(list(C)), st.sampled_from(list(C)), st.sampled_from(list(C))
    )
    def test_associative(self, a, b, c):
        assert c_meet(c_meet(a, b), c) == c_meet(a, c_meet(b, c))

    @given(st.sampled_from(list(C)))
    def test_idempotent(self, a):
        assert c_meet(a, a) == a
