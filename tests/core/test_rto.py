"""Unit tests for the TCP-style nack repetition estimator."""

import pytest

from repro.core.rto import RtoEstimator


class TestRtoEstimator:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            RtoEstimator(min_interval=0)
        with pytest.raises(ValueError):
            RtoEstimator(min_interval=1.0, max_interval=0.5)

    def test_initial_interval_at_least_min(self):
        est = RtoEstimator(min_interval=0.6)
        assert est.interval() >= 0.6

    def test_first_sample_seeds_estimate(self):
        est = RtoEstimator(min_interval=0.1)
        est.sample(1.0)
        # srtt=1.0, rttvar=0.5 -> rto=3.0
        assert est.interval() == pytest.approx(3.0)

    def test_stable_rtt_converges(self):
        est = RtoEstimator(min_interval=0.01)
        for __ in range(100):
            est.sample(0.2)
        assert est.srtt == pytest.approx(0.2, rel=0.05)
        assert est.interval() < 0.5

    def test_rejects_negative_sample(self):
        est = RtoEstimator(min_interval=0.1)
        with pytest.raises(ValueError):
            est.sample(-1.0)

    def test_backoff_doubles(self):
        est = RtoEstimator(min_interval=0.5, max_interval=60.0)
        base = est.interval()
        est.backoff()
        assert est.interval() == pytest.approx(min(base * 2, 60.0))
        est.backoff()
        assert est.interval() == pytest.approx(min(base * 4, 60.0))

    def test_backoff_capped_at_max(self):
        est = RtoEstimator(min_interval=1.0, max_interval=4.0)
        for __ in range(10):
            est.backoff()
        assert est.interval() == 4.0

    def test_sample_resets_backoff(self):
        est = RtoEstimator(min_interval=0.5)
        est.backoff()
        est.backoff()
        est.sample(0.5)
        assert est.interval() == pytest.approx(0.5 + 4 * 0.25)

    def test_interval_never_below_min(self):
        est = RtoEstimator(min_interval=0.6)
        for __ in range(50):
            est.sample(0.001)
        assert est.interval() == 0.6

    def test_counters(self):
        est = RtoEstimator(min_interval=0.1)
        est.sample(0.2)
        est.backoff()
        assert est.samples == 1
        assert est.timeouts == 1
