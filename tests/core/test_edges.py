"""Unit tests for filter and merge edge operations."""

import pytest

from repro.core.edges import FilterEdge, MergeView, MATCH_ALL
from repro.core.lattice import K
from repro.core.messages import DataTick, KnowledgeMessage
from repro.core.streams import KnowledgeStream
from repro.core.ticks import TickRange


def msg(pubend="P", fin=0, f=(), data=()):
    return KnowledgeMessage(
        pubend=pubend,
        fin_prefix=fin,
        f_ranges=tuple(TickRange(a, b) for a, b in f),
        data=tuple(DataTick(t, p) for t, p in data),
    )


class TestFilterEdge:
    def test_match_all_passes_unchanged(self):
        edge = FilterEdge(MATCH_ALL)
        original = msg(data=[(5, {"v": 1})], f=[(0, 5)])
        assert edge.apply(original) is original

    def test_nonmatching_data_becomes_final(self):
        edge = FilterEdge(lambda p: p["v"] > 10)
        out = edge.apply(msg(data=[(5, {"v": 1})], f=[(2, 5)]))
        assert out.is_silence
        assert out.f_ranges == (TickRange(2, 6),)  # 5 folded in

    def test_partial_filtering(self):
        edge = FilterEdge(lambda p: p["v"] > 10)
        out = edge.apply(msg(data=[(5, {"v": 1}), (7, {"v": 99})]))
        assert out.data_ticks == [7]
        assert TickRange(5, 6) in out.f_ranges

    def test_silence_passes_untouched(self):
        edge = FilterEdge(lambda p: False)
        original = msg(fin=4, f=[(6, 9)])
        assert edge.apply(original) is original

    def test_fin_prefix_preserved(self):
        edge = FilterEdge(lambda p: False)
        out = edge.apply(msg(fin=3, data=[(5, {"v": 0})]))
        assert out.fin_prefix == 3

    def test_matches_delegates_to_predicate(self):
        edge = FilterEdge(lambda p: p == "yes")
        assert edge.matches("yes")
        assert not edge.matches("no")


def make_stream(spec):
    """spec: list of ('d', tick, payload) or ('f', lo, hi)."""
    s = KnowledgeStream()
    for entry in spec:
        if entry[0] == "d":
            s.accumulate_data(entry[1], entry[2])
        else:
            s.accumulate_final(TickRange(entry[1], entry[2]))
    return s


class TestMergeView:
    def test_requires_inputs(self):
        with pytest.raises(ValueError):
            MergeView([])

    def test_data_wins(self):
        a = make_stream([("d", 4, "a4")])
        b = make_stream([("f", 0, 10)])
        view = MergeView([a, b])
        assert view.value_at(4) == K.D
        assert view.payload_at(4) == "a4"

    def test_final_requires_all_inputs_final(self):
        a = make_stream([("f", 0, 10)])
        b = make_stream([("f", 0, 5)])
        view = MergeView([a, b])
        assert view.value_at(3) == K.F
        assert view.value_at(7) == K.Q

    def test_doubt_horizon_is_min_blocking(self):
        # a: D at 4 (slot 0), F elsewhere up to 10; b: F up to 3 only.
        a = make_stream([("f", 0, 4), ("d", 4, "a"), ("f", 5, 10)])
        b = make_stream([("f", 0, 3)])
        view = MergeView([a, b])
        # ticks 0..2: both final -> F; tick 3: b is Q -> horizon 3.
        assert view.doubt_horizon() == 3
        b.accumulate_final(TickRange(3, 10))
        assert view.doubt_horizon() == 10

    def test_d_ticks_below_interleaves_deterministically(self):
        a = make_stream([("d", 2, "a2"), ("d", 8, "a8"), ("f", 0, 2), ("f", 3, 8), ("f", 9, 10)])
        b = make_stream([("d", 5, "b5"), ("f", 0, 5), ("f", 6, 10)])
        view = MergeView([a, b])
        pairs = view.d_ticks_below(10)
        assert pairs == [(2, "a2"), (5, "b5"), (8, "a8")]

    def test_d_ticks_below_respects_lo(self):
        a = make_stream([("d", 2, "a2"), ("d", 8, "a8"), ("f", 0, 2), ("f", 3, 8)])
        view = MergeView([a])
        assert view.d_ticks_below(10, lo=3) == [(8, "a8")]

    def test_payload_at_unknown_tick_raises(self):
        view = MergeView([make_stream([])])
        with pytest.raises(KeyError):
            view.payload_at(3)

    def test_curious_targets_only_q_inputs(self):
        a = make_stream([("f", 0, 10)])
        b = make_stream([])
        view = MergeView([a, b])
        targets = view.curious_targets(TickRange(0, 10))
        assert targets == [(1, TickRange(0, 10))]

    def test_same_view_same_order_for_all_subscribers(self):
        """Determinism: two views over the same inputs agree (total order)."""
        a = make_stream([("d", 3, "x"), ("d", 11, "y"), ("f", 0, 3), ("f", 4, 11), ("f", 12, 20)])
        b = make_stream([("d", 7, "z"), ("f", 0, 7), ("f", 8, 20)])
        v1 = MergeView([a, b])
        v2 = MergeView([a, b])
        assert v1.d_ticks_below(20) == v2.d_ticks_below(20)
