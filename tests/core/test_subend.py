"""Unit tests for the subend: delivery order, doubt horizon, acks,
GCT/NRT nacking, DCT, and AckExpected handling.

Uses a hand-rolled fake services object with a manually advanced clock,
so timer behaviour is tested without the full simulator.
"""

import math

import pytest

from repro.core.config import LivenessParams
from repro.core.streams import Stream
from repro.core.subend import SubendManager, SubendServices, Subscription
from repro.core.ticks import TickRange


class FakeTimer:
    def __init__(self, when, fn):
        self.when = when
        self.fn = fn
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class FakeServices(SubendServices):
    def __init__(self):
        self.time = 0.0
        self.timers = []
        self.nacks = []  # (pubend, ranges)
        self.acks = []  # (pubend, up_to)
        self.deliveries = []  # (subscriber, pubend, tick, payload)

    def now(self):
        return self.time

    def schedule(self, delay, fn):
        timer = FakeTimer(self.time + delay, fn)
        self.timers.append(timer)
        return timer

    def send_nack(self, pubend, ranges):
        self.nacks.append((pubend, list(ranges)))

    def send_ack(self, pubend, up_to):
        self.acks.append((pubend, up_to))

    def deliver(self, subscriber, pubend, tick, payload):
        self.deliveries.append((subscriber, pubend, tick, payload))

    def advance(self, dt):
        """Advance the clock, firing due timers in order."""
        deadline = self.time + dt
        while True:
            due = [t for t in self.timers if not t.cancelled and t.when <= deadline]
            if not due:
                break
            due.sort(key=lambda t: t.when)
            timer = due[0]
            self.timers.remove(timer)
            self.time = timer.when
            timer.fn()
        self.time = deadline


PARAMS = LivenessParams(gct=0.2, nrt_min=0.6, dct=math.inf)


def make_manager(pubends=("P",), params=PARAMS):
    services = FakeServices()
    manager = SubendManager(services, params)
    streams = {}
    for pubend in pubends:
        stream = Stream()
        streams[pubend] = stream
        manager.attach_stream(pubend, stream)
    return services, manager, streams


class TestDelivery:
    def test_in_order_delivery_below_horizon(self):
        services, manager, streams = make_manager()
        manager.subscribe(Subscription("alice", pubends=("P",)))
        s = streams["P"]
        s.accumulate_final(TickRange(0, 5))
        s.accumulate_data(5, "m5")
        manager.on_knowledge("P")
        assert services.deliveries == [("alice", "P", 5, "m5")]

    def test_gap_blocks_delivery(self):
        services, manager, streams = make_manager()
        manager.subscribe(Subscription("alice", pubends=("P",)))
        s = streams["P"]
        s.accumulate_final(TickRange(0, 5))
        s.accumulate_data(5, "m5")
        s.accumulate_data(9, "m9")  # gap at 6..8
        manager.on_knowledge("P")
        assert [d[2] for d in services.deliveries] == [5]
        # gap resolves -> m9 released
        s.accumulate_final(TickRange(6, 9))
        manager.on_knowledge("P")
        assert [d[2] for d in services.deliveries] == [5, 9]

    def test_no_duplicate_delivery_on_redundant_knowledge(self):
        services, manager, streams = make_manager()
        manager.subscribe(Subscription("alice", pubends=("P",)))
        s = streams["P"]
        s.accumulate_final(TickRange(0, 5))
        s.accumulate_data(5, "m5")
        manager.on_knowledge("P")
        manager.on_knowledge("P")  # same knowledge again
        assert len(services.deliveries) == 1

    def test_predicate_filters_delivery(self):
        services, manager, streams = make_manager()
        manager.subscribe(
            Subscription("alice", predicate=lambda p: p == "yes", pubends=("P",))
        )
        s = streams["P"]
        s.accumulate_final(TickRange(0, 3))
        s.accumulate_data(3, "no")
        s.accumulate_final(TickRange(4, 6))
        s.accumulate_data(6, "yes")
        manager.on_knowledge("P")
        assert services.deliveries == [("alice", "P", 6, "yes")]

    def test_multiple_subscribers_share_stream(self):
        services, manager, streams = make_manager()
        manager.subscribe(Subscription("a", pubends=("P",)))
        manager.subscribe(Subscription("b", pubends=("P",)))
        s = streams["P"]
        s.accumulate_final(TickRange(0, 2))
        s.accumulate_data(2, "m")
        manager.on_knowledge("P")
        assert {d[0] for d in services.deliveries} == {"a", "b"}

    def test_unsubscribe_stops_delivery(self):
        services, manager, streams = make_manager()
        manager.subscribe(Subscription("a", pubends=("P",)))
        manager.unsubscribe("a")
        s = streams["P"]
        s.accumulate_final(TickRange(0, 2))
        s.accumulate_data(2, "m")
        manager.on_knowledge("P")
        assert services.deliveries == []

    def test_subscribe_requires_attached_stream(self):
        __, manager, __s = make_manager()
        with pytest.raises(KeyError):
            manager.subscribe(Subscription("a", pubends=("UNKNOWN",)))


class TestTotalOrder:
    def test_merged_delivery_waits_for_all_inputs(self):
        services, manager, streams = make_manager(pubends=("A", "B"))
        manager.subscribe(Subscription("t", pubends=("A", "B"), total_order=True))
        a, b = streams["A"], streams["B"]
        a.accumulate_final(TickRange(0, 4))
        a.accumulate_data(4, "a4")
        manager.on_knowledge("A")
        # B is still all-Q: nothing can be delivered in total order.
        assert services.deliveries == []
        b.accumulate_final(TickRange(0, 10))
        manager.on_knowledge("B")
        assert services.deliveries == [("t", "A", 4, "a4")]

    def test_merged_interleaving_by_tick(self):
        services, manager, streams = make_manager(pubends=("A", "B"))
        manager.subscribe(Subscription("t", pubends=("A", "B"), total_order=True))
        a, b = streams["A"], streams["B"]
        a.accumulate_final(TickRange(0, 2))
        a.accumulate_data(2, "a2")
        a.accumulate_final(TickRange(3, 9))
        b.accumulate_final(TickRange(0, 5))
        b.accumulate_data(5, "b5")
        b.accumulate_final(TickRange(6, 9))
        a.accumulate_data(9, "a9")
        manager.on_knowledge("A")
        manager.on_knowledge("B")
        assert [(d[2], d[3]) for d in services.deliveries] == [
            (2, "a2"),
            (5, "b5"),
            (9, "a9"),
        ]

    def test_two_total_order_subscribers_see_same_sequence(self):
        services, manager, streams = make_manager(pubends=("A", "B"))
        manager.subscribe(Subscription("t1", pubends=("A", "B"), total_order=True))
        manager.subscribe(Subscription("t2", pubends=("A", "B"), total_order=True))
        a, b = streams["A"], streams["B"]
        a.accumulate_final(TickRange(0, 3))
        a.accumulate_data(3, "x")
        b.accumulate_final(TickRange(0, 8))
        manager.on_knowledge("A")
        manager.on_knowledge("B")
        t1 = [(d[2], d[3]) for d in services.deliveries if d[0] == "t1"]
        t2 = [(d[2], d[3]) for d in services.deliveries if d[0] == "t2"]
        assert t1 == t2 == [(3, "x")]

    def test_ack_waits_for_merge_consumption(self):
        """A pubend may not be acked (and GC'd) past the merged horizon."""
        services, manager, streams = make_manager(pubends=("A", "B"))
        manager.subscribe(Subscription("t", pubends=("A", "B"), total_order=True))
        a, b = streams["A"], streams["B"]
        a.accumulate_final(TickRange(0, 4))
        a.accumulate_data(4, "a4")
        a.accumulate_final(TickRange(5, 20))
        manager.on_knowledge("A")
        # B has consumed nothing: no ack for A beyond 0.
        assert all(up == 0 for (p, up) in services.acks if p == "A") or not [
            x for x in services.acks if x[0] == "A"
        ]
        b.accumulate_final(TickRange(0, 20))
        manager.on_knowledge("B")
        assert ("A", 20) in services.acks or ("A", 21) in services.acks


class TestAcks:
    def test_ack_after_delivery(self):
        services, manager, streams = make_manager()
        manager.subscribe(Subscription("a", pubends=("P",)))
        s = streams["P"]
        s.accumulate_final(TickRange(0, 5))
        s.accumulate_data(5, "m")
        manager.on_knowledge("P")
        assert services.acks == [("P", 6)]

    def test_ack_is_monotone(self):
        services, manager, streams = make_manager()
        manager.subscribe(Subscription("a", pubends=("P",)))
        s = streams["P"]
        s.accumulate_final(TickRange(0, 5))
        manager.on_knowledge("P")
        s.accumulate_final(TickRange(5, 10))
        manager.on_knowledge("P")
        ups = [u for (__, u) in services.acks]
        assert ups == sorted(ups)

    def test_ack_garbage_collects_payloads(self):
        services, manager, streams = make_manager()
        manager.subscribe(Subscription("a", pubends=("P",)))
        s = streams["P"]
        s.accumulate_final(TickRange(0, 5))
        s.accumulate_data(5, "m")
        manager.on_knowledge("P")
        assert not s.knowledge.has_payload(5)  # finalized after ack


class TestGapCuriosity:
    def test_gct_then_nack(self):
        services, manager, streams = make_manager()
        manager.subscribe(Subscription("a", pubends=("P",)))
        s = streams["P"]
        s.accumulate_final(TickRange(0, 100))
        s.accumulate_data(100, "m")
        manager.on_knowledge("P")
        s.accumulate_data(200, "n")  # gap 101..199
        manager.on_knowledge("P")
        assert services.nacks == []  # GCT not expired yet
        services.advance(0.25)  # > GCT=0.2
        assert services.nacks
        ranges = [r for (__, rs) in services.nacks for r in rs]
        assert TickRange(101, 200) in ranges

    def test_gap_resolved_before_gct_sends_nothing(self):
        services, manager, streams = make_manager()
        manager.subscribe(Subscription("a", pubends=("P",)))
        s = streams["P"]
        s.accumulate_final(TickRange(0, 100))
        s.accumulate_data(100, "m")
        s.accumulate_data(200, "n")
        manager.on_knowledge("P")
        s.accumulate_final(TickRange(101, 200))  # gap filled quickly
        manager.on_knowledge("P")
        services.advance(0.5)
        assert services.nacks == []

    def test_nack_chopping(self):
        params = PARAMS.with_(nack_chop=50)
        services, manager, streams = make_manager(params=params)
        manager.subscribe(Subscription("a", pubends=("P",)))
        s = streams["P"]
        s.accumulate_data(0, "m")
        s.accumulate_data(200, "n")  # 199-tick gap
        manager.on_knowledge("P")
        services.advance(0.25)
        assert len(services.nacks) == 4  # 199 ticks / 50 per nack
        total = sum(len(r) for (__, rs) in services.nacks for r in rs)
        assert total == 199

    def test_nrt_repetition_until_satisfied(self):
        services, manager, streams = make_manager()
        manager.subscribe(Subscription("a", pubends=("P",)))
        s = streams["P"]
        s.accumulate_data(0, "m")
        s.accumulate_data(100, "n")
        manager.on_knowledge("P")
        services.advance(0.25)
        first_count = len(services.nacks)
        assert first_count >= 1
        services.advance(1.0)  # NRT >= 0.6 elapses unanswered
        assert len(services.nacks) > first_count
        # satisfy the gap: repetitions stop
        s.accumulate_final(TickRange(1, 100))
        manager.on_knowledge("P")
        settled = len(services.nacks)
        services.advance(5.0)
        assert len(services.nacks) == settled

    def test_no_duplicate_tracking_of_same_gap(self):
        services, manager, streams = make_manager()
        manager.subscribe(Subscription("a", pubends=("P",)))
        s = streams["P"]
        s.accumulate_data(0, "m")
        s.accumulate_data(100, "n")
        manager.on_knowledge("P")
        manager.on_knowledge("P")
        manager.on_knowledge("P")
        services.advance(0.25)
        ticks = sum(len(r) for (__, rs) in services.nacks for r in rs)
        assert ticks == 99  # gap nacked once, not three times


class TestAckExpected:
    def test_probes_trigger_immediate_nacks(self):
        services, manager, streams = make_manager()
        manager.subscribe(Subscription("a", pubends=("P",)))
        # The subend knows nothing; the pubend expects acks up to 500.
        manager.on_ack_expected("P", 500)
        assert services.nacks
        total = sum(len(r) for (__, rs) in services.nacks for r in rs)
        assert total == 500

    def test_probe_skips_known_ticks(self):
        services, manager, streams = make_manager()
        manager.subscribe(Subscription("a", pubends=("P",)))
        s = streams["P"]
        s.accumulate_final(TickRange(0, 400))
        manager.on_knowledge("P")
        manager.on_ack_expected("P", 500)
        total = sum(len(r) for (__, rs) in services.nacks for r in rs)
        assert total == 100  # only 400..499

    def test_probe_for_unknown_pubend_ignored(self):
        services, manager, __ = make_manager()
        manager.on_ack_expected("ZZZ", 100)
        assert services.nacks == []

    def test_probe_overrides_repetition_backoff(self):
        """Paper 3.2: a probe means 'immediately nack' — even for a gap
        whose own repetitions have exponentially backed off (the backoff
        exists for *down* pubends; the probe proves this one is alive)."""
        services, manager, streams = make_manager()
        manager.subscribe(Subscription("a", pubends=("P",)))
        s = streams["P"]
        s.accumulate_data(0, "m")
        s.accumulate_data(100, "n")  # gap 1..99
        manager.on_knowledge("P")
        services.advance(0.25)  # GCT fires, nack sent
        # Let several unanswered repetitions back the record off.
        services.advance(10.0)
        count_backed_off = len(services.nacks)
        # A long quiet stretch: the next repetition is far in the future.
        services.advance(1.0)
        assert len(services.nacks) == count_backed_off
        manager.on_ack_expected("P", 100)
        assert len(services.nacks) > count_backed_off  # re-nacked NOW
        # And the new record repeats on the fresh (minimum) interval.
        before = len(services.nacks)
        services.advance(0.8)
        assert len(services.nacks) > before


class TestDct:
    def test_dct_disabled_by_default(self):
        services, manager, streams = make_manager()
        manager.subscribe(Subscription("a", pubends=("P",)))
        services.time = 100.0
        manager.on_periodic()
        assert services.nacks == []

    def test_dct_nacks_when_horizon_trails(self):
        params = PARAMS.with_(dct=1.0)
        services, manager, streams = make_manager(params=params)
        manager.subscribe(Subscription("a", pubends=("P",)))
        services.time = 5.0
        manager.on_periodic()
        assert services.nacks
        hi = max(r.stop for (__, rs) in services.nacks for r in rs)
        assert hi == 4000  # now - DCT in ticks
