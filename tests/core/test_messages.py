"""Unit tests for protocol messages and the wire codec."""

import pytest

from repro.core.messages import (
    AckExpectedMessage,
    AckMessage,
    DataTick,
    KnowledgeMessage,
    NackMessage,
    decode_message,
    encode_message,
)
from repro.core.ticks import TickRange


class TestKnowledgeMessage:
    def test_data_message_shape(self):
        msg = KnowledgeMessage(
            pubend="P",
            fin_prefix=10,
            f_ranges=(TickRange(12, 15),),
            data=(DataTick(15, "m"),),
        )
        assert not msg.is_silence
        assert msg.data_ticks == [15]
        assert msg.max_tick() == 16

    def test_silence_message(self):
        msg = KnowledgeMessage(pubend="P", fin_prefix=10, f_ranges=(TickRange(12, 20),))
        assert msg.is_silence
        assert msg.max_tick() == 20

    def test_rejects_unsorted_data(self):
        with pytest.raises(ValueError):
            KnowledgeMessage(
                pubend="P", data=(DataTick(5, "a"), DataTick(3, "b"))
            )

    def test_rejects_data_inside_final_prefix(self):
        with pytest.raises(ValueError):
            KnowledgeMessage(pubend="P", fin_prefix=10, data=(DataTick(5, "a"),))

    def test_without_data_gives_silence_skeleton(self):
        msg = KnowledgeMessage(
            pubend="P", fin_prefix=3, f_ranges=(TickRange(4, 6),),
            data=(DataTick(7, "x"),),
        )
        silence = msg.without_data()
        assert silence.is_silence
        assert silence.fin_prefix == 3
        assert silence.f_ranges == (TickRange(4, 6),)

    def test_merged_f_ranges_includes_prefix(self):
        msg = KnowledgeMessage(
            pubend="P", fin_prefix=5, f_ranges=(TickRange(5, 8), TickRange(10, 12))
        )
        assert msg.merged_f_ranges() == [TickRange(0, 8), TickRange(10, 12)]

    def test_merged_f_ranges_no_prefix(self):
        msg = KnowledgeMessage(pubend="P", f_ranges=(TickRange(3, 5),))
        assert msg.merged_f_ranges() == [TickRange(3, 5)]

    def test_replace_data_sorts(self):
        msg = KnowledgeMessage(pubend="P")
        out = msg.replace_data([DataTick(9, "b"), DataTick(4, "a")])
        assert out.data_ticks == [4, 9]


class TestNackMessage:
    def test_requires_ranges(self):
        with pytest.raises(ValueError):
            NackMessage(pubend="P", ranges=())

    def test_tick_count_is_nack_range_metric(self):
        nack = NackMessage(pubend="P", ranges=(TickRange(0, 100), TickRange(200, 250)))
        assert nack.tick_count() == 150


class TestCodec:
    def round_trip(self, message):
        wire = encode_message(message)
        decoded = decode_message(wire)
        assert decoded == message
        return wire

    def test_knowledge_round_trip(self):
        msg = KnowledgeMessage(
            pubend="P1",
            fin_prefix=100,
            f_ranges=(TickRange(110, 120),),
            data=(DataTick(125, {"a": {"x": 1}}),),
            retransmit=True,
        )
        wire = self.round_trip(msg)
        assert wire["kind"] == "knowledge"

    def test_ack_round_trip(self):
        self.round_trip(AckMessage(pubend="P1", up_to=500))

    def test_nack_round_trip(self):
        self.round_trip(NackMessage(pubend="P1", ranges=(TickRange(5, 9),)))

    def test_ack_expected_round_trip(self):
        self.round_trip(AckExpectedMessage(pubend="P1", up_to=900))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            decode_message({"kind": "bogus"})

    def test_wire_is_json_compatible(self):
        import json

        msg = KnowledgeMessage(
            pubend="P1", fin_prefix=1, data=(DataTick(2, {"k": "v"}),)
        )
        encoded = json.dumps(encode_message(msg))
        assert decode_message(json.loads(encoded)) == msg
