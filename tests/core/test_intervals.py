"""Unit and property tests for the IntervalMap run-length structure.

The property tests compare every operation against a naive dict model —
the IntervalMap must be observationally identical while maintaining its
coalescing invariants.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import IntervalMap
from repro.core.ticks import TickRange

UNIVERSE = 64  # model-check window


class TestBasics:
    def test_empty_map_returns_default(self):
        m = IntervalMap(default="d")
        assert m.get(0) == "d"
        assert m.get(10**9) == "d"
        assert not m
        assert m.run_count() == 0
        assert m.span() is None

    def test_set_and_get(self):
        m = IntervalMap(default=0)
        m.set_range(TickRange(3, 7), 5)
        assert m.get(2) == 0
        assert m.get(3) == 5
        assert m.get(6) == 5
        assert m.get(7) == 0

    def test_setting_default_clears(self):
        m = IntervalMap(default=0)
        m.set_range(TickRange(0, 10), 1)
        m.set_range(TickRange(3, 6), 0)
        assert m.run_count() == 2
        assert m.get(4) == 0
        m.check_invariants()

    def test_adjacent_equal_runs_coalesce(self):
        m = IntervalMap(default=0)
        m.set_range(TickRange(0, 5), 1)
        m.set_range(TickRange(5, 10), 1)
        assert m.run_count() == 1
        assert m.span() == TickRange(0, 10)
        m.check_invariants()

    def test_overwrite_splits_runs(self):
        m = IntervalMap(default=0)
        m.set_range(TickRange(0, 10), 1)
        m.set_range(TickRange(4, 6), 2)
        assert [(r.start, r.stop, v) for r, v in m.runs()] == [
            (0, 4, 1),
            (4, 6, 2),
            (6, 10, 1),
        ]
        m.check_invariants()

    def test_set_value_single_tick(self):
        m = IntervalMap(default=0)
        m.set_value(5, 9)
        assert m.get(5) == 9
        assert m.get(4) == 0

    def test_clear_range(self):
        m = IntervalMap(default=0)
        m.set_range(TickRange(0, 10), 3)
        m.clear_range(TickRange(0, 10))
        assert not m

    def test_combine_range_applies_fn(self):
        m = IntervalMap(default=0)
        m.set_range(TickRange(0, 4), 2)
        m.combine_range(TickRange(2, 6), 10, lambda old, new: old + new)
        assert m.get(1) == 2
        assert m.get(3) == 12
        assert m.get(5) == 10

    def test_transform_range(self):
        m = IntervalMap(default=0)
        m.set_range(TickRange(0, 4), 2)
        m.transform_range(TickRange(0, 8), lambda v: v * 3)
        assert m.get(0) == 6
        assert m.get(5) == 0  # 0 * 3 == default, dropped

    def test_copy_is_independent(self):
        m = IntervalMap(default=0)
        m.set_range(TickRange(0, 4), 1)
        clone = m.copy()
        clone.set_range(TickRange(0, 4), 2)
        assert m.get(0) == 1
        assert clone.get(0) == 2


class TestQueries:
    def test_iter_runs_fills_gaps_with_default(self):
        m = IntervalMap(default=0)
        m.set_range(TickRange(2, 4), 1)
        m.set_range(TickRange(6, 8), 2)
        out = list(m.iter_runs(0, 10))
        assert out == [
            (TickRange(0, 2), 0),
            (TickRange(2, 4), 1),
            (TickRange(4, 6), 0),
            (TickRange(6, 8), 2),
            (TickRange(8, 10), 0),
        ]

    def test_iter_runs_empty_window(self):
        m = IntervalMap(default=0)
        assert list(m.iter_runs(5, 5)) == []

    def test_iter_runs_partial_overlap(self):
        m = IntervalMap(default=0)
        m.set_range(TickRange(0, 10), 1)
        assert list(m.iter_runs(3, 7)) == [(TickRange(3, 7), 1)]

    def test_ranges_with_merges_contiguous_matches(self):
        m = IntervalMap(default=0)
        m.set_range(TickRange(0, 3), 1)
        m.set_range(TickRange(3, 6), 2)
        out = m.ranges_with(lambda v: v > 0, 0, 10)
        assert out == [TickRange(0, 6)]

    def test_first_with_finds_stored_value(self):
        m = IntervalMap(default=0)
        m.set_range(TickRange(5, 9), 7)
        assert m.first_with(lambda v: v == 7, 0) == 5
        assert m.first_with(lambda v: v == 7, 6) == 6
        assert m.first_with(lambda v: v == 7, 9) is None

    def test_first_with_default_beyond_runs(self):
        m = IntervalMap(default=0)
        m.set_range(TickRange(0, 5), 1)
        assert m.first_with(lambda v: v == 0, 0) == 5

    def test_first_with_respects_hi(self):
        m = IntervalMap(default=0)
        m.set_range(TickRange(5, 9), 7)
        assert m.first_with(lambda v: v == 7, 0, 5) is None

    def test_first_with_on_empty_map(self):
        m = IntervalMap(default=0)
        assert m.first_with(lambda v: v == 0, 3) == 3
        assert m.first_with(lambda v: v == 1, 3) is None


@st.composite
def operations(draw):
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["set", "clear", "combine"]),
                st.integers(0, UNIVERSE - 1),
                st.integers(1, 16),
                st.integers(0, 3),
            ),
            max_size=30,
        )
    )
    return ops


class TestModelEquivalence:
    """IntervalMap must behave exactly like a dict over a window."""

    @given(operations())
    @settings(max_examples=200)
    def test_matches_dict_model(self, ops):
        m = IntervalMap(default=0)
        model = {}
        for kind, start, length, value in ops:
            stop = min(start + length, UNIVERSE)
            if stop <= start:
                continue
            rng = TickRange(start, stop)
            if kind == "set":
                m.set_range(rng, value)
                for t in rng:
                    model[t] = value
            elif kind == "clear":
                m.clear_range(rng)
                for t in rng:
                    model[t] = 0
            else:
                m.combine_range(rng, value, lambda a, b: max(a, b))
                for t in rng:
                    model[t] = max(model.get(t, 0), value)
            m.check_invariants()
        for t in range(UNIVERSE):
            assert m.get(t) == model.get(t, 0), f"mismatch at {t}"

    @given(operations(), st.integers(0, UNIVERSE), st.integers(0, UNIVERSE))
    @settings(max_examples=100)
    def test_iter_runs_partitions_window(self, ops, a, b):
        lo, hi = min(a, b), max(a, b)
        m = IntervalMap(default=0)
        for kind, start, length, value in ops:
            stop = min(start + length, UNIVERSE)
            if stop > start:
                m.set_range(TickRange(start, stop), value)
        runs = list(m.iter_runs(lo, hi))
        cursor = lo
        for rng, value in runs:
            assert rng.start == cursor
            cursor = rng.stop
            for t in rng:
                assert m.get(t) == value
        assert cursor == hi or (hi <= lo and not runs)
