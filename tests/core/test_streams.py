"""Unit and property tests for knowledge and curiosity streams."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lattice import C, K
from repro.core.streams import CuriosityStream, KnowledgeStream, Stream
from repro.core.ticks import TickRange


class TestKnowledgeStream:
    def test_starts_all_q(self):
        s = KnowledgeStream()
        assert s.value_at(0) == K.Q
        assert s.doubt_horizon() == 0
        assert s.horizon() == 0
        assert s.final_prefix() == 0

    def test_accumulate_data(self):
        s = KnowledgeStream()
        assert s.accumulate_data(5, "m5")
        assert s.value_at(5) == K.D
        assert s.payload_at(5) == "m5"
        assert s.horizon() == 6

    def test_duplicate_data_is_noop(self):
        s = KnowledgeStream()
        assert s.accumulate_data(5, "m5")
        assert not s.accumulate_data(5, "m5")
        assert s.value_at(5) == K.D

    def test_data_on_final_tick_is_dropped(self):
        """D + F = D*, lowered to F — the data is not needed."""
        s = KnowledgeStream()
        s.accumulate_final(TickRange(0, 10))
        assert not s.accumulate_data(5, "late")
        assert s.value_at(5) == K.F
        assert not s.has_payload(5)

    def test_final_over_data_drops_payload(self):
        s = KnowledgeStream()
        s.accumulate_data(5, "m5")
        s.accumulate_final(TickRange(0, 10))
        assert s.value_at(5) == K.F
        assert not s.has_payload(5)

    def test_doubt_horizon_stops_at_gap(self):
        s = KnowledgeStream()
        s.accumulate_final(TickRange(0, 5))
        s.accumulate_data(5, "a")
        s.accumulate_data(9, "b")  # gap 6..8
        assert s.doubt_horizon() == 6
        s.accumulate_final(TickRange(6, 9))
        assert s.doubt_horizon() == 10

    def test_gaps_reports_q_below_horizon(self):
        s = KnowledgeStream()
        s.accumulate_data(2, "a")
        s.accumulate_data(8, "b")
        assert s.gaps() == [TickRange(0, 2), TickRange(3, 8)]

    def test_no_gaps_when_contiguous(self):
        s = KnowledgeStream()
        s.accumulate_final(TickRange(0, 5))
        s.accumulate_data(5, "a")
        assert s.gaps() == []

    def test_d_ticks_in_range(self):
        s = KnowledgeStream()
        s.accumulate_data(3, "a")
        s.accumulate_data(7, "b")
        assert s.d_ticks(TickRange(0, 10)) == [(3, "a"), (7, "b")]
        assert s.d_ticks(TickRange(4, 10)) == [(7, "b")]

    def test_forget_drops_to_q(self):
        s = KnowledgeStream()
        s.accumulate_data(3, "a")
        s.accumulate_final(TickRange(0, 3))
        s.forget(TickRange(0, 10))
        assert s.value_at(3) == K.Q
        assert not s.has_payload(3)

    def test_forget_all(self):
        s = KnowledgeStream()
        s.accumulate_data(3, "a")
        s.forget_all()
        assert s.horizon() == 0
        assert s.d_tick_count() == 0

    def test_final_prefix_grows(self):
        s = KnowledgeStream()
        s.accumulate_final(TickRange(0, 4))
        assert s.final_prefix() == 4
        s.accumulate_data(4, "a")
        assert s.final_prefix() == 4
        s.finalize(TickRange(0, 5))
        assert s.final_prefix() == 5

    def test_silence_conflicts_with_data(self):
        from repro.core.lattice import KnowledgeConflictError

        s = KnowledgeStream()
        s.accumulate_data(5, "a")
        with pytest.raises(KnowledgeConflictError):
            s.accumulate_silence(TickRange(0, 10))

    def test_silence_on_q_becomes_final(self):
        s = KnowledgeStream()
        s.accumulate_silence(TickRange(0, 5))
        assert s.value_at(2) == K.F  # operational lowering S -> F

    def test_invariants_hold(self):
        s = KnowledgeStream()
        s.accumulate_data(3, "a")
        s.accumulate_final(TickRange(0, 3))
        s.check_invariants()


class TestCuriosityStream:
    def test_default_neutral(self):
        c = CuriosityStream()
        assert c.value_at(7) == C.N
        assert c.ack_prefix() == 0

    def test_set_curious_returns_fresh(self):
        c = CuriosityStream()
        fresh = c.set_curious(TickRange(0, 10))
        assert fresh == [TickRange(0, 10)]
        again = c.set_curious(TickRange(5, 15))
        assert again == [TickRange(10, 15)]

    def test_ack_is_absorbing(self):
        c = CuriosityStream()
        c.set_ack(TickRange(0, 10))
        assert c.set_curious(TickRange(0, 10)) == []
        assert c.value_at(5) == C.A

    def test_ack_prefix(self):
        c = CuriosityStream()
        c.set_ack(TickRange(0, 5))
        assert c.ack_prefix() == 5
        c.set_ack(TickRange(7, 9))
        assert c.ack_prefix() == 5  # gap at 5..6

    def test_set_ack_reports_change(self):
        c = CuriosityStream()
        assert c.set_ack(TickRange(0, 5))
        assert not c.set_ack(TickRange(0, 5))

    def test_clear_curious(self):
        c = CuriosityStream()
        c.set_curious(TickRange(0, 10))
        c.clear_curious(TickRange(3, 6))
        assert c.value_at(2) == C.C
        assert c.value_at(4) == C.N
        assert c.curious_ranges(TickRange(0, 10)) == [
            TickRange(0, 3),
            TickRange(6, 10),
        ]

    def test_forget_curiosity_lowers_c_to_n(self):
        c = CuriosityStream()
        c.set_curious(TickRange(0, 5))
        c.set_ack(TickRange(5, 8))
        c.forget_curiosity()
        assert c.value_at(2) == C.N
        assert c.value_at(6) == C.A  # acks survive forgetting

    def test_unacked_ranges(self):
        c = CuriosityStream()
        c.set_ack(TickRange(0, 3))
        assert c.unacked_ranges(TickRange(0, 6)) == [TickRange(3, 6)]


class TestStreamLinkage:
    """The F <-> A linkage the paper requires."""

    def test_final_knowledge_forces_anticurious(self):
        s = Stream()
        s.accumulate_final(TickRange(0, 10))
        assert s.curiosity.value_at(5) == C.A

    def test_ack_finalizes_knowledge(self):
        s = Stream()
        s.knowledge.accumulate_data(5, "m")
        s.set_ack(TickRange(0, 10))
        assert s.knowledge.value_at(5) == K.F
        assert not s.knowledge.has_payload(5)

    def test_data_for_acked_tick_is_finalized(self):
        s = Stream()
        s.set_ack(TickRange(0, 10))
        assert not s.accumulate_data(5, "late")
        assert s.knowledge.value_at(5) == K.F

    def test_set_curious_skips_final_prefix(self):
        s = Stream()
        s.accumulate_final(TickRange(0, 5))
        fresh = s.set_curious(TickRange(0, 10))
        assert fresh == [TickRange(5, 10)]
        # The covered part was auto-acked instead.
        assert s.curiosity.value_at(2) == C.A

    def test_set_curious_entirely_final_yields_nothing(self):
        s = Stream()
        s.accumulate_final(TickRange(0, 10))
        assert s.set_curious(TickRange(0, 10)) == []

    def test_forget_all_resets_everything(self):
        s = Stream()
        s.accumulate_data(3, "m")
        s.set_curious(TickRange(5, 8))
        s.forget_all()
        assert s.knowledge.horizon() == 0
        assert s.curiosity.value_at(6) == C.N


@st.composite
def stream_ops(draw):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["data", "final", "forget", "ack"]),
                st.integers(0, 40),
                st.integers(1, 8),
            ),
            max_size=25,
        )
    )


class TestStreamProperties:
    @given(stream_ops())
    @settings(max_examples=150)
    def test_invariants_under_arbitrary_ops(self, ops):
        s = Stream()
        for kind, start, length in ops:
            rng = TickRange(start, start + length)
            if kind == "data":
                s.accumulate_data(start, f"m{start}")
            elif kind == "final":
                s.accumulate_final(rng)
            elif kind == "forget":
                s.knowledge.forget(rng)
            else:
                s.set_ack(rng)
            s.check_invariants()
            # Linkage: every F tick in a checked window is anti-curious
            # after ack/final operations touch it (spot-check window).
        horizon = s.knowledge.horizon()
        for t in range(0, min(horizon, 48)):
            if s.curiosity.value_at(t) == C.A:
                # acked ticks never hold payloads
                assert not s.knowledge.has_payload(t)

    @given(stream_ops())
    @settings(max_examples=100)
    def test_doubt_horizon_definition(self, ops):
        """t_D is the first Q tick: everything below is D or F."""
        s = Stream()
        for kind, start, length in ops:
            rng = TickRange(start, start + length)
            if kind == "data":
                s.accumulate_data(start, "m")
            elif kind == "final":
                s.accumulate_final(rng)
            elif kind == "forget":
                s.knowledge.forget(rng)
            else:
                s.set_ack(rng)
        horizon = s.knowledge.doubt_horizon()
        for t in range(0, min(horizon, 60)):
            assert s.knowledge.value_at(t) in (K.D, K.F)
        assert (
            horizon >= s.knowledge.horizon()
            or s.knowledge.value_at(horizon) == K.Q
        )
