"""Failover tour: watch the protocol machinery during the paper's faults.

Replays the three failure-injection experiments of the paper's section
4.2 (Figures 6-8) back to back and narrates what the protocol does:
where nacks are sent, how they are consolidated, how long recovery takes,
and how the latency profile of the affected subscriber evolves.

Run:  python examples/failover_tour.py
"""

from repro.analysis import sparkline
from repro.experiments.fig678 import FAULTS, run_fault_experiment


DESCRIPTIONS = {
    "link_b1_s1": (
        "Figure 6 — the b1-s1 link is stalled ~2.5 s (silently eating "
        "traffic), then failed for 10 s.  s1 nacks to b2; p1 reroutes."
    ),
    "crash_b1": (
        "Figure 7 — intermediate broker b1 is stalled then crashed; its "
        "cell peer b2 takes over and consolidates s1's and s2's nacks."
    ),
    "crash_p1": (
        "Figure 8 — the publisher-hosting broker crashes for 20 s.  With "
        "DCT=inf nobody nacks while it is down; on restart an AckExpected "
        "probe triggers recovery of the logged-but-unsent backlog."
    ),
}


def main() -> None:
    for fault in FAULTS:
        print("=" * 78)
        print(DESCRIPTIONS[fault])
        print("-" * 78)
        result = run_fault_experiment(fault)
        for line in result.fault_log:
            print(f"  fault: {line}")
        print()
        for sub in sorted(result.latency):
            series = result.latency[sub]
            values = [lat for __, lat in series]
            delivered, expected = result.counts[sub]
            print(
                f"  {sub}: {delivered}/{expected} delivered, "
                f"exactly once: {result.exactly_once[sub]}, "
                f"peak latency {max(values):.2f} s"
            )
            print(f"    latency profile |{sparkline(values)}|")
        print()
        if result.nacks:
            print("  nack traffic (cumulative tick ranges, ms):")
            for node in sorted(result.nacks):
                print(
                    f"    {node}: {result.nack_count(node)} messages, "
                    f"{result.nack_range_total(node):.0f} ms"
                )
        else:
            print("  no nacks were needed")
        print()
        assert result.all_exactly_once()
    print("=" * 78)
    print("all three faults recovered with exactly-once delivery everywhere")


if __name__ == "__main__":
    main()
