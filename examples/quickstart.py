"""Quickstart: exactly-once content-based publish-subscribe in ~40 lines.

Builds a tiny two-broker deployment (publisher-hosting broker ->
subscriber-hosting broker), subscribes with a content predicate, publishes
a stream of events, and verifies the guaranteed-delivery contract: every
matching message delivered exactly once, in publisher order — even though
the link is configured to randomly drop 10% of all messages.

Run:  python examples/quickstart.py
"""

from repro import DeliveryChecker, LivenessParams, two_broker_topology


def main() -> None:
    # 1. Declare the topology: one PHB, one SHB, one pubend routed across.
    topo = two_broker_topology()
    topo.pubend("quotes", "phb")
    topo.route("quotes", "PHB", "SHB")

    # 2. Build the simulated system.  The link drops 10% of messages —
    #    the GD protocol's knowledge/curiosity machinery repairs the gaps.
    system = topo.build(
        seed=42,
        params=LivenessParams(gct=0.1, nrt_min=0.3),
        log_commit_latency=0.02,  # stable-storage group commit at the PHB
    )
    system.network.link("phb", "shb").drop_probability = 0.10

    # 3. Subscribe with a content predicate (the subscription language).
    alice = system.subscribe("alice", "shb", ("quotes",), "symbol = 'IBM' and price > 100")
    bob = system.subscribe("bob", "shb", ("quotes",), "price <= 100")

    # 4. Publish 300 events at 100 msgs/s.
    publisher = system.publisher(
        "quotes",
        rate=100.0,
        make_attributes=lambda i: {
            "symbol": "IBM" if i % 2 == 0 else "ACME",
            "price": 80 + (i * 7) % 50,
        },
    )
    publisher.start(at=0.1)
    system.run_until(3.1)
    publisher.stop()
    system.run_until(10.0)  # drain: let retransmissions finish

    # 5. Verify the service specification against ground truth.
    checker = DeliveryChecker([publisher])
    for name, client in (("alice", alice), ("bob", bob)):
        report = checker.check(client, system.subscriptions[name])
        print(
            f"{name}: delivered {report.delivered}/{report.matching_published} "
            f"matching messages, exactly once: {report.exactly_once}"
        )
        assert report.exactly_once

    dropped = sum(
        link.stats.dropped_random for link in system.network._links.values()
    )
    print(f"(the network dropped {dropped} messages; the protocol recovered all of them)")
    med = system.metrics.latency.series("alice").median()
    print(f"alice's median end-to-end latency: {1000 * med:.1f} ms")


if __name__ == "__main__":
    main()
