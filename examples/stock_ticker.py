"""Stock ticker: the paper's service-agreement motivation.

"It is unacceptable for some stock traders not to see a trade event that
others see" (paper, section 1).  This example runs a trade feed over the
paper's Figure 3 network — one publisher-hosting broker, two redundant
intermediate cells, five subscriber-hosting brokers — subscribes traders
at different SHBs with different content filters, then kills an
intermediate broker mid-session.

Despite the crash, every trader sees *exactly* the trades matching their
filter, in order: traders behind the failed broker experience a latency
blip while the nack/retransmission machinery recovers the lost burst, but
no trader misses a trade that others saw.

Run:  python examples/stock_ticker.py
"""

from repro import DeliveryChecker, FaultInjector, PAPER_FAULT_PARAMS
from repro.topology import balanced_pubend_names, figure3_topology

SYMBOLS = ["IBM", "ACME", "GRYP", "PUBX"]


def main() -> None:
    # Four pubends at p1, one per exchange feed partition.
    feeds = balanced_pubend_names(4)
    system = figure3_topology(n_pubends=4, pubend_names=feeds).build(
        seed=2026, params=PAPER_FAULT_PARAMS
    )

    # Traders at different SHBs, with content-based subscriptions.
    traders = {
        "day_trader": system.subscribe(
            "day_trader", "s1", tuple(feeds), "symbol = 'IBM'"
        ),
        "quant": system.subscribe(
            "quant", "s2", tuple(feeds), "price > 150 and volume >= 500"
        ),
        "auditor": system.subscribe("auditor", "s4", tuple(feeds)),  # everything
    }

    publishers = []
    for k, feed in enumerate(feeds):
        publishers.append(
            system.publisher(
                feed,
                rate=25.0,
                make_attributes=lambda i, k=k: {
                    "symbol": SYMBOLS[(i + k) % len(SYMBOLS)],
                    "price": 100 + (i * 13 + k * 7) % 100,
                    "volume": 100 * ((i + k) % 10 + 1),
                },
            )
        )

    # Crash intermediate broker b1 mid-session (with the paper's stall,
    # so ~2s of trades on its paths are actually lost in flight).
    injector = FaultInjector(system)
    injector.stall_then_crash_broker("b1", at=5.0, stall=2.0, downtime=10.0)

    for publisher in publishers:
        publisher.start(at=0.2)
    system.run_until(25.0)
    for publisher in publishers:
        publisher.stop()
    system.run_until(40.0)

    print("fault timeline:")
    for line in injector.log:
        print(f"  {line}")
    print()

    checker = DeliveryChecker(publishers)
    for name, client in traders.items():
        report = checker.check(client, system.subscriptions[name])
        series = system.metrics.latency.series(name)
        print(
            f"{name:>10}: {report.delivered:4d} trades "
            f"(expected {report.matching_published}), "
            f"exactly once: {report.exactly_once}, "
            f"median latency {1000 * series.median():6.1f} ms, "
            f"worst {series.max():.2f} s"
        )
        assert report.exactly_once

    total = sum(len(p.published) for p in publishers)
    print(f"\n{total} trades published; nobody missed a trade others saw.")
    for node in system.metrics.nacks.nodes():
        print(
            f"  {node}: {system.metrics.nacks.count(node)} nack messages, "
            f"{system.metrics.nacks.total_range(node):.0f} ms of ticks requested"
        )


if __name__ == "__main__":
    main()
