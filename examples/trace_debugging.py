"""Trace debugging: watch the protocol conversation around a failure.

Attaches a :class:`~repro.sim.trace.Tracer` to a small deployment, breaks
a link mid-run, and prints the exact message exchange that repairs the
loss — the nack leaving the subscriber-hosting broker, its consolidation,
and the retransmission coming back.  This is the workflow for debugging
the protocol itself: deterministic runs produce byte-identical traces, so
a regression is a diff.

Run:  python examples/trace_debugging.py
"""

from repro import FaultInjector, LivenessParams
from repro.sim.trace import Tracer
from repro.topology import two_broker_topology


def main() -> None:
    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    system = topo.build(
        seed=12,
        params=LivenessParams(gct=0.1, nrt_min=0.3),
        log_commit_latency=0.01,
    )
    tracer = Tracer(system).install()
    injector = FaultInjector(system, tracer=tracer)
    system.subscribe("a", "shb", ("P0",))
    publisher = system.publisher("P0", rate=40.0)

    # Stall the link for 300 ms mid-run: ~12 messages silently vanish.
    injector.at(1.0, lambda: injector.stall_link("phb", "shb"))
    injector.at(1.3, lambda: injector.recover_link("phb", "shb"))

    publisher.start(at=0.1)
    system.run_until(3.0)
    publisher.stop()
    system.run_until(6.0)

    print("traffic fingerprint of the whole run:")
    for key, count in sorted(tracer.counts().items()):
        print(f"  {key:<22} {count}")

    print("\nthe repair conversation (window 1.25s..1.75s, control traffic):")
    window = [
        event
        for event in tracer.filter(t0=1.25, t1=1.75)
        if event.detail.get("msg") in ("nack", "retransmit", "ack")
        or event.kind == "fault"
    ]
    print(tracer.render(window))

    print("\nfirst deliveries after the repair:")
    deliveries = tracer.filter(kind="deliver", t0=1.3)[:6]
    print(tracer.render(deliveries))

    nacks = tracer.filter(msg="nack")
    retransmits = tracer.filter(msg="retransmit")
    assert nacks, "the subscriber must have nacked the gap"
    assert retransmits, "the PHB must have answered"
    print(
        f"\n{len(nacks)} nack(s) repaired the stall; "
        f"{len(retransmits)} retransmission(s) carried the data back."
    )


if __name__ == "__main__":
    main()
