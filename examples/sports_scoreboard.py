"""Sports scoreboard: message interdependency and total order.

The paper's second motivation (section 1): "the messages may be used by
the subscribing application to accumulate a view (e.g., a snapshot of a
sporting event), where missing or reordered messages could cause an
incorrect state to be displayed."

Two score feeds (one pubend per stadium) publish incremental events
("team A scores 2").  Display clients subscribe in *total order* over
both feeds, so every display folds the same deterministic event sequence
— even displays connected to different brokers, even across a lossy
network and a link failure.  At the end, all scoreboard views are
identical and match the ground truth.

Run:  python examples/sports_scoreboard.py
"""

from typing import Dict

from repro import FaultInjector, LivenessParams
from repro.topology import balanced_pubend_names, figure3_topology


class Scoreboard:
    """A view accumulated from incremental score events."""

    def __init__(self) -> None:
        self.scores: Dict[str, int] = {}
        self.events = 0

    def apply(self, event) -> None:
        team = event["team"]
        self.scores[team] = self.scores.get(team, 0) + event["points"]
        self.events += 1

    def snapshot(self) -> str:
        return ", ".join(f"{t}={p}" for t, p in sorted(self.scores.items()))


def main() -> None:
    feeds = balanced_pubend_names(2)  # two stadiums
    system = figure3_topology(n_pubends=2, pubend_names=feeds).build(
        seed=99, params=LivenessParams(gct=0.15, nrt_min=0.4)
    )
    # A lossy wide-area network…
    for link in system.network._links.values():
        link.drop_probability = 0.03
    # …and a failing link mid-game.
    injector = FaultInjector(system)
    injector.stall_then_fail_link("b1", "s1", at=4.0, stall=1.5, outage=5.0)

    # Displays at three different SHBs, all in TOTAL order over both feeds.
    displays = {
        "arena_jumbotron": system.subscribe(
            "arena_jumbotron", "s1", tuple(feeds), total_order=True
        ),
        "sports_bar": system.subscribe(
            "sports_bar", "s3", tuple(feeds), total_order=True
        ),
        "mobile_app": system.subscribe(
            "mobile_app", "s5", tuple(feeds), total_order=True
        ),
    }

    teams = [("Lions", "Bears"), ("Hawks", "Wolves")]
    publishers = []
    for k, feed in enumerate(feeds):
        home, away = teams[k]
        publishers.append(
            system.publisher(
                feed,
                rate=20.0,
                make_attributes=lambda i, home=home, away=away: {
                    "team": home if (i * 2654435761) % 3 else away,
                    "points": 1 + (i * 40503) % 3,
                },
            )
        )
    for publisher in publishers:
        publisher.start(at=0.2)
    system.run_until(15.0)
    for publisher in publishers:
        publisher.stop()
    system.run_until(35.0)

    # Fold each display's delivered sequence into a scoreboard view.
    boards = {}
    for name, client in displays.items():
        board = Scoreboard()
        for __, ___, event, ____ in client.received:
            board.apply(event)
        boards[name] = board

    # Ground truth: fold all published events in tick order.
    truth = Scoreboard()
    ground = sorted(
        (tick, event)
        for publisher in publishers
        for (__, tick, event) in publisher.published
    )
    for __, event in ground:
        truth.apply(event)

    print(f"ground truth after {truth.events} events: {truth.snapshot()}")
    for name, board in boards.items():
        match = "OK" if board.snapshot() == truth.snapshot() else "MISMATCH"
        print(f"  {name:>16}: {board.snapshot()}  [{match}, {board.events} events]")
        assert board.snapshot() == truth.snapshot()
        assert board.events == truth.events

    # Total order: all displays saw the exact same sequence.
    sequences = [
        [(p, t) for (p, t, __, ___) in client.received]
        for client in displays.values()
    ]
    assert sequences[0] == sequences[1] == sequences[2]
    print("\nall displays applied the identical event sequence (total order)")
    dropped = sum(l.stats.dropped_random + l.stats.dropped_stalled + l.stats.dropped_down
                  for l in system.network._links.values())
    print(f"({dropped} messages were lost on the wire and recovered by the protocol)")


if __name__ == "__main__":
    main()
