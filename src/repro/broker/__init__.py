"""Physical brokers: GD protocol engine, soft state, cells, link bundles."""

from .engine import BrokerServices, GDBrokerEngine, stable_hash
from .simbroker import SimBroker, SubscriberHooks
from .state import (
    BrokerTopologyInfo,
    Envelope,
    IStream,
    LinkStatusMessage,
    OStream,
    PubendRoute,
)
