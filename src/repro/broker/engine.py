"""The guaranteed-delivery protocol engine of one physical broker.

This is the transport-agnostic heart of the system: it owns the broker's
soft state (istreams, ostreams), runs knowledge propagation downstream and
curiosity propagation upstream (paper section 3.1), hosts pubends (PHB
role) and subends (SHB role), chooses physical links out of link bundles,
and performs sideways routing inside a cell (section 3.1, "Propagation
through Link Bundles").

The engine talks to the world through :class:`BrokerServices` (clock,
timers, link sends, client delivery, CPU charging), so the same engine
runs unchanged in the deterministic simulator and in the asyncio runtime.

Key protocol behaviours implemented here:

* knowledge accumulation into istreams, filtered propagation to ostreams;
* *lazy silence*: first-time data messages bracket all F knowledge since
  the ostream's sent watermark, so filtered-out ticks ride along with the
  next matching message instead of needing their own messages;
* retransmissions sent only on paths with overlapping curiosity, with D
  ticks the path is not curious about removed;
* nack satisfaction from local soft state, with unsatisfied ticks marked
  C in ostream and istream and *fresh* C ticks (not already curious)
  forwarded upstream — the nack-consolidation rule;
* curiosity forgetting every minimum repetition interval so repeated
  nacks appear fresh;
* ack consolidation: an istream tick becomes anti-curious only when every
  ostream (and every local subend) is anti-curious for it, at which point
  the ack is forwarded upstream and the local soft state garbage-collected;
* link-bundle selection by pubend hash over operational candidate links,
  preferring brokers that advertise reachability to the whole subtree;
* sideways routing to a cell peer when no direct link to a downstream
  cell is usable.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from ..core.config import LivenessParams
from ..core.lattice import C, K
from ..core.messages import (
    AckExpectedMessage,
    AckMessage,
    DataTick,
    KnowledgeMessage,
    NackMessage,
)
from ..core.pubend import Pubend
from ..core.subend import SubendManager, SubendServices, Subscription
from ..core.ticks import Tick, TickRange
from ..matching.ast import (
    Predicate as AstPredicate,
    TrueP,
    predicate_from_wire,
    predicate_to_wire,
)
from ..matching.covering import summarize_subscriptions
from ..core.edges import FilterEdge
from ..obs.instruments import NULL_INSTRUMENTS, TICK_RANGE_BUCKETS
from ..obs.lifecycle import LifecycleHub
from .state import (
    BrokerTopologyInfo,
    Envelope,
    IStream,
    LinkStatusMessage,
    OStream,
    SubscriptionSummaryMessage,
)

__all__ = ["BrokerServices", "GDBrokerEngine", "stable_hash"]


def stable_hash(text: str) -> int:
    """Deterministic, well-mixed cross-run hash (link-bundle selection).

    Hashing the pubend id onto one of the available links spreads pubends
    across a bundle (paper section 3.1: "whenever both the links p1-b1
    and p1-b2 are operational, messages from about half the pubends ...
    will flow along p1-b1, and half along p1-b2").
    """
    digest = hashlib.md5(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _is_final(value: K) -> bool:
    """Module-level predicate: no per-call closure on the send hot path."""
    return value == K.F


def _payload_size(payload: Any) -> int:
    """Rough wire size of a data payload, for link bandwidth modelling."""
    body = getattr(payload, "body", None)
    if isinstance(body, str):
        return 40 + len(body)
    if isinstance(payload, dict):
        return 40 + 8 * len(payload)
    if isinstance(payload, str):
        return 20 + len(payload)
    return 40


def _knowledge_size(message: KnowledgeMessage) -> int:
    """Rough wire size of a knowledge message."""
    return (
        60
        + 16 * len(message.f_ranges)
        + sum(16 + _payload_size(d.payload) for d in message.data)
    )


class BrokerServices:
    """Everything the engine needs from its host (simulator or asyncio).

    Subclass and override; the defaults make unit tests terse.
    """

    def now(self) -> float:
        raise NotImplementedError

    def schedule(self, delay: float, fn: Callable[[], None]) -> Any:
        raise NotImplementedError

    def send(self, dst: str, message: Any, size: int = 100) -> bool:
        """Send an :class:`Envelope` or :class:`LinkStatusMessage` to an
        adjacent broker.  Returns False when the link is locally known to
        be unusable."""
        raise NotImplementedError

    def link_usable(self, neighbor: str) -> bool:
        """Local knowledge of link health (e.g. TCP connection state)."""
        return True

    def deliver(self, subscriber: str, pubend: str, tick: Tick, payload: Any) -> None:
        """Hand a message to a locally connected subscriber client."""

    def charge(self, cost: float, category: str) -> None:
        """Account CPU work (no-op outside CPU experiments)."""

    def on_nack_message(self, pubend: str, ranges: List[TickRange]) -> None:
        """Hook: this broker put a nack message on the wire."""

    def on_knowledge_message(self, message: KnowledgeMessage) -> None:
        """Hook: this broker put a knowledge message on the wire."""


class _EngineSubendServices(SubendServices):
    """Adapter giving the SubendManager access to the engine."""

    def __init__(self, engine: "GDBrokerEngine"):
        self.engine = engine

    def now(self) -> float:
        return self.engine.services.now()

    def schedule(self, delay: float, fn: Callable[[], None]) -> Any:
        return self.engine.services.schedule(delay, fn)

    def send_nack(self, pubend: str, ranges: List[TickRange]) -> None:
        self.engine.local_nack(pubend, ranges)

    def send_ack(self, pubend: str, up_to: Tick) -> None:
        self.engine.consolidate_ack(pubend)

    def deliver(self, subscriber: str, pubend: str, tick: Tick, payload: Any) -> None:
        self.engine.services.deliver(subscriber, pubend, tick, payload)


class GDBrokerEngine:
    """Guaranteed-delivery protocol state machine of one physical broker."""

    def __init__(
        self,
        topo: BrokerTopologyInfo,
        params: LivenessParams,
        services: BrokerServices,
        instruments: Any = NULL_INSTRUMENTS,
        lifecycle: Optional[LifecycleHub] = None,
    ):
        self.topo = topo
        self.params = params
        self.services = services
        self.instruments = instruments
        #: Per-message lifecycle event bus (see repro.obs.lifecycle).  A
        #: private empty hub when the host passes none, so hot paths can
        #: guard on ``self.lifecycle.listeners`` unconditionally.
        self.lifecycle = lifecycle if lifecycle is not None else LifecycleHub()
        self._resolve_instruments(instruments)
        self.istreams: Dict[str, IStream] = {}
        #: pubend -> downstream cell -> OStream
        self.ostreams: Dict[str, Dict[str, OStream]] = {}
        #: Locally hosted pubends (PHB role).
        self.pubends: Dict[str, Pubend] = {}
        #: Local subend manager (SHB role), created on first subscription.
        self.subend: Optional[SubendManager] = None
        #: neighbor broker -> cells it advertises as directly reachable
        #: (None = no report yet; assume full reachability).
        self.peer_reachable: Dict[str, Optional[FrozenSet[str]]] = {}
        self.counters: Dict[str, int] = {}
        #: Ostreams whose coalesced flush timer is armed (flush_pending).
        #: A cheap guard for hosts that want to piggyback pending
        #: knowledge deltas onto outgoing traffic (see
        #: :meth:`flush_dirty_ostreams`) without scanning the maps.
        self.dirty_ostreams = 0
        for pubend, route in topo.routes.items():
            self._ensure_streams(pubend)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _resolve_instruments(self, instruments: Any) -> None:
        """Resolve this broker's instrument children once, up front.

        Hot-path events then cost one bound-method call; against
        :data:`NULL_INSTRUMENTS` the calls are no-ops.  Children are
        keyed by broker id, so a restarted engine (fresh soft state)
        keeps accumulating into the same counters.
        """
        broker = self.topo.broker_id
        self._m_knowledge_sent = instruments.counter(
            "repro_broker_knowledge_sent_total",
            "Knowledge messages this broker put on broker-to-broker links",
            broker=broker,
        )
        self._m_knowledge_received = instruments.counter(
            "repro_broker_knowledge_received_total",
            "Knowledge messages received from adjacent brokers",
            broker=broker,
        )
        self._m_nacks_sent = instruments.counter(
            "repro_broker_nacks_sent_total",
            "Nack (curiosity) messages this broker sent upstream",
            broker=broker,
        )
        self._m_nacks_received = instruments.counter(
            "repro_broker_nacks_received_total",
            "Nack messages received from downstream brokers",
            broker=broker,
        )
        self._m_nacks_consolidated = instruments.counter(
            "repro_broker_nacks_consolidated_total",
            "Nacks suppressed because the requested ticks were already curious",
            broker=broker,
        )
        self._m_nack_range_ticks = instruments.histogram(
            "repro_broker_nack_range_ticks",
            "Ticks requested per nack message sent upstream (the paper's nack range)",
            boundaries=TICK_RANGE_BUCKETS,
            broker=broker,
        )
        self._m_acks_sent = instruments.counter(
            "repro_broker_acks_sent_total",
            "Consolidated ack messages this broker sent upstream",
            broker=broker,
        )
        self._m_acks_received = instruments.counter(
            "repro_broker_acks_received_total",
            "Ack messages received from downstream brokers",
            broker=broker,
        )
        self._m_retransmissions = instruments.counter(
            "repro_broker_retransmissions_total",
            "Retransmitted knowledge messages answering downstream curiosity",
            broker=broker,
        )
        self._m_silence_messages = instruments.counter(
            "repro_broker_silence_messages_total",
            "Idle-silence knowledge messages generated by locally hosted pubends",
            broker=broker,
        )
        self._m_knowledge_flushes = instruments.counter(
            "repro_broker_knowledge_flushes_total",
            "Coalesced knowledge flushes sent by batched propagation (flush_delay > 0)",
            broker=broker,
        )

    def _ensure_streams(self, pubend: str) -> IStream:
        ist = self.istreams.get(pubend)
        if ist is None:
            ist = IStream(pubend)
            self.istreams[pubend] = ist
            route = self.topo.routes.get(pubend)
            cells = self.ostreams.setdefault(pubend, {})
            if route is not None:
                for cell, filter_edge in route.downstream.items():
                    cells[cell] = OStream(pubend, cell, filter_edge)
        return ist

    def host_pubend(self, pubend: Pubend) -> None:
        """Adopt a pubend (PHB role).

        The istream is deliberately *not* the pubend's root stream: a
        publication enters the istream (and thus reaches local subends and
        downstream paths) only when its log append has committed — "those
        that are not logged are considered not published" (paper section
        2.2).  A recovered pubend's committed state is replayed into the
        istream here, so nack satisfaction after a PHB restart answers
        from the log.
        """
        self.pubends[pubend.pubend_id] = pubend
        ist = self._ensure_streams(pubend.pubend_id)
        for run, value in list(pubend.stream.runs()):
            if value == K.F:
                ist.stream.accumulate_final(run)
            elif value == K.D:
                for tick in run:
                    ist.stream.accumulate_data(
                        tick, pubend.stream.payload_at(tick)
                    )

    def ensure_subend(self) -> SubendManager:
        if self.subend is None:
            self.subend = SubendManager(
                _EngineSubendServices(self),
                self.params,
                instruments=self.instruments,
                node=self.topo.broker_id,
                lifecycle=self.lifecycle,
            )
        return self.subend

    def add_subscription(self, subscription: Subscription) -> None:
        """Register a local subscriber (SHB role)."""
        manager = self.ensure_subend()
        for pubend in subscription.pubends:
            ist = self._ensure_streams(pubend)
            manager.attach_stream(pubend, ist.stream)
        manager.subscribe(subscription)
        if self.params.subscription_propagation:
            for pubend in subscription.pubends:
                self._advertise_summary(pubend)

    def remove_subscription(self, subscriber: str) -> None:
        """Withdraw a local subscriber, narrowing summaries upstream."""
        if self.subend is None:
            return
        subscription = self.subend._subscriptions.get(subscriber)
        self.subend.unsubscribe(subscriber)
        if self.params.subscription_propagation and subscription is not None:
            for pubend in subscription.pubends:
                self._advertise_summary(pubend)

    def start(self) -> None:
        """Arm the engine's periodic timers (call once per incarnation)."""
        self._arm_periodic(self.params.nrt_min, self._curiosity_sweep)
        self._arm_periodic(self.params.link_status_interval, self._send_link_status)
        if self.pubends:
            self._arm_periodic(self.params.aet_check_interval, self._aet_check)
            self._arm_periodic(
                max(self.params.silence_interval / 2.0, 0.05), self._silence_check
            )
        if self.subend is not None and self.params.dct != float("inf"):
            self._arm_periodic(self.params.subend_check_interval, self._subend_check)

    def _arm_periodic(self, interval: float, fn: Callable[[], None]) -> None:
        def tick() -> None:
            fn()
            self.services.schedule(interval, tick)

        self.services.schedule(interval, tick)

    def bump(self, counter: str, by: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + by

    # ------------------------------------------------------------------
    # Publishing (PHB role)
    # ------------------------------------------------------------------

    def publish(self, pubend_id: str, payload: Any) -> Tick:
        """Log a publication and schedule its downstream propagation
        after the log's commit latency.  Returns the assigned tick."""
        pubend = self.pubends[pubend_id]
        now = self.services.now()
        message = pubend.publish(payload, now)
        self.services.charge(0.0, "publish")  # cost charged by host wrapper
        tick = message.data[0].tick
        lc = self.lifecycle
        if lc.listeners:
            lc.published(now, self.topo.broker_id, pubend_id, tick)
        delay = pubend.log.commit_latency
        if delay > 0:

            def commit() -> None:
                if lc.listeners:
                    lc.committed(
                        self.services.now(), self.topo.broker_id, pubend_id, tick
                    )
                self._ingest_local(message)

            self.services.schedule(delay, commit)
        else:
            if lc.listeners:
                lc.committed(now, self.topo.broker_id, pubend_id, tick)
            self._ingest_local(message)
        return tick

    def _ingest_local(self, message: KnowledgeMessage) -> None:
        """Feed a locally generated knowledge message (publish or silence)
        through the normal arrival path (local subends see it, ostreams
        propagate it)."""
        self.on_envelope("", Envelope(message))

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def on_message(self, src: str, message: Any) -> None:
        if isinstance(message, Envelope):
            self.on_envelope(src, message)
        elif isinstance(message, LinkStatusMessage):
            self._on_link_status(message)
        else:
            raise TypeError(f"unexpected message type {type(message).__name__}")

    def on_envelope(self, src: str, envelope: Envelope) -> None:
        payload = envelope.payload
        if isinstance(payload, KnowledgeMessage):
            self._on_knowledge(src, envelope)
        elif isinstance(payload, AckMessage):
            self._on_ack(src, payload)
        elif isinstance(payload, NackMessage):
            self._on_nack(src, payload)
        elif isinstance(payload, AckExpectedMessage):
            self._on_ack_expected(src, payload, envelope)
        elif isinstance(payload, SubscriptionSummaryMessage):
            self._on_subscription_summary(src, payload)
        else:
            raise TypeError(f"unexpected GD message {type(payload).__name__}")

    # ------------------------------------------------------------------
    # Knowledge propagation (downstream)
    # ------------------------------------------------------------------

    def _on_knowledge(self, src: str, envelope: Envelope) -> None:
        message = envelope.payload
        pubend = message.pubend
        route = self.topo.routes.get(pubend)
        if route is None and pubend not in self.istreams:
            self.bump("knowledge_unroutable")
            return
        if envelope.sideways and envelope.target_cell is not None:
            self._relay_sideways(src, envelope)
            return
        ist = self._ensure_streams(pubend)
        if (
            src
            and route is not None
            and self.topo.cell_of.get(src) == route.upstream_cell
        ):
            ist.last_upstream_sender = src
        self.services.charge(0.0, "knowledge_receive")
        self.bump("knowledge_received")
        self._m_knowledge_received.inc()

        for rng in message.merged_f_ranges():
            ist.stream.accumulate_final(rng)
        for data in message.data:
            ist.stream.accumulate_data(data.tick, data.payload)
            # A data arrival satisfies istream curiosity for its tick.
            if ist.stream.curiosity.value_at(data.tick) == C.C:
                ist.stream.curiosity.clear_curious(TickRange.single(data.tick))

        if self.lifecycle.listeners:
            self.lifecycle.knowledge_ingested(
                self.services.now(), self.topo.broker_id, src, message
            )

        if self.subend is not None and self.subend.has_pubend(pubend):
            self.subend.on_knowledge(pubend)
        elif not self.ostreams.get(pubend):
            # Consumer-less sink: acknowledge on arrival so upstream soft
            # state and the pubend log can be collected.
            self.consolidate_ack(pubend)

        cells = self.ostreams.get(pubend, {})
        if envelope.target_cell is not None:
            targets = [envelope.target_cell] if envelope.target_cell in cells else []
        else:
            targets = list(cells)
        for cell in targets:
            self._propagate(ist, cells[cell], message, allow_sideways=not envelope.sideways)

    def _relay_sideways(self, src: str, envelope: Envelope) -> None:
        """Forward a cell peer's knowledge message toward its target cell.

        A sideways envelope carries the *peer's per-path view* toward the
        target cell: its F ranges include finality induced by that path's
        acks (the F <-> A linkage) and by that path's filters.  Those are
        assertions about one path, not about the pubend's stream, so the
        relay must not merge them into its own istream — doing so can
        turn a tick whose data this broker never received into dataless
        finality, which then answers downstream curiosity with silence
        and lets the pubend truncate an undelivered message.  Data ticks
        are absolute facts and are cached locally for redundancy; the
        message itself is forwarded verbatim.
        """
        message = envelope.payload
        self.services.charge(0.0, "knowledge_receive")
        self.bump("knowledge_relayed")
        if message.data and (
            message.pubend in self.istreams
            or self.topo.routes.get(message.pubend) is not None
        ):
            ist = self._ensure_streams(message.pubend)
            for data in message.data:
                ist.stream.accumulate_data(data.tick, data.payload)
                if ist.stream.curiosity.value_at(data.tick) == C.C:
                    ist.stream.curiosity.clear_curious(TickRange.single(data.tick))
        if self.lifecycle.listeners:
            self.lifecycle.knowledge_ingested(
                self.services.now(), self.topo.broker_id, src, message, relay=True
            )
        target = self._pick_downstream_broker(message.pubend, envelope.target_cell)
        if target is None:
            self.bump("knowledge_undeliverable")
            return
        self._m_knowledge_sent.inc()
        self.services.send(target, Envelope(message), _knowledge_size(message))
        if self.lifecycle.listeners:
            self.lifecycle.knowledge_sent(
                self.services.now(),
                self.topo.broker_id,
                target,
                envelope.target_cell or "",
                message,
                "relay",
            )

    def _path_matches(self, ost: OStream, payload: Any) -> bool:
        if not ost.filter.matches(payload):
            return False
        if (
            self.params.subscription_propagation
            and ost.summary_edge is not None
        ):
            return ost.summary_edge.matches(payload)
        return True

    def _apply_path_filter(
        self, ost: OStream, message: KnowledgeMessage
    ) -> KnowledgeMessage:
        """Static edge filter plus the dynamic subscription summary."""
        filtered = ost.filter.apply(message)
        if (
            self.params.subscription_propagation
            and ost.summary_edge is not None
        ):
            filtered = ost.summary_edge.apply(filtered)
        return filtered

    def _propagate(
        self,
        ist: IStream,
        ost: OStream,
        message: KnowledgeMessage,
        allow_sideways: bool = True,
    ) -> None:
        # Capture the path's outstanding curiosity *before* accumulating:
        # finality arriving for a curious tick auto-acks it locally
        # (F <-> A), but the downstream still has to be told the answer.
        curious = self._ostream_curiosity(ist, ost)
        filtered = self._apply_path_filter(ost, message)
        for rng in filtered.merged_f_ranges():
            ost.stream.accumulate_final(rng)
        for data in filtered.data:
            ost.stream.accumulate_data(data.tick, None)

        if message.retransmit:
            # Retransmissions flow only towards curious paths.
            self._answer_curiosity(ist, ost, curious, allow_sideways)
            return

        if self.params.flush_delay > 0:
            # Batched delta propagation: record the dirty ticks and flush
            # one coalesced message per ostream after flush_delay.  Only
            # the cases that would send immediately mark the path dirty.
            if filtered.data or (self.params.silence_broadcast and message.is_silence):
                self._mark_dirty(ost, filtered, allow_sideways)
        elif filtered.data:
            out = self._build_first_time(ost, filtered)
            self._send_knowledge(ost, out, allow_sideways)
        elif self.params.silence_broadcast and message.is_silence:
            out = self._build_silence(ost, filtered)
            if out is not None:
                self._send_knowledge(ost, out, allow_sideways, kind="silence")
        # Whatever just arrived may also satisfy older curiosity on this
        # path (first-time silence for curious ticks, paper section 3.1).
        # Curiosity answers are never delayed by batching.
        self._answer_curiosity(ist, ost, curious, allow_sideways)

    def _mark_dirty(
        self, ost: OStream, filtered: KnowledgeMessage, allow_sideways: bool
    ) -> None:
        """Fold one incoming update into the ostream's pending flush."""
        # Capture the DataTicks (payloads included) now: a local subend
        # sharing the istream may ack-finalize it — dropping the payloads
        # — before the flush fires, so they cannot be re-read later.
        ost.pending_data.extend(filtered.data)
        ost.pending_sideways = ost.pending_sideways and allow_sideways
        armed = False
        if not ost.flush_pending:
            ost.flush_pending = True
            self.dirty_ostreams += 1
            armed = True
            pubend, cell = ost.pubend, ost.cell
            self.services.schedule(
                self.params.flush_delay,
                lambda: self._flush_ostream(pubend, cell),
            )
        if self.lifecycle.listeners:
            self.lifecycle.flush_deferred(
                self.services.now(),
                self.topo.broker_id,
                ost.pubend,
                ost.cell,
                [d.tick for d in filtered.data],
                armed,
                self.params.flush_delay,
            )

    def _flush_ostream(self, pubend: str, cell: str) -> None:
        """Send one coalesced first-time message covering every update
        folded into the ostream since the last flush.

        The message walks only ticks above the sent watermark (the
        neighbor already holds everything below it), so N publications
        ingested within one flush window cost one knowledge message with
        N data ticks and merged F brackets instead of N messages.
        """
        ist = self.istreams.get(pubend)
        ost = self.ostreams.get(pubend, {}).get(cell)
        if ist is None or ost is None or not ost.flush_pending:
            return
        ost.flush_pending = False
        self.dirty_ostreams -= 1
        pending = {d.tick: d for d in ost.pending_data}
        ost.pending_data = []
        allow_sideways = ost.pending_sideways
        ost.pending_sideways = True
        self.services.charge(0.0, "knowledge_flush")
        knowledge = ost.stream.knowledge
        hi = knowledge.horizon()
        fin = knowledge.final_prefix()
        lo = min(ost.sent_watermark, hi)
        f_runs = knowledge.ranges_with(_is_final, max(lo, fin), hi)
        data: List[DataTick] = []
        for tick in sorted(pending):
            # A pending tick may have been finalized meanwhile (acked via
            # a sideways path): finality then travels in fin/f_runs and
            # the captured payload is dropped.
            if knowledge.value_at(tick) == K.D:
                data.append(pending[tick])
        if not data and not f_runs and fin <= ost.sent_watermark:
            # The coalesced message turned out empty (ticks finalized or
            # acked meanwhile): the timer's work was cancelled out.
            if self.lifecycle.listeners:
                self.lifecycle.knowledge_flushed(
                    self.services.now(), self.topo.broker_id, pubend, cell, (), False
                )
            return
        ost.sent_watermark = max(ost.sent_watermark, hi)
        out = KnowledgeMessage(
            pubend=pubend,
            fin_prefix=fin,
            f_ranges=tuple(f_runs),
            data=tuple(data),
            retransmit=False,
        )
        self.bump("knowledge_flushes")
        self._m_knowledge_flushes.inc()
        if self.lifecycle.listeners:
            self.lifecycle.knowledge_flushed(
                self.services.now(),
                self.topo.broker_id,
                pubend,
                cell,
                [d.tick for d in data],
                True,
            )
        self._send_knowledge(ost, out, allow_sideways, kind="flush")

    def flush_dirty_ostreams(self, cell: Optional[str] = None) -> int:
        """Eagerly flush every ostream with a pending coalesced message
        (optionally only those towards ``cell``), ahead of their timers.

        This is the piggyback hook for transports with their own
        batching: a host about to put a data frame on the wire towards a
        neighbor can fold the pending knowledge deltas for that neighbor
        into the same batch instead of paying a second frame one
        flush-delay later.  The armed timers still fire but find
        ``flush_pending`` cleared and no-op.  Guard calls on the cheap
        :attr:`dirty_ostreams` counter.  Returns the number of ostreams
        flushed.
        """
        if not self.dirty_ostreams:
            return 0
        pending: List[Tuple[str, str]] = [
            (pubend, ost_cell)
            for pubend, cells in self.ostreams.items()
            for ost_cell, ost in cells.items()
            if ost.flush_pending and (cell is None or ost_cell == cell)
        ]
        for pubend, ost_cell in pending:
            self._flush_ostream(pubend, ost_cell)
        return len(pending)

    def _build_first_time(
        self, ost: OStream, filtered: KnowledgeMessage
    ) -> KnowledgeMessage:
        """A first-time data message bracketed with lazy silence.

        All F knowledge between the ostream's sent watermark and the
        newest tick of the message rides along, so paths that had data
        filtered out still advance their doubt horizon without dedicated
        silence messages.
        """
        hi = filtered.max_tick()
        lo = min(ost.sent_watermark, hi)
        fin = ost.stream.knowledge.final_prefix()
        f_runs = ost.stream.knowledge.ranges_with(_is_final, max(lo, fin), hi)
        out = KnowledgeMessage(
            pubend=ost.pubend,
            fin_prefix=fin,
            f_ranges=tuple(f_runs),
            data=filtered.data,
            retransmit=False,
        )
        ost.sent_watermark = max(ost.sent_watermark, hi)
        return out

    def _build_silence(
        self, ost: OStream, filtered: KnowledgeMessage
    ) -> Optional[KnowledgeMessage]:
        hi = filtered.max_tick()
        lo = min(ost.sent_watermark, hi)
        fin = ost.stream.knowledge.final_prefix()
        f_runs = ost.stream.knowledge.ranges_with(_is_final, max(lo, fin), hi)
        if not f_runs and fin <= ost.sent_watermark:
            return None
        ost.sent_watermark = max(ost.sent_watermark, hi)
        return KnowledgeMessage(
            pubend=ost.pubend, fin_prefix=fin, f_ranges=tuple(f_runs), data=()
        )

    def _ostream_curiosity(self, ist: IStream, ost: OStream) -> List[TickRange]:
        """The path's current C ranges (over the joint known span)."""
        limit = max(ost.stream.knowledge.horizon(), ist.stream.knowledge.horizon())
        if limit == 0:
            return []
        return ost.stream.curiosity.curious_ranges(TickRange(0, limit + 1))

    def _satisfy_ostream_curiosity(
        self, ist: IStream, ost: OStream, allow_sideways: bool = True
    ) -> None:
        self._answer_curiosity(
            ist, ost, self._ostream_curiosity(ist, ost), allow_sideways
        )

    def _answer_curiosity(
        self,
        ist: IStream,
        ost: OStream,
        curious: List[TickRange],
        allow_sideways: bool = True,
    ) -> None:
        """Answer the path's outstanding C ticks from local soft state.

        The ostream's filtered view is refreshed from the istream over the
        curious ranges first (it may be stale after a restart), then every
        satisfiable tick is sent in a retransmission and its curiosity is
        reset to N (the path will re-nack if the retransmission is lost).
        """
        if not curious:
            return
        # Refresh the filtered view from the istream over curious ranges.
        for rng in curious:
            for run, value in ist.stream.knowledge.iter_runs(rng.start, rng.stop):
                if value == K.F:
                    ost.stream.accumulate_final(run)
                elif value == K.D:
                    for tick in run:
                        payload = ist.stream.knowledge.payload_at(tick)
                        if self._path_matches(ost, payload):
                            ost.stream.accumulate_data(tick, None)
                        else:
                            ost.stream.accumulate_final(TickRange.single(tick))
        # Collect what is now satisfiable.  F pieces were auto-acked by the
        # F<->A linkage, so re-read the still-curious set for D ticks and
        # compute the freshly finalized pieces directly.
        data: List[DataTick] = []
        f_ranges: List[TickRange] = []
        serviced: List[TickRange] = []
        for rng in curious:
            for run, value in ost.stream.knowledge.iter_runs(rng.start, rng.stop):
                if value == K.F:
                    f_ranges.append(run)
                elif value == K.D:
                    for tick in run:
                        if ist.stream.knowledge.has_payload(tick):
                            data.append(
                                DataTick(tick, ist.stream.knowledge.payload_at(tick))
                            )
                            serviced.append(TickRange.single(tick))
        if not data and not f_ranges:
            return
        for rng in serviced:
            ost.stream.curiosity.clear_curious(rng)
        out = KnowledgeMessage(
            pubend=ost.pubend,
            fin_prefix=ost.stream.knowledge.final_prefix(),
            f_ranges=tuple(f_ranges),
            data=tuple(sorted(data, key=lambda d: d.tick)),
            retransmit=True,
        )
        self.bump("retransmissions_sent")
        self._m_retransmissions.inc()
        self._send_knowledge(ost, out, allow_sideways)

    def _send_knowledge(
        self,
        ost: OStream,
        message: KnowledgeMessage,
        allow_sideways: bool = True,
        kind: str = "first",
    ) -> None:
        target = self._pick_downstream_broker(ost.pubend, ost.cell)
        self.services.charge(0.0, "knowledge_send")
        self.services.on_knowledge_message(message)
        if message.retransmit:
            kind = "retransmit"
        if target is not None:
            self.bump("knowledge_sent")
            self._m_knowledge_sent.inc()
            self.services.send(target, Envelope(message), _knowledge_size(message))
            if self.lifecycle.listeners:
                self.lifecycle.knowledge_sent(
                    self.services.now(),
                    self.topo.broker_id,
                    target,
                    ost.cell,
                    message,
                    kind,
                )
            return
        if allow_sideways:
            peer = self._pick_sideways_peer(ost.cell)
            if peer is not None:
                self.bump("knowledge_sideways")
                self._m_knowledge_sent.inc()
                self.services.send(
                    peer,
                    Envelope(message, target_cell=ost.cell, sideways=True),
                    _knowledge_size(message),
                )
                if self.lifecycle.listeners:
                    self.lifecycle.knowledge_sent(
                        self.services.now(),
                        self.topo.broker_id,
                        peer,
                        ost.cell,
                        message,
                        kind,
                        sideways=True,
                    )
                return
        self.bump("knowledge_undeliverable")

    # ------------------------------------------------------------------
    # Curiosity (nack) handling — upstream
    # ------------------------------------------------------------------

    def _on_nack(self, src: str, nack: NackMessage) -> None:
        self.services.charge(0.0, "control")
        self.bump("nacks_received")
        self._m_nacks_received.inc()
        lc = self.lifecycle
        if lc.listeners:
            # Scope marker: retransmissions sent before nack_done are
            # causally children of this nack.
            lc.nack_received(self.services.now(), self.topo.broker_id, src, nack)
        try:
            pubend = nack.pubend
            ist = self.istreams.get(pubend)
            if ist is None:
                return
            cell = self.topo.cell_of.get(src)
            ost = self.ostreams.get(pubend, {}).get(cell) if cell else None
            if ost is None:
                return
            for rng in nack.ranges:
                ost.stream.set_curious(rng)
            # Answer over the *requested* ranges, not just the ticks that
            # are still curious after the F <-> A linkage: ticks that are
            # already final here are exactly the ones we can answer with
            # silence.
            self._answer_curiosity(ist, ost, list(nack.ranges))
            # Whatever is still curious on the path could not be satisfied
            # locally; accumulate into the istream and forward only the
            # fresh part upstream (nack consolidation).
            unsatisfied: List[TickRange] = []
            for rng in nack.ranges:
                unsatisfied.extend(ost.stream.curiosity.curious_ranges(rng))
            if unsatisfied:
                self._escalate_curiosity(pubend, ist, unsatisfied)
        finally:
            if lc.listeners:
                lc.nack_done(self.services.now(), self.topo.broker_id)

    def local_nack(self, pubend: str, ranges: List[TickRange]) -> None:
        """Curiosity initiated by a local subend."""
        ist = self.istreams.get(pubend)
        if ist is None:
            return
        self._escalate_curiosity(pubend, ist, ranges)

    def _escalate_curiosity(
        self, pubend: str, ist: IStream, ranges: List[TickRange]
    ) -> None:
        pb = self.pubends.get(pubend)
        if pb is not None:
            # We are the PHB: answer authoritatively from the log-backed
            # stream by refreshing each requesting path.  (The local
            # subend case cannot happen: local knowledge is complete.)
            for ost in self.ostreams.get(pubend, {}).values():
                self._satisfy_ostream_curiosity(ist, ost)
            return
        fresh: List[TickRange] = []
        for rng in ranges:
            fresh.extend(ist.stream.set_curious(rng))
        if not self.params.nack_consolidation:
            # Ablation: forward the request verbatim (no suppression).
            fresh = list(ranges)
        if not fresh:
            self.bump("nacks_consolidated")
            self._m_nacks_consolidated.inc()
            return
        message = NackMessage(pubend=pubend, ranges=tuple(fresh))
        self.bump("nacks_sent")
        self._m_nacks_sent.inc()
        self._m_nack_range_ticks.observe(float(sum(len(r) for r in fresh)))
        self.services.on_nack_message(pubend, fresh)
        if self.lifecycle.listeners:
            self.lifecycle.nack_sent(
                self.services.now(), self.topo.broker_id, pubend, fresh, message
            )
        self._send_upstream(pubend, ist, Envelope(message), size=64)

    def _curiosity_sweep(self) -> None:
        """Forget istream C ticks so repeated nacks appear fresh."""
        for ist in self.istreams.values():
            ist.stream.curiosity.forget_curiosity()

    # ------------------------------------------------------------------
    # Acknowledgement — upstream
    # ------------------------------------------------------------------

    def _on_ack(self, src: str, ack: AckMessage) -> None:
        self.services.charge(0.0, "control")
        self._m_acks_received.inc()
        cell = self.topo.cell_of.get(src)
        ost = self.ostreams.get(ack.pubend, {}).get(cell) if cell else None
        if ost is None:
            return
        if ack.up_to > 0:
            ost.stream.set_ack(TickRange(0, ack.up_to))
        self.consolidate_ack(ack.pubend)

    def consolidate_ack(self, pubend: str, force: bool = False) -> None:
        """Advance the istream's anti-curious prefix to the minimum over
        all downstream paths and local subends, then propagate.

        ``force`` re-sends the current ack even if it has not advanced —
        needed after an upstream restart (the probe implies the upstream
        lost its soft ack state and must be told again)."""
        ist = self.istreams.get(pubend)
        if ist is None:
            return
        prefix: Optional[Tick] = None
        for ost in self.ostreams.get(pubend, {}).values():
            p = ost.ack_prefix()
            prefix = p if prefix is None else min(prefix, p)
        if self.subend is not None and self.subend.has_pubend(pubend):
            p = self.subend.ack_horizon(pubend)
            prefix = p if prefix is None else min(prefix, p)
        if prefix is None:
            # No consumers at all — no ostreams and no local subend (an
            # SHB nobody subscribed at).  Nothing downstream can ever need
            # these ticks, so acknowledge everything known; otherwise a
            # consumer-less leaf blocks garbage collection (and log
            # truncation) for the whole tree.
            prefix = ist.stream.knowledge.horizon()
        if prefix <= 0:
            return
        pb = self.pubends.get(pubend)
        if pb is not None:
            if pb.record_ack(prefix):
                self.bump("log_truncations")
                # GC the istream copy too (payloads below the prefix).
                ist.stream.set_ack(TickRange(0, prefix))
            return
        if prefix > ist.acked_upstream or (force and prefix > 0):
            ist.acked_upstream = max(prefix, ist.acked_upstream)
            # Garbage-collect: the prefix is final everywhere downstream.
            ist.stream.set_ack(TickRange(0, prefix))
            self.bump("acks_sent")
            self._m_acks_sent.inc()
            self._send_upstream(
                pubend, ist, Envelope(AckMessage(pubend, prefix)), size=48
            )

    # ------------------------------------------------------------------
    # Pubend-driven liveness
    # ------------------------------------------------------------------

    def _aet_check(self) -> None:
        now = self.services.now()
        for pubend_id, pb in self.pubends.items():
            threshold = pb.ack_expected_tick(now)
            if threshold is None:
                continue
            probe = pb.make_ack_expected(threshold)
            if self.subend is not None and self.subend.has_pubend(pubend_id):
                self.subend.on_ack_expected(pubend_id, threshold)
            for ost in self.ostreams.get(pubend_id, {}).values():
                if ost.ack_prefix() < threshold:
                    self.bump("ack_expected_sent")
                    self._send_down_path(ost, Envelope(probe), size=48)

    def _on_ack_expected(
        self, src: str, probe: AckExpectedMessage, envelope: Envelope
    ) -> None:
        self.services.charge(0.0, "control")
        pubend = probe.pubend
        ist = self.istreams.get(pubend)
        route = self.topo.routes.get(pubend)
        if ist is None:
            return
        if src and route is not None and self.topo.cell_of.get(src) == route.upstream_cell:
            ist.last_upstream_sender = src
        if self.subend is not None and self.subend.has_pubend(pubend):
            self.subend.on_ack_expected(pubend, probe.up_to)
        cells = self.ostreams.get(pubend, {})
        targets = (
            [envelope.target_cell]
            if envelope.target_cell is not None and envelope.target_cell in cells
            else list(cells)
        )
        for cell in targets:
            ost = cells[cell]
            if ost.ack_prefix() < probe.up_to:
                self._send_down_path(ost, Envelope(probe), size=48)
        # Re-assert whatever is already consolidated here: a probing
        # upstream has lost its soft ack state (restart) and must be told
        # again even though our ack value did not advance.
        self.consolidate_ack(pubend, force=True)

    # ------------------------------------------------------------------
    # Subscription propagation
    # ------------------------------------------------------------------

    def _local_summary(self, pubend: str) -> Optional[AstPredicate]:
        """The union of this broker's own subscriptions for a pubend.

        Opaque (callable) predicates cannot be introspected and collapse
        the summary to match-everything — conservative by construction.
        Returns ``None`` when there is no local subend for the pubend.
        """
        if self.subend is None or not self.subend.has_pubend(pubend):
            return None
        predicates = []
        for subscription in self.subend.subscriptions_for(pubend):
            if isinstance(subscription.predicate, AstPredicate):
                predicates.append(subscription.predicate)
            else:
                return TrueP()
        return summarize_subscriptions(predicates)

    def _upward_summary(self, pubend: str) -> AstPredicate:
        """What this broker needs from upstream: the union of its local
        summary and every downstream cell's advertised summary.  A cell
        that has not advertised yet contributes match-everything."""
        parts: List[AstPredicate] = []
        local = self._local_summary(pubend)
        if local is not None:
            parts.append(local)
        for ost in self.ostreams.get(pubend, {}).values():
            if ost.summary_edge is None:
                return TrueP()  # unknown downstream: stay conservative
            parts.append(ost.summary_edge.predicate)
        return summarize_subscriptions(parts)

    def _advertise_summary(self, pubend: str) -> None:
        ist = self.istreams.get(pubend)
        route = self.topo.routes.get(pubend)
        if ist is None or route is None or route.upstream_cell is None:
            return
        summary = self._upward_summary(pubend)
        message = SubscriptionSummaryMessage(
            sender=self.topo.broker_id,
            pubend=pubend,
            summary=predicate_to_wire(summary),
        )
        self.bump("summaries_sent")
        self._send_upstream(pubend, ist, Envelope(message), size=96)

    def _on_subscription_summary(
        self, src: str, message: SubscriptionSummaryMessage
    ) -> None:
        if not self.params.subscription_propagation:
            return
        self.services.charge(0.0, "control")
        cell = self.topo.cell_of.get(src)
        ost = self.ostreams.get(message.pubend, {}).get(cell) if cell else None
        if ost is None:
            return
        predicate = predicate_from_wire(message.summary)
        previous = (
            ost.summary_edge.predicate if ost.summary_edge is not None else None
        )
        if predicate == previous:
            return
        ost.summary_edge = FilterEdge(predicate, name=f"summary:{cell}")
        # Our own upward need may have changed; tell upstream.
        self._advertise_summary(message.pubend)

    def _readvertise_summaries(self) -> None:
        """Periodic re-advertisement (piggybacking the link-status
        cadence) so summaries survive upstream restarts — they are soft
        state like everything else."""
        for pubend in self.istreams:
            route = self.topo.routes.get(pubend)
            if route is not None and route.upstream_cell is not None:
                self._advertise_summary(pubend)

    # ------------------------------------------------------------------
    # Link selection, sideways routing, link status
    # ------------------------------------------------------------------

    def _pick_downstream_broker(self, pubend: str, cell: str) -> Optional[str]:
        candidates = [
            n
            for n in self.topo.adjacent_in_cell(cell)
            if self.services.link_usable(n)
        ]
        if not candidates:
            return None
        route = self.topo.routes.get(pubend)
        needed = route.subtree.get(cell, frozenset()) if route else frozenset()
        if needed:
            preferred = [n for n in candidates if self._reaches(n, needed)]
            pool = preferred or candidates
        else:
            pool = candidates
        return pool[stable_hash(pubend) % len(pool)]

    def _reaches(self, neighbor: str, cells: FrozenSet[str]) -> bool:
        report = self.peer_reachable.get(neighbor)
        if report is None:
            return True
        return cells <= report

    def _pick_sideways_peer(self, cell: str) -> Optional[str]:
        peers = [p for p in self.topo.peers() if self.services.link_usable(p)]
        if not peers:
            return None
        for peer in peers:
            report = self.peer_reachable.get(peer)
            if report is None or cell in report:
                return peer
        return None

    def _send_down_path(self, ost: OStream, envelope: Envelope, size: int) -> None:
        target = self._pick_downstream_broker(ost.pubend, ost.cell)
        if target is not None:
            self.services.send(target, envelope, size)
        else:
            peer = self._pick_sideways_peer(ost.cell)
            if peer is not None and not envelope.sideways:
                self.services.send(
                    peer,
                    Envelope(envelope.payload, target_cell=ost.cell, sideways=True),
                    size,
                )

    def _send_upstream(
        self, pubend: str, ist: IStream, envelope: Envelope, size: int
    ) -> None:
        """Acks/nacks go to whichever upstream broker last sent us this
        pubend's traffic; if that is unknown or unusable, broadcast to all
        physical brokers of the upstream cell (paper section 3.1)."""
        route = self.topo.routes.get(pubend)
        if route is None or route.upstream_cell is None:
            return
        sender = ist.last_upstream_sender
        if sender is not None and self.services.link_usable(sender):
            self.services.send(sender, envelope, size)
            return
        sent_any = False
        for neighbor in self.topo.adjacent_in_cell(route.upstream_cell):
            if self.services.link_usable(neighbor):
                self.services.send(neighbor, envelope, size)
                sent_any = True
        if not sent_any:
            self.bump("upstream_unreachable")

    def _send_link_status(self) -> None:
        reachable = frozenset(
            self.topo.cell_of[n]
            for n in self.topo.neighbors
            if self.services.link_usable(n)
            and self.topo.cell_of.get(n) != self.topo.cell
        )
        status = LinkStatusMessage(sender=self.topo.broker_id, reachable_cells=reachable)
        for neighbor in sorted(self.topo.neighbors):
            if self.services.link_usable(neighbor):
                self.services.send(neighbor, status, 48)
        if self.params.subscription_propagation:
            self._readvertise_summaries()

    def _on_link_status(self, status: LinkStatusMessage) -> None:
        self.peer_reachable[status.sender] = status.reachable_cells

    # ------------------------------------------------------------------
    # Pubend silence + subend periodic drivers
    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """A point-in-time snapshot of this broker's soft-state footprint.

        The protocol's memory claim is that acknowledgement-driven garbage
        collection keeps every stream's run-length representation small no
        matter how long the system runs; these numbers are what the
        boundedness tests assert on.
        """
        streams: Dict[str, Any] = {}
        for pubend, ist in self.istreams.items():
            entry = {
                "istream_runs": ist.stream.knowledge.run_count(),
                "istream_payloads": ist.stream.knowledge.d_tick_count(),
                "curiosity_runs": ist.stream.curiosity.run_count(),
                "acked_upstream": ist.acked_upstream,
                "ostreams": {},
            }
            for cell, ost in self.ostreams.get(pubend, {}).items():
                entry["ostreams"][cell] = {
                    "runs": ost.stream.knowledge.run_count(),
                    "payload_marks": ost.stream.knowledge.d_tick_count(),
                    "ack_prefix": ost.ack_prefix(),
                }
            streams[pubend] = entry
        return {
            "broker": self.topo.broker_id,
            "counters": dict(self.counters),
            "pubends_hosted": sorted(self.pubends),
            "log_entries": {
                pubend_id: len(pb.log.entries(pubend_id))
                for pubend_id, pb in self.pubends.items()
            },
            "streams": streams,
        }

    def stream_state(self) -> Dict[str, Dict[str, Any]]:
        """Per-pubend protocol horizons for external correctness checkers.

        Unlike :meth:`stats` (memory footprint), this reports the
        *semantic* watermarks the knowledge lattice makes monotone within
        one broker incarnation: istream/ostream doubt horizons and final
        prefixes, upstream-acked prefixes, and — when this broker hosts a
        subend for the pubend — its delivery and ack horizons.  The
        ``repro.check`` oracle suite sweeps these during fuzz runs and
        fails loudly on any regression.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for pubend, ist in self.istreams.items():
            knowledge = ist.stream.knowledge
            entry: Dict[str, Any] = {
                "istream": {
                    "doubt_horizon": knowledge.doubt_horizon(),
                    "final_prefix": knowledge.final_prefix(),
                    "horizon": knowledge.horizon(),
                    "acked_upstream": ist.acked_upstream,
                },
                "ostreams": {},
                "subend": None,
                "pubend": None,
            }
            for cell, ost in self.ostreams.get(pubend, {}).items():
                ost_knowledge = ost.stream.knowledge
                entry["ostreams"][cell] = {
                    "doubt_horizon": ost_knowledge.doubt_horizon(),
                    "final_prefix": ost_knowledge.final_prefix(),
                    "ack_prefix": ost.ack_prefix(),
                    "sent_watermark": ost.sent_watermark,
                }
            if self.subend is not None and self.subend.has_pubend(pubend):
                state = self.subend.state_of(pubend)
                entry["subend"] = {
                    "delivered_horizon": state.delivered_horizon,
                    "acked_up_to": state.acked_up_to,
                }
            pb = self.pubends.get(pubend)
            if pb is not None:
                entry["pubend"] = {
                    "acked_up_to": pb.acked_up_to,
                    "horizon": pb.stream.horizon(),
                }
            out[pubend] = entry
        return out

    def _silence_check(self) -> None:
        now = self.services.now()
        for pb in self.pubends.values():
            message = pb.maybe_silence(now)
            if message is not None:
                self._m_silence_messages.inc()
                if self.lifecycle.listeners:
                    self.lifecycle.silence_emitted(
                        now,
                        self.topo.broker_id,
                        pb.pubend_id,
                        pb.stream.horizon(),
                    )
                self._ingest_local(message)

    def _subend_check(self) -> None:
        if self.subend is not None:
            self.subend.on_periodic()
