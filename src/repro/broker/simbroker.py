"""A physical broker hosted in the discrete-event simulator.

Wraps :class:`~repro.broker.engine.GDBrokerEngine` in a
:class:`~repro.sim.process.SimProcess`: network I/O goes through the
simulated links, timers through the scheduler, CPU work through a
:class:`~repro.metrics.cpu.CpuAccountant`, and client deliveries are
scheduled at CPU-work completion time plus the client link latency (which
is what makes SHB fan-out latency grow with subscriber count, Figure 5).

Crash/restart semantics follow the paper's failure model:

* a crash discards the engine — all istream/ostream/subend soft state —
  but *not* the pubend logs (stable storage survives the process);
* restart builds a fresh engine, re-hosts pubends by replaying their
  logs, and restarts timers.  Subscriber state at a crashed SHB is gone;
  the paper's guarantee only covers subscribers that remain connected,
  and its experiments never crash an SHB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.config import LivenessParams
from ..core.pubend import Pubend
from ..core.subend import Subscription
from ..core.ticks import Tick, TickRange
from ..metrics.cpu import CostModel, CpuAccountant
from ..obs.hub import MetricsHub
from ..obs.observability import Observability
from ..sim.network import SimNetwork
from ..sim.process import SimProcess
from ..sim.scheduler import Scheduler
from ..storage.log import MessageLog
from .engine import BrokerServices, GDBrokerEngine
from .state import BrokerTopologyInfo

__all__ = ["SimBroker", "SubscriberHooks"]


@dataclass
class _PubendHosting:
    """Durable facts needed to re-host a pubend after a crash."""

    pubend_id: str
    log: MessageLog
    slot: int
    n_slots: int
    preassign_window: Optional[float] = None


class SubscriberHooks:
    """Client-side delivery callback (duck-typed).

    ``on_delivery(pubend, tick, payload, time)`` is invoked when the SHB
    finishes writing the message to this subscriber's connection.
    """

    def on_delivery(self, pubend: str, tick: Tick, payload: Any, time: float) -> None:
        raise NotImplementedError


class _SimServices(BrokerServices):
    def __init__(self, broker: "SimBroker"):
        self.broker = broker

    def now(self) -> float:
        return self.broker.scheduler.now

    def schedule(self, delay: float, fn: Callable[[], None]):
        return self.broker.schedule(delay, fn)

    def send(self, dst: str, message: Any, size: int = 100) -> bool:
        self.broker.accountant.charge(self.broker.cost_model.broker_send, "send")
        return self.broker.send(dst, message, size)

    def link_usable(self, neighbor: str) -> bool:
        # Models the TCP connection state: an adjacent failure (closed
        # connection / dead process) is observed immediately, but a
        # *stalled* peer looks healthy (paper section 4.2).
        network = self.broker.network
        if not network.has_link(self.broker.node_id, neighbor):
            return False
        link = network.link(self.broker.node_id, neighbor)
        return link.up and link.other(self.broker.node_id).alive

    def deliver(self, subscriber: str, pubend: str, tick: Tick, payload: Any) -> None:
        self.broker.deliver_to_client(subscriber, pubend, tick, payload)

    def charge(self, cost: float, category: str) -> None:
        self.broker.charge_category(category)

    def on_nack_message(self, pubend: str, ranges: List[TickRange]) -> None:
        tick_count = sum(len(r) for r in ranges)
        self.broker.metrics.nacks.record(
            self.broker.node_id, self.broker.scheduler.now, tick_count
        )

    def on_knowledge_message(self, message) -> None:
        self.broker.metrics.bump("knowledge_messages")


class SimBroker(SimProcess):
    """One physical Gryphon broker in the simulator."""

    def __init__(
        self,
        node_id: str,
        network: SimNetwork,
        scheduler: Scheduler,
        topo: BrokerTopologyInfo,
        params: LivenessParams,
        metrics: Optional[MetricsHub] = None,
        cost_model: Optional[CostModel] = None,
        client_latency: float = 0.0005,
        restart_warmup: float = 0.3,
        obs: Optional[Observability] = None,
    ):
        super().__init__(node_id, network, scheduler)
        #: CPU-seconds of extra work charged right after a restart —
        #: models the paper's observation that a freshly restarted broker
        #: is briefly slow ("extra computation in the broker machine just
        #: when it starts up, such as to run the Java JIT compiler",
        #: section 4.2), which produces Figure 7's second latency peak.
        self.restart_warmup = restart_warmup
        self.topo = topo
        self.params = params
        if obs is None:
            obs = Observability(hub=metrics)
        self.obs = obs
        self.metrics = metrics if metrics is not None else obs.hub
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.client_latency = client_latency
        self.accountant = CpuAccountant(lambda: scheduler.now)
        self.obs.register_accountant(node_id, self.accountant)
        self._hostings: Dict[str, _PubendHosting] = {}
        self._subscriptions: List[Subscription] = []
        self._clients: Dict[str, SubscriberHooks] = {}
        #: Client writes handed to the connection but not yet completed:
        #: (subscriber, pubend, tick).  Only an SHB crash can void these,
        #: which is what makes "acked but still in flight" safe to truncate
        #: behind — and what the truncation oracle introspects.
        self._inflight_client_writes: Set[Tuple[str, str, Tick]] = set()
        self.services = _SimServices(self)
        # The engine shares the system-wide lifecycle hub, so causal
        # tracers attached to system.obs see every incarnation of this
        # broker (on_restart threads the same hub into the new engine).
        self.engine = GDBrokerEngine(
            topo,
            params,
            self.services,
            instruments=self.obs.instruments,
            lifecycle=self.obs.lifecycle,
        )
        self._started = False

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def host_pubend(
        self,
        pubend_id: str,
        log: MessageLog,
        slot: int = 0,
        n_slots: int = 1,
        preassign_window: Optional[float] = None,
    ) -> Pubend:
        """Become the PHB for ``pubend_id`` with the given stable log."""
        hosting = _PubendHosting(pubend_id, log, slot, n_slots, preassign_window)
        self._hostings[pubend_id] = hosting
        return self._adopt(hosting, recover=False)

    def _adopt(self, hosting: _PubendHosting, recover: bool) -> Pubend:
        pubend = Pubend(
            hosting.pubend_id,
            hosting.log,
            slot=hosting.slot,
            n_slots=hosting.n_slots,
            aet=self.params.aet,
            silence_interval=self.params.silence_interval,
            preassign_window=(
                hosting.preassign_window
                if hosting.preassign_window is not None
                else self.params.preassign_window
            ),
            instruments=self.obs.instruments,
        )
        if recover:
            pubend.recover()
        self.engine.host_pubend(pubend)
        return pubend

    def add_subscription(
        self, subscription: Subscription, client: Optional[SubscriberHooks] = None
    ) -> None:
        self._subscriptions.append(subscription)
        if client is not None:
            self._clients[subscription.subscriber] = client
        self.engine.add_subscription(subscription)

    def start(self) -> None:
        """Arm periodic protocol timers.  Call after configuration."""
        self._started = True
        self.engine.start()

    # ------------------------------------------------------------------
    # Publishing and delivery
    # ------------------------------------------------------------------

    def publish(self, pubend_id: str, payload: Any) -> Optional[Tick]:
        """Client publish: log (GD cost) and propagate after commit.

        Returns ``None`` when the broker is down — the publishing client's
        message is *not published* and will never be delivered (paper
        section 2.2: only logged messages are published).
        """
        if not self.alive:
            return None
        self.accountant.charge(
            self.cost_model.msg_receive + self.cost_model.log_append, "publish"
        )
        return self.engine.publish(pubend_id, payload)

    def deliver_to_client(
        self, subscriber: str, pubend: str, tick: Tick, payload: Any
    ) -> None:
        """Queue the per-subscriber socket write; the client sees the
        message when the write completes (CPU queue + client link)."""
        completion = self.accountant.charge(self.cost_model.client_send, "fanout")
        client = self._clients.get(subscriber)
        if client is None:
            return
        delay = (completion - self.scheduler.now) + self.client_latency
        key = (subscriber, pubend, tick)
        self._inflight_client_writes.add(key)
        lifecycle = self.obs.lifecycle
        if lifecycle.listeners:
            lifecycle.client_write(
                self.scheduler.now, self.node_id, subscriber, pubend, tick, delay
            )

        def complete() -> None:
            self._inflight_client_writes.discard(key)
            if lifecycle.listeners:
                lifecycle.delivered(
                    self.scheduler.now, self.node_id, subscriber, pubend, tick
                )
            client.on_delivery(pubend, tick, payload, self.scheduler.now)

        self.schedule(delay, complete)

    def client_write_inflight(self, subscriber: str, pubend: str, tick: Tick) -> bool:
        """Whether a delivery is queued on the subscriber's connection
        (scheduled but not yet observed by the client)."""
        return (subscriber, pubend, tick) in self._inflight_client_writes

    def charge_category(self, category: str) -> None:
        model = self.cost_model
        if category == "knowledge_receive":
            cost = model.msg_receive + model.knowledge_update
            if self.engine.subend is not None:
                # Consolidated per-message (not per-subscriber) GD subend
                # bookkeeping — the reason the GD-vs-BE gap stays constant
                # as subscribers grow (paper section 4.1).
                cost += model.gd_subend_update + model.match
        elif category == "knowledge_send":
            cost = 0.0  # charged in _SimServices.send
        elif category == "knowledge_flush":
            cost = model.knowledge_flush
        elif category == "publish":
            cost = model.knowledge_update
        else:
            cost = model.control
        if cost:
            self.accountant.charge(cost, category)

    # ------------------------------------------------------------------
    # SimProcess plumbing
    # ------------------------------------------------------------------

    def on_message(self, src: str, message: Any) -> None:
        # Messages are processed when the CPU gets to them: a busy or
        # freshly restarted broker delays its queue, which is visible as
        # end-to-end latency (Figures 5 and 7).
        lifecycle = self.obs.lifecycle
        if lifecycle.listeners:
            # Raw arrival time, before the CPU work queue: the gap to the
            # engine's ingest is attributable queueing delay.
            lifecycle.message_arrived(self.scheduler.now, self.node_id, src, message)
        completion = self.accountant.charge(self.cost_model.msg_receive, "receive")
        delay = completion - self.scheduler.now
        if delay > 1e-6:
            self.schedule(delay, lambda: self._process(src, message))
        else:
            self.engine.on_message(src, message)

    def _process(self, src: str, message: Any) -> None:
        if self.alive and self.engine is not None:
            self.engine.on_message(src, message)

    def on_crash(self) -> None:
        # All soft state dies with the process; logs survive.  Queued
        # client writes are voided with it (their timers are epoch-gated),
        # so they must not keep reading as "in flight".
        self.engine = None  # type: ignore[assignment]
        self._inflight_client_writes.clear()

    def on_restart(self) -> None:
        if self.restart_warmup:
            self.accountant.charge(self.restart_warmup, "warmup")
        self.engine = GDBrokerEngine(
            self.topo,
            self.params,
            self.services,
            instruments=self.obs.instruments,
            lifecycle=self.obs.lifecycle,
        )
        for hosting in self._hostings.values():
            self._adopt(hosting, recover=True)
        # NOTE: subscriptions at a crashed SHB are not restored — clients
        # must reconnect/resubscribe (outside the paper's failure model).
        if self._started:
            self.engine.start()
