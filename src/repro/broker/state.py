"""Broker soft state and broker-to-broker envelopes.

Section 3.1 of the paper: since the implemented protocol has no merges,
each broker keeps, per pubend P, an input stream ``istream[P]`` and, per
downstream cell c, an output stream ``ostream[P, c]`` connected to the
istream by a filter edge.  Every physical broker in a cell replicates
these structures (possibly with different per-tick knowledge).

All of this is *soft* state: a broker crash discards it entirely, and the
protocol rebuilds it from upstream knowledge and downstream curiosity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Mapping, Optional, Tuple

from ..core.edges import FilterEdge
from ..core.streams import Stream
from ..core.ticks import Tick

__all__ = [
    "IStream",
    "OStream",
    "PubendRoute",
    "BrokerTopologyInfo",
    "Envelope",
    "LinkStatusMessage",
    "SubscriptionSummaryMessage",
]


class IStream:
    """Input stream of one pubend at one broker."""

    __slots__ = ("pubend", "stream", "last_upstream_sender", "acked_upstream")

    def __init__(self, pubend: str):
        self.pubend = pubend
        self.stream = Stream()
        #: The physical broker that most recently sent us downstream
        #: knowledge for this pubend — acks and nacks are sent back to it
        #: (paper section 3.1); ``None`` falls back to broadcasting to the
        #: whole upstream cell.
        self.last_upstream_sender: Optional[str] = None
        #: The ack value last propagated upstream (monotone).
        self.acked_upstream: Tick = 0


class OStream:
    """Output stream of one pubend towards one downstream cell."""

    __slots__ = (
        "pubend",
        "cell",
        "filter",
        "stream",
        "sent_watermark",
        "summary_edge",
        "pending_data",
        "flush_pending",
        "pending_sideways",
    )

    def __init__(self, pubend: str, cell: str, filter_edge: FilterEdge):
        self.pubend = pubend
        self.cell = cell
        self.filter = filter_edge
        #: Filtered knowledge view plus downstream curiosity.  D ticks
        #: here mark which ticks passed the filter; their payloads live in
        #: the istream (one copy per broker, not per path).
        self.stream = Stream()
        #: All ticks below this are covered by messages already sent
        #: downstream; the next first-time data message brackets the range
        #: from here so silence propagates lazily with data.
        self.sent_watermark: Tick = 0
        #: Dynamic filter from subscription propagation: the downstream
        #: cell's advertised subscription summary (None until received;
        #: absent summaries filter nothing — conservative).
        self.summary_edge: Optional[FilterEdge] = None
        #: Batched flushing (flush_delay > 0): DataTicks ingested since the
        #: last flush, awaiting one coalesced first-time KnowledgeMessage.
        #: Payloads are captured here at ingest time — a co-hosted subend
        #: may consume and finalize the shared istream (GC'ing its
        #: payloads) before the flush timer fires.
        self.pending_data: list = []
        #: Whether a flush timer is currently scheduled for this ostream.
        self.flush_pending: bool = False
        #: AND of the allow_sideways flags of the updates folded into the
        #: pending flush — a single non-sideways-eligible contribution
        #: makes the whole coalesced message non-sideways-eligible.
        self.pending_sideways: bool = True

    def ack_prefix(self) -> Tick:
        """Ticks below this are anti-curious: acked by the downstream cell
        or locally final (filtered data is immediately ackable)."""
        return self.stream.curiosity.ack_prefix()


@dataclass(frozen=True)
class PubendRoute:
    """One broker's routing knowledge for one pubend's spanning tree."""

    pubend: str
    #: Cell the knowledge arrives from (None when this broker hosts the
    #: pubend).
    upstream_cell: Optional[str]
    #: Downstream cells and the filter applied on each edge.
    downstream: Mapping[str, FilterEdge]
    #: For each downstream cell: the cells *below it* in this pubend's
    #: tree (used to prefer physical brokers that can reach the whole
    #: subtree when choosing a link from a bundle).
    subtree: Mapping[str, FrozenSet[str]] = field(default_factory=dict)


@dataclass(frozen=True)
class BrokerTopologyInfo:
    """Static topology facts a broker is configured with.

    (The paper's system fixes the virtual topology; dynamic subscription
    changes it, which the paper scopes out — so do we.)
    """

    broker_id: str
    cell: str
    #: Adjacent physical brokers (static links).
    neighbors: FrozenSet[str]
    #: Cell of every broker we may talk to.
    cell_of: Mapping[str, str]
    #: Physical brokers of every cell we may talk to.
    brokers_of_cell: Mapping[str, Tuple[str, ...]]
    #: Per-pubend routes through this broker.
    routes: Mapping[str, PubendRoute]

    def peers(self) -> Tuple[str, ...]:
        """Adjacent brokers in the same cell (sideways-routing partners)."""
        return tuple(
            sorted(
                n
                for n in self.neighbors
                if self.cell_of.get(n) == self.cell
            )
        )

    def adjacent_in_cell(self, cell: str) -> Tuple[str, ...]:
        """Adjacent brokers belonging to ``cell``."""
        return tuple(
            sorted(n for n in self.neighbors if self.cell_of.get(n) == cell)
        )


@dataclass(frozen=True, slots=True)
class Envelope:
    """Broker-to-broker wrapper around a GD message.

    ``target_cell`` restricts propagation: a sideways-routed knowledge
    message must only be forwarded to the one cell its original sender
    could not reach, not re-broadcast along every path (the peer already
    received the message on its own normal path).  ``sideways`` prevents
    sideways ping-pong between cell peers.
    """

    payload: Any
    target_cell: Optional[str] = None
    sideways: bool = False

    def to_wire(self) -> Dict[str, Any]:
        wire: Dict[str, Any] = {"kind": "envelope", "p": self.payload.to_wire()}
        if self.target_cell is not None:
            wire["tc"] = self.target_cell
        if self.sideways:
            wire["sw"] = True
        return wire

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "Envelope":
        from ..core.messages import decode_message

        return cls(
            payload=decode_message(obj["p"]),
            target_cell=obj.get("tc"),
            sideways=bool(obj.get("sw", False)),
        )


@dataclass(frozen=True, slots=True)
class SubscriptionSummaryMessage:
    """Upstream advertisement of a path's subscription union.

    When subscription propagation is enabled, a broker periodically (and
    on subscription changes) tells its upstream neighbour the summary
    predicate of everything subscribed below it for one pubend; upstream
    edge filters prune non-matching data against it.  The summary is
    conservative — a match-everything summary is always safe.
    """

    sender: str
    pubend: str
    #: Wire-encoded predicate (matching.ast.predicate_to_wire).
    summary: Any

    def to_wire(self) -> Dict[str, Any]:
        return {
            "kind": "sub_summary",
            "sender": self.sender,
            "pubend": self.pubend,
            "summary": self.summary,
        }

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "SubscriptionSummaryMessage":
        return cls(sender=obj["sender"], pubend=obj["pubend"], summary=obj["summary"])


from ..core.messages import register_message_kind

register_message_kind("sub_summary", SubscriptionSummaryMessage.from_wire)


@dataclass(frozen=True, slots=True)
class LinkStatusMessage:
    """Periodic link-status exchange between adjacent brokers.

    Advertises which downstream cells the sender can currently reach over
    a direct, operational link.  Upstream brokers use this to steer pubend
    traffic away from brokers that lost connectivity (the paper's
    "periodic link status messages ... so that this sideways routing is
    only transient").
    """

    sender: str
    reachable_cells: FrozenSet[str]

    def to_wire(self) -> Dict[str, Any]:
        return {
            "kind": "link_status",
            "sender": self.sender,
            "cells": sorted(self.reachable_cells),
        }

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "LinkStatusMessage":
        return cls(sender=obj["sender"], reachable_cells=frozenset(obj["cells"]))
