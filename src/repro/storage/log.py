"""Stable storage for pubends.

The guaranteed-delivery protocol requires persistent storage *only at the
publishing broker* (paper sections 1-2): a pubend assigns each published
message a tick, logs it, and only logged messages are considered published.
Everything else in the system is soft state.

Two implementations are provided:

* :class:`MemoryLog` — an in-process log.  "Stable" relative to simulated
  broker crashes: the simulator keeps the log object alive across a crash
  and hands it back on restart, exactly as a disk would survive a process
  kill (the paper's failure injection kills the broker process).
* :class:`FileLog` — a JSON-lines append-only file, crash-recoverable by
  replay, for the asyncio runtime and recovery tests.

Both model *group-commit latency*: ``commit_latency`` is the delay between
an append and the entry being durable.  The paper observes a constant
~100 ms latency gap between guaranteed and best-effort delivery caused by
logging at the PHB; the latency model reproduces that gap (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..core.ticks import Tick

__all__ = ["LogEntry", "MessageLog", "MemoryLog", "FileLog"]


def _encode_payload(payload: Any) -> Any:
    """JSON-encodable form of a payload (events carry a marker)."""
    from ..matching.events import Event

    if isinstance(payload, Event):
        return {"__event__": payload.to_wire()}
    return payload


def _decode_payload(obj: Any) -> Any:
    from ..matching.events import Event

    if isinstance(obj, dict) and "__event__" in obj:
        return Event.from_wire(obj["__event__"])
    return obj


@dataclass(frozen=True)
class LogEntry:
    """One logged publication: the assigned tick and the message payload."""

    pubend: str
    tick: Tick
    payload: Any

    def to_wire(self) -> Dict[str, Any]:
        return {
            "pubend": self.pubend,
            "tick": self.tick,
            "payload": _encode_payload(self.payload),
        }

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "LogEntry":
        return cls(
            pubend=obj["pubend"],
            tick=obj["tick"],
            payload=_decode_payload(obj["payload"]),
        )


class MessageLog:
    """Interface of a pubend message log.

    Appends are ordered; ``commit_latency`` reports the configured delay
    between an append and durability (the caller — the PHB — schedules
    the downstream send after this delay).
    """

    #: Seconds between append and durability (group commit).
    commit_latency: float = 0.0

    def append(self, entry: LogEntry) -> None:
        raise NotImplementedError

    def entries(self, pubend: str) -> List[LogEntry]:
        """All durable entries for one pubend, in append order."""
        raise NotImplementedError

    def truncate(self, pubend: str, below_tick: Tick) -> int:
        """Discard entries with ``tick < below_tick``; returns count removed.

        Safe once the prefix is acknowledged by every downstream path.
        """
        raise NotImplementedError

    def last_tick(self, pubend: str) -> Optional[Tick]:
        """Tick of the newest durable entry for ``pubend``, if any."""
        entries = self.entries(pubend)
        return entries[-1].tick if entries else None

    def truncated_below(self, pubend: str) -> Tick:
        """The durable truncation point: all ticks below it were
        acknowledged by every downstream path before being discarded."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (no-op by default)."""


class MemoryLog(MessageLog):
    """In-memory append-only log.

    Survives *simulated* crashes (the injector preserves the object),
    modelling a disk that outlives the broker process.
    """

    def __init__(self, commit_latency: float = 0.0):
        self.commit_latency = commit_latency
        self._entries: Dict[str, List[LogEntry]] = {}
        self._truncated_below: Dict[str, Tick] = {}
        self.append_count = 0

    def append(self, entry: LogEntry) -> None:
        bucket = self._entries.setdefault(entry.pubend, [])
        if bucket and entry.tick <= bucket[-1].tick:
            raise ValueError(
                f"non-monotonic append for {entry.pubend}: "
                f"{entry.tick} after {bucket[-1].tick}"
            )
        bucket.append(entry)
        self.append_count += 1

    def entries(self, pubend: str) -> List[LogEntry]:
        return list(self._entries.get(pubend, []))

    def truncate(self, pubend: str, below_tick: Tick) -> int:
        bucket = self._entries.get(pubend, [])
        keep = [e for e in bucket if e.tick >= below_tick]
        removed = len(bucket) - len(keep)
        self._entries[pubend] = keep
        previous = self._truncated_below.get(pubend, 0)
        self._truncated_below[pubend] = max(previous, below_tick)
        return removed

    def truncated_below(self, pubend: str) -> Tick:
        return self._truncated_below.get(pubend, 0)

    def pubends(self) -> List[str]:
        return sorted(self._entries)


class FileLog(MessageLog):
    """Append-only JSON-lines log file with replay-based recovery.

    Each appended entry is written as one JSON line and flushed.  On open,
    existing content is replayed to rebuild the in-memory index; a torn
    final line (crash mid-write) is tolerated and discarded.  Truncation
    is logical (a truncation marker line); :meth:`compact` rewrites the
    file to drop dead entries physically.
    """

    def __init__(self, path: str, commit_latency: float = 0.0):
        self.path = path
        self.commit_latency = commit_latency
        self._entries: Dict[str, List[LogEntry]] = {}
        self._truncated_below: Dict[str, Tick] = {}
        self._replay()
        self._fh = open(self.path, "a", encoding="utf-8")

    def _replay(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as fh:
            raw = fh.read()
        pos = 0
        for line in raw.splitlines(keepends=True):
            stripped = line.strip()
            if stripped:
                try:
                    obj = json.loads(stripped)
                except json.JSONDecodeError:
                    # Torn tail write from a crash; everything before it is
                    # durable, the torn entry was never acknowledged.
                    break
                if obj.get("op") == "truncate":
                    self._apply_truncate(obj["pubend"], obj["below"])
                else:
                    entry = LogEntry.from_wire(obj)
                    self._entries.setdefault(entry.pubend, []).append(entry)
            pos += len(line)
        if pos < len(raw):
            # Physically drop the torn bytes: the file is reopened in
            # append mode, and a fresh entry written after them would be
            # glued onto the partial line and lost on the next replay.
            os.truncate(self.path, pos)

    def _apply_truncate(self, pubend: str, below: Tick) -> int:
        bucket = self._entries.get(pubend, [])
        keep = [e for e in bucket if e.tick >= below]
        removed = len(bucket) - len(keep)
        self._entries[pubend] = keep
        previous = self._truncated_below.get(pubend, 0)
        self._truncated_below[pubend] = max(previous, below)
        return removed

    def append(self, entry: LogEntry) -> None:
        bucket = self._entries.setdefault(entry.pubend, [])
        if bucket and entry.tick <= bucket[-1].tick:
            raise ValueError(
                f"non-monotonic append for {entry.pubend}: "
                f"{entry.tick} after {bucket[-1].tick}"
            )
        self._fh.write(json.dumps(entry.to_wire()) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        bucket.append(entry)

    def entries(self, pubend: str) -> List[LogEntry]:
        return list(self._entries.get(pubend, []))

    def truncate(self, pubend: str, below_tick: Tick) -> int:
        removed = self._apply_truncate(pubend, below_tick)
        self._fh.write(
            json.dumps({"op": "truncate", "pubend": pubend, "below": below_tick})
            + "\n"
        )
        self._fh.flush()
        return removed

    def truncated_below(self, pubend: str) -> Tick:
        return self._truncated_below.get(pubend, 0)

    def compact(self) -> None:
        """Rewrite the file keeping only live entries."""
        tmp_path = self.path + ".compact"
        with open(tmp_path, "w", encoding="utf-8") as out:
            for pubend in sorted(self._entries):
                below = self._truncated_below.get(pubend)
                if below is not None:
                    out.write(
                        json.dumps(
                            {"op": "truncate", "pubend": pubend, "below": below}
                        )
                        + "\n"
                    )
                for entry in self._entries[pubend]:
                    out.write(json.dumps(entry.to_wire()) + "\n")
        self._fh.close()
        os.replace(tmp_path, self.path)
        self._fh = open(self.path, "a", encoding="utf-8")

    def pubends(self) -> List[str]:
        return sorted(self._entries)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()
