"""Stable storage for pubends.

The guaranteed-delivery protocol requires persistent storage *only at the
publishing broker* (paper sections 1-2): a pubend assigns each published
message a tick, logs it, and only logged messages are considered published.
Everything else in the system is soft state.

Two implementations are provided:

* :class:`MemoryLog` — an in-process log.  "Stable" relative to simulated
  broker crashes: the simulator keeps the log object alive across a crash
  and hands it back on restart, exactly as a disk would survive a process
  kill (the paper's failure injection kills the broker process).
* :class:`FileLog` — an append-only record file, crash-recoverable by
  replay, for the asyncio runtime and recovery tests.

``FileLog`` records are *checksummed*: each record line carries a CRC32
and an explicit length over its JSON payload (format tag ``R2``), so
replay verifies every record rather than trusting the file.  A record
that fails verification — a torn tail from a crash mid-write, or a bit
flipped at rest anywhere in the file — is **quarantined** into a
``<path>.quarantine`` sidecar and the file is atomically rewritten with
only the verified records, keeping the longest verifiable content.
Losing a record this way is safe for exactly-once semantics: either the
record was already acknowledged downstream (its data is delivered and
its tick finalized), or it was never acknowledged to the publisher and
recovery finalizes its tick as silence; in both cases the retransmit
protocol converges with zero duplicates.  Legacy unchecksummed
JSON-lines files (and mixed files) replay transparently.

Write-path failures are explicit: ``append`` raising
:class:`LogAppendError` (disk full, failed ``fsync``) leaves both the
in-memory index and the file at the previous record boundary, so the
pubend never advertises a tick whose record is not durable.

Both log classes model *group-commit latency*: ``commit_latency`` is the
delay between an append and the entry being durable.  The paper observes
a constant ~100 ms latency gap between guaranteed and best-effort
delivery caused by logging at the PHB; the latency model reproduces that
gap (see EXPERIMENTS.md).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.ticks import Tick
from ..obs.instruments import NULL_INSTRUMENTS

__all__ = [
    "LogEntry",
    "LogAppendError",
    "MessageLog",
    "MemoryLog",
    "FileLog",
]

#: Checksummed record prefix: ``R2 <crc32:08x> <len:08x> <payload>\n``.
RECORD_MAGIC = b"R2 "

# json.dumps(obj, separators=...) builds a fresh JSONEncoder per call;
# caching one keeps the v2 append path within a few percent of bare
# JSON lines (gated by the integrity_overhead benchmark).
_COMPACT_ENCODE = json.JSONEncoder(separators=(",", ":")).encode


class LogAppendError(OSError):
    """A stable-log append could not be made durable (write/flush/fsync
    failure, e.g. a full disk).  The log rolls back to the previous
    record boundary before raising, so the failed entry is neither in
    memory nor on disk — the caller must treat the message as *not
    published*."""


def _encode_payload(payload: Any) -> Any:
    """JSON-encodable form of a payload (events carry a marker)."""
    from ..matching.events import Event

    if isinstance(payload, Event):
        return {"__event__": payload.to_wire()}
    return payload


def _decode_payload(obj: Any) -> Any:
    from ..matching.events import Event

    if isinstance(obj, dict) and "__event__" in obj:
        return Event.from_wire(obj["__event__"])
    return obj


@dataclass(frozen=True)
class LogEntry:
    """One logged publication: the assigned tick and the message payload."""

    pubend: str
    tick: Tick
    payload: Any

    def to_wire(self) -> Dict[str, Any]:
        return {
            "pubend": self.pubend,
            "tick": self.tick,
            "payload": _encode_payload(self.payload),
        }

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "LogEntry":
        return cls(
            pubend=obj["pubend"],
            tick=obj["tick"],
            payload=_decode_payload(obj["payload"]),
        )


class MessageLog:
    """Interface of a pubend message log.

    Appends are ordered; ``commit_latency`` reports the configured delay
    between an append and durability (the caller — the PHB — schedules
    the downstream send after this delay).
    """

    #: Seconds between append and durability (group commit).
    commit_latency: float = 0.0

    def append(self, entry: LogEntry) -> None:
        raise NotImplementedError

    def entries(self, pubend: str) -> List[LogEntry]:
        """All durable entries for one pubend, in append order."""
        raise NotImplementedError

    def truncate(self, pubend: str, below_tick: Tick) -> int:
        """Discard entries with ``tick < below_tick``; returns count removed.

        Safe once the prefix is acknowledged by every downstream path.
        """
        raise NotImplementedError

    def last_tick(self, pubend: str) -> Optional[Tick]:
        """Tick of the newest durable entry for ``pubend``, if any."""
        entries = self.entries(pubend)
        return entries[-1].tick if entries else None

    def truncated_below(self, pubend: str) -> Tick:
        """The durable truncation point: all ticks below it were
        acknowledged by every downstream path before being discarded."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (no-op by default)."""


class MemoryLog(MessageLog):
    """In-memory append-only log.

    Survives *simulated* crashes (the injector preserves the object),
    modelling a disk that outlives the broker process.
    """

    def __init__(self, commit_latency: float = 0.0):
        self.commit_latency = commit_latency
        self._entries: Dict[str, List[LogEntry]] = {}
        self._truncated_below: Dict[str, Tick] = {}
        self.append_count = 0

    def append(self, entry: LogEntry) -> None:
        bucket = self._entries.setdefault(entry.pubend, [])
        if bucket and entry.tick <= bucket[-1].tick:
            raise ValueError(
                f"non-monotonic append for {entry.pubend}: "
                f"{entry.tick} after {bucket[-1].tick}"
            )
        bucket.append(entry)
        self.append_count += 1

    def entries(self, pubend: str) -> List[LogEntry]:
        return list(self._entries.get(pubend, []))

    def truncate(self, pubend: str, below_tick: Tick) -> int:
        bucket = self._entries.get(pubend, [])
        keep = [e for e in bucket if e.tick >= below_tick]
        removed = len(bucket) - len(keep)
        self._entries[pubend] = keep
        previous = self._truncated_below.get(pubend, 0)
        self._truncated_below[pubend] = max(previous, below_tick)
        return removed

    def truncated_below(self, pubend: str) -> Tick:
        return self._truncated_below.get(pubend, 0)

    def pubends(self) -> List[str]:
        return sorted(self._entries)


class FileLog(MessageLog):
    """Append-only checksummed record file with replay-based recovery.

    Each appended entry is written as one framed line —
    ``R2 <crc32:08x> <len:08x> <compact JSON>`` — flushed, and fsynced
    (``sync=False`` skips the fsync, for benchmarks and tests only).
    On open, existing content is replayed to rebuild the in-memory
    index, verifying every record's length framing and CRC32; corrupt
    or torn records *anywhere* in the file are quarantined into
    ``<path>.quarantine`` and the file is rewritten with the surviving
    verified records (see the module docstring for why this is safe).
    Legacy bare-JSON lines (``record_format="v1"``, the pre-checksum
    format) are accepted on replay when they parse, and can still be
    written for compatibility tests.  Truncation is logical (a framed
    truncation marker); :meth:`compact` rewrites the file to drop dead
    entries physically.

    ``file_wrapper`` wraps the freshly opened binary append handle —
    the hook :class:`~repro.storage.faults.FaultyFile` uses to inject
    write-path faults; :meth:`inject_fault` arms one on a live log.
    Corruption events feed the ``log_records_quarantined`` and
    ``log_append_errors`` counters of ``instruments``.
    """

    def __init__(
        self,
        path: str,
        commit_latency: float = 0.0,
        *,
        record_format: str = "v2",
        sync: bool = True,
        file_wrapper: Optional[Callable[[Any], Any]] = None,
        instruments: Any = NULL_INSTRUMENTS,
    ):
        if record_format not in ("v1", "v2"):
            raise ValueError(f"unknown record_format {record_format!r}")
        self.path = path
        self.commit_latency = commit_latency
        self.record_format = record_format
        self.sync = sync
        self._file_wrapper = file_wrapper
        self._instruments = instruments
        self._m_quarantined = instruments.counter(
            "log_records_quarantined",
            help="Corrupt or torn log records quarantined during replay.",
        )
        self._m_append_errors = instruments.counter(
            "log_append_errors",
            help="Stable-log appends that failed to become durable "
            "(write/flush/fsync errors).",
        )
        #: Records quarantined by this instance's replays.
        self.quarantined = 0
        self._entries: Dict[str, List[LogEntry]] = {}
        self._truncated_below: Dict[str, Tick] = {}
        self._size = 0
        self._replay()
        self._fh = self._open()

    # -- file plumbing ----------------------------------------------------

    def _open(self) -> Any:
        fh = open(self.path, "ab")
        if self._file_wrapper is not None:
            fh = self._file_wrapper(fh)
        return fh

    def factory(self) -> Callable[[], "FileLog"]:
        """A reconstructor preserving this log's configuration — what a
        hosting broker stores so restart() reopens the same file with
        the same wrapper and instruments (crash realism: the handle dies
        with the broker, the file and its configuration survive)."""
        path, latency = self.path, self.commit_latency
        fmt, sync = self.record_format, self.sync
        wrapper, instruments = self._file_wrapper, self._instruments
        return lambda: FileLog(
            path,
            commit_latency=latency,
            record_format=fmt,
            sync=sync,
            file_wrapper=wrapper,
            instruments=instruments,
        )

    def inject_fault(self, mode: str) -> None:
        """Arm a one-shot write-path fault (``"enospc"``, ``"torn"``,
        ``"fsync"``) on the live handle via a
        :class:`~repro.storage.faults.FaultyFile` wrapper."""
        from .faults import FaultyFile

        if not isinstance(self._fh, FaultyFile):
            self._fh = FaultyFile(self._fh)
        self._fh.arm(mode)

    # -- record framing ---------------------------------------------------

    def _encode_record(self, obj: Dict[str, Any]) -> bytes:
        if self.record_format == "v1":
            return json.dumps(obj).encode("utf-8") + b"\n"
        payload = _COMPACT_ENCODE(obj).encode("utf-8")
        return b"R2 %08x %08x %s\n" % (
            zlib.crc32(payload),
            len(payload),
            payload,
        )

    @staticmethod
    def _parse_line(line: bytes) -> Tuple[Optional[Dict[str, Any]], str]:
        """``(parsed record, "")`` or ``(None, reason)`` for one raw line."""
        stripped = line.strip()
        if stripped.startswith(RECORD_MAGIC):
            if not line.endswith(b"\n"):
                return None, "torn checksummed record (no terminator)"
            # R2 <crc:8 hex> <len:8 hex> <payload>
            if len(stripped) < 21 or stripped[11:12] != b" " or stripped[20:21] != b" ":
                return None, "malformed record header"
            try:
                crc = int(stripped[3:11], 16)
                length = int(stripped[12:20], 16)
            except ValueError:
                return None, "malformed record header"
            payload = stripped[21:]
            if len(payload) != length:
                return None, (
                    f"length mismatch ({len(payload)} != declared {length})"
                )
            if zlib.crc32(payload) != crc:
                return None, "crc32 mismatch"
            try:
                return json.loads(payload.decode("utf-8")), ""
            except (json.JSONDecodeError, UnicodeDecodeError):
                return None, "unparseable payload despite matching crc"
        # Legacy v1: a bare JSON line, no checksum to verify against.
        try:
            return json.loads(stripped.decode("utf-8")), ""
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None, "unparseable legacy record"

    # -- replay -----------------------------------------------------------

    def _replay(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as fh:
            raw = fh.read()
        self._size = len(raw)
        good: List[bytes] = []
        bad: List[Tuple[int, bytes, str]] = []
        offset = 0
        for line in raw.splitlines(keepends=True):
            if line.strip():
                obj, reason = self._parse_line(line)
                if obj is not None:
                    try:
                        self._apply(obj)
                    except (KeyError, TypeError, ValueError) as exc:
                        obj, reason = None, f"unreplayable record: {exc}"
                if obj is not None:
                    good.append(line)
                else:
                    bad.append((offset, line, reason))
            offset += len(line)
        if bad:
            self._quarantine(bad)
            self._heal(good)

    def _apply(self, obj: Dict[str, Any]) -> None:
        if obj.get("op") == "truncate":
            self._apply_truncate(obj["pubend"], obj["below"])
        else:
            entry = LogEntry.from_wire(obj)
            self._entries.setdefault(entry.pubend, []).append(entry)

    def _quarantine(self, bad: List[Tuple[int, bytes, str]]) -> None:
        """Append each unverifiable record's raw bytes (with a JSON
        header naming its original offset and failure) to the sidecar."""
        with open(self.path + ".quarantine", "ab") as out:
            for offset, line, reason in bad:
                out.write(
                    json.dumps(
                        {"op": "quarantined", "offset": offset, "reason": reason}
                    ).encode("utf-8")
                    + b"\n"
                )
                out.write(line if line.endswith(b"\n") else line + b"\n")
        self.quarantined += len(bad)
        self._m_quarantined.inc(len(bad))

    def _heal(self, good: List[bytes]) -> None:
        """Atomically rewrite the file with only the verified records, so
        the damage cannot shadow future appends or re-quarantine on the
        next replay."""
        tmp_path = self.path + ".rewrite"
        with open(tmp_path, "wb") as out:
            for line in good:
                out.write(line if line.endswith(b"\n") else line + b"\n")
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp_path, self.path)
        self._size = os.path.getsize(self.path)

    def _apply_truncate(self, pubend: str, below: Tick) -> int:
        bucket = self._entries.get(pubend, [])
        keep = [e for e in bucket if e.tick >= below]
        removed = len(bucket) - len(keep)
        self._entries[pubend] = keep
        previous = self._truncated_below.get(pubend, 0)
        self._truncated_below[pubend] = max(previous, below)
        return removed

    # -- writes -----------------------------------------------------------

    def _fsync(self) -> None:
        if not self.sync:
            return
        fsync = getattr(self._fh, "fsync", None)
        if fsync is not None:
            fsync()  # FaultyFile interposes here
        else:
            os.fsync(self._fh.fileno())

    def _commit(self, record: bytes, sync: bool = True) -> None:
        """Write one framed record; on any OS failure roll the file back
        to the previous record boundary and raise LogAppendError."""
        pos = self._size
        try:
            self._fh.write(record)
            self._fh.flush()
            if sync:
                self._fsync()
        except OSError as exc:
            self._m_append_errors.inc()
            self._rollback(pos)
            raise LogAppendError(
                f"stable log append failed for {self.path}: {exc}"
            ) from exc
        self._size = pos + len(record)

    def _rollback(self, pos: int) -> None:
        """Discard partial bytes (on disk or still buffered) after a
        failed commit: drop the handle, truncate to the last good record
        boundary, reopen.  Best-effort — a disk too sick to truncate
        still gets the next replay's quarantine as a backstop."""
        try:
            self._fh.close()
        except OSError:
            pass
        try:
            os.truncate(self.path, pos)
            self._size = pos
        except OSError:
            pass
        self._fh = self._open()

    def append(self, entry: LogEntry) -> None:
        bucket = self._entries.setdefault(entry.pubend, [])
        if bucket and entry.tick <= bucket[-1].tick:
            raise ValueError(
                f"non-monotonic append for {entry.pubend}: "
                f"{entry.tick} after {bucket[-1].tick}"
            )
        self._commit(self._encode_record(entry.to_wire()))
        bucket.append(entry)

    def entries(self, pubend: str) -> List[LogEntry]:
        return list(self._entries.get(pubend, []))

    def truncate(self, pubend: str, below_tick: Tick) -> int:
        removed = self._apply_truncate(pubend, below_tick)
        try:
            self._commit(
                self._encode_record(
                    {"op": "truncate", "pubend": pubend, "below": below_tick}
                ),
                sync=False,
            )
        except LogAppendError:
            # Unlike a data append, a truncation marker's durability is
            # optional: losing it only means recovery reverts to an
            # older acked prefix and retransmits more — conservative,
            # never lossy.  The failure is still counted
            # (log_append_errors) by _commit.
            pass
        return removed

    def truncated_below(self, pubend: str) -> Tick:
        return self._truncated_below.get(pubend, 0)

    def compact(self) -> None:
        """Rewrite the file keeping only live entries."""
        tmp_path = self.path + ".compact"
        with open(tmp_path, "wb") as out:
            for pubend in sorted(self._entries):
                below = self._truncated_below.get(pubend)
                if below is not None:
                    out.write(
                        self._encode_record(
                            {"op": "truncate", "pubend": pubend, "below": below}
                        )
                    )
                for entry in self._entries[pubend]:
                    out.write(self._encode_record(entry.to_wire()))
        self._fh.close()
        os.replace(tmp_path, self.path)
        self._size = os.path.getsize(self.path)
        self._fh = self._open()

    def pubends(self) -> List[str]:
        return sorted(self._entries)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()
