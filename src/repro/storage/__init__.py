"""Stable storage for pubends (the only persistent state in the system)."""

from .log import FileLog, LogEntry, MemoryLog, MessageLog
