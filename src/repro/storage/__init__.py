"""Stable storage for pubends (the only persistent state in the system)."""

from .faults import FaultyFile, corrupt_log_file
from .log import FileLog, LogAppendError, LogEntry, MemoryLog, MessageLog

__all__ = [
    "FaultyFile",
    "corrupt_log_file",
    "FileLog",
    "LogAppendError",
    "LogEntry",
    "MemoryLog",
    "MessageLog",
]
