"""Disk fault injection for stable-storage tests and chaos runs.

Two tools, matching the two ways real disks betray a log:

* :class:`FaultyFile` wraps the writable file handle a
  :class:`~repro.storage.log.FileLog` appends through and injects
  *write-path* faults on demand: a full disk (``ENOSPC`` before any byte
  lands), a torn write (a prefix of the record reaches the platter, then
  the write fails), or a failing ``fsync`` (the bytes are in the page
  cache but durability cannot be promised).  Each armed fault fires once
  and disarms, so a test can assert the append *after* the fault
  succeeds again.
* :func:`corrupt_log_file` models *at-rest* corruption: a seeded bit
  flip or mid-record tear applied to a closed log file, the way a bad
  sector or a partial block write damages a record long after it was
  acknowledged.  Replay must detect the damage by checksum
  (see ``FileLog._replay``), quarantine it, and recover everything else.

Both are deterministic under a seed, so the chaos harness
(:mod:`repro.aio.chaos`) can reproduce a failing corruption schedule.
"""

from __future__ import annotations

import errno
import os
import random
from typing import List, Optional

__all__ = ["FaultyFile", "corrupt_log_file"]

#: Fault modes :meth:`FaultyFile.arm` accepts.
FAULT_MODES = ("enospc", "torn", "fsync")


class FaultyFile:
    """A writable (binary) file wrapper that injects one-shot faults.

    Pass-through until armed; then the next matching operation fails:

    * ``"enospc"`` — the next ``write()`` raises ``OSError(ENOSPC)``
      without writing anything (disk full detected up front).
    * ``"torn"`` — the next ``write()`` writes roughly half the data to
      the underlying file, then raises ``OSError(EIO)`` (power cut or
      full disk mid-record; the partial bytes are on disk).
    * ``"fsync"`` — the next ``fsync()`` raises ``OSError(EIO)`` (the
      write "succeeded" into the page cache but durability failed).

    ``faults_injected`` counts fired faults; armed faults disarm after
    firing so recovery paths can be asserted.
    """

    def __init__(self, fh, seed: int = 0):
        self._fh = fh
        self.rng = random.Random(seed)
        self._armed: List[str] = []
        self.faults_injected = 0

    # -- fault control ----------------------------------------------------

    def arm(self, mode: str) -> None:
        if mode not in FAULT_MODES:
            raise ValueError(
                f"unknown fault mode {mode!r}; known: {FAULT_MODES}"
            )
        self._armed.append(mode)

    def armed(self) -> List[str]:
        return list(self._armed)

    def _take(self, *modes: str) -> Optional[str]:
        for mode in modes:
            if mode in self._armed:
                self._armed.remove(mode)
                self.faults_injected += 1
                return mode
        return None

    # -- file interface ---------------------------------------------------

    def write(self, data: bytes) -> int:
        fired = self._take("enospc", "torn")
        if fired == "enospc":
            raise OSError(errno.ENOSPC, "injected: no space left on device")
        if fired == "torn":
            cut = max(1, len(data) // 2)
            self._fh.write(data[:cut])
            self._fh.flush()
            raise OSError(errno.EIO, "injected: torn write")
        return self._fh.write(data)

    def flush(self) -> None:
        self._fh.flush()

    def fsync(self) -> None:
        if self._take("fsync"):
            raise OSError(errno.EIO, "injected: fsync failed")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def fileno(self) -> int:
        return self._fh.fileno()

    def close(self) -> None:
        self._fh.close()

    @property
    def closed(self) -> bool:
        return self._fh.closed

    def __getattr__(self, name):
        return getattr(self._fh, name)


def corrupt_log_file(
    path: str,
    seed: int = 0,
    record_index: int = 0,
    mode: str = "bitflip",
) -> bool:
    """Damage one record of a closed log file in place (at-rest fault).

    ``mode="bitflip"`` flips one seeded bit inside the chosen record
    line; ``mode="torn"`` cuts the line short (dropping its newline, so
    it fuses with the next line — two records' worth of damage, as a
    partial block write would).  ``record_index`` is taken modulo the
    number of lines.  Returns False when the file is missing or empty.

    Only call this on a *closed* log: corrupting bytes under a live
    append handle models nothing a real disk does.
    """
    if mode not in ("bitflip", "torn"):
        raise ValueError(f"unknown corruption mode {mode!r}")
    if not os.path.exists(path):
        return False
    with open(path, "rb") as fh:
        raw = fh.read()
    lines = [ln for ln in raw.splitlines(keepends=True) if ln.strip()]
    if not lines:
        return False
    rng = random.Random(seed)
    idx = record_index % len(lines)
    line = lines[idx]
    if mode == "bitflip":
        # Flip a bit somewhere in the record, never the newline itself
        # (a flipped newline would be a tear, which is the other mode).
        body_len = len(line) - 1 if line.endswith(b"\n") else len(line)
        pos = rng.randrange(max(1, body_len))
        flipped = bytearray(line)
        flipped[pos] ^= 1 << rng.randrange(8)
        lines[idx] = bytes(flipped)
    else:
        cut = max(1, (len(line) - 1) // 2)
        lines[idx] = line[:cut]
    with open(path, "wb") as fh:
        fh.write(b"".join(lines))
    return True
