"""``python -m repro`` — experiment command line (see repro.cli)."""

import sys

from .cli import main

sys.exit(main())
