"""Fault injection: crashes, link failures, and the paper's stall-then-fail."""

from .injector import FaultInjector
