"""Fault injection for simulated systems.

Reproduces the paper's failure-injection methodology (section 4.2):

* **Crash failures** kill a broker process: all soft state is lost, the
  pubend log survives, adjacent brokers detect the death immediately
  (the paper injected crashes by killing the JVM, and TCP reset the
  connections).
* **Link failures** close a connection; both endpoints notice.
* **Stall** is the paper's refinement: "the link or broker to be failed
  was stalled for about 2-3 seconds during which it accepted data but did
  not forward it, then it was failed" — without the stall, immediate
  detection meant "many such failures did not result in even a single
  message loss".  A stalled element looks healthy to its neighbours while
  silently absorbing traffic.

All injections can be scheduled at absolute simulation times, so fault
scripts are declarative and deterministic.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..topology import System

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules and applies faults on a built :class:`~repro.topology.System`."""

    def __init__(self, system: System, tracer: Optional[object] = None):
        self.system = system
        #: Optional :class:`~repro.sim.trace.Tracer` to co-record faults.
        self.tracer = tracer
        self.log: List[str] = []

    def _note(self, text: str) -> None:
        self.log.append(f"t={self.system.scheduler.now:.3f} {text}")
        if self.tracer is not None:
            self.tracer.record_fault(text)

    # -- immediate actions -------------------------------------------------

    def fail_link(self, a: str, b: str) -> None:
        self.system.network.link(a, b).fail()
        self._note(f"link {a}-{b} failed")

    def recover_link(self, a: str, b: str) -> None:
        self.system.network.link(a, b).recover()
        self._note(f"link {a}-{b} recovered")

    def stall_link(self, a: str, b: str) -> None:
        self.system.network.link(a, b).stall()
        self._note(f"link {a}-{b} stalled")

    def crash_broker(self, broker_id: str) -> None:
        self.system.brokers[broker_id].crash()
        self._note(f"broker {broker_id} crashed")

    def restart_broker(self, broker_id: str) -> None:
        self.system.brokers[broker_id].restart()
        self._note(f"broker {broker_id} restarted")

    def stall_broker(self, broker_id: str) -> None:
        """Make a broker sick: it accepts traffic but forwards nothing,
        and its neighbours cannot tell (links still look up)."""
        for link in self.system.network.links_of(broker_id):
            link.stall()
        self._note(f"broker {broker_id} stalled")

    def unstall_broker(self, broker_id: str) -> None:
        for link in self.system.network.links_of(broker_id):
            if link.up:
                link.recover()

    # -- scheduled scripts -------------------------------------------------

    def at(self, when: float, action: Callable[[], None]) -> None:
        self.system.scheduler.call_at(when, action)

    def stall_then_fail_link(
        self, a: str, b: str, at: float, stall: float = 2.5, outage: float = 10.0
    ) -> None:
        """The paper's two-step link failure: stall (losing traffic
        silently), then fail for ``outage`` seconds, then recover."""
        self.at(at, lambda: self.stall_link(a, b))
        self.at(at + stall, lambda: self.fail_link(a, b))
        self.at(at + stall + outage, lambda: self.recover_link(a, b))

    def stall_then_crash_broker(
        self,
        broker_id: str,
        at: float,
        stall: float = 2.5,
        downtime: Optional[float] = 30.0,
    ) -> None:
        """The paper's two-step broker crash: stall, crash, then restart
        after ``downtime`` seconds (pass ``None`` to leave it dead)."""

        def crash() -> None:
            self.unstall_broker(broker_id)
            self.crash_broker(broker_id)

        self.at(at, lambda: self.stall_broker(broker_id))
        self.at(at + stall, crash)
        if downtime is not None:
            self.at(at + stall + downtime, lambda: self.restart_broker(broker_id))
