"""Fault injection for simulated systems.

Reproduces the paper's failure-injection methodology (section 4.2):

* **Crash failures** kill a broker process: all soft state is lost, the
  pubend log survives, adjacent brokers detect the death immediately
  (the paper injected crashes by killing the JVM, and TCP reset the
  connections).
* **Link failures** close a connection; both endpoints notice.
* **Stall** is the paper's refinement: "the link or broker to be failed
  was stalled for about 2-3 seconds during which it accepted data but did
  not forward it, then it was failed" — without the stall, immediate
  detection meant "many such failures did not result in even a single
  message loss".  A stalled element looks healthy to its neighbours while
  silently absorbing traffic.

All injections can be scheduled at absolute simulation times, so fault
scripts are declarative and deterministic.

Every injection is recorded twice: as a human-readable line in
:attr:`FaultInjector.log` (the historical format the experiments print)
and as a structured :class:`FaultEvent` stamped with the scheduler time
*and* the corresponding protocol tick.  When the target system carries an
:class:`~repro.obs.observability.Observability` object (every
:meth:`~repro.topology.Topology.build` result does), events are also
pushed into ``system.obs`` — a ``repro_faults_injected_total`` counter
labelled by fault kind plus the structured event list — so fault activity
appears in the same snapshot as the protocol counters it perturbs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Set

from ..core.ticks import tick_of_time
from ..topology import System

__all__ = ["FaultInjector", "FaultEvent"]


@dataclass(frozen=True)
class FaultEvent:
    """One applied fault, stamped at the instant it took effect.

    ``time`` is the scheduler clock in seconds; ``tick`` is the same
    instant on the protocol's tick axis (1 tick = 1 ms), so fault events
    line up directly with stream horizons and knowledge ranges.
    """

    time: float
    tick: int
    kind: str
    target: str

    def __str__(self) -> str:
        return f"t={self.time:.3f} (tick {self.tick}) {self.kind} {self.target}"


class FaultInjector:
    """Schedules and applies faults on a built :class:`~repro.topology.System`."""

    def __init__(self, system: System, tracer: Optional[object] = None):
        self.system = system
        #: Optional :class:`~repro.obs.trace.Tracer` to co-record faults.
        self.tracer = tracer
        #: Human-readable fault log (one line per applied fault).
        self.log: List[str] = []
        #: Structured fault events, in application order.
        self.events: List[FaultEvent] = []
        #: Brokers currently stalled via :meth:`stall_broker`; consulted by
        #: :meth:`restart_broker` so a restart always clears the sickness.
        self._stalled_brokers: Set[str] = set()

    def _note(self, kind: str, target: str, legacy: str) -> None:
        now = self.system.scheduler.now
        event = FaultEvent(
            time=now, tick=tick_of_time(now), kind=kind, target=target
        )
        self.events.append(event)
        self.log.append(f"t={now:.3f} {legacy}")
        obs = getattr(self.system, "obs", None)
        if obs is not None:
            obs.record_fault_event(event)
            if obs.lifecycle.listeners:
                obs.lifecycle.fault(now, kind, target)
        if self.tracer is not None:
            self.tracer.record_fault(legacy)

    # -- immediate actions -------------------------------------------------

    def fail_link(self, a: str, b: str) -> None:
        self.system.network.link(a, b).fail()
        self._note("fail_link", f"{a}-{b}", f"link {a}-{b} failed")

    def recover_link(self, a: str, b: str) -> None:
        self.system.network.link(a, b).recover()
        self._note("recover_link", f"{a}-{b}", f"link {a}-{b} recovered")

    def stall_link(self, a: str, b: str) -> None:
        self.system.network.link(a, b).stall()
        self._note("stall_link", f"{a}-{b}", f"link {a}-{b} stalled")

    def crash_broker(self, broker_id: str) -> None:
        # A crash supersedes any stall bookkeeping: the next restart
        # rebuilds the process, and _clear_stall below resets its links.
        self._stalled_brokers.discard(broker_id)
        self.system.brokers[broker_id].crash()
        self._note("crash_broker", broker_id, f"broker {broker_id} crashed")

    def restart_broker(self, broker_id: str) -> None:
        # Clear any lingering stall first — whether the broker was
        # stalled-then-crashed or merely stalled (no intervening crash),
        # a "restarted" process reads and forwards again.
        self._clear_stall(broker_id)
        self.system.brokers[broker_id].restart()
        self._note("restart_broker", broker_id, f"broker {broker_id} restarted")

    def stall_broker(self, broker_id: str) -> None:
        """Make a broker sick: it accepts traffic but forwards nothing,
        and its neighbours cannot tell (links still look up)."""
        self._stalled_brokers.add(broker_id)
        for link in self.system.network.links_of(broker_id):
            link.stall()
        self._note("stall_broker", broker_id, f"broker {broker_id} stalled")

    def unstall_broker(self, broker_id: str) -> None:
        if self._clear_stall(broker_id):
            self._note(
                "unstall_broker", broker_id, f"broker {broker_id} unstalled"
            )

    def _clear_stall(self, broker_id: str) -> bool:
        """Recover every *stalled* link of the broker (failed links are a
        separate fault and stay down).  Returns True when anything was
        stalled."""
        was_stalled = broker_id in self._stalled_brokers
        self._stalled_brokers.discard(broker_id)
        for link in self.system.network.links_of(broker_id):
            if link.stalled:
                was_stalled = True
                if link.up:
                    link.recover()
                else:
                    link.stalled = False
        return was_stalled

    # -- scheduled scripts -------------------------------------------------

    def at(self, when: float, action: Callable[[], None]) -> None:
        self.system.scheduler.call_at(when, action)

    def drop_burst(
        self, a: str, b: str, at: float, duration: float, probability: float
    ) -> None:
        """Raise the link's random-drop probability for a window, then
        restore whatever it was before the burst."""
        saved: dict = {}

        def start() -> None:
            link = self.system.network.link(a, b)
            saved["p"] = link.drop_probability
            link.drop_probability = probability
            self._note(
                "drop_burst", f"{a}-{b}",
                f"link {a}-{b} drop burst p={probability:.2f}",
            )

        def stop() -> None:
            link = self.system.network.link(a, b)
            link.drop_probability = saved.get("p", 0.0)
            self._note(
                "drop_burst_end", f"{a}-{b}", f"link {a}-{b} drop burst over"
            )

        self.at(at, start)
        self.at(at + duration, stop)

    def reorder_burst(
        self, a: str, b: str, at: float, duration: float, jitter: float
    ) -> None:
        """Raise the link's jitter for a window (jitter produces genuine
        reordering on the wire), then restore the previous value."""
        saved: dict = {}

        def start() -> None:
            link = self.system.network.link(a, b)
            saved["j"] = link.jitter
            link.jitter = jitter
            self._note(
                "reorder_burst", f"{a}-{b}",
                f"link {a}-{b} reorder burst jitter={jitter:.3f}",
            )

        def stop() -> None:
            link = self.system.network.link(a, b)
            link.jitter = saved.get("j", 0.0)
            self._note(
                "reorder_burst_end", f"{a}-{b}",
                f"link {a}-{b} reorder burst over",
            )

        self.at(at, start)
        self.at(at + duration, stop)

    def stall_then_fail_link(
        self, a: str, b: str, at: float, stall: float = 2.5, outage: float = 10.0
    ) -> None:
        """The paper's two-step link failure: stall (losing traffic
        silently), then fail for ``outage`` seconds, then recover."""
        self.at(at, lambda: self.stall_link(a, b))
        self.at(at + stall, lambda: self.fail_link(a, b))
        self.at(at + stall + outage, lambda: self.recover_link(a, b))

    def stall_then_crash_broker(
        self,
        broker_id: str,
        at: float,
        stall: float = 2.5,
        downtime: Optional[float] = 30.0,
    ) -> None:
        """The paper's two-step broker crash: stall, crash, then restart
        after ``downtime`` seconds (pass ``None`` to leave it dead)."""

        def crash() -> None:
            self.unstall_broker(broker_id)
            self.crash_broker(broker_id)

        self.at(at, lambda: self.stall_broker(broker_id))
        self.at(at + stall, crash)
        if downtime is not None:
            self.at(at + stall + downtime, lambda: self.restart_broker(broker_id))
