"""The abstract knowledge-graph model of paper section 2 — executable.

The paper's first contribution is a *knowledge graph*: a directed acyclic
hypergraph whose nodes hold per-tick knowledge (the full lattice
Q / S / D / D* / F, *without* the operational S,D* -> F lowering used by
the deployed protocol) and per-tick curiosity (C / N / A), with *filter*
and *merge* hyperedges propagating knowledge downstream and curiosity
upstream, under lossy, reordering channels and soft-state forgetting.

This module implements that model literally, as an explorable transition
system:

* :meth:`KnowledgeGraph.emit` computes an edge's output for a tick range
  and places it on the edge's channel (a multiset of in-flight
  *transfers*);
* :meth:`KnowledgeGraph.deliver` / :meth:`drop` consume a transfer,
  accumulating (lattice lub) or losing it — the adversary chooses;
* :meth:`KnowledgeGraph.forget` lowers any non-pubend node's ticks to Q;
* :meth:`KnowledgeGraph.propagate_acks` runs the upstream A-consolidation
  rule (a tick becomes anti-curious only when all successors are);
* subends deliver D ticks below their doubt horizon, in tick order.

The model-level property tests drive arbitrary adversarial schedules
against it and check the paper's claims: knowledge is monotone outside
explicit forgets, the error element E is unreachable, delivery is gapless
and in order, and under fair re-emission everything published is
eventually delivered (liveness).  The deployed protocol (repro.broker) is
an engineered refinement of exactly this object.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.intervals import IntervalMap
from ..core.lattice import C, K, k_lub
from ..core.ticks import Tick, TickRange

__all__ = ["KnowledgeGraph", "ModelNode", "Transfer"]


class ModelNode:
    """A node of the abstract graph: raw lattice knowledge + curiosity.

    Unlike the operational :class:`~repro.core.streams.KnowledgeStream`,
    values are *not* lowered: S and D* are first-class, exactly as in the
    paper's Figure 2 lattice.
    """

    def __init__(self, name: str, is_pubend: bool = False, is_subend: bool = False):
        self.name = name
        self.is_pubend = is_pubend
        self.is_subend = is_subend
        self.knowledge: IntervalMap[K] = IntervalMap(K.Q)
        self.curiosity: IntervalMap[C] = IntervalMap(C.N)
        self.payloads: Dict[Tick, Any] = {}
        #: Subend bookkeeping: ticks delivered to the (virtual) client.
        self.delivered: List[Tuple[Tick, Any]] = []
        self.delivered_horizon: Tick = 0

    # -- knowledge -----------------------------------------------------------

    def value_at(self, tick: Tick) -> K:
        return self.knowledge.get(tick)

    def accumulate(self, tick: Tick, value: K, payload: Any = None) -> None:
        """Lattice accumulation of one tick (raises on reaching E)."""
        old = self.knowledge.get(tick)
        new = k_lub(old, value)
        if new != old:
            self.knowledge.set_value(tick, new)
        if new == K.D and payload is not None:
            self.payloads[tick] = payload
        if new in (K.F, K.DSTAR, K.S) and new != K.D:
            # The F <-> A linkage of section 2.1.1 (S is ackable too:
            # "because K_t is or was S").
            if self.curiosity.get(tick) != C.A and new in (K.F, K.DSTAR):
                self.curiosity.set_value(tick, C.A)

    def forget_range(self, rng: TickRange) -> None:
        """Soft-state loss: drop to Q (never allowed at pubends)."""
        if self.is_pubend:
            raise ValueError("pubends never forget (stable storage)")
        self.knowledge.clear_range(rng)
        for tick in list(self.payloads):
            if tick in rng:
                del self.payloads[tick]

    def lower_to_final(self, rng: TickRange) -> None:
        """The monotone-down transition S, D* -> F of section 2.1."""
        for run, value in list(self.knowledge.iter_runs(rng.start, rng.stop)):
            if value in (K.S, K.DSTAR):
                self.knowledge.set_range(run, K.F)
                for tick in run:
                    self.payloads.pop(tick, None)

    def horizon(self) -> Tick:
        span = self.knowledge.span()
        return span.stop if span is not None else 0

    def doubt_horizon(self) -> Tick:
        first_q = self.knowledge.first_with(lambda v: v == K.Q, 0)
        return first_q if first_q is not None else self.horizon()


@dataclass(frozen=True)
class _Edge:
    """A hyperedge: sources -> destination, filter or merge."""

    name: str
    sources: Tuple[str, ...]
    destination: str
    predicate: Optional[Callable[[Any], bool]]  # None => merge

    @property
    def is_merge(self) -> bool:
        return self.predicate is None


@dataclass(frozen=True)
class Transfer:
    """One in-flight knowledge value for one tick on one edge's channel."""

    transfer_id: int
    edge: str
    tick: Tick
    value: K
    payload: Any = None


class KnowledgeGraph:
    """The abstract model as an adversary-driven transition system."""

    def __init__(self) -> None:
        self.nodes: Dict[str, ModelNode] = {}
        self.edges: Dict[str, _Edge] = {}
        #: edges indexed by source / destination node.
        self._out: Dict[str, List[str]] = {}
        self._in: Dict[str, List[str]] = {}
        #: the in-flight multiset (the adversary delivers or drops).
        self.channel: Dict[int, Transfer] = {}
        self._transfer_ids = itertools.count()
        self._delivered_log: List[Tuple[str, Tick, Any]] = []

    # -- construction ---------------------------------------------------------

    def add_pubend(self, name: str) -> ModelNode:
        return self._add(ModelNode(name, is_pubend=True))

    def add_subend(self, name: str) -> ModelNode:
        return self._add(ModelNode(name, is_subend=True))

    def add_node(self, name: str) -> ModelNode:
        return self._add(ModelNode(name))

    def _add(self, node: ModelNode) -> ModelNode:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node {node.name!r}")
        self.nodes[node.name] = node
        self._out.setdefault(node.name, [])
        self._in.setdefault(node.name, [])
        return node

    def add_filter(
        self,
        src: str,
        dst: str,
        predicate: Callable[[Any], bool] = lambda payload: True,
        name: Optional[str] = None,
    ) -> str:
        edge_name = name or f"{src}->{dst}"
        return self._add_edge(_Edge(edge_name, (src,), dst, predicate))

    def add_merge(
        self, sources: Sequence[str], dst: str, name: Optional[str] = None
    ) -> str:
        edge_name = name or f"merge({','.join(sources)})->{dst}"
        return self._add_edge(_Edge(edge_name, tuple(sources), dst, None))

    def _add_edge(self, edge: _Edge) -> str:
        if edge.name in self.edges:
            raise ValueError(f"duplicate edge {edge.name!r}")
        for src in edge.sources:
            if src not in self.nodes:
                raise KeyError(src)
            self._out[src].append(edge.name)
        if edge.destination not in self.nodes:
            raise KeyError(edge.destination)
        self._in[edge.destination].append(edge.name)
        self.edges[edge.name] = edge
        return edge.name

    # -- pubend actions ----------------------------------------------------------

    def publish(self, pubend: str, tick: Tick, payload: Any) -> None:
        """Assign D to a tick of a pubend (its log made it durable)."""
        node = self.nodes[pubend]
        if not node.is_pubend:
            raise ValueError(f"{pubend} is not a pubend")
        node.accumulate(tick, K.D, payload)

    def silence(self, pubend: str, rng: TickRange) -> None:
        """A pubend marks a range it will never use as silent."""
        node = self.nodes[pubend]
        if not node.is_pubend:
            raise ValueError(f"{pubend} is not a pubend")
        for tick in rng:
            if node.value_at(tick) == K.Q:
                node.accumulate(tick, K.S)

    # -- edge emission (downstream knowledge flow) ----------------------------------

    def edge_output(self, edge_name: str, tick: Tick) -> Tuple[K, Any]:
        """The value an edge currently computes for one tick.

        Filter (section 2.4): D passes when the payload matches, else
        becomes F; F and S pass unchanged; D* passes as D* (knowledge
        that the data is globally done is still knowledge).  Merge: D
        from any input wins; F/S only when *all* inputs are final-ish.
        """
        edge = self.edges[edge_name]
        if not edge.is_merge:
            source = self.nodes[edge.sources[0]]
            value = source.value_at(tick)
            if value in (K.D, K.DSTAR):
                payload = source.payloads.get(tick)
                if edge.predicate(payload):
                    return value, payload
                return K.F, None
            return value, None
        all_final = True
        for src in edge.sources:
            value = self.nodes[src].value_at(tick)
            if value in (K.D, K.DSTAR):
                return value, self.nodes[src].payloads.get(tick)
            if value == K.Q:
                all_final = False
        return (K.F, None) if all_final else (K.Q, None)

    def emit(self, edge_name: str, rng: TickRange) -> List[int]:
        """Compute an edge's output over a range and put each non-Q tick
        on the channel.  Returns the transfer ids (for the adversary)."""
        ids: List[int] = []
        for tick in rng:
            value, payload = self.edge_output(edge_name, tick)
            if value == K.Q:
                continue
            transfer_id = next(self._transfer_ids)
            self.channel[transfer_id] = Transfer(
                transfer_id, edge_name, tick, value, payload
            )
            ids.append(transfer_id)
        return ids

    # -- adversary moves ----------------------------------------------------------

    def deliver(self, transfer_id: int) -> None:
        """Deliver one in-flight transfer (in any order the adversary
        likes); accumulation is a lattice join at the destination."""
        transfer = self.channel.pop(transfer_id)
        destination = self.nodes[self.edges[transfer.edge].destination]
        destination.accumulate(transfer.tick, transfer.value, transfer.payload)

    def drop(self, transfer_id: int) -> None:
        """Lose one in-flight transfer."""
        del self.channel[transfer_id]

    def forget(self, node: str, rng: TickRange) -> None:
        """Soft-state loss at any non-pubend node."""
        self.nodes[node].forget_range(rng)

    # -- subend actions -----------------------------------------------------------

    def subend_deliver(self, subend: str) -> List[Tuple[Tick, Any]]:
        """Deliver all D ticks below the doubt horizon, in order, and mark
        them anti-curious (section 2.3)."""
        node = self.nodes[subend]
        if not node.is_subend:
            raise ValueError(f"{subend} is not a subend")
        horizon = node.doubt_horizon()
        out: List[Tuple[Tick, Any]] = []
        if horizon <= node.delivered_horizon:
            return out
        window = TickRange(node.delivered_horizon, horizon)
        for run, value in node.knowledge.iter_runs(window.start, window.stop):
            if value in (K.D, K.DSTAR):
                for tick in run:
                    if value == K.D:
                        payload = node.payloads.get(tick)
                        out.append((tick, payload))
                        self._delivered_log.append((subend, tick, payload))
                        node.delivered.append((tick, payload))
        node.delivered_horizon = horizon
        node.curiosity.set_range(TickRange(0, horizon), C.A)
        return out

    def subend_curious(self, subend: str, rng: TickRange) -> None:
        """Mark a gap curious at a subend (the GCT firing)."""
        node = self.nodes[subend]
        for run, value in list(node.curiosity.iter_runs(rng.start, rng.stop)):
            if value == C.N:
                node.curiosity.set_range(run, C.C)

    # -- curiosity propagation (upstream) -------------------------------------------

    def propagate_acks(self) -> None:
        """One round of the upstream A-consolidation rule: a tick of a
        node becomes A when every out-edge's destination is A for it (or
        the node's own knowledge is final).  Runs to a fixed point when
        called repeatedly; a single call performs one sweep in reverse
        topological order, which reaches the fixed point on DAGs."""
        for name in self._reverse_topological():
            node = self.nodes[name]
            if node.is_subend:
                continue
            limit = max(
                (self.nodes[self.edges[e].destination].horizon()
                 for e in self._out[name]),
                default=0,
            )
            limit = max(limit, node.horizon())
            for tick in range(0, limit):
                if node.curiosity.get(tick) == C.A:
                    continue
                if self._all_downstream_acked(name, tick):
                    node.curiosity.set_value(tick, C.A)
                    # D + everyone-downstream-done => D* (then loweable to F)
                    if node.value_at(tick) == K.D:
                        node.knowledge.set_value(tick, K.DSTAR)

    def _all_downstream_acked(self, name: str, tick: Tick) -> bool:
        out_edges = self._out[name]
        if not out_edges:
            # A leaf non-subend node: acked iff its own knowledge is final.
            return self.nodes[name].value_at(tick) in (K.F, K.DSTAR, K.S)
        for edge_name in out_edges:
            destination = self.nodes[self.edges[edge_name].destination]
            if destination.curiosity.get(tick) != C.A:
                return False
        return True

    def propagate_curiosity(self) -> None:
        """One sweep of upstream C propagation: a filter's C flows to its
        predecessor; a merge's C flows to predecessors with Q ticks."""
        for name in self._reverse_topological():
            node = self.nodes[name]
            span = node.curiosity.span()
            if span is None:
                continue
            for edge_name in self._in[name]:
                edge = self.edges[edge_name]
                for rng in node.curiosity.ranges_with(
                    lambda v: v == C.C, span.start, span.stop
                ):
                    for src in edge.sources:
                        source = self.nodes[src]
                        for tick in rng:
                            if source.curiosity.get(tick) == C.A:
                                continue
                            if edge.is_merge and source.value_at(tick) != K.Q:
                                continue  # merge: only Q-predecessors
                            source.curiosity.set_value(tick, C.C)

    # -- queries ---------------------------------------------------------------------

    def _reverse_topological(self) -> List[str]:
        order: List[str] = []
        visited: Set[str] = set()

        def visit(name: str) -> None:
            if name in visited:
                return
            visited.add(name)
            for edge_name in self._out[name]:
                visit(self.edges[edge_name].destination)
            order.append(name)

        for name in self.nodes:
            visit(name)
        return order

    def delivered_at(self, subend: str) -> List[Tuple[Tick, Any]]:
        return list(self.nodes[subend].delivered)

    def in_flight(self) -> List[Transfer]:
        return list(self.channel.values())

    def check_no_error(self) -> None:
        """E is unreachable (it would have raised at accumulate time);
        assert additionally that no stored value equals E."""
        for node in self.nodes.values():
            for __, value in node.knowledge.runs():
                assert value != K.E, f"error element stored at {node.name}"
