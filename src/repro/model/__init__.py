"""The abstract knowledge-graph model of paper section 2, executable."""

from .graph import KnowledgeGraph, ModelNode, Transfer
