"""TCP-style retransmission timeout estimation for nack repetition.

The paper (section 3.1) estimates the nack repetition threshold (NRT) "in
a manner similar to how TCP estimates the retransmission timeout value
(RTO)", i.e. Jacobson/Karels smoothed RTT plus variance, with exponential
backoff "to handle pubends that are down", and a configured minimum
repetition interval.
"""

from __future__ import annotations

__all__ = ["RtoEstimator"]


class RtoEstimator:
    """Smoothed round-trip estimator with exponential backoff.

    ``rto = srtt + 4 * rttvar`` clamped to ``[min_interval, max_interval]``;
    each timeout without a response doubles the effective timeout (up to
    ``max_interval``); a fresh sample resets the backoff.
    """

    #: Standard Jacobson/Karels gains.
    ALPHA = 0.125
    BETA = 0.25

    def __init__(
        self,
        min_interval: float,
        max_interval: float = 60.0,
        initial: "float | None" = None,
    ):
        if min_interval <= 0:
            raise ValueError("min_interval must be positive")
        if max_interval < min_interval:
            raise ValueError("max_interval must be >= min_interval")
        self.min_interval = min_interval
        self.max_interval = max_interval
        self._srtt: float = initial if initial is not None else min_interval
        self._rttvar: float = self._srtt / 2.0
        self._backoff = 1.0
        self.samples = 0
        self.timeouts = 0

    def sample(self, rtt: float) -> None:
        """Record a measured response time; resets exponential backoff."""
        if rtt < 0:
            raise ValueError("rtt must be non-negative")
        if self.samples == 0:
            self._srtt = rtt
            self._rttvar = rtt / 2.0
        else:
            err = rtt - self._srtt
            self._srtt += self.ALPHA * err
            self._rttvar += self.BETA * (abs(err) - self._rttvar)
        self.samples += 1
        self._backoff = 1.0

    def backoff(self) -> None:
        """Record an unanswered timeout; doubles the effective interval."""
        self.timeouts += 1
        self._backoff = min(self._backoff * 2.0, self.max_interval / self.min_interval)

    def interval(self) -> float:
        """The current repetition interval.

        Before any round trip has been observed, the configured minimum
        (the system's NRT setting) is used directly; once samples exist,
        the Jacobson estimate ``srtt + 4 * rttvar`` takes over.
        """
        base = self._srtt + 4.0 * self._rttvar if self.samples else self._srtt
        value = base * self._backoff
        return max(self.min_interval, min(value, self.max_interval))

    @property
    def srtt(self) -> float:
        return self._srtt
