"""Filter and merge edge operations of the knowledge graph.

Knowledge propagates downstream through hyperedges labelled *filter* or
*merge* (paper section 2.4):

* a **filter** passes a D tick unchanged if its payload matches the filter
  predicate, otherwise converts it to F; F passes unchanged;
* a **merge** passes any D tick to its output, and passes F only when
  *all* inputs are F.

Curiosity propagates upstream in reverse: an A tick propagates to the
predecessor (filter) or all predecessors (merge) once all downstream
streams are A; a C tick propagates to a filter's predecessor, and to those
predecessors of a merge that have Q ticks.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from .lattice import K
from .messages import DataTick, KnowledgeMessage
from .streams import KnowledgeStream
from .ticks import Tick, TickRange, merge_ranges

__all__ = ["FilterEdge", "MergeView", "MATCH_ALL"]

#: Predicate over message payloads.
Predicate = Callable[[Any], bool]


def MATCH_ALL(_payload: Any) -> bool:
    """The always-true filter predicate (an unfiltered edge)."""
    return True


class FilterEdge:
    """A filter edge: transforms knowledge messages for one downstream path.

    The predicate is evaluated on D payloads; non-matching D ticks are
    converted to F runs in the output message.  A first-time data message
    whose only D tick is filtered out becomes a first-time silence message
    (paper section 3.1).
    """

    __slots__ = ("predicate", "name")

    def __init__(self, predicate: Predicate = MATCH_ALL, name: str = ""):
        self.predicate = predicate
        self.name = name or getattr(predicate, "__name__", "filter")

    def matches(self, payload: Any) -> bool:
        return self.predicate(payload)

    def apply(self, message: KnowledgeMessage) -> KnowledgeMessage:
        """The filtered image of a knowledge message.

        D ticks with matching payloads pass through; the rest become F.
        The final prefix and explicit F ranges pass unchanged.
        """
        if message.is_silence:
            return message
        passed: List[DataTick] = []
        filtered: List[TickRange] = []
        for data in message.data:
            if self.predicate(data.payload):
                passed.append(data)
            else:
                filtered.append(TickRange.single(data.tick))
        if not filtered:
            return message
        return KnowledgeMessage(
            pubend=message.pubend,
            fin_prefix=message.fin_prefix,
            f_ranges=tuple(merge_ranges(list(message.f_ranges) + filtered)),
            data=tuple(passed),
            retransmit=message.retransmit,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FilterEdge({self.name})"


class MergeView:
    """A deterministic merge of several knowledge streams.

    Used by total-order subends: each subscriber observes a single merged
    stream whose D ticks interleave the input pubend streams in tick order
    (the inputs place their D ticks on disjoint tick slots, so the merge is
    deterministic — every subscriber of the same merge sees the same
    sequence, paper section 2.3).

    The view is lazy: it answers knowledge queries against the live input
    streams instead of materializing an output stream.
    """

    __slots__ = ("inputs",)

    def __init__(self, inputs: Sequence[KnowledgeStream]):
        if not inputs:
            raise ValueError("merge requires at least one input stream")
        self.inputs = list(inputs)

    def value_at(self, tick: Tick) -> K:
        """Merged knowledge at ``tick``: D if any input has data, F only
        when all inputs are final, otherwise Q."""
        all_final = True
        for stream in self.inputs:
            value = stream.value_at(tick)
            if value == K.D:
                return K.D
            if value != K.F:
                all_final = False
        return K.F if all_final else K.Q

    def payload_at(self, tick: Tick) -> Any:
        for stream in self.inputs:
            if stream.value_at(tick) == K.D:
                return stream.payload_at(tick)
        raise KeyError(tick)

    def doubt_horizon(self) -> Tick:
        """First tick of the merged stream that is neither D nor F.

        A merged tick blocks delivery while *any* input is Q there and no
        input supplies data, so the horizon is computed by scanning the
        interleaved runs of all inputs up to the smallest per-input horizon
        that could still hide a Q.
        """
        horizon = 0
        limit = max(stream.horizon() for stream in self.inputs)
        while horizon < limit:
            value = self.value_at(horizon)
            if value == K.Q:
                return horizon
            # Jump to the end of the shortest current run to avoid
            # tick-by-tick scanning over long F runs.
            step = self._run_stop(horizon)
            horizon = step
        return horizon

    def _run_stop(self, tick: Tick) -> Tick:
        """One past the end of the merged run containing ``tick``.

        For a D tick the run is the single tick.  Otherwise it is bounded
        by the next value change in any input.
        """
        if self.value_at(tick) == K.D:
            return tick + 1
        stop: Optional[Tick] = None
        for stream in self.inputs:
            current = stream.value_at(tick)
            nxt = stream._map.first_with(  # noqa: SLF001 - intimate by design
                lambda v, cur=current: v != cur, tick + 1
            )
            if nxt is None:
                nxt = max(stream.horizon(), tick + 1)
            stop = nxt if stop is None else min(stop, nxt)
        return max(stop if stop is not None else tick + 1, tick + 1)

    def d_ticks_below(self, horizon: Tick, lo: Tick = 0) -> List[Tuple[Tick, Any]]:
        """All merged (tick, payload) pairs in ``[lo, horizon)``, sorted."""
        out: List[Tuple[Tick, Any]] = []
        if horizon <= lo:
            return out
        rng = TickRange(lo, horizon)
        for stream in self.inputs:
            out.extend(stream.d_ticks(rng))
        out.sort(key=lambda pair: pair[0])
        return out

    def curious_targets(self, rng: TickRange) -> List[Tuple[int, TickRange]]:
        """Which inputs a C range propagates to.

        Curiosity propagates to those predecessors of a merge that have Q
        ticks in the range (paper section 2.4).  Returns ``(input_index,
        sub_range)`` pairs.
        """
        targets: List[Tuple[int, TickRange]] = []
        for index, stream in enumerate(self.inputs):
            q_ranges = stream.ranges_with(lambda v: v == K.Q, rng.start, rng.stop)
            for piece in q_ranges:
                targets.append((index, piece))
        return targets
