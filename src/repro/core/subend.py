"""Subends: sink nodes that deliver messages to subscribing clients.

A subend (paper section 2.3) consumes the knowledge stream of one or more
pubends and delivers D messages to clients, in *publisher order* (per
pubend-stream order, streams interleaved arbitrarily) or in *total order*
(a deterministic merge of the pubend streams, identical for every
subscriber of the same merge).

The implementation follows the paper's SHB consolidation optimization:
all subscribers at a broker share the broker's per-pubend istream; each
subscriber only adds a content filter and membership in a delivery group.
Delivery is driven by the **doubt horizon** ``t_D`` — the first tick still
in doubt — so a message is never delivered out of order: D ticks above a
Q gap wait until the gap resolves to D or F.

Subends also *initiate* the upstream flows: acks for delivered/final
prefixes, and nacks (curiosity) for gaps, governed by the GCT / NRT / DCT
parameters of :class:`~repro.core.config.LivenessParams` and answered
according to the AckExpected probes of pubend-driven liveness.

The class is transport-agnostic: the hosting broker supplies a
:class:`SubendServices` implementation (clock, timers, upstream sends,
client delivery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..matching.ast import Predicate as AstPredicate
from ..matching.tree import MatchingTree
from ..obs.instruments import NULL_INSTRUMENTS
from .config import LivenessParams
from .edges import MergeView, Predicate, MATCH_ALL
from .lattice import K
from .rto import RtoEstimator
from .streams import Stream
from .ticks import Tick, TickRange, subtract_ranges, tick_of_time

__all__ = ["SubendServices", "SubendManager", "Subscription", "Delivery"]


class SubendServices:
    """What a subend needs from its hosting broker.

    Duck-typed; the simulator, the asyncio runtime and the unit tests each
    provide their own implementation.
    """

    def now(self) -> float:
        """Current time in seconds."""
        raise NotImplementedError

    def schedule(self, delay: float, fn: Callable[[], None]) -> Any:
        """Run ``fn`` after ``delay`` seconds; returns a cancellable handle
        (an object with a ``cancel()`` method)."""
        raise NotImplementedError

    def send_nack(self, pubend: str, ranges: List[TickRange]) -> None:
        """Propagate curiosity upstream."""
        raise NotImplementedError

    def send_ack(self, pubend: str, up_to: Tick) -> None:
        """Propagate anti-curiosity upstream."""
        raise NotImplementedError

    def deliver(
        self, subscriber: str, pubend: str, tick: Tick, payload: Any
    ) -> None:
        """Hand one message to a subscribing client."""
        raise NotImplementedError


@dataclass(frozen=True)
class Subscription:
    """A client's subscription at this subend."""

    subscriber: str
    predicate: Predicate = MATCH_ALL
    pubends: Tuple[str, ...] = ()
    total_order: bool = False


@dataclass(frozen=True)
class Delivery:
    """One delivered message (returned by test/client hooks)."""

    subscriber: str
    pubend: str
    tick: Tick
    payload: Any


@dataclass
class _NackRecord:
    """An outstanding nack awaiting satisfaction."""

    ranges: List[TickRange]
    first_sent: float
    last_sent: float
    attempts: int = 1
    timer: Any = None

    def trim(self, stream: Stream) -> None:
        """Drop sub-ranges whose knowledge is no longer Q."""
        live: List[TickRange] = []
        for rng in self.ranges:
            live.extend(
                stream.knowledge.ranges_with(lambda v: v == K.Q, rng.start, rng.stop)
            )
        self.ranges = live

    @property
    def satisfied(self) -> bool:
        return not self.ranges


@dataclass
class _PendingGap:
    """A Q-gap waiting out its GCT before being nacked."""

    ranges: List[TickRange]
    timer: Any = None


class _PubendState:
    """Per-pubend subend state at one SHB (shared by all its subscribers)."""

    def __init__(self, pubend: str, stream: Stream, params: LivenessParams):
        self.pubend = pubend
        self.stream = stream
        self.params = params
        #: Horizon up to which publisher-order delivery has been performed.
        self.delivered_horizon: Tick = 0
        #: Prefix acked upstream.
        self.acked_up_to: Tick = 0
        self.estimator = RtoEstimator(
            min_interval=params.nrt_min, max_interval=params.nrt_max
        )
        self.pending_gaps: List[_PendingGap] = []
        self.outstanding: List[_NackRecord] = []
        #: Ticks already covered by a pending GCT timer or outstanding
        #: nack, so gaps are not double-tracked.
        self.tracked: List[TickRange] = []
        self.nacks_sent = 0
        self.nack_ticks_sent = 0
        #: Doubt-horizon gauge child; replaced by the owning manager when
        #: it runs with a live instrument registry.
        self.m_doubt_horizon: Any = NULL_INSTRUMENTS.gauge("")

    def untracked(self, ranges: Sequence[TickRange]) -> List[TickRange]:
        return subtract_ranges(ranges, self.tracked)

    def track(self, ranges: Sequence[TickRange]) -> None:
        from .ticks import merge_ranges

        self.tracked = merge_ranges(list(self.tracked) + list(ranges))

    def refresh_tracked(self) -> None:
        """Recompute tracked ticks from live pending gaps and nacks."""
        from .ticks import merge_ranges

        ranges: List[TickRange] = []
        for gap in self.pending_gaps:
            ranges.extend(gap.ranges)
        for record in self.outstanding:
            ranges.extend(record.ranges)
        self.tracked = merge_ranges(ranges)


class _TotalOrderGroup:
    """Subscribers sharing one deterministic merge of pubend streams."""

    def __init__(self, pubends: Tuple[str, ...], view: MergeView):
        self.pubends = pubends
        self.view = view
        self.delivered_horizon: Tick = 0
        self.subscribers: List[Subscription] = []


class SubendManager:
    """All subend logic of one subscriber-hosting broker.

    The hosting broker owns the per-pubend istreams and calls
    :meth:`on_knowledge` after accumulating each knowledge message,
    :meth:`on_ack_expected` for AckExpected probes, and
    :meth:`on_periodic` from a coarse timer for DCT checks.
    """

    def __init__(
        self,
        services: SubendServices,
        params: LivenessParams,
        instruments: Any = NULL_INSTRUMENTS,
        node: str = "",
        lifecycle: Any = None,
    ):
        self.services = services
        self.params = params
        self._instruments = instruments
        self._node = node
        #: Per-message lifecycle bus (duck-typed LifecycleHub or None):
        #: reports horizon advances and subend-initiated curiosity.
        self._lifecycle = lifecycle
        labels = {"broker": node}
        self._m_deliveries = instruments.counter(
            "repro_subend_deliveries_total",
            help="Messages delivered to subscribing clients at this SHB.",
            **labels,
        )
        self._m_gaps = instruments.counter(
            "repro_subend_gaps_detected_total",
            help="Fresh Q gaps that started a GCT timer.",
            **labels,
        )
        self._m_nacks_sent = instruments.counter(
            "repro_subend_nacks_sent_total",
            help="Nack messages sent upstream (first sends and NRT repeats).",
            **labels,
        )
        self._m_nack_ticks = instruments.counter(
            "repro_subend_nack_ticks_total",
            help="Cumulative ticks requested by nacks (the paper's "
            "nack range).",
            **labels,
        )
        self._states: Dict[str, _PubendState] = {}
        self._subscriptions: Dict[str, Subscription] = {}
        self._groups: Dict[Tuple[str, ...], _TotalOrderGroup] = {}
        #: Publisher-order subscriptions indexed by pubend.
        self._by_pubend: Dict[str, List[Subscription]] = {}
        #: Content index over AST predicates (paper: the SHB matches each
        #: event once against the whole subscription set, not once per
        #: subscriber) — the PODC '99 parallel search tree, Gryphon's own
        #: matching algorithm; opaque callable predicates are evaluated
        #: directly.
        self._matcher = MatchingTree()
        self._indexed: Set[str] = set()
        self.delivered_count = 0
        #: Oracle hook: called as ``on_horizon_advance(pubend, old, new)``
        #: whenever a pubend's publisher-order delivery horizon moves.
        #: External checkers (``repro.check``) assert the doubt horizon is
        #: monotone — delivery never rewinds within one broker incarnation.
        self.on_horizon_advance: Optional[
            Callable[[str, Tick, Tick], None]
        ] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach_stream(self, pubend: str, stream: Stream) -> None:
        """Register the broker's istream for ``pubend`` with this subend."""
        if pubend not in self._states:
            state = _PubendState(pubend, stream, self.params)
            state.m_doubt_horizon = self._instruments.gauge(
                "repro_subend_doubt_horizon_tick",
                help="First tick still in doubt for this istream.",
                broker=self._node,
                pubend=pubend,
            )
            self._states[pubend] = state

    def has_pubend(self, pubend: str) -> bool:
        return pubend in self._states

    def pubends(self) -> List[str]:
        return sorted(self._states)

    def subscribe(self, subscription: Subscription) -> None:
        """Add a subscription.  All its pubends must be attached first."""
        for pubend in subscription.pubends:
            if pubend not in self._states:
                raise KeyError(f"pubend {pubend!r} not attached")
        self._subscriptions[subscription.subscriber] = subscription
        if isinstance(subscription.predicate, AstPredicate):
            self._matcher.add(subscription.subscriber, subscription.predicate)
            self._indexed.add(subscription.subscriber)
        if subscription.total_order:
            key = tuple(sorted(subscription.pubends))
            group = self._groups.get(key)
            if group is None:
                view = MergeView(
                    [self._states[p].stream.knowledge for p in key]
                )
                group = _TotalOrderGroup(key, view)
                self._groups[key] = group
            group.subscribers.append(subscription)
        else:
            for pubend in subscription.pubends:
                self._by_pubend.setdefault(pubend, []).append(subscription)

    def unsubscribe(self, subscriber: str) -> None:
        subscription = self._subscriptions.pop(subscriber, None)
        if subscription is None:
            return
        if subscriber in self._indexed:
            self._matcher.remove(subscriber)
            self._indexed.discard(subscriber)
        if subscription.total_order:
            key = tuple(sorted(subscription.pubends))
            group = self._groups.get(key)
            if group is not None:
                group.subscribers = [
                    s for s in group.subscribers if s.subscriber != subscriber
                ]
                if not group.subscribers:
                    del self._groups[key]
        else:
            for pubend in subscription.pubends:
                subs = self._by_pubend.get(pubend, [])
                self._by_pubend[pubend] = [
                    s for s in subs if s.subscriber != subscriber
                ]

    # ------------------------------------------------------------------
    # Knowledge arrival: delivery, acks, gap detection
    # ------------------------------------------------------------------

    def on_knowledge(self, pubend: str) -> None:
        """React to new knowledge accumulated into ``pubend``'s istream."""
        state = self._states.get(pubend)
        if state is None:
            return
        self._settle_curiosity(state)
        self._deliver_publisher_order(state)
        self._deliver_total_order(pubend)
        state.m_doubt_horizon.set(float(state.stream.knowledge.doubt_horizon()))
        # A total-order group's horizon may have advanced, unblocking acks
        # for *other* member pubends, so re-evaluate every state.
        for other in self._states.values():
            self._maybe_ack(other)
        self._watch_gaps(state)

    def _matching_subs(
        self, candidates: Sequence[Subscription], payload: Any
    ) -> List[Subscription]:
        """Subscriptions among ``candidates`` matching ``payload``.

        Indexed (AST) predicates are answered by one matcher pass per
        event; opaque callables are evaluated individually.
        """
        if not candidates:
            return []
        matched_ids: Optional[Set[str]] = None
        if isinstance(payload, Mapping):
            matched_ids = self._matcher.match(payload)
        out: List[Subscription] = []
        for subscription in candidates:
            if subscription.subscriber in self._indexed:
                if matched_ids is not None and subscription.subscriber in matched_ids:
                    out.append(subscription)
            elif subscription.predicate(payload):
                out.append(subscription)
        return out

    def _deliver_publisher_order(self, state: _PubendState) -> None:
        horizon = state.stream.knowledge.doubt_horizon()
        if horizon <= state.delivered_horizon:
            return
        if self.on_horizon_advance is not None:
            self.on_horizon_advance(state.pubend, state.delivered_horizon, horizon)
        if self._lifecycle is not None and self._lifecycle.listeners:
            self._lifecycle.horizon_advanced(
                self.services.now(),
                self._node,
                state.pubend,
                state.delivered_horizon,
                horizon,
            )
        subs = self._by_pubend.get(state.pubend, ())
        if subs:
            window = TickRange(state.delivered_horizon, horizon)
            for tick, payload in state.stream.knowledge.d_ticks(window):
                for subscription in self._matching_subs(subs, payload):
                    self.services.deliver(
                        subscription.subscriber, state.pubend, tick, payload
                    )
                    self.delivered_count += 1
                    self._m_deliveries.inc()
        state.delivered_horizon = horizon

    def _deliver_total_order(self, pubend: str) -> None:
        for group in self._groups.values():
            if pubend not in group.pubends:
                continue
            horizon = group.view.doubt_horizon()
            if horizon <= group.delivered_horizon:
                continue
            pairs = group.view.d_ticks_below(horizon, group.delivered_horizon)
            for tick, payload in pairs:
                source = self._pubend_of_tick(group, tick)
                for subscription in self._matching_subs(group.subscribers, payload):
                    self.services.deliver(
                        subscription.subscriber, source, tick, payload
                    )
                    self.delivered_count += 1
                    self._m_deliveries.inc()
            group.delivered_horizon = horizon

    def _pubend_of_tick(self, group: _TotalOrderGroup, tick: Tick) -> str:
        for pubend in group.pubends:
            if self._states[pubend].stream.knowledge.value_at(tick) == K.D:
                return pubend
        return group.pubends[0]

    def _consumption_horizon(self, state: _PubendState) -> Tick:
        """How far every local consumer of this pubend has consumed.

        Publisher-order consumers consume up to the istream doubt horizon;
        total-order groups only up to the *merged* horizon (which may lag,
        since a merge waits for all inputs).  The ack — and the garbage
        collection it allows — must not outrun the slowest consumer.
        """
        horizon = state.delivered_horizon
        for group in self._groups.values():
            if state.pubend in group.pubends:
                horizon = min(horizon, group.delivered_horizon)
        return horizon

    def _maybe_ack(self, state: _PubendState) -> None:
        horizon = self._consumption_horizon(state)
        if horizon > state.acked_up_to:
            state.acked_up_to = horizon
            # Acking finalizes the prefix locally (D -> F, payloads GC'd):
            # the F <-> A linkage of Stream.set_ack.
            state.stream.set_ack(TickRange(0, horizon))
            self.services.send_ack(state.pubend, horizon)

    # ------------------------------------------------------------------
    # Curiosity: GCT gaps, NRT repetition, DCT, AckExpected
    # ------------------------------------------------------------------

    def _settle_curiosity(self, state: _PubendState) -> None:
        """Trim satisfied ticks from tracked gaps and outstanding nacks."""
        now = self.services.now()
        for record in state.outstanding:
            record.trim(state.stream)
            if record.satisfied:
                if record.timer is not None:
                    record.timer.cancel()
                if record.attempts == 1:
                    # Karn's rule: only unambiguous (non-retransmitted)
                    # exchanges produce RTT samples.
                    state.estimator.sample(max(now - record.last_sent, 0.0))
        state.outstanding = [r for r in state.outstanding if not r.satisfied]
        for gap in state.pending_gaps:
            live: List[TickRange] = []
            for rng in gap.ranges:
                live.extend(
                    state.stream.knowledge.ranges_with(
                        lambda v: v == K.Q, rng.start, rng.stop
                    )
                )
            gap.ranges = live
            if not gap.ranges and gap.timer is not None:
                gap.timer.cancel()
        state.pending_gaps = [g for g in state.pending_gaps if g.ranges]
        state.refresh_tracked()

    def _watch_gaps(self, state: _PubendState) -> None:
        if self.params.gct == float("inf"):
            return  # subend-driven gap curiosity disabled (ablation)
        gaps = state.stream.knowledge.gaps()
        fresh = state.untracked(gaps)
        if not fresh:
            return
        self._m_gaps.inc(len(fresh))
        pending = _PendingGap(ranges=fresh)
        pending.timer = self.services.schedule(
            self.params.gct, lambda: self._gct_expired(state, pending)
        )
        state.pending_gaps.append(pending)
        state.track(fresh)

    def _gct_expired(self, state: _PubendState, pending: _PendingGap) -> None:
        if pending in state.pending_gaps:
            state.pending_gaps.remove(pending)
        still_q: List[TickRange] = []
        for rng in pending.ranges:
            still_q.extend(
                state.stream.knowledge.ranges_with(
                    lambda v: v == K.Q, rng.start, rng.stop
                )
            )
        state.refresh_tracked()
        if still_q:
            self._send_nacks(state, still_q)

    def _send_nacks(self, state: _PubendState, ranges: List[TickRange]) -> None:
        """Nack the given Q ranges, chopped, and arm NRT repetition."""
        chopped: List[TickRange] = []
        for rng in ranges:
            chopped.extend(rng.split(self.params.nack_chop))
        now = self.services.now()
        for piece in chopped:
            if self._lifecycle is not None and self._lifecycle.listeners:
                self._lifecycle.subend_nack(
                    now, self._node, state.pubend, [piece], 1
                )
            self.services.send_nack(state.pubend, [piece])
            state.nacks_sent += 1
            state.nack_ticks_sent += len(piece)
            self._m_nacks_sent.inc()
            self._m_nack_ticks.inc(len(piece))
            record = _NackRecord(ranges=[piece], first_sent=now, last_sent=now)
            record.timer = self.services.schedule(
                state.estimator.interval(),
                lambda record=record: self._nrt_expired(state, record),
            )
            state.outstanding.append(record)
        state.refresh_tracked()

    def _repetition_interval(self, state: _PubendState, record: _NackRecord) -> float:
        """Exponential backoff *per outstanding nack*, on top of the
        shared RTT estimate (a shared-backoff estimator would let many
        concurrent unsatisfied nacks multiply each other's delays)."""
        base = state.estimator.interval()
        backoff = 2.0 ** min(record.attempts - 1, 6)
        return min(base * backoff, self.params.nrt_max)

    def _nrt_expired(self, state: _PubendState, record: _NackRecord) -> None:
        record.trim(state.stream)
        if record.satisfied:
            if record in state.outstanding:
                state.outstanding.remove(record)
            state.refresh_tracked()
            return
        now = self.services.now()
        for rng in record.ranges:
            if self._lifecycle is not None and self._lifecycle.listeners:
                self._lifecycle.subend_nack(
                    now, self._node, state.pubend, [rng], record.attempts + 1
                )
            self.services.send_nack(state.pubend, [rng])
            state.nacks_sent += 1
            state.nack_ticks_sent += len(rng)
            self._m_nacks_sent.inc()
            self._m_nack_ticks.inc(len(rng))
        record.attempts += 1
        record.last_sent = now
        record.timer = self.services.schedule(
            self._repetition_interval(state, record),
            lambda: self._nrt_expired(state, record),
        )

    def on_ack_expected(self, pubend: str, up_to: Tick) -> None:
        """AckExpected probe: *immediately* nack all Q ticks below
        ``up_to`` (paper section 3.2), bypassing both the GCT and any
        outstanding nack's exponential backoff.

        The override matters: backoff exists "to handle pubends that are
        down", but a probe is positive proof the pubend is alive — an
        old gap whose repetitions have backed off to tens of seconds
        must be retried now, or an unlucky streak of lost nacks and
        retransmissions stalls the stream far beyond the probe period.
        """
        state = self._states.get(pubend)
        if state is None:
            return
        if up_to <= 0:
            return
        q_ranges = state.stream.knowledge.ranges_with(
            lambda v: v == K.Q, state.acked_up_to, up_to
        )
        if not q_ranges:
            return
        # Cancel outstanding records overlapping the probed gaps; they are
        # re-issued below with a fresh (un-backed-off) repetition cycle.
        overlapping = [
            record
            for record in state.outstanding
            if any(a.overlaps(b) for a in record.ranges for b in q_ranges)
        ]
        for record in overlapping:
            if record.timer is not None:
                record.timer.cancel()
            state.outstanding.remove(record)
        state.refresh_tracked()
        fresh = state.untracked(q_ranges)
        if fresh:
            self._send_nacks(state, fresh)

    def on_periodic(self) -> None:
        """Time-driven checks (DCT); call every ``subend_check_interval``."""
        if self.params.dct == float("inf"):
            return
        now_tick = tick_of_time(self.services.now())
        dct_ticks = tick_of_time(self.params.dct)
        for state in self._states.values():
            horizon = state.stream.knowledge.doubt_horizon()
            lag_limit = now_tick - dct_ticks
            if horizon < lag_limit:
                rng = TickRange(horizon, lag_limit)
                fresh = state.untracked([rng])
                if fresh:
                    self._send_nacks(state, fresh)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def state_of(self, pubend: str) -> _PubendState:
        return self._states[pubend]

    def subscriptions_for(self, pubend: str) -> List[Subscription]:
        """Every local subscription (publisher- or total-order) that
        consumes this pubend — the input to subscription summaries."""
        out = list(self._by_pubend.get(pubend, ()))
        for group in self._groups.values():
            if pubend in group.pubends:
                out.extend(group.subscribers)
        return out

    def ack_horizon(self, pubend: str) -> Tick:
        return self._states[pubend].acked_up_to

    def total_nacks_sent(self) -> int:
        return sum(s.nacks_sent for s in self._states.values())

    def total_nack_ticks_sent(self) -> int:
        return sum(s.nack_ticks_sent for s in self._states.values())
