"""A coalescing interval map over the tick axis.

Every stream in the knowledge model conceptually assigns a value to *every*
tick in ``[0, inf)``.  In practice knowledge and curiosity are constant over
long runs of ticks (an ever-growing final prefix, ranges of silence, bursts
of curiosity), so streams are stored as run-length encoded interval maps:
a sorted list of disjoint, coalesced ``(start, stop, value)`` runs, with
every tick not covered by a run having the map's *default* value.

The map is value-agnostic; knowledge streams use it with :class:`~repro.core.lattice.K`
values (default ``Q``) and curiosity streams with :class:`~repro.core.lattice.C`
values (default ``N``).  Payload data for D ticks is kept out of the map
(streams store payloads in a side dict keyed by tick) so that runs coalesce
freely.

Complexity: point queries are ``O(log r)`` and range updates are
``O(log r + k)`` where ``r`` is the number of runs and ``k`` the number of
runs overlapping the update, via :mod:`bisect` plus a local splice.  The
dominant pubend pattern — finalize a bracket at the growing tail, then
append one D tick — never overlaps stored runs, so updates at or past the
tail take an O(1) append/extend fast path instead of the general splice.

Updates are counted in :data:`STATS` (tail appends vs. general splices),
which the benchmark-regression gate uses as a deterministic work metric.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Generic, Iterator, List, Optional, Tuple, TypeVar

from .ticks import Tick, TickRange

__all__ = ["IntervalMap", "IntervalMapStats", "STATS"]

V = TypeVar("V")

_MISSING = object()


class IntervalMapStats:
    """Process-wide operation counters for every :class:`IntervalMap`.

    ``tail_appends`` counts updates taken by the O(1) tail fast path,
    ``splices`` counts general splice updates.  Both are deterministic
    functions of the op sequence, so ``python -m repro bench`` snapshots
    them as regression-gate counters.
    """

    __slots__ = ("splices", "tail_appends")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.splices = 0
        self.tail_appends = 0

    @property
    def updates(self) -> int:
        return self.splices + self.tail_appends

    def snapshot(self) -> dict:
        return {
            "splices": self.splices,
            "tail_appends": self.tail_appends,
            "updates": self.updates,
        }


#: Module-wide counter instance (reset via ``STATS.reset()``).
STATS = IntervalMapStats()


class IntervalMap(Generic[V]):
    """Map from tick to value, run-length encoded, with a default value.

    Invariants (checked by :meth:`check_invariants`, exercised heavily by
    the property-based tests):

    * runs are sorted by ``start`` and pairwise disjoint;
    * no run is empty;
    * no run carries the default value;
    * adjacent runs with equal values are coalesced.
    """

    __slots__ = ("default", "_starts", "_stops", "_values")

    #: Class-wide switch for the O(1) tail-append fast path.  Benchmarks
    #: flip it off to measure the win; production code leaves it on.
    fast_path = True

    def __init__(self, default: V):
        self.default = default
        self._starts: List[Tick] = []
        self._stops: List[Tick] = []
        self._values: List[V] = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def get(self, tick: Tick) -> V:
        """The value at ``tick`` (the default when no run covers it)."""
        i = bisect_right(self._starts, tick) - 1
        if i >= 0 and tick < self._stops[i]:
            return self._values[i]
        return self.default

    def __bool__(self) -> bool:
        return bool(self._starts)

    def run_count(self) -> int:
        """Number of stored (non-default) runs."""
        return len(self._starts)

    def span(self) -> Optional[TickRange]:
        """The covering range of all non-default runs, or ``None`` if empty."""
        if not self._starts:
            return None
        return TickRange(self._starts[0], self._stops[-1])

    def runs(self) -> Iterator[Tuple[TickRange, V]]:
        """Iterate the stored (non-default) runs in order."""
        for start, stop, value in zip(self._starts, self._stops, self._values):
            yield TickRange(start, stop), value

    def iter_runs(self, lo: Tick, hi: Tick) -> Iterator[Tuple[TickRange, V]]:
        """Iterate runs covering ``[lo, hi)`` completely, default gaps included.

        The yielded ranges partition ``[lo, hi)`` exactly; consecutive
        yielded runs never share a value (gaps are merged with nothing).
        """
        if hi <= lo:
            return
        cursor = lo
        i = max(bisect_right(self._starts, lo) - 1, 0)
        while cursor < hi and i < len(self._starts):
            start, stop, value = self._starts[i], self._stops[i], self._values[i]
            if stop <= cursor:
                i += 1
                continue
            if start >= hi:
                break
            if start > cursor:
                yield TickRange(cursor, min(start, hi)), self.default
                cursor = min(start, hi)
                if cursor >= hi:
                    return
            piece_stop = min(stop, hi)
            yield TickRange(cursor, piece_stop), value
            cursor = piece_stop
            i += 1
        if cursor < hi:
            yield TickRange(cursor, hi), self.default

    def ranges_with(
        self, pred: Callable[[V], bool], lo: Tick, hi: Tick
    ) -> List[TickRange]:
        """All maximal sub-ranges of ``[lo, hi)`` whose value satisfies ``pred``."""
        found: List[TickRange] = []
        for rng, value in self.iter_runs(lo, hi):
            if pred(value):
                if found and found[-1].stop == rng.start:
                    found[-1] = TickRange(found[-1].start, rng.stop)
                else:
                    found.append(rng)
        return found

    def first_with(
        self, pred: Callable[[V], bool], lo: Tick, hi: Optional[Tick] = None
    ) -> Optional[Tick]:
        """The first tick ``>= lo`` (and ``< hi`` if given) whose value satisfies ``pred``.

        When ``hi`` is ``None`` the search extends past the last stored run;
        if ``pred`` holds for the default value the first default tick at or
        after ``lo`` is returned, otherwise ``None``.
        """
        limit = hi if hi is not None else (self._stops[-1] if self._stops else lo)
        for rng, value in self.iter_runs(lo, max(limit, lo)):
            if pred(value):
                return rng.start
        if hi is None and pred(self.default):
            return max(lo, self._stops[-1] if self._stops else lo)
        return None

    def to_dict(self, lo: Tick, hi: Tick) -> dict:
        """Materialize ``{tick: value}`` over ``[lo, hi)`` (testing helper)."""
        return {t: self.get(t) for t in range(lo, hi)}

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def set_range(self, rng: TickRange, value: V) -> None:
        """Overwrite every tick in ``rng`` with ``value``."""
        self._apply(rng, None, value)

    def set_value(self, tick: Tick, value: V) -> None:
        """Overwrite a single tick."""
        self._apply(TickRange.single(tick), None, value)

    def clear_range(self, rng: TickRange) -> None:
        """Reset every tick in ``rng`` to the default value."""
        self._apply(rng, None, self.default)

    def combine_range(self, rng: TickRange, value: V, fn: Callable[[V, V], V]) -> None:
        """Set each tick in ``rng`` to ``fn(old_value, value)``.

        This is the primitive behind knowledge accumulation (``fn`` = lattice
        least upper bound) and curiosity consolidation.
        """
        self._apply(rng, None, value, fn)

    def transform_range(self, rng: TickRange, fn: Callable[[V], V]) -> None:
        """Apply ``fn`` to the existing value of each tick in ``rng``."""
        self._apply(rng, fn)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _apply(
        self,
        rng: TickRange,
        fn: Optional[Callable[[V], V]],
        value: V = _MISSING,  # type: ignore[assignment]
        combine: Optional[Callable[[V, V], V]] = None,
    ) -> None:
        """The splice engine behind every range update.

        The new value of a piece with old value ``old`` is
        ``combine(old, value)`` when ``combine`` is given, else ``fn(old)``
        when ``fn`` is given, else ``value`` — so :meth:`set_range` and
        :meth:`combine_range` avoid allocating a closure per call.
        """
        lo, hi = rng.start, rng.stop
        stops = self._stops

        if self.fast_path and (not stops or lo >= stops[-1]):
            # O(1) tail fast path: the update range is entirely at or past
            # the stored tail, so only default ticks are touched and no
            # stored run needs splicing.  This is the dominant pubend
            # pattern (bracket-finalize then append D at the growing tail).
            STATS.tail_appends += 1
            if combine is not None:
                new_value = combine(self.default, value)
            elif fn is not None:
                new_value = fn(self.default)
            else:
                new_value = value
            if new_value == self.default:
                return
            values = self._values
            if stops and stops[-1] == lo and values[-1] == new_value:
                stops[-1] = hi  # coalesce with the adjacent tail run
            else:
                self._starts.append(lo)
                stops.append(hi)
                values.append(new_value)
            return

        STATS.splices += 1
        # Indices of stored runs overlapping [lo, hi).
        first = bisect_right(self._stops, lo)
        last = bisect_left(self._starts, hi)  # exclusive

        # Pieces replacing the [first:last) slice: the kept prefix of the
        # first overlapping run, transformed pieces over [lo, hi), and the
        # kept suffix of the last overlapping run.
        pieces: List[Tuple[Tick, Tick, V]] = []
        if first < last and self._starts[first] < lo:
            pieces.append((self._starts[first], lo, self._values[first]))

        cursor = lo
        i = first
        while cursor < hi:
            if i < last and self._starts[i] <= cursor < self._stops[i]:
                piece_stop = min(self._stops[i], hi)
                old = self._values[i]
                if combine is not None:
                    new_value = combine(old, value)
                elif fn is not None:
                    new_value = fn(old)
                else:
                    new_value = value
                pieces.append((cursor, piece_stop, new_value))
                cursor = piece_stop
                if cursor >= self._stops[i]:
                    i += 1
            else:
                gap_stop = self._starts[i] if i < last else hi
                gap_stop = min(gap_stop, hi)
                if combine is not None:
                    new_value = combine(self.default, value)
                elif fn is not None:
                    new_value = fn(self.default)
                else:
                    new_value = value
                pieces.append((cursor, gap_stop, new_value))
                cursor = gap_stop

        if last > first and self._stops[last - 1] > hi:
            pieces.append((hi, self._stops[last - 1], self._values[last - 1]))

        # Drop default-valued pieces and coalesce equal neighbours, folding
        # in the runs immediately before and after the splice.
        kept = [(s, e, v) for (s, e, v) in pieces if v != self.default and s < e]

        splice_from, splice_to = first, last
        if splice_from > 0:
            splice_from -= 1
            kept.insert(
                0,
                (
                    self._starts[splice_from],
                    self._stops[splice_from],
                    self._values[splice_from],
                ),
            )
        if splice_to < len(self._starts):
            kept.append(
                (
                    self._starts[splice_to],
                    self._stops[splice_to],
                    self._values[splice_to],
                )
            )
            splice_to += 1

        coalesced: List[Tuple[Tick, Tick, V]] = []
        for start, stop, value in kept:
            if coalesced and coalesced[-1][1] == start and coalesced[-1][2] == value:
                coalesced[-1] = (coalesced[-1][0], stop, value)
            else:
                coalesced.append((start, stop, value))

        self._starts[splice_from:splice_to] = [p[0] for p in coalesced]
        self._stops[splice_from:splice_to] = [p[1] for p in coalesced]
        self._values[splice_from:splice_to] = [p[2] for p in coalesced]

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`AssertionError` if internal invariants are violated."""
        prev_stop: Optional[Tick] = None
        prev_value: Optional[V] = None
        for start, stop, value in zip(self._starts, self._stops, self._values):
            assert start < stop, f"empty run [{start},{stop})"
            assert value != self.default, f"default-valued run at [{start},{stop})"
            if prev_stop is not None:
                assert start >= prev_stop, "overlapping runs"
                if start == prev_stop:
                    assert value != prev_value, "uncoalesced adjacent runs"
            prev_stop, prev_value = stop, value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(
            f"[{s},{e})={v!r}"
            for s, e, v in zip(self._starts, self._stops, self._values)
        )
        return f"IntervalMap(default={self.default!r}, {body})"

    def copy(self) -> "IntervalMap[V]":
        """A shallow copy (values are shared; runs are independent)."""
        clone: IntervalMap[V] = IntervalMap(self.default)
        clone._starts = list(self._starts)
        clone._stops = list(self._stops)
        clone._values = list(self._values)
        return clone
