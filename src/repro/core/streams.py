"""Knowledge and curiosity streams.

Every node of the knowledge graph holds a *stream*: a knowledge stream
(which ticks carry data, which are silent/final) plus a curiosity stream
(how urgently downstream consumers need each tick).  This module implements
both as run-length encoded :class:`~repro.core.intervals.IntervalMap` maps,
together with the operational normalizations of section 3 of the paper:

* only ``Q``, ``D`` and ``F`` are materialized — incoming silence (``S``)
  and delivered-data (``D*``) values are automatically lowered to ``F``
  ("In the current algorithm, any S or D* tick is automatically lowered
  to F");
* payloads of D ticks are stored out-of-band so runs coalesce;
* a knowledge tick reaching ``F`` forces its curiosity to ``A``
  (the F ⇔ A linkage is enforced by :class:`Stream`, which owns both maps);
* any stream except a pubend's may *forget* ranges (drop them to ``Q``),
  modelling soft state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Tuple

from .intervals import IntervalMap
from .lattice import C, K, k_lub
from .ticks import Tick, TickRange

__all__ = ["KnowledgeStream", "CuriosityStream", "Stream"]


def _lower(value: K) -> K:
    """Operational lowering: S and D* collapse to F (paper section 2.1)."""
    if value in (K.S, K.DSTAR):
        return K.F
    return value


# Module-level predicates for the hot IntervalMap queries, so the per-call
# closure allocation the old inline lambdas paid is gone from the hot path.
def _is_q(value: K) -> bool:
    return value == K.Q


def _not_final(value: K) -> bool:
    return value != K.F


def _is_curious(value: C) -> bool:
    return value == C.C


def _is_acked(value: C) -> bool:
    return value == C.A


def _not_acked(value: C) -> bool:
    return value != C.A


def _is_neutral(value: C) -> bool:
    return value == C.N


def _is_d(value: K) -> bool:
    return value == K.D


class KnowledgeStream:
    """Per-tick knowledge with payloads for D ticks.

    The stream conceptually covers ``[0, inf)``; unmentioned ticks are ``Q``.
    All mutation goes through *accumulation* (monotone upward: lattice least
    upper bound, then lowered into {Q, D, F}) or *forgetting* (monotone
    downward: drop to Q, or finalize D into F when its payload is no longer
    needed).
    """

    __slots__ = ("_map", "_payloads")

    def __init__(self) -> None:
        self._map: IntervalMap[K] = IntervalMap(K.Q)
        self._payloads: Dict[Tick, Any] = {}

    # -- queries --------------------------------------------------------

    def value_at(self, tick: Tick) -> K:
        return self._map.get(tick)

    def payload_at(self, tick: Tick) -> Any:
        """The payload of a D tick (KeyError for non-D ticks)."""
        return self._payloads[tick]

    def has_payload(self, tick: Tick) -> bool:
        return tick in self._payloads

    def final_prefix(self) -> Tick:
        """First tick ``p`` such that tick ``p`` is not final; all ticks
        below ``p`` are F."""
        first_nonfinal = self._map.first_with(_not_final, 0)
        return first_nonfinal if first_nonfinal is not None else self.horizon()

    def horizon(self) -> Tick:
        """One past the last non-Q tick (0 when the stream is empty)."""
        span = self._map.span()
        return span.stop if span is not None else 0

    def doubt_horizon(self) -> Tick:
        """The first Q tick.

        All ticks below the doubt horizon are D or F, so D messages below
        it may be delivered in order (paper section 2.3).
        """
        first_q = self._map.first_with(_is_q, 0)
        return first_q if first_q is not None else self.horizon()

    def gaps(self) -> List[TickRange]:
        """Maximal Q ranges strictly below the horizon.

        These are the gaps whose persistence triggers curiosity (GCT).
        """
        return self._map.ranges_with(_is_q, 0, self.horizon())

    def runs(self) -> Iterator[Tuple[TickRange, K]]:
        """Stored non-Q runs, in order."""
        return self._map.runs()

    def iter_runs(self, lo: Tick, hi: Tick) -> Iterator[Tuple[TickRange, K]]:
        return self._map.iter_runs(lo, hi)

    def ranges_with(
        self, pred: Callable[[K], bool], lo: Tick, hi: Tick
    ) -> List[TickRange]:
        return self._map.ranges_with(pred, lo, hi)

    def d_ticks(self, rng: TickRange) -> List[Tuple[Tick, Any]]:
        """All (tick, payload) pairs with a D value inside ``rng``."""
        out: List[Tuple[Tick, Any]] = []
        for run, value in self._map.iter_runs(rng.start, rng.stop):
            if value == K.D:
                for tick in run:
                    out.append((tick, self._payloads.get(tick)))
        return out

    def d_tick_count(self) -> int:
        return len(self._payloads)

    def run_count(self) -> int:
        """Stored non-Q runs — the stream's actual memory footprint."""
        return self._map.run_count()

    # -- accumulation (monotone up) --------------------------------------

    def accumulate_data(self, tick: Tick, payload: Any) -> bool:
        """Accumulate knowledge of a data message at ``tick``.

        Returns True when this tick's knowledge actually changed (Q -> D);
        re-receiving a known D is a no-op, and data arriving for an
        already-final tick is dropped (D + F = D* which lowers to F).
        """
        old = self._map.get(tick)
        new = _lower(k_lub(old, K.D))
        if old == K.D and new == K.D:
            return False
        if new == old:
            return False
        self._map.set_value(tick, new)
        if new == K.D:
            self._payloads[tick] = payload
            return True
        return False

    def accumulate_final(self, rng: TickRange) -> bool:
        """Accumulate finality (F) over ``rng``.

        Covers both incoming silence and final prefixes: every tick in the
        range moves up the lattice via lub with F, so Q -> F, F -> F and
        D -> D* (lowered to F, payload dropped — the data is known to be
        unneeded downstream).  Returns True when anything changed.
        """
        changed = self._map.first_with(_not_final, rng.start, rng.stop)
        if changed is None:
            return False
        if self._payloads:
            # Walk only the D runs inside the range instead of scanning
            # the whole payload dict — the pubend's bracket-finalize hot
            # loop finalizes payload-free ranges, which this makes O(log n).
            for run in self._map.ranges_with(_is_d, rng.start, rng.stop):
                for tick in run:
                    self._payloads.pop(tick, None)
        self._map.set_range(rng, K.F)
        return True

    def accumulate_silence(self, rng: TickRange) -> None:
        """Accumulate an *abstract-model* silence claim over ``rng``.

        Unlike :meth:`accumulate_final`, combining silence with existing
        data is a contradiction and raises
        :class:`~repro.core.lattice.KnowledgeConflictError`.  The operational
        protocol never sends S (silence travels as F); this entry point
        exists for the abstract model and its tests.
        """
        for run, value in list(self._map.iter_runs(rng.start, rng.stop)):
            lowered = _lower(k_lub(value, K.S))
            if lowered != value:
                self._map.set_range(run, lowered)

    # -- forgetting (monotone down) ---------------------------------------

    def forget(self, rng: TickRange) -> None:
        """Drop every tick in ``rng`` to Q (soft-state loss or discard)."""
        if self._payloads:
            for run in self._map.ranges_with(_is_d, rng.start, rng.stop):
                for tick in run:
                    self._payloads.pop(tick, None)
        self._map.clear_range(rng)

    def forget_all(self) -> None:
        """Drop the entire stream (broker crash)."""
        self._payloads.clear()
        self._map = IntervalMap(K.Q)

    def finalize(self, rng: TickRange) -> None:
        """Lower D ticks in ``rng`` to F, dropping payloads (garbage
        collection after acknowledgement).  Q ticks also become F: once a
        range is acked no knowledge about it is needed."""
        self.accumulate_final(rng)

    def check_invariants(self) -> None:
        self._map.check_invariants()
        for tick, __ in self._payloads.items():
            assert self._map.get(tick) == K.D, f"payload at non-D tick {tick}"
        for run, value in self._map.runs():
            if value == K.D:
                for tick in run:
                    assert tick in self._payloads, f"D tick {tick} without payload"


class CuriosityStream:
    """Per-tick curiosity.  Unmentioned ticks are neutral (``N``).

    ``A`` (anti-curious) is absorbing: once a tick is acknowledged it can
    never become curious again — the data was delivered (or finalized) and
    will not be needed.  ``C`` overwrites ``N`` but not ``A``.
    """

    __slots__ = ("_map",)

    def __init__(self) -> None:
        self._map: IntervalMap[C] = IntervalMap(C.N)

    def value_at(self, tick: Tick) -> C:
        return self._map.get(tick)

    def ack_prefix(self) -> Tick:
        """First tick that is not A; all ticks below it are acknowledged."""
        first = self._map.first_with(_not_acked, 0)
        if first is not None:
            return first
        span = self._map.span()
        return span.stop if span is not None else 0

    def set_ack(self, rng: TickRange) -> bool:
        """Mark ``rng`` anti-curious.  Returns True when anything changed."""
        changed = self._map.first_with(_not_acked, rng.start, rng.stop)
        if changed is None:
            return False
        self._map.set_range(rng, C.A)
        return True

    def set_curious(self, rng: TickRange) -> List[TickRange]:
        """Mark the not-yet-acknowledged, not-yet-curious parts of ``rng``
        curious.

        Returns the sub-ranges that actually transitioned (N -> C).  The
        caller uses a non-empty return to decide whether an upstream nack is
        needed — this is exactly the paper's nack-consolidation rule: "a
        nack message is propagated upstream only if some C tick accumulated
        in istream was not already C".
        """
        fresh = self._map.ranges_with(_is_neutral, rng.start, rng.stop)
        for piece in fresh:
            self._map.set_range(piece, C.C)
        return fresh

    def curious_ranges(self, rng: TickRange) -> List[TickRange]:
        """Sub-ranges of ``rng`` currently marked C."""
        return self._map.ranges_with(_is_curious, rng.start, rng.stop)

    def acked_ranges(self, rng: TickRange) -> List[TickRange]:
        """Sub-ranges of ``rng`` currently marked A."""
        return self._map.ranges_with(_is_acked, rng.start, rng.stop)

    def unacked_ranges(self, rng: TickRange) -> List[TickRange]:
        """Sub-ranges of ``rng`` not marked A (i.e. N or C)."""
        return self._map.ranges_with(_not_acked, rng.start, rng.stop)

    def clear_curious(self, rng: TickRange) -> None:
        """Lower C ticks in ``rng`` back to N (curiosity serviced; the
        downstream will re-nack if the answer is lost)."""
        for piece in self._map.ranges_with(_is_curious, rng.start, rng.stop):
            self._map.set_range(piece, C.N)

    def forget_curiosity(self) -> None:
        """Lower every C tick back to N (the "fresh nack" rule).

        The broker runs this periodically (every minimum-repetition
        interval) so that repeated nacks from the same subend are not
        swallowed by consolidation (paper section 3.1).
        """
        span = self._map.span()
        if span is None:
            return
        for rng in self._map.ranges_with(_is_curious, span.start, span.stop):
            self._map.set_range(rng, C.N)

    def forget_all(self) -> None:
        self._map = IntervalMap(C.N)

    def runs(self) -> Iterator[Tuple[TickRange, C]]:
        return self._map.runs()

    def run_count(self) -> int:
        """Stored non-N runs — the stream's actual memory footprint."""
        return self._map.run_count()

    def check_invariants(self) -> None:
        self._map.check_invariants()


class Stream:
    """A knowledge stream and a curiosity stream with the F ⇔ A linkage.

    The paper links the two: "a tick whose knowledge state becomes F is
    assigned a curiosity of A and vice-versa".  All operational stream
    state in brokers (istreams and ostreams) is a :class:`Stream` so the
    linkage cannot be forgotten at a call site.
    """

    __slots__ = ("knowledge", "curiosity")

    def __init__(self) -> None:
        self.knowledge = KnowledgeStream()
        self.curiosity = CuriosityStream()

    # -- knowledge entry points (maintain linkage) -----------------------

    def accumulate_data(self, tick: Tick, payload: Any) -> bool:
        """Accumulate a D tick; returns True when knowledge changed.

        Data arriving for an already-acknowledged tick is finalized
        immediately (it is not needed), keeping F ⇔ A.
        """
        if self.curiosity.value_at(tick) == C.A:
            self.knowledge.accumulate_final(TickRange.single(tick))
            return False
        return self.knowledge.accumulate_data(tick, payload)

    def accumulate_final(self, rng: TickRange) -> bool:
        """Accumulate F over ``rng``; the range becomes anti-curious too."""
        changed = self.knowledge.accumulate_final(rng)
        self.curiosity.set_ack(rng)
        return changed

    # -- curiosity entry points (maintain linkage) ------------------------

    def set_ack(self, rng: TickRange) -> bool:
        """Acknowledge ``rng``: curiosity A, knowledge finalized (D -> F,
        payloads dropped — this is the soft-state garbage collection)."""
        changed = self.curiosity.set_ack(rng)
        self.knowledge.finalize(rng)
        return changed

    def set_curious(self, rng: TickRange) -> List[TickRange]:
        """Mark ``rng`` curious where possible; ticks already final are
        auto-acknowledged first so they are never nacked upstream."""
        final_prefix = self.knowledge.final_prefix()
        if final_prefix > rng.start:
            covered = TickRange(rng.start, min(final_prefix, rng.stop))
            self.curiosity.set_ack(covered)
            if covered.stop >= rng.stop:
                return []
            rng = TickRange(covered.stop, rng.stop)
        return self.curiosity.set_curious(rng)

    def forget_all(self) -> None:
        self.knowledge.forget_all()
        self.curiosity.forget_all()

    def check_invariants(self) -> None:
        self.knowledge.check_invariants()
        self.curiosity.check_invariants()
