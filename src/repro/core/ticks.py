"""Tick arithmetic for knowledge and curiosity streams.

Time in the Gryphon guaranteed-delivery model is discretized into *ticks*.
A tick is represented here as a plain ``int`` (we use integer milliseconds
of virtual time throughout the system, but nothing in this module assumes
a unit).  Streams are keyed by tick, and protocol messages carry ranges of
ticks, so this module provides a small half-open range type,
:class:`TickRange`, used everywhere ranges appear.

Half-open ranges ``[start, stop)`` are used because they compose without
off-by-one adjustments: adjacent ranges ``[a, b)`` and ``[b, c)`` cover
``[a, c)`` exactly.  The paper's prose speaks of inclusive timestamps
("all ticks [0, T]"); at API boundaries that accept an inclusive
timestamp we convert with ``TickRange(0, T + 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

__all__ = [
    "Tick",
    "TickRange",
    "merge_ranges",
    "subtract_ranges",
    "TICKS_PER_SECOND",
    "tick_of_time",
    "time_of_tick",
]

#: Tick granularity: ticks are integer milliseconds of (virtual) time.
TICKS_PER_SECOND = 1000


def tick_of_time(seconds: float) -> int:
    """The tick containing wall/simulated time ``seconds``."""
    return int(seconds * TICKS_PER_SECOND)


def time_of_tick(tick: int) -> float:
    """The start time, in seconds, of ``tick``."""
    return tick / TICKS_PER_SECOND

#: Type alias for a tick value.  Ticks are integers; the protocol only
#: requires that they be totally ordered and dense enough for each message
#: to receive a distinct tick.
Tick = int


@dataclass(frozen=True, order=True)
class TickRange:
    """A half-open, non-empty range of ticks ``[start, stop)``.

    Instances are immutable and ordered lexicographically by
    ``(start, stop)``, which sorts disjoint ranges by position.
    """

    start: Tick
    stop: Tick

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise ValueError(
                f"TickRange requires start < stop, got [{self.start}, {self.stop})"
            )

    def __len__(self) -> int:
        return self.stop - self.start

    def __contains__(self, tick: Tick) -> bool:
        return self.start <= tick < self.stop

    def __iter__(self) -> Iterator[Tick]:
        return iter(range(self.start, self.stop))

    @classmethod
    def single(cls, tick: Tick) -> "TickRange":
        """The range covering exactly one tick."""
        return cls(tick, tick + 1)

    @classmethod
    def inclusive(cls, first: Tick, last: Tick) -> "TickRange":
        """The range covering ``first`` through ``last`` inclusive."""
        return cls(first, last + 1)

    def overlaps(self, other: "TickRange") -> bool:
        """True when the two ranges share at least one tick."""
        return self.start < other.stop and other.start < self.stop

    def touches(self, other: "TickRange") -> bool:
        """True when the ranges overlap or are exactly adjacent."""
        return self.start <= other.stop and other.start <= self.stop

    def intersection(self, other: "TickRange") -> Optional["TickRange"]:
        """The overlapping sub-range, or ``None`` when disjoint."""
        start = max(self.start, other.start)
        stop = min(self.stop, other.stop)
        if start < stop:
            return TickRange(start, stop)
        return None

    def union(self, other: "TickRange") -> "TickRange":
        """The covering range of two touching ranges.

        Raises :class:`ValueError` if the ranges neither overlap nor are
        adjacent (their union would not be a single range).
        """
        if not self.touches(other):
            raise ValueError(f"{self} and {other} are not contiguous")
        return TickRange(min(self.start, other.start), max(self.stop, other.stop))

    def subtract(self, other: "TickRange") -> List["TickRange"]:
        """The parts of this range not covered by ``other`` (0-2 pieces)."""
        pieces: List[TickRange] = []
        if other.start > self.start:
            pieces.append(TickRange(self.start, min(self.stop, other.start)))
        if other.stop < self.stop:
            pieces.append(TickRange(max(self.start, other.stop), self.stop))
        # When other fully covers self, both conditions fail: no pieces.
        # When disjoint, exactly one condition yields the full range and the
        # other yields nothing or the full range; normalize below.
        merged = merge_ranges(pieces)
        return merged

    def split(self, max_len: int) -> List["TickRange"]:
        """Chop this range into pieces of at most ``max_len`` ticks.

        Used by subends to chop large nack ranges so that the loss of a
        single nack message has a small effect (paper section 4.2).
        """
        if max_len <= 0:
            raise ValueError("max_len must be positive")
        pieces = []
        start = self.start
        while start < self.stop:
            stop = min(start + max_len, self.stop)
            pieces.append(TickRange(start, stop))
            start = stop
        return pieces

    def __str__(self) -> str:
        return f"[{self.start},{self.stop})"


def merge_ranges(ranges: Iterable[TickRange]) -> List[TickRange]:
    """Normalize ranges: sorted, disjoint, with touching ranges coalesced."""
    ordered = sorted(ranges)
    merged: List[TickRange] = []
    for rng in ordered:
        if merged and merged[-1].touches(rng):
            merged[-1] = merged[-1].union(rng)
        else:
            merged.append(rng)
    return merged


def subtract_ranges(
    base: Iterable[TickRange], removals: Iterable[TickRange]
) -> List[TickRange]:
    """All ticks in ``base`` not covered by any range in ``removals``."""
    result = merge_ranges(base)
    for removal in merge_ranges(removals):
        next_result: List[TickRange] = []
        for rng in result:
            if rng.overlaps(removal):
                next_result.extend(rng.subtract(removal))
            else:
                next_result.append(rng)
        result = next_result
    return result
