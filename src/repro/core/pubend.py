"""Pubend: the source node of a knowledge tree.

A pubend (publisher endpoint, paper section 2.2) consolidates one or more
publishers into a single knowledge stream of the form ``F* [D|F]* Q*``:
an acknowledged past, an unacknowledged present, and an unknown future.

Responsibilities implemented here:

* **Tick assignment** — each published message receives a unique tick;
  ticks of one pubend are congruent to its *slot* modulo the slot count,
  so that pubend streams that are ever merged never place different data
  on the same tick (paper section 2.2).
* **Logging** — the message is appended to stable storage *before* being
  considered published; the hosting broker schedules the downstream send
  after the log's commit latency.
* **Bracketing silence** — publishing tick ``t`` finalizes all ticks since
  the previous D, so the emitted data message has the paper's
  ``F*Q*F*DF*Q*`` form and downstream doubt horizons advance continuously.
* **Idle silence** — after ``silence_interval`` without publications a
  range of Q ticks is changed to F (optionally broadcast downstream —
  pre-assigning F improves downstream merges, see Aguilera & Strom 2000).
* **Pubend-driven liveness (AET)** — ticks older than ``now - AET`` are
  expected to be acknowledged; paths that have not acked receive an
  AckExpected probe.
* **Crash recovery** — the knowledge stream is rebuilt by replaying the
  log; the durable truncation point seeds the final prefix.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..obs.instruments import NULL_INSTRUMENTS
from ..storage.log import LogEntry, MessageLog
from .lattice import K
from .messages import AckExpectedMessage, DataTick, KnowledgeMessage
from .streams import KnowledgeStream
from .ticks import Tick, TickRange, tick_of_time

__all__ = ["Pubend"]


class Pubend:
    """State and pure protocol logic of one pubend.

    The hosting broker (PHB) owns timers and transport; this class only
    assigns ticks, maintains the root knowledge stream, talks to the log,
    and builds protocol messages.
    """

    def __init__(
        self,
        pubend_id: str,
        log: MessageLog,
        slot: int = 0,
        n_slots: int = 1,
        aet: float = 10.0,
        silence_interval: float = 0.5,
        preassign_window: float = 0.0,
        instruments: Any = NULL_INSTRUMENTS,
    ):
        if not 0 <= slot < n_slots:
            raise ValueError(f"slot {slot} out of range for n_slots {n_slots}")
        if preassign_window < 0:
            raise ValueError("preassign_window must be non-negative")
        self.pubend_id = pubend_id
        self.log = log
        self.slot = slot
        self.n_slots = n_slots
        self.aet = aet
        self.silence_interval = silence_interval
        #: Pre-assigned finality (paper section 2.2, after Aguilera &
        #: Strom 2000): a pubend that knows its expected publication
        #: period can assign F to that many seconds of *future* ticks
        #: with every message, so downstream merges never wait on it.
        #: The trade-off: a message arriving earlier than expected is
        #: stamped at the end of the pre-assigned window (ticks must stay
        #: monotone past finalized ranges).
        self.preassign_window = preassign_window
        #: Root knowledge stream (``F* [D|F]* Q*``).
        self.stream = KnowledgeStream()
        #: Prefix acknowledged by *all* downstream paths (soft state;
        #: rebuilt from the durable truncation point after a crash).
        self.acked_up_to: Tick = 0
        self.publish_count = 0
        #: Last time this pubend emitted anything — data or silence.
        #: Liveness detectors compare this against ``silence_interval``:
        #: a healthy idle pubend refreshes it via :meth:`maybe_silence`.
        self.last_emission: float = 0.0
        #: Oracle hook: called as ``on_truncate(pubend_id, up_to)``
        #: *before* the stable log is truncated, so external checkers
        #: (``repro.check``) can assert that no unacked tick is about to
        #: be garbage-collected.
        self.on_truncate: Optional[Callable[[str, Tick], None]] = None
        labels = {"pubend": pubend_id}
        self._m_publishes = instruments.counter(
            "repro_pubend_publishes_total",
            help="Messages published through this pubend.",
            **labels,
        )
        self._m_log_appends = instruments.counter(
            "repro_pubend_log_appends_total",
            help="Entries appended to the pubend's stable log.",
            **labels,
        )
        self._m_log_truncated = instruments.counter(
            "repro_pubend_log_truncated_ticks_total",
            help="Ticks garbage-collected from the stable log after "
            "consolidated acks.",
            **labels,
        )
        self._m_acked_tick = instruments.gauge(
            "repro_pubend_acked_tick",
            help="Prefix of ticks acknowledged by all downstream paths.",
            **labels,
        )
        self._m_publish_failures = instruments.counter(
            "repro_pubend_publish_failures_total",
            help="Publish attempts aborted because the stable log append "
            "failed (disk full, fsync error); the tick was never "
            "advertised.",
            **labels,
        )

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def assign_tick(self, now: float) -> Tick:
        """The tick for a message published at time ``now``.

        Strictly later than every tick already known to the stream, at or
        after real time, and congruent to ``slot`` modulo ``n_slots``.
        """
        floor = max(self.stream.horizon(), tick_of_time(now))
        remainder = floor % self.n_slots
        candidate = floor + (self.slot - remainder) % self.n_slots
        if candidate < floor:  # defensive; (a - b) % n is non-negative
            candidate += self.n_slots
        return candidate

    def publish(self, payload: Any, now: float) -> KnowledgeMessage:
        """Log a publication and return its first-time data message.

        The message is durable when this returns (callers model the commit
        latency by delaying the *send*, not the append).  The returned
        message finalizes the silent range since the previous D tick and
        carries the acked prefix, giving the ``F*Q*F*DF*Q*`` form.

        The append happens *before* any stream or counter mutation: if
        stable storage fails (:class:`~repro.storage.log.LogAppendError`),
        the exception propagates with the pubend unchanged — the tick was
        never assigned to the stream, nothing is advertised downstream,
        and the publisher sees a failed attempt it may retry.
        """
        tick = self.assign_tick(now)
        prev_horizon = self.stream.horizon()
        try:
            self.log.append(LogEntry(self.pubend_id, tick, payload))
        except OSError:
            # LogAppendError (and any raw disk error): the message is not
            # published.  assign_tick is pure, so no rollback is needed.
            self._m_publish_failures.inc()
            raise
        self._m_publishes.inc()
        self._m_log_appends.inc()
        f_ranges: List[TickRange] = []
        if tick > prev_horizon:
            f_ranges.append(TickRange(prev_horizon, tick))
            self.stream.accumulate_final(f_ranges[0])
        self.stream.accumulate_data(tick, payload)
        if self.preassign_window > 0:
            future = TickRange(
                tick + 1, tick + 1 + tick_of_time(self.preassign_window)
            )
            self.stream.accumulate_final(future)
            f_ranges.append(future)
        self.publish_count += 1
        self.last_emission = now
        return KnowledgeMessage(
            pubend=self.pubend_id,
            fin_prefix=self.acked_up_to,
            f_ranges=tuple(r for r in f_ranges if r.stop > self.acked_up_to),
            data=(DataTick(tick, payload),),
        )

    # ------------------------------------------------------------------
    # Silence
    # ------------------------------------------------------------------

    def maybe_silence(self, now: float) -> Optional[KnowledgeMessage]:
        """Finalize the idle range, if long enough, and return its
        first-time silence message (``F*Q*F*Q*``).

        Returns ``None`` when the pubend has published recently.  The
        silence extends up to the current tick; :meth:`assign_tick` never
        assigns a tick below the stream horizon, so a message published
        immediately afterwards cannot collide with the silenced range.
        """
        horizon = self.stream.horizon()
        now_tick = tick_of_time(now)
        if now_tick - horizon < tick_of_time(self.silence_interval):
            return None
        rng = TickRange(horizon, now_tick)
        self.stream.accumulate_final(rng)
        self.last_emission = now
        return KnowledgeMessage(
            pubend=self.pubend_id,
            fin_prefix=self.acked_up_to,
            f_ranges=(rng,),
            data=(),
        )

    # ------------------------------------------------------------------
    # Acknowledgement and pubend-driven liveness
    # ------------------------------------------------------------------

    def record_ack(self, up_to: Tick) -> bool:
        """All downstream paths acknowledged ``[0, up_to)``.

        Finalizes the prefix, truncates the log, and returns True when the
        acked prefix advanced.  (The hosting broker calls this only after
        consolidating acks over *all* its downstream paths.)
        """
        if up_to <= self.acked_up_to:
            return False
        if self.on_truncate is not None:
            self.on_truncate(self.pubend_id, up_to)
        self._m_log_truncated.inc(up_to - self.acked_up_to)
        self.acked_up_to = up_to
        self._m_acked_tick.set(float(up_to))
        self.stream.finalize(TickRange(0, up_to))
        self.log.truncate(self.pubend_id, up_to)
        return True

    def ack_expected_tick(self, now: float) -> Optional[Tick]:
        """The AckExpected timestamp to probe with, or ``None``.

        Ticks more than AET before now are expected to be acked.  The
        probe never exceeds the stream horizon: a pubend that just
        recovered probes with the tick of the last message it logged
        before the crash (paper section 4.2, p1-crash experiment).
        """
        if self.aet == float("inf"):
            return None  # pubend-driven liveness disabled
        threshold = min(tick_of_time(now - self.aet), self.stream.horizon())
        if threshold > self.acked_up_to:
            return threshold
        return None

    def make_ack_expected(self, up_to: Tick) -> AckExpectedMessage:
        return AckExpectedMessage(pubend=self.pubend_id, up_to=up_to)

    # ------------------------------------------------------------------
    # Retransmission and recovery
    # ------------------------------------------------------------------

    def retransmission(self, ranges: List[TickRange]) -> Optional[KnowledgeMessage]:
        """A retransmitted knowledge message answering curiosity.

        The pubend is the authority: every tick below its horizon is
        either D (payload in the stream, backed by the log) or F.  Ticks
        at or above the horizon are genuinely unknown and stay Q.
        """
        data: List[DataTick] = []
        f_ranges: List[TickRange] = []
        horizon = self.stream.horizon()
        for rng in ranges:
            capped_stop = min(rng.stop, horizon)
            if capped_stop <= rng.start:
                continue
            capped = TickRange(rng.start, capped_stop)
            for run, value in self.stream.iter_runs(capped.start, capped.stop):
                if value == K.D:
                    for tick in run:
                        data.append(DataTick(tick, self.stream.payload_at(tick)))
                elif value == K.F:
                    f_ranges.append(run)
        if not data and not f_ranges:
            return None
        return KnowledgeMessage(
            pubend=self.pubend_id,
            fin_prefix=self.acked_up_to,
            f_ranges=tuple(f_ranges),
            data=tuple(sorted(data, key=lambda d: d.tick)),
            retransmit=True,
        )

    def recover(self) -> int:
        """Rebuild soft state from the log after a crash.

        Returns the number of replayed entries.  The durable truncation
        point becomes the acked prefix; gaps between logged D ticks are
        re-finalized (they were silent).
        """
        self.stream = KnowledgeStream()
        self.acked_up_to = self.log.truncated_below(self.pubend_id)
        if self.acked_up_to > 0:
            self.stream.accumulate_final(TickRange(0, self.acked_up_to))
        entries = self.log.entries(self.pubend_id)
        for entry in entries:
            horizon = self.stream.horizon()
            if entry.tick > horizon:
                self.stream.accumulate_final(TickRange(horizon, entry.tick))
            self.stream.accumulate_data(entry.tick, entry.payload)
        return len(entries)
