"""Protocol tuning parameters.

Section 3.2 of the paper describes two liveness approaches and the knobs
that select a mixture of them:

* **Subend-driven liveness**: *gap curiosity threshold* (GCT) — how long a
  gap of Q ticks may persist before the subend nacks it; *nack repetition
  threshold* (NRT) — how often unsatisfied nacks are repeated (estimated
  TCP-RTO-style from previous nack round trips, bounded below by a
  configured minimum); *delay curiosity threshold* (DCT) — how far the
  doubt horizon may trail real time before the subend nacks proactively.
* **Pubend-driven liveness**: *ack expected threshold* (AET) — how old an
  unacknowledged tick may be before the pubend probes with AckExpected.

The paper's fault-injection experiments run with ``GCT=200ms, NRT=600ms,
AET=10s, DCT=infinity`` — a mixture dominated by subend-driven liveness —
which is the default here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["LivenessParams", "INFINITY", "PAPER_FAULT_PARAMS"]

#: Convenience alias for disabling a threshold (e.g. ``dct=INFINITY``).
INFINITY = math.inf


@dataclass(frozen=True)
class LivenessParams:
    """Liveness and housekeeping intervals, in seconds (ticks are ms)."""

    #: Gap curiosity threshold: Q-gap age before the subend nacks it.
    gct: float = 0.2
    #: Minimum nack repetition interval; also the curiosity-forgetting
    #: sweep period at brokers (the "fresh nack" rule).
    nrt_min: float = 0.6
    #: Upper bound for the estimated nack repetition interval.
    nrt_max: float = 30.0
    #: Delay curiosity threshold; ``INFINITY`` disables it (paper default).
    dct: float = INFINITY
    #: Ack expected threshold for pubend-driven liveness.
    aet: float = 10.0
    #: How often the pubend checks for overdue acks.
    aet_check_interval: float = 1.0
    #: Maximum ticks (ms) per nack message: large ranges are chopped so a
    #: lost nack has a small effect (paper section 4.2).
    nack_chop: int = 500
    #: Idle time before a pubend finalizes a silent range.
    silence_interval: float = 0.5
    #: Whether first-time silence is broadcast downstream (True keeps
    #: total-order merges and idle streams advancing; False is the paper's
    #: stricter "send silence only to curious paths" rule).
    silence_broadcast: bool = True
    #: Period of broker link-status exchange within and between cells.
    link_status_interval: float = 0.5
    #: How often subends evaluate DCT and other time-based checks.
    subend_check_interval: float = 0.1
    #: Pre-assigned finality window (seconds of future ticks finalized
    #: with each publication — the Aguilera & Strom 2000 optimization for
    #: downstream merges; 0 disables it).
    preassign_window: float = 0.0
    #: Subscription propagation: subscriber-hosting brokers advertise the
    #: union of their subscriptions upstream, and edge filters prune
    #: traffic against those summaries.  Off by default — the paper's
    #: experiments configure static edge filters.
    subscription_propagation: bool = False
    #: Ablation switch: when False, brokers forward every incoming nack
    #: upstream verbatim instead of suppressing ranges already curious in
    #: the istream — disables the paper's nack-consolidation rule.
    nack_consolidation: bool = True
    #: Knowledge flush delay (seconds).  0 forwards knowledge immediately
    #: per ingested message (the historical behaviour); > 0 batches: a
    #: broker marks the (pubend, neighbor) ostream dirty and flushes one
    #: coalesced KnowledgeMessage per ostream after this delay, trading a
    #: bounded amount of propagation latency for far fewer messages (the
    #: Gryphon information-flow batching optimization).  Retransmissions
    #: answering curiosity are never delayed.
    flush_delay: float = 0.0

    def with_(self, **overrides: object) -> "LivenessParams":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)


#: The configuration used throughout the paper's failure-injection tests.
PAPER_FAULT_PARAMS = LivenessParams(gct=0.2, nrt_min=0.6, aet=10.0, dct=INFINITY)
