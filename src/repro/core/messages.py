"""Protocol messages of the guaranteed-delivery protocol.

Section 3.1 of the paper defines the downstream *knowledge messages* and
the upstream *ack* and *nack* messages, plus the pubend-driven
*AckExpected* message:

* A knowledge message has the form ``F*Q*F*DF*Q*`` (a data message) or
  ``F*Q*F*Q*`` (a silence message): a final prefix encoded as a single
  timestamp, optional explicit F runs, and — for data messages — D tick
  payloads bracketed by silence.  We generalize slightly: a message carries
  a final-prefix timestamp, a list of F ranges and a *list* of D ticks.
  First-time data messages carry exactly one D tick (the paper's form);
  retransmissions may batch several.
* Ack messages carry a single timestamp ``up_to``: ticks ``[0, up_to)``
  are acknowledged.
* Nack messages carry a list of curious tick ranges.
* AckExpected messages carry the timestamp up to which the pubend expects
  acknowledgements.

All messages are immutable values; a wire codec (plain JSON-compatible
dicts) is provided for transports that need serialization (the asyncio TCP
transport, the file log).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from .ticks import Tick, TickRange, merge_ranges

__all__ = [
    "DataTick",
    "KnowledgeMessage",
    "AckMessage",
    "NackMessage",
    "AckExpectedMessage",
    "GDMessage",
    "encode_message",
    "decode_message",
]


def _encode_payload(payload: Any) -> Any:
    """JSON-encodable form of a payload (events carry a marker)."""
    from ..matching.events import Event

    if isinstance(payload, Event):
        return {"__event__": payload.to_wire()}
    return payload


def _decode_payload(obj: Any) -> Any:
    from ..matching.events import Event

    if isinstance(obj, dict) and "__event__" in obj:
        return Event.from_wire(obj["__event__"])
    return obj


@dataclass(frozen=True, slots=True)
class DataTick:
    """A D tick and its payload (the published event content)."""

    tick: Tick
    payload: Any

    def to_wire(self) -> Dict[str, Any]:
        return {"t": self.tick, "p": _encode_payload(self.payload)}

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "DataTick":
        return cls(tick=obj["t"], payload=_decode_payload(obj["p"]))


def _ranges_to_wire(ranges: Sequence[TickRange]) -> List[List[int]]:
    return [[r.start, r.stop] for r in ranges]


def _ranges_from_wire(obj: Sequence[Sequence[int]]) -> Tuple[TickRange, ...]:
    return tuple(TickRange(a, b) for a, b in obj)


@dataclass(frozen=True, slots=True)
class KnowledgeMessage:
    """A downstream knowledge message for one pubend's stream.

    ``fin_prefix`` asserts that all ticks ``[0, fin_prefix)`` are final.
    ``f_ranges`` asserts additional F runs (sorted, disjoint).  ``data``
    carries D ticks with payloads (sorted by tick).  ``retransmit`` marks
    messages sent in response to curiosity; first-time and retransmitted
    messages propagate differently (paper section 3.1).
    """

    pubend: str
    fin_prefix: Tick = 0
    f_ranges: Tuple[TickRange, ...] = ()
    data: Tuple[DataTick, ...] = ()
    retransmit: bool = False

    def __post_init__(self) -> None:
        ticks = [d.tick for d in self.data]
        if ticks != sorted(ticks):
            raise ValueError("data ticks must be sorted")
        if any(t < self.fin_prefix for t in ticks):
            raise ValueError("data tick inside final prefix")

    @property
    def is_silence(self) -> bool:
        """True for pure silence messages (``F*Q*F*Q*``: no D ticks)."""
        return not self.data

    @property
    def data_ticks(self) -> List[Tick]:
        return [d.tick for d in self.data]

    def max_tick(self) -> Tick:
        """One past the newest tick mentioned by this message."""
        hi = self.fin_prefix
        for rng in self.f_ranges:
            hi = max(hi, rng.stop)
        if self.data:
            hi = max(hi, self.data[-1].tick + 1)
        return hi

    def without_data(self) -> "KnowledgeMessage":
        """This message's silence skeleton (a filtered-out data message
        becomes a first-time silence message, paper section 3.1)."""
        return KnowledgeMessage(
            pubend=self.pubend,
            fin_prefix=self.fin_prefix,
            f_ranges=self.f_ranges,
            data=(),
            retransmit=self.retransmit,
        )

    def replace_data(self, data: Sequence[DataTick]) -> "KnowledgeMessage":
        return KnowledgeMessage(
            pubend=self.pubend,
            fin_prefix=self.fin_prefix,
            f_ranges=self.f_ranges,
            data=tuple(sorted(data, key=lambda d: d.tick)),
            retransmit=self.retransmit,
        )

    def merged_f_ranges(self) -> List[TickRange]:
        """All F ranges asserted by the message, final prefix included."""
        ranges = list(self.f_ranges)
        if self.fin_prefix > 0:
            ranges.append(TickRange(0, self.fin_prefix))
        return merge_ranges(ranges)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "kind": "knowledge",
            "pubend": self.pubend,
            "fin": self.fin_prefix,
            "f": _ranges_to_wire(self.f_ranges),
            "d": [d.to_wire() for d in self.data],
            "rtx": self.retransmit,
        }

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "KnowledgeMessage":
        return cls(
            pubend=obj["pubend"],
            fin_prefix=obj["fin"],
            f_ranges=_ranges_from_wire(obj["f"]),
            data=tuple(DataTick.from_wire(d) for d in obj["d"]),
            retransmit=obj["rtx"],
        )


@dataclass(frozen=True, slots=True)
class AckMessage:
    """Upstream acknowledgement: ticks ``[0, up_to)`` are anti-curious."""

    pubend: str
    up_to: Tick

    def to_wire(self) -> Dict[str, Any]:
        return {"kind": "ack", "pubend": self.pubend, "up_to": self.up_to}

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "AckMessage":
        return cls(pubend=obj["pubend"], up_to=obj["up_to"])


@dataclass(frozen=True, slots=True)
class NackMessage:
    """Upstream curiosity: the listed tick ranges are needed urgently."""

    pubend: str
    ranges: Tuple[TickRange, ...]

    def __post_init__(self) -> None:
        if not self.ranges:
            raise ValueError("nack must carry at least one range")

    def tick_count(self) -> int:
        """Total number of ticks nacked — the paper's *nack range* metric."""
        return sum(len(r) for r in self.ranges)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "kind": "nack",
            "pubend": self.pubend,
            "ranges": _ranges_to_wire(self.ranges),
        }

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "NackMessage":
        return cls(pubend=obj["pubend"], ranges=_ranges_from_wire(obj["ranges"]))


@dataclass(frozen=True, slots=True)
class AckExpectedMessage:
    """Pubend-driven liveness probe: the pubend expects acks up to
    ``up_to``; receivers nack any Q ticks below it (paper section 3.2)."""

    pubend: str
    up_to: Tick

    def to_wire(self) -> Dict[str, Any]:
        return {"kind": "ack_expected", "pubend": self.pubend, "up_to": self.up_to}

    @classmethod
    def from_wire(cls, obj: Dict[str, Any]) -> "AckExpectedMessage":
        return cls(pubend=obj["pubend"], up_to=obj["up_to"])


#: Union of all GD protocol message types.
GDMessage = (KnowledgeMessage, AckMessage, NackMessage, AckExpectedMessage)


_DECODERS = {
    "knowledge": KnowledgeMessage.from_wire,
    "ack": AckMessage.from_wire,
    "nack": NackMessage.from_wire,
    "ack_expected": AckExpectedMessage.from_wire,
}


def register_message_kind(kind: str, decoder: Any) -> None:
    """Extend the wire codec with an additional envelope payload kind
    (used by higher layers, e.g. subscription-summary control messages)."""
    _DECODERS[kind] = decoder


def encode_message(message: Any) -> Dict[str, Any]:
    """Encode any GD message to a JSON-compatible dict."""
    return message.to_wire()


def decode_message(obj: Dict[str, Any]) -> Any:
    """Decode a dict produced by :func:`encode_message`."""
    try:
        decoder = _DECODERS[obj["kind"]]
    except KeyError as exc:
        raise ValueError(f"unknown message kind: {obj.get('kind')!r}") from exc
    return decoder(obj)
