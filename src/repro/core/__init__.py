"""The knowledge/curiosity model and endpoint protocol logic."""

from .config import INFINITY, PAPER_FAULT_PARAMS, LivenessParams
from .edges import FilterEdge, MergeView, MATCH_ALL
from .intervals import IntervalMap
from .lattice import C, K, KnowledgeConflictError, c_meet, k_is_final, k_lub
from .messages import (
    AckExpectedMessage,
    AckMessage,
    DataTick,
    KnowledgeMessage,
    NackMessage,
    decode_message,
    encode_message,
)
from .pubend import Pubend
from .rto import RtoEstimator
from .streams import CuriosityStream, KnowledgeStream, Stream
from .subend import Delivery, SubendManager, SubendServices, Subscription
from .ticks import TICKS_PER_SECOND, Tick, TickRange, merge_ranges, subtract_ranges
