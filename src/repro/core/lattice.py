"""The knowledge and curiosity lattices of the Gryphon GD model.

Section 2.1 of the paper defines, for every tick, a *knowledge* value and
a *curiosity* value.

Knowledge values form the lattice of Figure 2::

              E            (error: top, never reached in a correct run)
            /   \\
          D*     S
           \\   /
             F              <- wait, see below
          ...

Careful reading of the paper gives the following order (higher = more
knowledge). ``Q`` is the bottom (no knowledge).  ``D`` (data published at
this tick) and ``S`` (silence: nothing published, or filtered out en
route) are incomparable, one step above ``Q``.  ``F`` ("final" /
don't-care) is *above* both ``D*`` (data delivered everywhere downstream)
and ``S`` in the accumulation order used here: the paper says "any S or
D* tick is automatically lowered to F" by forgetting, and describes F as
the *greatest lower bound* of D* and S — i.e. F retains exactly the
information common to both ("no data message is needed downstream").
For the purpose of *accumulation* (least upper bound of old and new
values) we therefore order the lattice as::

                E
             /     \\
           D*       |
            |       |
            D       S
             \\     /
                Q

    with F placed as a separate "finalized" element satisfying
    lub(F, Q) = F,  lub(F, S) = F,  lub(F, D) = D*  (data that is known
    and known-not-needed), lub(F, D*) = D*, lub(F, F) = F.

In other words: combining knowledge that a tick is final with knowledge
that it carried data yields D* (published *and* no longer needed); two
contradictory data values at the same tick yield ``E``.  This matches the
operational rules in sections 2.1 and 3.1 of the paper: a correct system
never materializes E, D ticks may be finalized into D*/F once acked, and
silence and finality merge into finality.

Curiosity values are ``C`` (curious), ``N`` (neutral, the default) and
``A`` (anti-curious / acked), with the upstream consolidation rule that a
tick becomes A only when *all* downstream streams are A for it.
"""

from __future__ import annotations

import enum
from typing import Tuple

__all__ = ["K", "C", "k_lub", "k_is_final", "c_meet", "KnowledgeConflictError"]


class KnowledgeConflictError(Exception):
    """Raised when knowledge accumulation would produce the error value E.

    A correct implementation never reaches E (paper section 2.1); reaching
    it means two different data messages were assigned the same tick, or
    data was combined with a contradictory silence claim.  We surface this
    loudly instead of silently storing E.
    """


class K(enum.IntEnum):
    """Knowledge value of a tick.

    The integer values encode *rank* for cheap monotonicity checks; lattice
    joins go through :func:`k_lub`, not ``max``, because D and S (and D*
    and F) are incomparable or specially related.
    """

    #: No knowledge about this tick.
    Q = 0
    #: A data message was published at this tick (payload travels alongside).
    D = 2
    #: Silence: no message at this tick, or it was filtered out upstream.
    S = 1
    #: Final / don't-care: no data is needed downstream for this tick.
    F = 3
    #: Published and fully delivered downstream; no longer needed.
    DSTAR = 4
    #: Error: must never be materialized.
    E = 5

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class C(enum.IntEnum):
    """Curiosity value of a tick."""

    #: Anti-curious / acknowledged: no downstream subscriber needs this tick.
    A = 0
    #: Neutral (default): knowledge may be sent but need not be re-sent.
    N = 1
    #: Curious: some downstream subscriber urgently needs this tick's knowledge.
    C = 2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


# Least-upper-bound table for knowledge accumulation.  Symmetric by
# construction (we canonicalize the argument order below).
_LUB: dict = {
    (K.Q, K.Q): K.Q,
    (K.Q, K.S): K.S,
    (K.Q, K.D): K.D,
    (K.Q, K.F): K.F,
    (K.Q, K.DSTAR): K.DSTAR,
    (K.S, K.S): K.S,
    (K.S, K.D): K.E,  # contradictory: silence vs data at the same tick
    (K.S, K.F): K.F,
    (K.S, K.DSTAR): K.E,
    (K.D, K.D): K.D,  # same tick, same data (callers verify payload equality)
    (K.D, K.F): K.DSTAR,  # data + known-not-needed => delivered-everywhere
    (K.D, K.DSTAR): K.DSTAR,
    (K.F, K.F): K.F,
    (K.F, K.DSTAR): K.DSTAR,
    (K.DSTAR, K.DSTAR): K.DSTAR,
}


def k_lub(a: K, b: K) -> K:
    """Least upper bound of two knowledge values (knowledge accumulation).

    Raises :class:`KnowledgeConflictError` when the join is the error
    element E — i.e. when silence and data are asserted for the same tick.
    A tick that is S at one stream and D at another *upstream-downstream*
    pair is normal (the filter turned D into F/S for a non-matching path),
    but a single stream must never accumulate both.
    """
    if a == K.E or b == K.E:
        raise KnowledgeConflictError(f"error element in join: {a!r} | {b!r}")
    key: Tuple[K, K] = (a, b) if (a, b) in _LUB else (b, a)
    result = _LUB[key]
    if result == K.E:
        raise KnowledgeConflictError(f"conflicting knowledge: {a!r} | {b!r}")
    return result


def k_is_final(value: K) -> bool:
    """True for ticks whose data is known to be unneeded downstream.

    Final ticks (F, D*, and S-once-lowered) are exactly the ticks whose
    curiosity is forced to A (paper: "a tick whose knowledge state becomes
    F is assigned a curiosity of A and vice-versa").  In the implemented
    protocol S and D* ticks are automatically lowered to F, so testing for
    membership in {S, F, DSTAR} identifies "effectively final" knowledge.
    """
    return value in (K.F, K.DSTAR, K.S)


def c_meet(a: C, b: C) -> C:
    """Combine curiosity demands from multiple downstream consumers.

    A tick is anti-curious only if *all* downstream consumers are
    anti-curious; it is curious if *any* consumer is curious.  That is the
    maximum in the order A < N < C.
    """
    return C(max(a, b))
