"""Content-based subscription language and matching engines."""

from .ast import (
    And,
    Comparison,
    Exists,
    FalseP,
    Not,
    Or,
    Predicate,
    TrueP,
    conjoin,
    disjoin,
    predicate_from_wire,
    predicate_to_wire,
)
from .covering import covers, summarize_subscriptions
from .engine import BruteForceMatcher, IndexedMatcher, Matcher
from .tree import MatchingTree
from .events import Event
from .parser import ParseError, parse
