"""Parser for the subscription predicate language.

Grammar (precedence low to high: ``or`` < ``and`` < ``not``)::

    expr     := term ('or' term)*
    term     := factor ('and' factor)*
    factor   := 'not' factor | '(' expr ')' | atom
    atom     := 'true' | 'false'
              | 'exists' IDENT
              | IDENT OP literal
    OP       := '=' | '!=' | '<' | '<=' | '>' | '>='
    literal  := NUMBER | STRING | 'true' | 'false'

Identifiers are ``[A-Za-z_][A-Za-z0-9_.]*``; strings are single-quoted
with ``''`` escaping a quote; numbers are ints or floats.  Keywords are
case-insensitive; attribute names are case-sensitive.

Example::

    >>> parse("Loc = 'NY' and p > 3")
    And(terms=(Comparison(attr='Loc', op='=', value='NY'),
               Comparison(attr='p', op='>', value=3)))
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Union

from .ast import (
    And,
    Comparison,
    Exists,
    FalseP,
    Not,
    Or,
    Predicate,
    TrueP,
)

__all__ = ["parse", "ParseError"]


class ParseError(ValueError):
    """A syntax error in a subscription string, with position info."""

    def __init__(self, message: str, position: int, text: str):
        super().__init__(f"{message} at position {position}: {text!r}")
        self.position = position
        self.text = text


class _Token(NamedTuple):
    kind: str
    value: Union[str, int, float, bool]
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<float>-?\d+\.\d+(?:[eE][-+]?\d+)?|-?\d+[eE][-+]?\d+)
  | (?P<int>-?\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "true", "false", "exists"}


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError("unexpected character", position, text)
        kind = match.lastgroup
        raw = match.group()
        if kind == "ws":
            pass
        elif kind == "float":
            tokens.append(_Token("literal", float(raw), position))
        elif kind == "int":
            tokens.append(_Token("literal", int(raw), position))
        elif kind == "string":
            tokens.append(_Token("literal", raw[1:-1].replace("''", "'"), position))
        elif kind == "ident":
            lowered = raw.lower()
            if lowered in _KEYWORDS:
                tokens.append(_Token(lowered, lowered, position))
            else:
                tokens.append(_Token("ident", raw, position))
        else:
            tokens.append(_Token(kind, raw, position))
        position = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    @property
    def current(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.current
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        if self.current.kind != kind:
            raise ParseError(
                f"expected {kind}, found {self.current.kind}",
                self.current.position,
                self.text,
            )
        return self.advance()

    def parse(self) -> Predicate:
        result = self.expr()
        if self.current.kind != "eof":
            raise ParseError(
                f"trailing input ({self.current.kind})",
                self.current.position,
                self.text,
            )
        return result

    def expr(self) -> Predicate:
        terms = [self.term()]
        while self.current.kind == "or":
            self.advance()
            terms.append(self.term())
        if len(terms) == 1:
            return terms[0]
        return Or(tuple(terms))

    def term(self) -> Predicate:
        factors = [self.factor()]
        while self.current.kind == "and":
            self.advance()
            factors.append(self.factor())
        if len(factors) == 1:
            return factors[0]
        return And(tuple(factors))

    def factor(self) -> Predicate:
        token = self.current
        if token.kind == "not":
            self.advance()
            return Not(self.factor())
        if token.kind == "lparen":
            self.advance()
            inner = self.expr()
            self.expect("rparen")
            return inner
        return self.atom()

    def atom(self) -> Predicate:
        token = self.current
        if token.kind == "true":
            self.advance()
            return TrueP()
        if token.kind == "false":
            self.advance()
            return FalseP()
        if token.kind == "exists":
            self.advance()
            ident = self.expect("ident")
            return Exists(str(ident.value))
        if token.kind == "ident":
            self.advance()
            op = self.expect("op")
            literal = self.literal()
            return Comparison(str(token.value), str(op.value), literal)
        raise ParseError(
            f"expected predicate, found {token.kind}", token.position, self.text
        )

    def literal(self) -> Union[int, float, str, bool]:
        token = self.current
        if token.kind == "literal":
            self.advance()
            return token.value
        if token.kind in ("true", "false"):
            self.advance()
            return token.kind == "true"
        raise ParseError(
            f"expected literal, found {token.kind}", token.position, self.text
        )


def parse(text: str) -> Predicate:
    """Parse a subscription string into a :class:`Predicate`.

    Raises :class:`ParseError` with position information on bad input.
    """
    stripped = text.strip()
    if not stripped:
        return TrueP()
    return _Parser(stripped).parse()
