"""Event (published message content) model.

Gryphon is *content-based*: subscriptions are predicates over the
attributes of published events rather than topic names (though a topic
can simply be an attribute).  An :class:`Event` is an immutable set of
named attributes with scalar values (numbers, strings, booleans), plus an
optional opaque body.

Events serialize to plain dicts so they can ride inside
:class:`~repro.core.messages.DataTick` payloads across any transport.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional, Union

__all__ = ["Event", "AttributeValue"]

#: Scalar attribute value types supported by the subscription language.
AttributeValue = Union[int, float, str, bool]

_ALLOWED_TYPES = (int, float, str, bool)


class Event(Mapping[str, AttributeValue]):
    """An immutable published message: named attributes plus a body.

    Behaves as a read-only mapping of its attributes::

        >>> e = Event({"topic": "trades", "sym": "IBM", "price": 104.5})
        >>> e["sym"]
        'IBM'
        >>> "volume" in e
        False
    """

    __slots__ = ("_attributes", "_body", "_hash")

    def __init__(
        self,
        attributes: Mapping[str, AttributeValue],
        body: Optional[str] = None,
    ):
        for name, value in attributes.items():
            if not isinstance(name, str):
                raise TypeError(f"attribute name must be str, got {name!r}")
            if not isinstance(value, _ALLOWED_TYPES):
                raise TypeError(
                    f"attribute {name!r} has unsupported type {type(value).__name__}"
                )
        self._attributes: Dict[str, AttributeValue] = dict(attributes)
        self._body = body
        self._hash: Optional[int] = None

    # -- Mapping interface ------------------------------------------------

    def __getitem__(self, name: str) -> AttributeValue:
        return self._attributes[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    # -- identity ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self._attributes == other._attributes and self._body == other._body

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (tuple(sorted(self._attributes.items())), self._body)
            )
        return self._hash

    @property
    def body(self) -> Optional[str]:
        return self._body

    def get_attr(self, name: str) -> Optional[AttributeValue]:
        """The attribute value, or ``None`` when absent."""
        return self._attributes.get(name)

    # -- wire format --------------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        wire: Dict[str, Any] = {"a": dict(self._attributes)}
        if self._body is not None:
            wire["b"] = self._body
        return wire

    @classmethod
    def from_wire(cls, obj: Any) -> "Event":
        """Decode an event from its wire dict.

        Payloads that are not wire-format events (plain test payloads)
        raise ``TypeError``/``KeyError``; use :meth:`coerce` for a lenient
        version.
        """
        return cls(obj["a"], obj.get("b"))

    @classmethod
    def coerce(cls, payload: Any) -> Optional["Event"]:
        """Best-effort conversion of an arbitrary payload to an event."""
        if isinstance(payload, Event):
            return payload
        if isinstance(payload, dict):
            if "a" in payload and isinstance(payload["a"], dict):
                try:
                    return cls.from_wire(payload)
                except (TypeError, KeyError):
                    pass
            try:
                return cls(payload)
            except TypeError:
                return None
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        attrs = ", ".join(f"{k}={v!r}" for k, v in sorted(self._attributes.items()))
        return f"Event({attrs})"
