"""Predicate AST for content-based subscriptions.

A subscription is a boolean predicate over event attributes, e.g.
``Loc = 'NY' and p > 3`` (the example of Figure 1 in the paper).  The AST
supports comparisons on scalar attributes, presence tests, and the
boolean connectives; it evaluates against :class:`~repro.matching.events.Event`
(or any mapping), treating comparisons on missing or type-incompatible
attributes as false (three-valued logic collapsed to false, the common
choice in content-based systems).

Nodes are immutable, hashable values; they normalize to strings that
parse back to an equal AST (round-trip tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Mapping, Tuple, Union

__all__ = [
    "Predicate",
    "Comparison",
    "Exists",
    "And",
    "Or",
    "Not",
    "TrueP",
    "FalseP",
    "COMPARATORS",
    "conjoin",
    "disjoin",
    "predicate_to_wire",
    "predicate_from_wire",
]

_Scalar = Union[int, float, str, bool]

COMPARATORS = ("=", "!=", "<", "<=", ">", ">=")


def _compatible(a: Any, b: Any) -> bool:
    """Whether two scalar values may be ordered/compared.

    Numbers compare with numbers (bool excluded: ``flag = true`` should
    not match ``flag = 1`` semantics surprises); strings with strings;
    bools with bools.
    """
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return True
    return isinstance(a, str) and isinstance(b, str)


class Predicate:
    """Base class of predicate AST nodes."""

    __slots__ = ()

    def evaluate(self, event: Mapping[str, Any]) -> bool:
        raise NotImplementedError

    def __call__(self, event: Any) -> bool:
        """Predicates are callables, usable directly as filter-edge
        predicates; non-mapping payloads never match."""
        from .events import Event

        if isinstance(event, Mapping):
            return self.evaluate(event)
        coerced = Event.coerce(event)
        if coerced is None:
            return False
        return self.evaluate(coerced)

    def attributes(self) -> FrozenSet[str]:
        """All attribute names mentioned by the predicate."""
        raise NotImplementedError


@dataclass(frozen=True)
class TrueP(Predicate):
    """The always-true predicate (subscribe to everything)."""

    def evaluate(self, event: Mapping[str, Any]) -> bool:
        return True

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseP(Predicate):
    """The always-false predicate."""

    def evaluate(self, event: Mapping[str, Any]) -> bool:
        return False

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Comparison(Predicate):
    """``attr OP constant`` — the elementary content test."""

    attr: str
    op: str
    value: _Scalar

    def __post_init__(self) -> None:
        if self.op not in COMPARATORS:
            raise ValueError(f"unknown comparator {self.op!r}")

    def evaluate(self, event: Mapping[str, Any]) -> bool:
        actual = event.get(self.attr)
        if actual is None or not _compatible(actual, self.value):
            return False
        if self.op == "=":
            return actual == self.value
        if self.op == "!=":
            return actual != self.value
        if self.op == "<":
            return actual < self.value
        if self.op == "<=":
            return actual <= self.value
        if self.op == ">":
            return actual > self.value
        return actual >= self.value

    def attributes(self) -> FrozenSet[str]:
        return frozenset({self.attr})

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"{self.attr} {self.op} '{escaped}'"
        if isinstance(self.value, bool):
            return f"{self.attr} {self.op} {'true' if self.value else 'false'}"
        return f"{self.attr} {self.op} {self.value}"


@dataclass(frozen=True)
class Exists(Predicate):
    """``exists attr`` — true when the event carries the attribute."""

    attr: str

    def evaluate(self, event: Mapping[str, Any]) -> bool:
        return self.attr in event

    def attributes(self) -> FrozenSet[str]:
        return frozenset({self.attr})

    def __str__(self) -> str:
        return f"exists {self.attr}"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of two or more predicates."""

    terms: Tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if len(self.terms) < 2:
            raise ValueError("And requires at least two terms")

    def evaluate(self, event: Mapping[str, Any]) -> bool:
        return all(term.evaluate(event) for term in self.terms)

    def attributes(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for term in self.terms:
            out |= term.attributes()
        return out

    def __str__(self) -> str:
        return " and ".join(
            f"({t})" if isinstance(t, Or) else str(t) for t in self.terms
        )


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of two or more predicates."""

    terms: Tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if len(self.terms) < 2:
            raise ValueError("Or requires at least two terms")

    def evaluate(self, event: Mapping[str, Any]) -> bool:
        return any(term.evaluate(event) for term in self.terms)

    def attributes(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for term in self.terms:
            out |= term.attributes()
        return out

    def __str__(self) -> str:
        return " or ".join(str(t) for t in self.terms)


@dataclass(frozen=True)
class Not(Predicate):
    """Negation."""

    term: Predicate

    def evaluate(self, event: Mapping[str, Any]) -> bool:
        return not self.term.evaluate(event)

    def attributes(self) -> FrozenSet[str]:
        return self.term.attributes()

    def __str__(self) -> str:
        if isinstance(self.term, (And, Or)):
            return f"not ({self.term})"
        return f"not {self.term}"


def predicate_to_wire(predicate: Predicate) -> Any:
    """JSON-compatible encoding of a predicate AST.

    Used by subscription propagation: subscriber-hosting brokers ship
    their subscription summaries upstream so intermediate edge filters
    can prune traffic.
    """
    if isinstance(predicate, TrueP):
        return ["true"]
    if isinstance(predicate, FalseP):
        return ["false"]
    if isinstance(predicate, Comparison):
        return ["cmp", predicate.attr, predicate.op, predicate.value]
    if isinstance(predicate, Exists):
        return ["exists", predicate.attr]
    if isinstance(predicate, And):
        return ["and"] + [predicate_to_wire(t) for t in predicate.terms]
    if isinstance(predicate, Or):
        return ["or"] + [predicate_to_wire(t) for t in predicate.terms]
    if isinstance(predicate, Not):
        return ["not", predicate_to_wire(predicate.term)]
    raise TypeError(f"cannot encode predicate {type(predicate).__name__}")


def predicate_from_wire(obj: Any) -> Predicate:
    """Decode :func:`predicate_to_wire` output."""
    tag = obj[0]
    if tag == "true":
        return TrueP()
    if tag == "false":
        return FalseP()
    if tag == "cmp":
        return Comparison(obj[1], obj[2], obj[3])
    if tag == "exists":
        return Exists(obj[1])
    if tag == "and":
        return And(tuple(predicate_from_wire(t) for t in obj[1:]))
    if tag == "or":
        return Or(tuple(predicate_from_wire(t) for t in obj[1:]))
    if tag == "not":
        return Not(predicate_from_wire(obj[1]))
    raise ValueError(f"unknown predicate tag {tag!r}")


def conjoin(*predicates: Predicate) -> Predicate:
    """The conjunction of the given predicates, flattened and simplified.

    This implements the paper's path-predicate composition: the predicate
    of a path is "the AND of the filter predicates along the path"
    (service specification, section 2.3).
    """
    flat = []
    for predicate in predicates:
        if isinstance(predicate, TrueP):
            continue
        if isinstance(predicate, FalseP):
            return FalseP()
        if isinstance(predicate, And):
            flat.extend(predicate.terms)
        else:
            flat.append(predicate)
    if not flat:
        return TrueP()
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjoin(*predicates: Predicate) -> Predicate:
    """The disjunction of the given predicates, flattened and simplified.

    This is the subscription as seen by a subscriber reached over several
    paths: "the OR of each path predicate" (section 2.3).
    """
    flat = []
    for predicate in predicates:
        if isinstance(predicate, FalseP):
            continue
        if isinstance(predicate, TrueP):
            return TrueP()
        if isinstance(predicate, Or):
            flat.extend(predicate.terms)
        else:
            flat.append(predicate)
    if not flat:
        return FalseP()
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))
