"""The Gryphon matching tree (Aguilera, Strom, Sturman, Astley, Chandra —
"Matching events in a content-based subscription system", PODC 1999).

This is the matching algorithm the paper's reference [2] contributes and
that Gryphon's brokers used: subscriptions are conjunctions of
attribute tests arranged in a *parallel search tree*.  Each tree level
tests one attribute; a node has one child edge per constant the
subscriptions compare against, plus a ``*`` ("don't care") edge for
subscriptions that do not constrain the attribute.  Matching an event
walks every root-to-leaf path consistent with the event — following, at
each level, the edge labelled with the event's value (if present) *and*
the ``*`` edge — and collects the subscriptions at the reached leaves.
The walk's cost depends on the tree shape, not directly on the number of
subscriptions, which is what lets a broker serve tens of thousands of
subscribers (paper section 4.1).

Scope: equality tests are placed on tree edges (the PODC algorithm's
core); other elementary tests of a conjunction (ranges, ``!=``,
``exists``) become a residual predicate evaluated at the leaf; predicates
that are not flat conjunctions fall back to direct evaluation, so
correctness never depends on tree coverage.  Differential-tested against
:class:`~repro.matching.engine.BruteForceMatcher`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from .ast import Comparison, Predicate, TrueP, conjoin
from .engine import Matcher, _flatten_conjunction

__all__ = ["MatchingTree"]


def _eq_key(value: Any) -> Tuple[str, Any]:
    """Edge label with type fidelity (True must not collide with 1)."""
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, (int, float)):
        return ("n", value)
    return ("s", value)


class _Node:
    """One tree node: tests ``attribute``; edges per constant + don't-care."""

    __slots__ = ("attribute", "edges", "star", "results")

    def __init__(self, attribute: Optional[str] = None):
        #: The attribute this node tests (None for pure leaf nodes).
        self.attribute = attribute
        #: constant -> child node.
        self.edges: Dict[Tuple[str, Any], "_Node"] = {}
        #: don't-care child (subscriptions not constraining the attribute).
        self.star: Optional["_Node"] = None
        #: (sub_id, residual) pairs terminating at this node.
        self.results: List[Tuple[str, Optional[Predicate]]] = []


class MatchingTree(Matcher):
    """Parallel search tree over equality tests, PODC '99 style."""

    def __init__(self) -> None:
        self._root = _Node()
        #: Global test order: attributes in first-seen order.  (The PODC
        #: paper pre-computes a schema order; first-seen keeps the tree
        #: deterministic without requiring one.)
        self._order: List[str] = []
        self._order_index: Dict[str, int] = {}
        self._fallback: Dict[str, Predicate] = {}
        self._subs: Dict[str, Predicate] = {}
        #: sub_id -> leaf node holding it (for removal).
        self._leaf_of: Dict[str, _Node] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, sub_id: str, predicate: Predicate) -> None:
        if sub_id in self._subs:
            self.remove(sub_id)
        self._subs[sub_id] = predicate
        terms = _flatten_conjunction(predicate)
        if terms is None:
            self._fallback[sub_id] = predicate
            return
        equalities: Dict[str, Any] = {}
        residual_terms: List[Predicate] = []
        for term in terms:
            if (
                isinstance(term, Comparison)
                and term.op == "="
                and term.attr not in equalities
            ):
                equalities[term.attr] = term.value
            else:
                residual_terms.append(term)
        for attr in equalities:
            if attr not in self._order_index:
                self._order_index[attr] = len(self._order)
                self._order.append(attr)
        residual = conjoin(*residual_terms) if residual_terms else None
        if isinstance(residual, TrueP):
            residual = None
        leaf = self._insert(equalities)
        leaf.results.append((sub_id, residual))
        self._leaf_of[sub_id] = leaf

    def _insert(self, equalities: Dict[str, Any]) -> _Node:
        """Walk/extend the tree along the subscription's tests.

        Levels follow the global attribute order; a subscription without
        a test at some level takes the ``*`` edge.  The walk only extends
        through levels up to the subscription's deepest tested attribute —
        deeper attributes introduced later never invalidate existing
        leaves because matching treats "no more levels" as all-``*``.
        """
        node = self._root
        deepest = max(
            (self._order_index[a] for a in equalities), default=-1
        )
        for depth in range(deepest + 1):
            attribute = self._order[depth]
            if node.attribute is None:
                node.attribute = attribute
            # Every path to a node has the same length, and the global
            # order only appends, so a node's attribute is always the
            # order entry for its depth.
            assert node.attribute == attribute, "matching-tree level skew"
            if attribute in equalities:
                key = _eq_key(equalities[attribute])
                child = node.edges.get(key)
                if child is None:
                    child = _Node()
                    node.edges[key] = child
                node = child
            else:
                if node.star is None:
                    node.star = _Node()
                node = node.star
        return node

    def remove(self, sub_id: str) -> None:
        self._subs.pop(sub_id, None)
        self._fallback.pop(sub_id, None)
        leaf = self._leaf_of.pop(sub_id, None)
        if leaf is not None:
            leaf.results = [(s, r) for (s, r) in leaf.results if s != sub_id]

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def match(self, event: Mapping[str, Any]) -> Set[str]:
        matched: Set[str] = set()
        stack: List[_Node] = [self._root]
        while stack:
            node = stack.pop()
            for sub_id, residual in node.results:
                if residual is None or residual.evaluate(event):
                    matched.add(sub_id)
            if node.attribute is None:
                continue
            value = event.get(node.attribute)
            if value is not None:
                child = node.edges.get(_eq_key(value))
                if child is not None:
                    stack.append(child)
            if node.star is not None:
                stack.append(node.star)
        for sub_id, predicate in self._fallback.items():
            if predicate.evaluate(event):
                matched.add(sub_id)
        return matched

    def __len__(self) -> int:
        return len(self._subs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def depth(self) -> int:
        """Number of attribute levels currently in the tree."""
        return len(self._order)

    def node_count(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.edges.values())
            if node.star is not None:
                stack.append(node.star)
        return count


