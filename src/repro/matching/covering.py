"""Predicate covering and subscription summarization.

Content-based routing prunes traffic by installing, on each tree edge,
a filter equivalent to the *union of all subscriptions downstream* of the
edge.  Shipping every individual subscription upstream does not scale, so
brokers summarize: drop subscriptions *covered* by broader ones and cap
the summary size (falling back to match-everything when the union is too
complex to be worth evaluating per message).

``covers(general, specific)`` is a sound, incomplete implication check:
``True`` guarantees every event matching ``specific`` matches ``general``
(so ``specific`` is redundant in a union containing ``general``);
``False`` means "could not prove it".  Soundness is what routing
correctness needs — an unproven covering only costs summary size, never a
lost message.  The check is complete for flat conjunctions of attribute
comparisons, the shape real subscription populations are dominated by.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .ast import (
    Comparison,
    Exists,
    FalseP,
    Or,
    Predicate,
    TrueP,
    disjoin,
)
from .engine import _flatten_conjunction

__all__ = ["covers", "summarize_subscriptions", "SUMMARY_MAX_TERMS"]

#: Above this many union terms a summary collapses to match-everything:
#: evaluating a huge disjunction per message costs more than the traffic
#: it would prune.
SUMMARY_MAX_TERMS = 32


def _numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class _Constraint:
    """Accumulated constraints of one attribute in a conjunction."""

    __slots__ = ("eq", "ne", "lower", "lower_strict", "upper", "upper_strict", "present")

    def __init__(self) -> None:
        self.eq: Optional[Any] = None
        self.ne: List[Any] = []
        self.lower: Optional[Any] = None  # value > / >= lower
        self.lower_strict = False
        self.upper: Optional[Any] = None  # value < / <= upper
        self.upper_strict = False
        self.present = False  # some term forces the attribute to exist

    def absorb(self, term: Predicate) -> bool:
        """Fold one elementary term in; False when the shape is unsupported."""
        if isinstance(term, Exists):
            self.present = True
            return True
        if not isinstance(term, Comparison):
            return False
        if term.op != "!=":
            self.present = True  # a satisfied comparison implies presence
        if term.op == "=":
            if self.eq is not None and self.eq != term.value:
                return True  # unsatisfiable; covered by anything
            self.eq = term.value
        elif term.op == "!=":
            self.present = True
            self.ne.append(term.value)
        elif term.op in (">", ">="):
            strict = term.op == ">"
            if self.lower is None or _tighter_lower(term.value, strict, self.lower, self.lower_strict):
                self.lower, self.lower_strict = term.value, strict
        else:  # < or <=
            strict = term.op == "<"
            if self.upper is None or _tighter_upper(term.value, strict, self.upper, self.upper_strict):
                self.upper, self.upper_strict = term.value, strict
        return True


def _tighter_lower(v1: Any, s1: bool, v2: Any, s2: bool) -> bool:
    """Is bound (v1, s1) at least as tight a lower bound as (v2, s2)?"""
    try:
        if v1 > v2:
            return True
        if v1 == v2:
            return s1 or not s2
    except TypeError:
        return False
    return False


def _tighter_upper(v1: Any, s1: bool, v2: Any, s2: bool) -> bool:
    try:
        if v1 < v2:
            return True
        if v1 == v2:
            return s1 or not s2
    except TypeError:
        return False
    return False


def _constraints_of(predicate: Predicate) -> Optional[Dict[str, _Constraint]]:
    terms = _flatten_conjunction(predicate)
    if terms is None:
        return None
    table: Dict[str, _Constraint] = {}
    for term in terms:
        attr = next(iter(term.attributes()))
        constraint = table.setdefault(attr, _Constraint())
        if not constraint.absorb(term):
            return None
    return table


def _term_implied(term: Predicate, constraints: Dict[str, _Constraint]) -> bool:
    """Does satisfying ``constraints`` guarantee ``term``?"""
    attr = next(iter(term.attributes()))
    c = constraints.get(attr)
    if c is None:
        return False  # specific does not constrain the attribute at all
    if isinstance(term, Exists):
        return c.present
    assert isinstance(term, Comparison)
    if term.op == "=":
        return c.eq is not None and c.eq == term.value and type(c.eq) is type(term.value)
    if term.op == "!=":
        if any(v == term.value for v in c.ne):
            return True
        if c.eq is not None and _comparable(c.eq, term.value) and c.eq != term.value:
            return True
        # A range strictly excluding the value also implies !=.
        if _numeric(term.value):
            if c.lower is not None and _numeric(c.lower):
                if c.lower > term.value or (c.lower == term.value and c.lower_strict):
                    return True
            if c.upper is not None and _numeric(c.upper):
                if c.upper < term.value or (c.upper == term.value and c.upper_strict):
                    return True
        return False
    if term.op in (">", ">="):
        strict = term.op == ">"
        if c.eq is not None:
            return _satisfies_lower(c.eq, term.value, strict)
        if c.lower is not None:
            return _tighter_lower(c.lower, c.lower_strict, term.value, strict)
        return False
    # < or <=
    strict = term.op == "<"
    if c.eq is not None:
        return _satisfies_upper(c.eq, term.value, strict)
    if c.upper is not None:
        return _tighter_upper(c.upper, c.upper_strict, term.value, strict)
    return False


def _satisfies_lower(value: Any, bound: Any, strict: bool) -> bool:
    if not _comparable(value, bound):
        return False
    return value > bound or (not strict and value == bound)


def _satisfies_upper(value: Any, bound: Any, strict: bool) -> bool:
    if not _comparable(value, bound):
        return False
    return value < bound or (not strict and value == bound)


def _comparable(a: Any, b: Any) -> bool:
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if _numeric(a) and _numeric(b):
        return True
    return isinstance(a, str) and isinstance(b, str)


def covers(general: Predicate, specific: Predicate) -> bool:
    """Sound implication check: every event matching ``specific`` matches
    ``general``.  ``False`` means "not proven", not "disproven"."""
    if isinstance(general, TrueP) or isinstance(specific, FalseP):
        return True
    if isinstance(general, Or):
        return any(covers(term, specific) for term in general.terms)
    if isinstance(specific, Or):
        return all(covers(general, term) for term in specific.terms)
    general_terms = _flatten_conjunction(general)
    constraints = _constraints_of(specific)
    if general_terms is None or constraints is None:
        return _syntactically_equal(general, specific)
    return all(_term_implied(term, constraints) for term in general_terms)


def _syntactically_equal(a: Predicate, b: Predicate) -> bool:
    return a == b


def summarize_subscriptions(
    predicates: Sequence[Predicate], max_terms: int = SUMMARY_MAX_TERMS
) -> Predicate:
    """The union of the given subscriptions, with covered members dropped.

    Returns ``TrueP`` when the population is empty of structure (anything
    covered everything), ``FalseP`` when there are no subscriptions, and a
    match-everything fallback when the reduced union still exceeds
    ``max_terms`` (a summary must stay cheap to evaluate and to ship).
    """
    survivors: List[Predicate] = []
    for predicate in predicates:
        if isinstance(predicate, FalseP):
            continue
        if any(covers(kept, predicate) for kept in survivors):
            continue
        survivors = [
            kept for kept in survivors if not covers(predicate, kept)
        ]
        survivors.append(predicate)
        if isinstance(predicate, TrueP):
            return TrueP()
    if not survivors:
        return FalseP()
    if len(survivors) > max_terms:
        return TrueP()
    return disjoin(*survivors)
