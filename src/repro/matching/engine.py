"""Matching engines: which subscriptions match an event?

Brokers must match each published event against very large subscription
sets (the paper's SHB serves up to 16000 subscribers).  Two engines are
provided:

* :class:`BruteForceMatcher` — evaluates every predicate; the obviously
  correct baseline.
* :class:`IndexedMatcher` — a counting matcher in the spirit of the
  Gryphon matching work (Aguilera et al., PODC '99): conjunctions of
  attribute comparisons are decomposed into elementary tests indexed per
  attribute (hash index for equality, sorted threshold lists for ordering
  tests); an event touches only the indexes of attributes it carries, and
  a subscription matches when *all* of its tests are satisfied (counting).
  Predicates that are not flat conjunctions fall back to direct
  evaluation.

Both engines implement the same interface and are differential-tested
against each other.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections import OrderedDict, defaultdict
from typing import Any, Dict, FrozenSet, Iterator, List, Mapping, Optional, Set, Tuple

from .ast import And, Comparison, Exists, Predicate, TrueP

__all__ = ["Matcher", "BruteForceMatcher", "IndexedMatcher"]


class Matcher:
    """Interface: a mutable set of named subscriptions, matched in bulk."""

    def add(self, sub_id: str, predicate: Predicate) -> None:
        raise NotImplementedError

    def remove(self, sub_id: str) -> None:
        raise NotImplementedError

    def match(self, event: Mapping[str, Any]) -> Set[str]:
        """IDs of all subscriptions whose predicate the event satisfies."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class BruteForceMatcher(Matcher):
    """Evaluate every predicate against every event."""

    def __init__(self) -> None:
        self._subs: Dict[str, Predicate] = {}

    def add(self, sub_id: str, predicate: Predicate) -> None:
        self._subs[sub_id] = predicate

    def remove(self, sub_id: str) -> None:
        self._subs.pop(sub_id, None)

    def match(self, event: Mapping[str, Any]) -> Set[str]:
        return {
            sub_id
            for sub_id, predicate in self._subs.items()
            if predicate.evaluate(event)
        }

    def __len__(self) -> int:
        return len(self._subs)


def _flatten_conjunction(predicate: Predicate) -> Optional[List[Predicate]]:
    """The elementary terms of a flat conjunction, or ``None`` when the
    predicate has any other shape (Or / Not / nesting)."""
    if isinstance(predicate, (Comparison, Exists)):
        return [predicate]
    if isinstance(predicate, TrueP):
        return []
    if isinstance(predicate, And):
        terms: List[Predicate] = []
        for term in predicate.terms:
            if isinstance(term, (Comparison, Exists)):
                terms.append(term)
            else:
                return None
        return terms
    return None


def _type_tag(value: Any) -> Optional[int]:
    """Orderable-type tag: 0 for numbers, 1 for strings, None otherwise.

    Booleans are deliberately unorderable (``flag > false`` falls back to
    direct evaluation)."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return 0
    if isinstance(value, str):
        return 1
    return None


class _AttrIndex:
    """Per-attribute index of elementary tests.

    Equality tests live in a hash index keyed by constant; ordering tests
    (<, <=, >, >=) in threshold lists sorted by ``(type_tag, threshold)``
    so that, given an event value, all satisfied tests are found with one
    bisection plus a scan of the satisfied region; ``!=`` and ``exists``
    tests are scanned directly (nearly every value satisfies them, so an
    index would not prune anything).
    """

    __slots__ = ("eq", "lt", "gt", "ne", "exists")

    def __init__(self) -> None:
        #: constant -> test ids (equality)
        self.eq: Dict[Any, List[int]] = defaultdict(list)
        #: sorted (tag, threshold, strict, test_id); satisfied when
        #: value < threshold (strict) or value <= threshold.
        self.lt: List[Tuple[int, Any, bool, int]] = []
        #: sorted likewise; satisfied when value > / >= threshold.
        self.gt: List[Tuple[int, Any, bool, int]] = []
        #: (constant, test_id) pairs for !=
        self.ne: List[Tuple[Any, int]] = []
        #: test ids for `exists attr`
        self.exists: List[int] = []

    def satisfied(self, value: Any) -> Iterator[int]:
        bucket = self.eq.get(_eq_key(value))
        if bucket is not None:
            yield from bucket
        yield from self.exists
        for other, test_id in self.ne:
            if _same_family(value, other) and value != other:
                yield test_id
        tag = _type_tag(value)
        if tag is None:
            return
        if self.lt:
            # Candidates: thresholds of the same family at or above value.
            idx = bisect_left(self.lt, (tag, value, False, -1))
            for entry_tag, threshold, strict, test_id in self.lt[idx:]:
                if entry_tag != tag:
                    break
                if value < threshold or (not strict and value == threshold):
                    yield test_id
        if self.gt:
            # Candidates: thresholds of the same family at or below value.
            idx = bisect_right(self.gt, (tag, value, True, 2**62))
            start = bisect_left(self.gt, (tag,))
            for entry_tag, threshold, strict, test_id in self.gt[start:idx]:
                if value > threshold or (not strict and value == threshold):
                    yield test_id


def _eq_key(value: Any) -> Tuple[str, Any]:
    """Equality-index key with type fidelity (True must not match 1)."""
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, (int, float)):
        return ("n", value)
    return ("s", value)


def _same_family(a: Any, b: Any) -> bool:
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return True
    return isinstance(a, str) and isinstance(b, str)


class IndexedMatcher(Matcher):
    """Counting matcher over per-attribute test indexes.

    Subscription shapes handled by the index: flat conjunctions of
    :class:`Comparison` / :class:`Exists` terms (including single terms
    and ``true``).  Anything else — Or, Not, nesting, or ordering tests
    on booleans — is kept in a fallback list and evaluated directly, so
    correctness never depends on index coverage.

    An LRU cache in front of the counting pass memoizes results by the
    event's *attribute signature*.  Workloads publishing from a small
    attribute universe (the paper's overhead experiments cycle a few
    hundred distinct group values) then pay the counting cost once per
    distinct event shape.  The signature uses :func:`_eq_key` per value,
    so ``True`` and ``1`` never share an entry; events carrying an
    unhashable value bypass the cache.  Any ``add``/``remove`` clears it.
    """

    def __init__(self, cache_size: int = 1024) -> None:
        self._indexes: Dict[str, _AttrIndex] = {}
        #: test_id -> owning subscription (None = removed, skipped lazily)
        self._test_owner: List[Optional[str]] = []
        #: sub_id -> number of tests that must all be satisfied
        self._required: Dict[str, int] = {}
        self._match_all: Set[str] = set()
        self._fallback: Dict[str, Predicate] = {}
        self._subs: Dict[str, Predicate] = {}
        self._sub_tests: Dict[str, List[int]] = {}
        #: attribute signature -> frozen match result (LRU, newest last).
        self._cache_size = cache_size
        self._cache: "OrderedDict[Tuple[Tuple[str, Tuple[str, Any]], ...], FrozenSet[str]]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    def add(self, sub_id: str, predicate: Predicate) -> None:
        self._cache.clear()
        if sub_id in self._subs:
            self.remove(sub_id)
        self._subs[sub_id] = predicate
        terms = _flatten_conjunction(predicate)
        if terms is None or any(not self._indexable(t) for t in terms):
            self._fallback[sub_id] = predicate
            return
        if not terms:
            self._match_all.add(sub_id)
            return
        test_ids: List[int] = []
        for term in terms:
            test_id = len(self._test_owner)
            self._test_owner.append(sub_id)
            test_ids.append(test_id)
            self._insert_test(term, test_id)
        self._required[sub_id] = len(test_ids)
        self._sub_tests[sub_id] = test_ids

    @staticmethod
    def _indexable(term: Predicate) -> bool:
        if isinstance(term, Exists):
            return True
        if isinstance(term, Comparison):
            if term.op in ("=", "!="):
                return True
            return _type_tag(term.value) is not None
        return False

    def _insert_test(self, term: Predicate, test_id: int) -> None:
        if isinstance(term, Exists):
            self._indexes.setdefault(term.attr, _AttrIndex()).exists.append(test_id)
            return
        assert isinstance(term, Comparison)
        index = self._indexes.setdefault(term.attr, _AttrIndex())
        if term.op == "=":
            index.eq[_eq_key(term.value)].append(test_id)
        elif term.op == "!=":
            index.ne.append((term.value, test_id))
        elif term.op in ("<", "<="):
            tag = _type_tag(term.value)
            insort(index.lt, (tag, term.value, term.op == "<", test_id))
        else:  # > or >=
            tag = _type_tag(term.value)
            insort(index.gt, (tag, term.value, term.op == ">", test_id))

    def remove(self, sub_id: str) -> None:
        self._cache.clear()
        self._subs.pop(sub_id, None)
        self._fallback.pop(sub_id, None)
        self._match_all.discard(sub_id)
        self._required.pop(sub_id, None)
        for test_id in self._sub_tests.pop(sub_id, ()):
            # Lazy removal: orphan the test; stale index entries are
            # skipped at match time because their owner is None.
            self._test_owner[test_id] = None

    def match(self, event: Mapping[str, Any]) -> Set[str]:
        key = None
        if self._cache_size > 0:
            try:
                key = tuple(
                    sorted((attr, _eq_key(value)) for attr, value in event.items())
                )
                cached = self._cache.get(key)
            except TypeError:
                key = None  # unhashable attribute value: bypass the cache
            else:
                if cached is not None:
                    self._cache.move_to_end(key)
                    self.cache_hits += 1
                    return set(cached)
                self.cache_misses += 1
        matched = self._match_uncached(event)
        if key is not None:
            self._cache[key] = frozenset(matched)
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return matched

    def _match_uncached(self, event: Mapping[str, Any]) -> Set[str]:
        counts: Dict[str, int] = defaultdict(int)
        for attr, value in event.items():
            index = self._indexes.get(attr)
            if index is None:
                continue
            for test_id in index.satisfied(value):
                owner = self._test_owner[test_id]
                if owner is not None:
                    counts[owner] += 1
        matched = {
            sub_id
            for sub_id, count in counts.items()
            if count == self._required.get(sub_id, -1)
        }
        matched |= self._match_all
        for sub_id, predicate in self._fallback.items():
            if predicate.evaluate(event):
                matched.add(sub_id)
        return matched

    def __len__(self) -> int:
        return len(self._subs)
