"""Length-prefixed binary wire protocol for the asyncio transports.

The original aio wire format was one JSON line per message with a
``write()`` + ``drain()`` round trip per frame; at scale the per-hop
framing overhead — not matching — dominates broker cost (Gryphon's
information-flow view of brokering).  This module is the replacement
codec, split sans-io from the socket code so it can be tested
byte-by-byte:

* **Frames** are ``!IBII``-packed headers (4-byte big-endian body
  length, 1-byte frame type, 4-byte CRC32 of the body, 4-byte CRC32 of
  the preceding nine header bytes) followed by the body.  Control frames
  (``HELLO``, ``HEARTBEAT``, ``HEARTBEAT_ACK``) carry tiny or empty
  bodies; data travels in **batch frames** whose body is a concatenation
  of length-prefixed wire messages, so N queued messages cost one
  header, one ``write()`` and one ``drain()``.  The header CRC makes the
  header self-validating: a corrupted or hostile length prefix is
  rejected *immediately* (:class:`CorruptFrame`) instead of making the
  decoder buffer toward a garbage length that never completes; the body
  CRC guarantees a corrupt payload is never delivered — the transport
  treats a :class:`CorruptFrame` like a torn connection and the
  retransmission protocol heals the gap.
* **Wire messages** (the batch elements) are compact JSON encodings of
  :class:`~repro.broker.state.Envelope` /
  :class:`~repro.broker.state.LinkStatusMessage` — the same dict schema
  the JSON-lines codec used, so the two codecs are differentially
  testable against each other.
* :class:`FrameDecoder` is an incremental parser: TCP may tear a frame
  (even its 13-byte header) across arbitrary segment boundaries, and the
  decoder buffers until a frame completes.  A header announcing a body
  larger than ``max_frame_bytes`` raises :class:`OversizedFrame`
  immediately — a malformed or hostile peer cannot make us buffer
  unboundedly — and a header failing its own CRC raises
  :class:`CorruptFrame` before its length field is trusted at all.
* :class:`SerializeCache` is the serialize-once fan-out cache: a message
  published to N peers is encoded once and the bytes shared across every
  connection's outbox.  It is keyed on message *identity* and each entry
  pins a strong reference to its key, so a cached ``id()`` can never be
  recycled by the allocator while the entry lives; wire messages are
  immutable, so entries never need invalidation.
"""

from __future__ import annotations

import json
import struct
import zlib
from collections import OrderedDict
from typing import Any, Iterator, List, Sequence, Tuple

from ..broker.state import Envelope, LinkStatusMessage

__all__ = [
    "FRAME_HELLO",
    "FRAME_HEARTBEAT",
    "FRAME_HEARTBEAT_ACK",
    "FRAME_BATCH",
    "HEADER",
    "HEADER_SIZE",
    "MAX_FRAME_BYTES",
    "FrameError",
    "OversizedFrame",
    "CorruptFrame",
    "FrameDecoder",
    "pack_header",
    "SerializeCache",
    "build_frame",
    "encode_batch_frame",
    "decode_batch_body",
    "encode_wire_message",
    "decode_wire_message",
    "decode_one_frame",
    "HEARTBEAT_FRAME",
    "HEARTBEAT_ACK_FRAME",
    "hello_frame",
]

#: Frame header: body length (excluding the header itself), frame type,
#: CRC32 of the body, CRC32 of the preceding nine header bytes.
HEADER = struct.Struct("!IBII")
HEADER_SIZE = HEADER.size

#: The header minus its own trailing CRC — the bytes that CRC covers.
_HEADER_PREFIX = struct.Struct("!IBI")

#: Length prefix of each message inside a batch body.
_LEN = struct.Struct("!I")

FRAME_HELLO = 1
FRAME_HEARTBEAT = 2
FRAME_HEARTBEAT_ACK = 3
FRAME_BATCH = 4

#: Reject any frame whose announced body exceeds this (a torn header,
#: a non-protocol peer, or a runaway batch must not buffer unboundedly).
MAX_FRAME_BYTES = 8 * 1024 * 1024


class FrameError(ValueError):
    """Malformed frame or wire message."""


class OversizedFrame(FrameError):
    """A frame header announced a body larger than the configured limit."""


class CorruptFrame(FrameError):
    """A frame failed a CRC32 check (header self-check or body).

    The receiving transport must not deliver any part of the frame; it
    drops the connection and lets reconnect + retransmission heal the
    stream, exactly as for a torn connection."""


# ---------------------------------------------------------------------------
# Wire messages (batch elements)
# ---------------------------------------------------------------------------


def encode_wire_message(message: Any) -> bytes:
    """Compact-JSON body bytes of one Envelope or LinkStatusMessage."""
    return json.dumps(
        message.to_wire(), separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def decode_wire_message(data: bytes) -> Any:
    """Decode one batch element (the inverse of :func:`encode_wire_message`)."""
    obj = json.loads(data.decode("utf-8"))
    kind = obj.get("kind")
    if kind == "envelope":
        return Envelope.from_wire(obj)
    if kind == "link_status":
        return LinkStatusMessage.from_wire(obj)
    raise FrameError(f"unknown wire message kind {kind!r}")


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------


def pack_header(length: int, frame_type: int, body_crc: int = 0) -> bytes:
    """Pack a frame header with a valid header CRC (self-validating)."""
    prefix = _HEADER_PREFIX.pack(length, frame_type, body_crc)
    return prefix + _LEN.pack(zlib.crc32(prefix))


def build_frame(frame_type: int, body: bytes = b"") -> bytes:
    if len(body) > MAX_FRAME_BYTES:
        raise OversizedFrame(
            f"frame body of {len(body)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return pack_header(len(body), frame_type, zlib.crc32(body)) + body


def encode_batch_frame(payloads: Sequence[bytes]) -> bytes:
    """One batch frame carrying every payload, in order."""
    parts: List[bytes] = []
    for payload in payloads:
        parts.append(_LEN.pack(len(payload)))
        parts.append(payload)
    return build_frame(FRAME_BATCH, b"".join(parts))


def decode_batch_body(body: bytes) -> List[bytes]:
    """Split a batch body back into its message payloads."""
    out: List[bytes] = []
    offset, end = 0, len(body)
    while offset < end:
        if offset + _LEN.size > end:
            raise FrameError("torn message length inside batch body")
        (length,) = _LEN.unpack_from(body, offset)
        offset += _LEN.size
        if offset + length > end:
            raise FrameError("torn message payload inside batch body")
        out.append(body[offset : offset + length])
        offset += length
    return out


#: Control frames are constant — build them once.
HEARTBEAT_FRAME = build_frame(FRAME_HEARTBEAT)
HEARTBEAT_ACK_FRAME = build_frame(FRAME_HEARTBEAT_ACK)


def hello_frame(src: str) -> bytes:
    """The peer-identification frame opening every outgoing connection."""
    return build_frame(
        FRAME_HELLO, json.dumps({"src": src}, separators=(",", ":")).encode("utf-8")
    )


def decode_one_frame(data: bytes) -> Tuple[int, bytes]:
    """Decode exactly one complete frame (no trailing bytes allowed)."""
    decoder = FrameDecoder()
    decoder.feed(data)
    frames = list(decoder.frames())
    if len(frames) != 1 or decoder.pending():
        raise FrameError(
            f"expected exactly one complete frame, got {len(frames)} "
            f"with {decoder.pending()} byte(s) left over"
        )
    return frames[0]


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte-chunk stream.

    ``feed()`` appends whatever the socket produced; ``frames()`` yields
    every complete ``(frame_type, body)`` and leaves any torn tail —
    including a partial header — buffered for the next feed.
    """

    __slots__ = ("max_frame_bytes", "_buffer")

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer += data

    def pending(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)

    def frames(self) -> Iterator[Tuple[int, bytes]]:
        while True:
            if len(self._buffer) < HEADER_SIZE:
                return
            length, frame_type, body_crc, header_crc = HEADER.unpack_from(
                self._buffer, 0
            )
            # The header validates itself before its length field is
            # trusted: a flipped bit in the length prefix would otherwise
            # make the decoder wait forever for a "frame" that never
            # completes (any garbage below max_frame_bytes stalls the
            # connection silently).
            if zlib.crc32(bytes(self._buffer[: _HEADER_PREFIX.size])) != header_crc:
                raise CorruptFrame("frame header failed its CRC32 self-check")
            if length > self.max_frame_bytes:
                raise OversizedFrame(
                    f"peer announced a {length}-byte frame body "
                    f"(limit {self.max_frame_bytes})"
                )
            total = HEADER_SIZE + length
            if len(self._buffer) < total:
                return
            body = bytes(self._buffer[HEADER_SIZE:total])
            if zlib.crc32(body) != body_crc:
                raise CorruptFrame(
                    f"frame body of {length} byte(s) failed its CRC32 check"
                )
            del self._buffer[:total]
            yield frame_type, body


# ---------------------------------------------------------------------------
# Serialize-once fan-out
# ---------------------------------------------------------------------------


class SerializeCache:
    """Bounded identity-keyed LRU of message -> encoded payload bytes.

    ``encode()`` returns cached bytes when called again with the *same
    object*: a broker fanning one message out to N peers serializes it
    once and the N outboxes share one bytes object.  Keys are ``id()``
    values, which is safe only because each entry holds a strong
    reference to its message — an id cannot be reused while its object is
    alive — and a hit additionally verifies ``is`` identity.  Wire
    messages are immutable, so entries are never invalidated, only
    LRU-evicted.
    """

    __slots__ = ("capacity", "hits", "misses", "_entries")

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        #: id(message) -> (message, payload bytes); insertion order is LRU.
        self._entries: "OrderedDict[int, Tuple[Any, bytes]]" = OrderedDict()

    def encode(self, message: Any) -> bytes:
        key = id(message)
        entry = self._entries.get(key)
        if entry is not None and entry[0] is message:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry[1]
        payload = encode_wire_message(message)
        self.misses += 1
        self._entries[key] = (message, payload)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return payload

    def __len__(self) -> int:
        return len(self._entries)
