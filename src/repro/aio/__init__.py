"""Asyncio runtime: the same broker engine over real-time transports."""

from .chaos import ChaosAction, ChaosReport, chaos, chaos_schedule, run_chaos
from .runtime import AioBroker, AioPublisher, AioSystem
from .transport import LocalTransport, TcpTransport, decode_frame, encode_frame
from .wire import (
    FrameDecoder,
    FrameError,
    OversizedFrame,
    SerializeCache,
    decode_batch_body,
    decode_wire_message,
    encode_batch_frame,
    encode_wire_message,
)

__all__ = [
    "AioBroker",
    "AioPublisher",
    "AioSystem",
    "ChaosAction",
    "ChaosReport",
    "FrameDecoder",
    "FrameError",
    "LocalTransport",
    "OversizedFrame",
    "SerializeCache",
    "TcpTransport",
    "chaos",
    "chaos_schedule",
    "decode_batch_body",
    "decode_frame",
    "decode_wire_message",
    "encode_batch_frame",
    "encode_frame",
    "encode_wire_message",
    "run_chaos",
]
