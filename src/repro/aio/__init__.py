"""Asyncio runtime: the same broker engine over real-time transports."""

from .chaos import ChaosAction, ChaosReport, chaos, chaos_schedule, run_chaos
from .runtime import AioBroker, AioPublisher, AioSystem
from .transport import LocalTransport, TcpTransport, decode_frame, encode_frame

__all__ = [
    "AioBroker",
    "AioPublisher",
    "AioSystem",
    "ChaosAction",
    "ChaosReport",
    "LocalTransport",
    "TcpTransport",
    "chaos",
    "chaos_schedule",
    "decode_frame",
    "encode_frame",
    "run_chaos",
]
