"""Asyncio runtime: the same broker engine over real-time transports."""

from .runtime import AioBroker, AioPublisher, AioSystem
from .transport import LocalTransport, TcpTransport, decode_frame, encode_frame
