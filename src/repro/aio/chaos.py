"""Seeded real-time chaos harness for the asyncio runtime.

The simulator proves exactly-once under deterministically fuzzed fault
schedules (``repro.check``); this module asserts the same service
specification against the *real-time* backend: an :class:`AioSystem`
with ``FileLog``-backed pubends over a real transport, while a seeded
schedule kills and restarts brokers and severs and heals links under
live traffic.  After the faults, everything is healed, publishers stop,
and the system is given a settle window; then the offline
:class:`~repro.client.DeliveryChecker` renders the verdict — zero
duplicate, zero missing deliveries — exactly as in the simulator's
oracle suite.

The schedule is a pure function of ``(seed, duration)``
(:func:`chaos_schedule`), so a failing seed can be re-run; wall-clock
jitter means real-time runs are not bit-reproducible, but the fault
pattern is.  The topology is a three-cell chain ``b0 — b1 — b2`` with
two pubends at ``b0`` and a subscriber at ``b2``: killing ``b0``
exercises PHB log replay and doubt-horizon re-advertisement, killing
``b1`` exercises pure soft-state recovery, and link outages exercise the
transport's supervision (reconnect, heartbeat failure detection).

Used by ``python -m repro chaos`` and the ``aio-chaos-smoke`` CI job;
see docs/DEPLOYMENT.md.
"""

from __future__ import annotations

import asyncio
import math
import os
import random
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..client import CheckReport, DeliveryChecker
from ..core.config import LivenessParams
from ..storage.faults import corrupt_log_file
from ..topology import Topology
from .runtime import AioSystem
from .transport import LocalTransport, TcpTransport

__all__ = ["ChaosAction", "ChaosReport", "chaos_schedule", "run_chaos", "chaos"]

#: Liveness tuned for sub-second recovery in a smoke-test budget.
FAST_PARAMS = LivenessParams(
    gct=0.05,
    nrt_min=0.1,
    nrt_max=2.0,
    aet=1.0,
    dct=math.inf,
    silence_interval=0.1,
    link_status_interval=0.1,
)


@dataclass(frozen=True)
class ChaosAction:
    """One scheduled fault: ``kill``/``restart`` a broker,
    ``sever``/``heal`` a link (target ``"a|b"``), or a corruption
    injection — ``corrupt-log`` (flip a bit in a stable-log record while
    its broker is down), ``corrupt-wire`` (damage the next frame on the
    wire), ``disk-full`` (the next stable-log append hits ENOSPC)."""

    t: float
    kind: str
    target: str

    def render(self) -> str:
        return f"t={self.t:.2f} {self.kind} {self.target}"


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    seed: int
    duration: float
    transport: str
    actions: List[ChaosAction]
    published: int = 0
    delivered: int = 0
    reports: Dict[str, CheckReport] = field(default_factory=dict)
    #: Online failures (duplicate/order violations raised by clients,
    #: unexpected broker exceptions) — empty on a clean run.
    failures: List[str] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures and all(
            r.exactly_once for r in self.reports.values()
        )

    def render(self) -> str:
        lines = [
            f"chaos seed={self.seed} duration={self.duration}s "
            f"transport={self.transport}"
        ]
        lines += [f"  {a.render()}" for a in self.actions]
        lines.append(
            f"  published {self.published}, delivered {self.delivered}"
        )
        for sub, report in sorted(self.reports.items()):
            verdict = "exactly-once" if report.exactly_once else (
                f"{len(report.missing)} missing, "
                f"{len(report.unexpected)} unexpected"
            )
            lines.append(f"  {sub}: {verdict}")
        for failure in self.failures:
            lines.append(f"  FAILURE: {failure}")
        if self.counters:
            rendered = ", ".join(
                f"{k}={v}" for k, v in sorted(self.counters.items())
            )
            lines.append(f"  transport: {rendered}")
        lines.append(f"  verdict: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def chain_topology(link_latency: float = 0.002) -> Topology:
    """``b0 — b1 — b2``: PHB cell, intermediate cell, SHB cell."""
    topo = Topology()
    topo.cell("C0", "b0").cell("C1", "b1").cell("C2", "b2")
    topo.link("b0", "b1", latency=link_latency)
    topo.link("b1", "b2", latency=link_latency)
    topo.pubend("P0", "b0").pubend("P1", "b0")
    topo.route_all("C0", "C1").route_all("C1", "C2")
    return topo


def chaos_schedule(
    seed: int, duration: float, corrupt_rate: float = 0.0
) -> List[ChaosAction]:
    """The fault schedule for one seed: a pure function, so a failing
    seed reproduces the same fault pattern.

    Always includes one kill/restart of the publisher-hosting broker
    (the acceptance case: exactly-once across real PHB crash) and one
    sever/heal of a link; may add an intermediate-broker outage.  Every
    outage closes before ``0.72 * duration``, leaving the tail of the
    run for organic recovery before the settle window.

    ``corrupt_rate`` (default 0: schedules are byte-identical to the
    pre-corruption harness) adds each corruption action with that
    probability — at 1.0, all of:

    * ``corrupt-log`` at the midpoint of the PHB outage, while the log
      files are closed: the *oldest* record of each log gets a bit flip.
      It was published, delivered, and possibly truncated long before
      the fault window, so quarantining it on replay must not cost a
      delivery — only prove detection (``log_records_quarantined``).
    * ``corrupt-wire`` during the fault window: the next data frame is
      damaged in flight and must be rejected by checksum
      (``frames_rejected_crc``), never delivered.
    * ``disk-full`` after every outage has healed: the PHB's next stable
      append hits ENOSPC; the publish must fail *visibly*
      (``log_append_errors``) instead of advertising an unlogged tick.

    Corruption draws come after the base schedule, so the base fault
    pattern of a seed is unchanged by enabling corruption.
    """
    rng = random.Random(seed)
    window_lo, window_hi = 0.2 * duration, 0.72 * duration
    actions: List[ChaosAction] = []

    def outage(start_kind: str, end_kind: str, target: str) -> None:
        start = rng.uniform(window_lo, window_hi - 0.15 * duration)
        end = min(start + rng.uniform(0.15, 0.3) * duration, window_hi)
        actions.append(ChaosAction(start, start_kind, target))
        actions.append(ChaosAction(end, end_kind, target))

    outage("kill", "restart", "b0")
    outage("sever", "heal", rng.choice(["b0|b1", "b1|b2"]))
    if rng.random() < 0.5:
        outage("kill", "restart", "b1")
    if corrupt_rate > 0:
        kill_t = next(a.t for a in actions if a.kind == "kill" and a.target == "b0")
        restart_t = next(
            a.t for a in actions if a.kind == "restart" and a.target == "b0"
        )
        if rng.random() < corrupt_rate:
            actions.append(
                ChaosAction((kill_t + restart_t) / 2.0, "corrupt-log", "b0")
            )
        if rng.random() < corrupt_rate:
            actions.append(
                ChaosAction(
                    rng.uniform(window_lo, window_hi), "corrupt-wire", "wire"
                )
            )
        if rng.random() < corrupt_rate:
            actions.append(ChaosAction(0.8 * duration, "disk-full", "b0"))
    return sorted(actions, key=lambda a: (a.t, a.kind, a.target))


async def chaos(
    seed: int = 0,
    duration: float = 2.0,
    transport: str = "tcp",
    data_dir: Optional[str] = None,
    params: Optional[LivenessParams] = None,
    rate: float = 60.0,
    settle: float = 2.5,
    aio_flush_delay: Optional[float] = None,
    max_batch_bytes: Optional[int] = None,
    corrupt_rate: float = 0.0,
) -> ChaosReport:
    """Run one seeded chaos scenario against the asyncio runtime."""
    if transport == "tcp":
        wire_kwargs: Dict[str, float] = {}
        if aio_flush_delay is not None:
            wire_kwargs["flush_delay"] = aio_flush_delay
        if max_batch_bytes is not None:
            wire_kwargs["max_batch_bytes"] = max_batch_bytes
        wire = TcpTransport(heartbeat_interval=0.1, seed=seed, **wire_kwargs)
    elif transport == "local":
        wire = LocalTransport(latency=0.001, seed=seed)
    else:
        raise ValueError(f"transport must be 'tcp' or 'local', got {transport!r}")
    tmp_dir = None
    if data_dir is None:
        tmp_dir = data_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    actions = chaos_schedule(seed, duration, corrupt_rate)
    report = ChaosReport(
        seed=seed,
        duration=duration,
        transport=transport,
        actions=actions,
    )
    system = AioSystem(
        chain_topology(),
        params=params if params is not None else FAST_PARAMS,
        transport=wire,
        data_dir=data_dir,
    )
    try:
        await system.start()
        client = system.subscribe("sub0", "b2", ("P0", "P1"))
        publishers = [system.publisher(p, rate=rate) for p in ("P0", "P1")]
        for publisher in publishers:
            publisher.start()

        loop = asyncio.get_running_loop()
        t0 = loop.time()
        for action in actions:
            await asyncio.sleep(max(0.0, t0 + action.t - loop.time()))
            if action.kind == "kill":
                await system.kill_broker(action.target)
            elif action.kind == "restart":
                await system.restart_broker(action.target)
            elif action.kind == "sever":
                a, __, b = action.target.partition("|")
                system.sever_link(a, b)
            elif action.kind == "heal":
                a, __, b = action.target.partition("|")
                system.heal_link(a, b)
            elif action.kind == "corrupt-log":
                # The broker is down (midpoint of its outage): its log
                # files are closed.  Flip a bit in the *oldest* record of
                # each — delivered long ago, so replay must quarantine it
                # without costing a delivery.
                injected = 0
                for name in sorted(os.listdir(data_dir)):
                    if name.endswith(".log") and corrupt_log_file(
                        os.path.join(data_dir, name), seed=seed
                    ):
                        injected += 1
                report.counters["log_corruptions_injected"] = (
                    report.counters.get("log_corruptions_injected", 0) + injected
                )
            elif action.kind == "corrupt-wire":
                if hasattr(wire, "corrupt_next_frames"):
                    wire.corrupt_next_frames(1)
                else:
                    wire.corrupt_next_messages(1)
                report.counters["wire_corruptions_injected"] = (
                    report.counters.get("wire_corruptions_injected", 0) + 1
                )
            elif action.kind == "disk-full":
                broker = system.brokers.get(action.target)
                armed = 0
                if broker is not None and broker.alive:
                    for log in broker._logs.values():
                        if hasattr(log, "inject_fault"):
                            log.inject_fault("enospc")
                            armed += 1
                report.counters["disk_full_injected"] = (
                    report.counters.get("disk_full_injected", 0) + armed
                )
        await asyncio.sleep(max(0.0, t0 + duration - loop.time()))

        # End of the fault window: the schedule already closed every
        # outage; stop traffic and let recovery machinery finish.
        for publisher in publishers:
            await publisher.stop()
        await asyncio.sleep(settle)

        checker = DeliveryChecker(publishers)
        report.published = sum(len(p.published) for p in publishers)
        report.delivered = len(client.received)
        report.reports["sub0"] = checker.check(
            client, system.subscriptions["sub0"]
        )
        for broker_id, broker in sorted(system.brokers.items()):
            if broker.failure is not None:
                report.failures.append(f"{broker_id}: {broker.failure!r}")
        for name in (
            "reconnects",
            "heartbeat_failures",
            "shed",
            "sent",
            "frames_sent",
            "msgs_sent",
            "serialize_cache_hits",
            "frames_rejected_crc",
        ):
            value = getattr(wire, name, None)
            if value is not None:
                report.counters[name] = value
        report.counters["broker_restarts"] = sum(
            b.restarts for b in system.brokers.values()
        )
        instruments = system.obs.instruments
        for name in ("log_records_quarantined", "log_append_errors"):
            report.counters[name] = int(instruments.total(name))
        # Every injected corruption must have been *detected and healed*,
        # not silently absorbed: the matching detection counter proves the
        # integrity layer saw it (the exactly-once verdict above proves
        # the healing).
        checks = (
            ("log_corruptions_injected", "log_records_quarantined",
             "injected log corruption was never quarantined on replay"),
            ("wire_corruptions_injected", "frames_rejected_crc",
             "injected wire corruption was never rejected by checksum"),
            ("disk_full_injected", "log_append_errors",
             "injected disk-full fault never surfaced as a log append error"),
        )
        for injected_name, detected_name, message in checks:
            if report.counters.get(injected_name, 0) and not report.counters.get(
                detected_name, 0
            ):
                report.failures.append(message)
    finally:
        await system.shutdown()
        if tmp_dir is not None:
            shutil.rmtree(tmp_dir, ignore_errors=True)
    return report


def run_chaos(
    seed: int = 0,
    duration: float = 2.0,
    transport: str = "tcp",
    data_dir: Optional[str] = None,
    params: Optional[LivenessParams] = None,
    rate: float = 60.0,
    settle: float = 2.5,
    aio_flush_delay: Optional[float] = None,
    max_batch_bytes: Optional[int] = None,
    corrupt_rate: float = 0.0,
) -> ChaosReport:
    """Synchronous wrapper: run one chaos scenario on a fresh loop."""
    return asyncio.run(
        chaos(
            seed=seed,
            duration=duration,
            transport=transport,
            data_dir=data_dir,
            params=params,
            rate=rate,
            settle=settle,
            aio_flush_delay=aio_flush_delay,
            max_batch_bytes=max_batch_bytes,
            corrupt_rate=corrupt_rate,
        )
    )
