"""Asyncio broker runtime: the GD engine in real time.

Hosts the same :class:`~repro.broker.engine.GDBrokerEngine` used by the
simulator on an asyncio event loop, with wall-clock liveness timers and a
pluggable transport (:class:`~repro.aio.transport.LocalTransport` or
:class:`~repro.aio.transport.TcpTransport`).

The runtime is a production-grade second backend for the protocol, not
just a demo: pubends persist to :class:`~repro.storage.log.FileLog` when
the system is given a ``data_dir`` (a crashed broker reopens and replays
its logs on restart, recovering assigned ticks and its doubt horizon),
broker inboxes are bounded with a configurable slow-consumer policy,
scheduled protocol timers are tracked and cancelled on crash/shutdown,
and the :class:`~repro.obs.lifecycle.LifecycleHub`/Instruments pipeline
observes the real-time path exactly as it does the simulator.

Throughput numbers from this runtime are *not* the evaluation substrate
(the repro band notes asyncio throughput is less faithful than the
simulator); use ``python -m repro bench`` for the gated counters and the
simulator for the paper's figures.
"""

from __future__ import annotations

import asyncio
import os
import warnings
from collections import Counter
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..broker.engine import BrokerServices, GDBrokerEngine
from ..broker.state import BrokerTopologyInfo
from ..client import SubscriberClient
from ..core.config import LivenessParams
from ..core.subend import Subscription
from ..core.ticks import Tick
from ..facade import resolve_predicate
from ..matching.events import Event
from ..obs.hub import MetricsHub
from ..obs.observability import Observability
from ..storage.log import FileLog, LogAppendError, MemoryLog, MessageLog
from ..topology import Topology, TopologyPlan
from .transport import LocalTransport

__all__ = ["AioBroker", "AioSystem", "AioPublisher", "KNOWN_MUTATIONS"]

#: Deliberate protocol defects the runtime can be built with, for
#: harness self-tests (the conformance harness must *detect* a mutated
#: runtime diverging from the simulator; see docs/TESTING.md):
#:
#: * ``"suppress-retransmit"`` — every retransmission envelope is
#:   silently discarded at the sending broker instead of hitting the
#:   wire, so curiosity is never answered and dropped guaranteed traffic
#:   stays lost.
KNOWN_MUTATIONS = frozenset({"suppress-retransmit"})

#: How many cancelled timer handles may accumulate before the tracking
#: set is pruned (mirrors the sim scheduler's cancelled-timer fix).
_PRUNE_THRESHOLD = 256


class _AioServices(BrokerServices):
    def __init__(self, broker: "AioBroker"):
        self.broker = broker

    def now(self) -> float:
        return asyncio.get_running_loop().time()

    def schedule(self, delay: float, fn: Callable[[], None]):
        broker = self.broker
        epoch = broker.epoch
        box: List[asyncio.TimerHandle] = []

        def fire() -> None:
            if box:
                broker._pending_timers.discard(box[0])
            if broker.alive and broker.epoch == epoch:
                fn()

        handle = asyncio.get_running_loop().call_later(delay, fire)
        box.append(handle)
        broker._track(handle)
        return handle

    def send(self, dst: str, message: Any, size: int = 100) -> bool:
        broker = self.broker
        if not broker.alive:
            return False
        payload = getattr(message, "payload", None)
        if broker.mutations and "suppress-retransmit" in broker.mutations:
            if getattr(payload, "retransmit", False):
                broker.mutation_counts["suppress-retransmit"] += 1
                return True  # claims success; the frame never leaves
        ok = broker.transport.send(broker.broker_id, dst, message)
        # Piggyback: a data-carrying frame is about to be cork-batched by
        # the transport; any knowledge deltas waiting on an engine flush
        # timer can ride in the same batch instead of paying their own
        # frame one flush_delay later.  Deferred via call_soon — the
        # engine is mid-dispatch right now — which still lands inside the
        # transport's cork window.
        engine = broker.engine
        if (
            ok
            and engine is not None
            and engine.dirty_ostreams
            and not broker._piggyback_scheduled
            and getattr(payload, "data", None)
            and not getattr(payload, "retransmit", False)
        ):
            broker._piggyback_scheduled = True
            epoch = broker.epoch
            asyncio.get_running_loop().call_soon(
                broker._piggyback_flush, epoch
            )
        return ok

    def link_usable(self, neighbor: str) -> bool:
        return self.broker.transport.link_usable(self.broker.broker_id, neighbor)

    def deliver(self, subscriber: str, pubend: str, tick: Tick, payload: Any) -> None:
        self.broker.deliver(subscriber, pubend, tick, payload)


class AioBroker:
    """One broker process on the event loop.

    ``inbox_limit`` bounds the broker's receive queue; ``slow_consumer``
    picks what happens when it fills:

    * ``"backpressure"`` (default) — async senders (the TCP reader) wait
      for space, which suspends the socket reader and lets TCP flow
      control push back on the remote broker; in-process senders fall
      back to inline processing (bounded memory, nothing dropped).
    * ``"shed"`` — the newest arrival is discarded and counted in the
      ``aio_inbox_shed`` instrument.  Never silent: guaranteed traffic
      shed here is recovered by the protocol's curiosity/retransmission
      machinery, but the counter makes the pressure visible.

    ``inbox_batch`` is the micro-batch size of the drain task: each
    wakeup processes up to that many queued messages before yielding to
    the loop, instead of paying a full task switch per message.  ``1``
    restores the historical one-message-per-await behaviour.
    """

    def __init__(
        self,
        broker_id: str,
        info: BrokerTopologyInfo,
        params: LivenessParams,
        transport,
        metrics: Optional[MetricsHub] = None,
        obs: Optional[Observability] = None,
        inbox_limit: int = 1024,
        slow_consumer: str = "backpressure",
        mutations: frozenset = frozenset(),
        inbox_batch: int = 64,
    ):
        if slow_consumer not in ("backpressure", "shed"):
            raise ValueError(
                f"slow_consumer must be 'backpressure' or 'shed', "
                f"got {slow_consumer!r}"
            )
        self.broker_id = broker_id
        self.info = info
        self.params = params
        self.transport = transport
        if obs is None:
            obs = Observability(hub=metrics)
        self.obs = obs
        self.metrics = metrics if metrics is not None else obs.hub
        self.alive = True
        self.epoch = 0
        self.inbox_limit = inbox_limit
        self.slow_consumer = slow_consumer
        self.inbox_batch = max(1, inbox_batch)
        #: True while a deferred piggyback flush is queued on the loop.
        self._piggyback_scheduled = False
        #: Active deliberate defects (subset of KNOWN_MUTATIONS) and how
        #: often each one fired — self-test instrumentation, never set in
        #: production deployments.
        self.mutations = mutations
        self.mutation_counts: Counter = Counter()
        self.services = _AioServices(self)
        # The engine shares the system-wide lifecycle hub so tracers and
        # detectors attached to system.obs observe the real-time path
        # exactly as they do the simulator.
        self.engine = GDBrokerEngine(
            info,
            params,
            self.services,
            instruments=self.obs.instruments,
            lifecycle=self.obs.lifecycle,
        )
        #: Pubend hostings as *log factories*: a MemoryLog factory hands
        #: back the same object (the simulator's kept-alive-disk model),
        #: a FileLog factory reopens the file from disk — so restart()
        #: exercises real replay-based recovery.
        self._hostings: List[
            Tuple[str, Callable[[], MessageLog], int, int, Optional[float]]
        ] = []
        self._logs: Dict[str, MessageLog] = {}
        self._clients: Dict[str, SubscriberClient] = {}
        self._pending_timers: Set[asyncio.TimerHandle] = set()
        self._inbox: Optional["asyncio.Queue[Tuple[str, Any]]"] = None
        self._drain_task: Optional[asyncio.Task] = None
        #: First exception raised while processing the inbox (e.g. a
        #: client's DuplicateDelivery) — surfaced by shutdown()/chaos.
        self.failure: Optional[BaseException] = None
        self.shed_count = 0
        self.restarts = 0

    # -- configuration ---------------------------------------------------

    def host_pubend(
        self,
        pubend_id: str,
        log: Optional[MessageLog] = None,
        slot: int = 0,
        n_slots: int = 1,
        preassign_window: Optional[float] = None,
        log_factory: Optional[Callable[[], MessageLog]] = None,
    ) -> MessageLog:
        window = (
            preassign_window
            if preassign_window is not None
            else self.params.preassign_window
        )
        if log_factory is None:
            if log is None:
                log = MemoryLog()
            if isinstance(log, FileLog):
                # Crash realism: the handle dies with the broker, the
                # file survives; restart reopens and replays it with the
                # same configuration (record format, fault wrapper,
                # instruments).
                log_factory = log.factory()
            else:
                kept = log
                log_factory = lambda: kept  # noqa: E731
        elif log is None:
            log = log_factory()
        self._hostings.append((pubend_id, log_factory, slot, n_slots, window))
        self._logs[pubend_id] = log
        self.engine.host_pubend(self._make_pubend(pubend_id, log, slot, n_slots, window))
        return log

    def _make_pubend(self, pubend_id, log, slot, n_slots, window):
        from ..core.pubend import Pubend

        return Pubend(
            pubend_id,
            log,
            slot=slot,
            n_slots=n_slots,
            aet=self.params.aet,
            silence_interval=self.params.silence_interval,
            preassign_window=window,
            instruments=self.obs.instruments,
        )

    def add_subscription(
        self, subscription: Subscription, client: Optional[SubscriberClient] = None
    ) -> None:
        if client is not None:
            self._clients[subscription.subscriber] = client
        self.engine.add_subscription(subscription)

    def start(self) -> None:
        """Register with the transport, spin up the inbox drain task,
        and arm protocol timers."""
        if hasattr(self.transport, "register"):
            self.transport.register(self.broker_id, self.on_receive)
        self._inbox = asyncio.Queue(maxsize=self.inbox_limit)
        self._drain_task = asyncio.get_running_loop().create_task(self._drain())
        self.engine.start()

    # -- timer tracking ----------------------------------------------------

    def _track(self, handle: asyncio.TimerHandle) -> None:
        self._pending_timers.add(handle)
        if len(self._pending_timers) > _PRUNE_THRESHOLD:
            self._pending_timers = {
                h for h in self._pending_timers if not h.cancelled()
            }

    def _cancel_timers(self) -> None:
        for handle in self._pending_timers:
            handle.cancel()
        self._pending_timers.clear()

    # -- data path ---------------------------------------------------------

    def publish(self, pubend_id: str, payload: Any) -> Optional[Tick]:
        if not self.alive:
            return None
        return self.engine.publish(pubend_id, payload)

    def on_receive(self, src: str, message: Any) -> None:
        """Synchronous receive (LocalTransport): enqueue, applying the
        slow-consumer policy when the inbox is full."""
        if not self.alive or self._inbox is None:
            return
        try:
            self._inbox.put_nowait((src, message))
        except asyncio.QueueFull:
            if self.slow_consumer == "shed":
                self.shed_count += 1
                self.obs.instruments.counter(
                    "aio_inbox_shed",
                    "messages discarded by a full broker inbox",
                    broker=self.broker_id,
                ).inc()
            else:
                # In-process senders have no socket to push back on;
                # process inline so nothing is dropped and memory stays
                # bounded by the queue.
                self._process(src, message)

    async def on_receive_async(self, src: str, message: Any) -> None:
        """Awaitable receive (TcpTransport): a full inbox suspends the
        caller — the socket reader — so TCP flow control backpressures
        the remote broker."""
        if not self.alive or self._inbox is None:
            return
        if self.slow_consumer == "shed":
            self.on_receive(src, message)
            return
        await self._inbox.put((src, message))

    async def _drain(self) -> None:
        """Inbox pump: block for the first message, then greedily drain
        up to ``inbox_batch`` already-queued messages in the same wakeup
        — one task switch amortized over the whole micro-batch."""
        inbox = self._inbox
        assert inbox is not None
        try:
            while True:
                src, message = await inbox.get()
                try:
                    self._process(src, message)
                finally:
                    inbox.task_done()
                for _ in range(self.inbox_batch - 1):
                    try:
                        src, message = inbox.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    try:
                        self._process(src, message)
                    finally:
                        inbox.task_done()
        except asyncio.CancelledError:
            pass

    def _piggyback_flush(self, epoch: int) -> None:
        """Deferred eager flush scheduled by :meth:`_AioServices.send`."""
        self._piggyback_scheduled = False
        if self.alive and self.epoch == epoch and self.engine is not None:
            self.engine.flush_dirty_ostreams()

    def _process(self, src: str, message: Any) -> None:
        if not self.alive:
            return
        try:
            hub = self.obs.lifecycle
            if hub.listeners:
                hub.message_arrived(
                    asyncio.get_running_loop().time(), self.broker_id, src, message
                )
            self.engine.on_message(src, message)
        except Exception as exc:  # surfaced by shutdown()/the chaos harness
            if self.failure is None:
                self.failure = exc
            raise

    def deliver(self, subscriber: str, pubend: str, tick: Tick, payload: Any) -> None:
        now = asyncio.get_running_loop().time()
        hub = self.obs.lifecycle
        if hub.listeners:
            hub.delivered(now, self.broker_id, subscriber, pubend, tick)
        client = self._clients.get(subscriber)
        if client is not None:
            client.on_delivery(pubend, tick, payload, now)

    # -- lifecycle -----------------------------------------------------------

    def crash(self) -> None:
        """Kill the broker: soft state gone, timers cancelled, log file
        handles closed (the files survive on disk)."""
        if not self.alive:
            return
        self.alive = False
        self.epoch += 1
        self._cancel_timers()
        if self._drain_task is not None:
            self._drain_task.cancel()
            self._drain_task = None
        self._inbox = None
        if hasattr(self.transport, "unregister"):
            self.transport.unregister(self.broker_id)
        for log in self._logs.values():
            log.close()
        self._logs.clear()
        hub = self.obs.lifecycle
        if hub.listeners:
            try:
                hub.fault(
                    asyncio.get_running_loop().time(), "crash", self.broker_id
                )
            except RuntimeError:
                pass  # no running loop (teardown outside the loop)
        self.engine = None  # type: ignore[assignment]

    def restart(self) -> None:
        """Recover from stable storage: each hosted pubend's log is
        reopened via its factory and replayed, so assigned ticks and the
        doubt horizon are re-advertised (paper §2: stable storage only at
        the PHB)."""
        if self.alive:
            return
        self.alive = True
        self.epoch += 1
        self.restarts += 1
        self.engine = GDBrokerEngine(
            self.info,
            self.params,
            self.services,
            instruments=self.obs.instruments,
            lifecycle=self.obs.lifecycle,
        )
        for pubend_id, log_factory, slot, n_slots, window in self._hostings:
            log = log_factory()
            self._logs[pubend_id] = log
            pubend = self._make_pubend(pubend_id, log, slot, n_slots, window)
            pubend.recover()
            self.engine.host_pubend(pubend)
        hub = self.obs.lifecycle
        if hub.listeners:
            hub.fault(
                asyncio.get_running_loop().time(), "restart", self.broker_id
            )
        self.start()

    async def shutdown(self) -> None:
        """Graceful stop: drain the inbox, cancel timers, close logs."""
        if not self.alive:
            return
        if self._inbox is not None and self._drain_task is not None:
            if not self._drain_task.done():
                await self._inbox.join()
        self.alive = False
        self.epoch += 1
        self._cancel_timers()
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except (asyncio.CancelledError, Exception):
                pass
            self._drain_task = None
        self._inbox = None
        if hasattr(self.transport, "unregister"):
            self.transport.unregister(self.broker_id)
        for log in self._logs.values():
            log.close()


class AioPublisher:
    """Publishes events at a fixed rate from an asyncio task."""

    def __init__(
        self,
        broker: AioBroker,
        pubend: str,
        rate: float,
        make_attributes: Optional[Callable[[int], Dict[str, Any]]] = None,
        max_messages: Optional[int] = None,
    ):
        self.broker = broker
        self.pubend = pubend
        self.interval = 1.0 / rate
        self.make_attributes = make_attributes
        #: Stop after exactly this many publish attempts (failed attempts
        #: count) — mirrors the simulator's count-limited PublisherClient
        #: so both backends attempt the identical seq sequence.
        self.max_messages = max_messages
        self.seq = 0
        self.published: List[Tuple[int, Tick, Event]] = []
        self.failed_attempts = 0
        self._task: Optional[asyncio.Task] = None

    def publish_once(self) -> Optional[Tick]:
        attributes: Dict[str, Any] = {"pub": self.pubend, "seq": self.seq}
        if self.make_attributes is not None:
            attributes.update(self.make_attributes(self.seq))
        attributes["ts"] = asyncio.get_running_loop().time()
        event = Event(attributes)
        try:
            tick = self.broker.publish(self.pubend, event)
        except LogAppendError:
            # The stable log could not be made durable (disk full, fsync
            # failure): the tick was rolled back before anything was
            # advertised, so this is a failed attempt the publisher may
            # retry — never a silently-lost published message.
            tick = None
        if tick is None:
            self.failed_attempts += 1
        else:
            self.published.append((self.seq, tick, event))
        self.seq += 1
        return tick

    @property
    def done(self) -> bool:
        """True once a count-limited publisher has made all its attempts."""
        return self.max_messages is not None and self.seq >= self.max_messages

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def _run(self) -> None:
        try:
            while self.max_messages is None or self.seq < self.max_messages:
                self.publish_once()
                await asyncio.sleep(self.interval)
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None


class AioSystem:
    """A whole deployment on one event loop, built from a Topology.

    Exposes the same public facade as the simulator's
    :class:`~repro.topology.System` (see :class:`~repro.facade.SystemFacade`):
    ``subscribe``/``publisher``/``host_pubend``/``obs``, with ``run_for``
    returning elapsed time.  ``data_dir`` turns on durability: every
    pubend gets a :class:`~repro.storage.log.FileLog` under that
    directory, and a crashed broker replays it on restart.
    """

    def __init__(
        self,
        topology: Topology,
        params: Optional[LivenessParams] = None,
        transport=None,
        log_commit_latency: float = 0.0,
        log_factory: Optional[Callable[[str], MessageLog]] = None,
        *,
        data_dir: Optional[str] = None,
        inbox_limit: int = 1024,
        slow_consumer: str = "backpressure",
        mutations: Any = (),
        inbox_batch: int = 64,
    ):
        mutations = frozenset(mutations)
        unknown = mutations - KNOWN_MUTATIONS
        if unknown:
            raise ValueError(
                f"unknown mutation(s) {sorted(unknown)}; "
                f"known: {sorted(KNOWN_MUTATIONS)}"
            )
        self.mutations = mutations
        self.params = params if params is not None else LivenessParams()
        self.transport = transport if transport is not None else LocalTransport()
        self.obs = Observability()
        if hasattr(self.transport, "bind_instruments"):
            self.transport.bind_instruments(self.obs.instruments)
        self.metrics = self.obs.hub
        self.plan: TopologyPlan = topology.plan()
        self.brokers: Dict[str, AioBroker] = {}
        self.pubend_hosts: Dict[str, str] = {}
        self.publishers: List[AioPublisher] = []
        self.subscribers: Dict[str, SubscriberClient] = {}
        self.subscriptions: Dict[str, Subscription] = {}
        self._log_commit_latency = log_commit_latency
        self._data_dir = data_dir
        if data_dir is not None:
            os.makedirs(data_dir, exist_ok=True)
            if log_factory is None:
                log_factory = self._file_log
        self._log_factory = log_factory
        for broker_id, info in self.plan.infos.items():
            self.brokers[broker_id] = AioBroker(
                broker_id,
                info,
                self.params,
                self.transport,
                metrics=self.metrics,
                obs=self.obs,
                inbox_limit=inbox_limit,
                slow_consumer=slow_consumer,
                mutations=mutations,
                inbox_batch=inbox_batch,
            )
        for pubend_id, host_broker, slot, n_slots, preassign in self.plan.pubends:
            self.host_pubend(
                pubend_id,
                host_broker,
                slot=slot,
                n_slots=n_slots,
                preassign_window=preassign,
            )

    def _file_log(self, pubend_id: str) -> FileLog:
        """Default durable log: one checksummed record file per pubend
        under ``data_dir`` (see docs/DEPLOYMENT.md for the layout).
        Instruments are threaded through so replay quarantines and
        append failures surface as ``log_records_quarantined`` /
        ``log_append_errors``."""
        path = os.path.join(self._data_dir, f"{pubend_id}.log")
        return FileLog(
            path,
            commit_latency=self._log_commit_latency,
            instruments=self.obs.instruments,
        )

    async def start(self) -> None:
        """Bring every broker online (TCP transports start listening)."""
        if hasattr(self.transport, "start_broker"):
            for broker_id, broker in self.brokers.items():
                await self.transport.start_broker(
                    broker_id, broker.on_receive_async
                )
        for broker in self.brokers.values():
            broker.start()

    # -- facade ----------------------------------------------------------

    def host_pubend(
        self,
        pubend_id: str,
        broker_id: str,
        log: Optional[MessageLog] = None,
        *,
        slot: int = 0,
        n_slots: int = 1,
        preassign_window: Optional[float] = None,
    ) -> MessageLog:
        """Place a pubend on its hosting broker.  Without an explicit
        ``log``, uses the system's log factory (a ``FileLog`` when
        ``data_dir`` is set, else a ``MemoryLog``)."""
        if log is None and self._log_factory is not None:
            log = self._log_factory(pubend_id)
        elif log is None:
            log = MemoryLog(commit_latency=self._log_commit_latency)
        self.brokers[broker_id].host_pubend(
            pubend_id,
            log,
            slot=slot,
            n_slots=n_slots,
            preassign_window=preassign_window,
        )
        self.pubend_hosts[pubend_id] = broker_id
        return log

    def subscribe(
        self,
        subscriber_id: str,
        broker_id: str,
        pubends: Tuple[str, ...],
        predicate: Any = None,
        *legacy: Any,
        total_order: bool = False,
    ) -> SubscriberClient:
        """Attach a subscriber client at an SHB.

        ``predicate`` may be a subscription string (parsed), an AST
        :class:`~repro.matching.ast.Predicate`, a plain callable, or
        ``None`` (match everything).  ``total_order`` is keyword-only;
        passing it positionally still works but warns.
        """
        if legacy:
            warnings.warn(
                "passing total_order positionally to AioSystem.subscribe is "
                "deprecated; use total_order=...",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(legacy) > 1:
                raise TypeError(
                    f"subscribe() takes at most 5 positional arguments "
                    f"({5 + len(legacy)} given)"
                )
            total_order = legacy[0]
        predicate = resolve_predicate(predicate)
        client = SubscriberClient(
            subscriber_id, metrics=self.metrics, check_total_order=total_order
        )
        subscription = Subscription(
            subscriber=subscriber_id,
            predicate=predicate,
            pubends=tuple(pubends),
            total_order=total_order,
        )
        self.brokers[broker_id].add_subscription(subscription, client)
        self.subscribers[subscriber_id] = client
        self.subscriptions[subscriber_id] = subscription
        return client

    def publisher(
        self,
        pubend: str,
        rate: float,
        make_attributes: Optional[Callable[[int], Dict[str, Any]]] = None,
        max_messages: Optional[int] = None,
    ) -> AioPublisher:
        broker = self.brokers[self.pubend_hosts[pubend]]
        publisher = AioPublisher(
            broker, pubend, rate, make_attributes, max_messages=max_messages
        )
        self.publishers.append(publisher)
        return publisher

    async def run_for(self, duration: float) -> float:
        """Let the system run; returns elapsed wall-clock time (the
        real-time analogue of the simulator's returned sim time)."""
        loop = asyncio.get_running_loop()
        start = loop.time()
        await asyncio.sleep(duration)
        return loop.time() - start

    # -- fault injection ---------------------------------------------------

    async def kill_broker(self, broker_id: str) -> None:
        """Crash a broker: its listening socket closes, connections drop,
        soft state and log handles are gone; log *files* survive."""
        self.brokers[broker_id].crash()
        if hasattr(self.transport, "stop_broker"):
            await self.transport.stop_broker(broker_id)

    async def restart_broker(self, broker_id: str) -> None:
        """Restart a crashed broker: a new listening socket (new port —
        peers re-resolve it through their connection supervisors), then
        log replay and doubt-horizon re-advertisement."""
        broker = self.brokers[broker_id]
        if hasattr(self.transport, "start_broker"):
            await self.transport.start_broker(broker_id, broker.on_receive_async)
        broker.restart()

    def sever_link(self, a: str, b: str) -> None:
        self.transport.fail_link(a, b)

    def heal_link(self, a: str, b: str) -> None:
        self.transport.recover_link(a, b)

    # -- teardown ----------------------------------------------------------

    async def shutdown(self) -> None:
        """Graceful stop: publishers first, then the transport's
        coalescing writers are drained (a final cork window of frames may
        still be queued), then brokers (each drains its inbox, cancels
        timers, closes its logs), then a second transport drain for the
        acks/knowledge that final processing produced, then close."""
        for publisher in self.publishers:
            await publisher.stop()
        if hasattr(self.transport, "drain"):
            await self.transport.drain()
        for broker in self.brokers.values():
            await broker.shutdown()
        if hasattr(self.transport, "drain"):
            await self.transport.drain()
        if hasattr(self.transport, "close"):
            await self.transport.close()
