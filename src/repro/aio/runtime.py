"""Asyncio broker runtime: the GD engine in real time.

Hosts the same :class:`~repro.broker.engine.GDBrokerEngine` used by the
simulator on an asyncio event loop, with wall-clock liveness timers and a
pluggable transport (:class:`~repro.aio.transport.LocalTransport` or
:class:`~repro.aio.transport.TcpTransport`).

Throughput numbers from this runtime are *not* the evaluation substrate
(the repro band notes asyncio throughput is less faithful than the
simulator); the runtime exists so the library is actually usable as a
message broker, and to demonstrate the engine is runtime-agnostic.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..broker.engine import BrokerServices, GDBrokerEngine
from ..broker.state import BrokerTopologyInfo
from ..client import SubscriberClient
from ..core.config import LivenessParams
from ..core.subend import Subscription
from ..core.ticks import Tick
from ..matching.events import Event
from ..matching.parser import parse
from ..obs.hub import MetricsHub
from ..obs.observability import Observability
from ..storage.log import MemoryLog, MessageLog
from ..topology import Topology, TopologyPlan
from .transport import LocalTransport

__all__ = ["AioBroker", "AioSystem", "AioPublisher"]


class _AioServices(BrokerServices):
    def __init__(self, broker: "AioBroker"):
        self.broker = broker

    def now(self) -> float:
        return asyncio.get_running_loop().time()

    def schedule(self, delay: float, fn: Callable[[], None]):
        epoch = self.broker.epoch

        def fire() -> None:
            if self.broker.alive and self.broker.epoch == epoch:
                fn()

        return asyncio.get_running_loop().call_later(delay, fire)

    def send(self, dst: str, message: Any, size: int = 100) -> bool:
        if not self.broker.alive:
            return False
        return self.broker.transport.send(self.broker.broker_id, dst, message)

    def link_usable(self, neighbor: str) -> bool:
        return self.broker.transport.link_usable(self.broker.broker_id, neighbor)

    def deliver(self, subscriber: str, pubend: str, tick: Tick, payload: Any) -> None:
        self.broker.deliver(subscriber, pubend, tick, payload)


class AioBroker:
    """One broker process on the event loop."""

    def __init__(
        self,
        broker_id: str,
        info: BrokerTopologyInfo,
        params: LivenessParams,
        transport,
        metrics: Optional[MetricsHub] = None,
        obs: Optional[Observability] = None,
    ):
        self.broker_id = broker_id
        self.info = info
        self.params = params
        self.transport = transport
        if obs is None:
            obs = Observability(hub=metrics)
        self.obs = obs
        self.metrics = metrics if metrics is not None else obs.hub
        self.alive = True
        self.epoch = 0
        self.services = _AioServices(self)
        self.engine = GDBrokerEngine(
            info, params, self.services, instruments=self.obs.instruments
        )
        self._hostings: List[Tuple[str, MessageLog, int, int, Optional[float]]] = []
        self._clients: Dict[str, SubscriberClient] = {}
        self._log_delay_tasks: int = 0

    # -- configuration ---------------------------------------------------

    def host_pubend(
        self,
        pubend_id: str,
        log: MessageLog,
        slot: int = 0,
        n_slots: int = 1,
        preassign_window: Optional[float] = None,
    ) -> None:
        from ..core.pubend import Pubend

        window = (
            preassign_window
            if preassign_window is not None
            else self.params.preassign_window
        )
        self._hostings.append((pubend_id, log, slot, n_slots, window))
        pubend = Pubend(
            pubend_id,
            log,
            slot=slot,
            n_slots=n_slots,
            aet=self.params.aet,
            silence_interval=self.params.silence_interval,
            preassign_window=window,
        )
        self.engine.host_pubend(pubend)

    def add_subscription(
        self, subscription: Subscription, client: Optional[SubscriberClient] = None
    ) -> None:
        if client is not None:
            self._clients[subscription.subscriber] = client
        self.engine.add_subscription(subscription)

    def start(self) -> None:
        """Register with the transport and arm protocol timers."""
        if hasattr(self.transport, "register"):
            self.transport.register(self.broker_id, self.on_receive)
        self.engine.start()

    # -- data path ---------------------------------------------------------

    def publish(self, pubend_id: str, payload: Any) -> Optional[Tick]:
        if not self.alive:
            return None
        return self.engine.publish(pubend_id, payload)

    def on_receive(self, src: str, message: Any) -> None:
        if self.alive:
            self.engine.on_message(src, message)

    def deliver(self, subscriber: str, pubend: str, tick: Tick, payload: Any) -> None:
        client = self._clients.get(subscriber)
        if client is not None:
            client.on_delivery(
                pubend, tick, payload, asyncio.get_running_loop().time()
            )

    # -- lifecycle -----------------------------------------------------------

    def crash(self) -> None:
        """Kill the broker: soft state gone, logs survive."""
        if not self.alive:
            return
        self.alive = False
        self.epoch += 1
        if hasattr(self.transport, "unregister"):
            self.transport.unregister(self.broker_id)
        self.engine = None  # type: ignore[assignment]

    def restart(self) -> None:
        from ..core.pubend import Pubend

        if self.alive:
            return
        self.alive = True
        self.epoch += 1
        self.engine = GDBrokerEngine(
            self.info, self.params, self.services, instruments=self.obs.instruments
        )
        for pubend_id, log, slot, n_slots, window in self._hostings:
            pubend = Pubend(
                pubend_id,
                log,
                slot=slot,
                n_slots=n_slots,
                aet=self.params.aet,
                silence_interval=self.params.silence_interval,
                preassign_window=window,
            )
            pubend.recover()
            self.engine.host_pubend(pubend)
        self.start()


class AioPublisher:
    """Publishes events at a fixed rate from an asyncio task."""

    def __init__(
        self,
        broker: AioBroker,
        pubend: str,
        rate: float,
        make_attributes: Optional[Callable[[int], Dict[str, Any]]] = None,
    ):
        self.broker = broker
        self.pubend = pubend
        self.interval = 1.0 / rate
        self.make_attributes = make_attributes
        self.seq = 0
        self.published: List[Tuple[int, Tick, Event]] = []
        self.failed_attempts = 0
        self._task: Optional[asyncio.Task] = None

    def publish_once(self) -> Optional[Tick]:
        attributes: Dict[str, Any] = {"pub": self.pubend, "seq": self.seq}
        if self.make_attributes is not None:
            attributes.update(self.make_attributes(self.seq))
        attributes["ts"] = asyncio.get_running_loop().time()
        event = Event(attributes)
        tick = self.broker.publish(self.pubend, event)
        if tick is None:
            self.failed_attempts += 1
        else:
            self.published.append((self.seq, tick, event))
        self.seq += 1
        return tick

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def _run(self) -> None:
        try:
            while True:
                self.publish_once()
                await asyncio.sleep(self.interval)
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None


class AioSystem:
    """A whole deployment on one event loop, built from a Topology."""

    def __init__(
        self,
        topology: Topology,
        params: Optional[LivenessParams] = None,
        transport=None,
        log_commit_latency: float = 0.0,
        log_factory: Optional[Callable[[str], MessageLog]] = None,
    ):
        self.params = params if params is not None else LivenessParams()
        self.transport = transport if transport is not None else LocalTransport()
        self.obs = Observability()
        self.metrics = self.obs.hub
        self.plan: TopologyPlan = topology.plan()
        self.brokers: Dict[str, AioBroker] = {}
        self.pubend_hosts: Dict[str, str] = {}
        self.publishers: List[AioPublisher] = []
        self.subscribers: Dict[str, SubscriberClient] = {}
        self.subscriptions: Dict[str, Subscription] = {}
        self._log_commit_latency = log_commit_latency
        self._log_factory = log_factory
        for broker_id, info in self.plan.infos.items():
            self.brokers[broker_id] = AioBroker(
                broker_id,
                info,
                self.params,
                self.transport,
                metrics=self.metrics,
                obs=self.obs,
            )
        for pubend_id, host_broker, slot, n_slots, preassign in self.plan.pubends:
            if self._log_factory is not None:
                log = self._log_factory(pubend_id)
            else:
                log = MemoryLog(commit_latency=self._log_commit_latency)
            self.brokers[host_broker].host_pubend(
                pubend_id, log, slot=slot, n_slots=n_slots,
                preassign_window=preassign,
            )
            self.pubend_hosts[pubend_id] = host_broker

    async def start(self) -> None:
        """Bring every broker online (TCP transports start listening)."""
        if hasattr(self.transport, "start_broker"):
            for broker_id, broker in self.brokers.items():
                await self.transport.start_broker(broker_id, broker.on_receive)
        for broker in self.brokers.values():
            broker.start()

    def subscribe(
        self,
        subscriber_id: str,
        broker_id: str,
        pubends: Tuple[str, ...],
        predicate: Any = None,
        total_order: bool = False,
    ) -> SubscriberClient:
        from ..core.edges import MATCH_ALL

        if isinstance(predicate, str):
            predicate = parse(predicate)
        elif predicate is None:
            predicate = MATCH_ALL
        client = SubscriberClient(
            subscriber_id, metrics=self.metrics, check_total_order=total_order
        )
        subscription = Subscription(
            subscriber=subscriber_id,
            predicate=predicate,
            pubends=tuple(pubends),
            total_order=total_order,
        )
        self.brokers[broker_id].add_subscription(subscription, client)
        self.subscribers[subscriber_id] = client
        self.subscriptions[subscriber_id] = subscription
        return client

    def publisher(
        self,
        pubend: str,
        rate: float,
        make_attributes: Optional[Callable[[int], Dict[str, Any]]] = None,
    ) -> AioPublisher:
        broker = self.brokers[self.pubend_hosts[pubend]]
        publisher = AioPublisher(broker, pubend, rate, make_attributes)
        self.publishers.append(publisher)
        return publisher

    async def run_for(self, duration: float) -> None:
        await asyncio.sleep(duration)

    async def shutdown(self) -> None:
        for publisher in self.publishers:
            await publisher.stop()
        if hasattr(self.transport, "close"):
            await self.transport.close()
