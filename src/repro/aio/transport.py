"""Asyncio transports for real-time broker deployments.

The deterministic simulator is the primary evaluation substrate (see
DESIGN.md §4), but the broker engine is transport-agnostic; this module
provides two asyncio transports so the same protocol runs in real time:

* :class:`LocalTransport` — in-process: every broker gets an inbox queue;
  sends are delivered by the event loop after an optional latency, with
  optional i.i.d. drops.  Useful for real-time integration tests and
  demos without sockets.
* :class:`TcpTransport` — real TCP on localhost: each broker listens on
  its own port; outgoing connections are *supervised* — established
  lazily, kept alive by heartbeats, and re-established with exponential
  backoff plus jitter after any failure.  Messages travel in the
  length-prefixed binary frame protocol of :mod:`repro.aio.wire`: a
  per-connection **coalescing writer** cork-batches everything queued
  within ``flush_delay`` (bounded by ``max_batch_bytes``) into one batch
  frame and one ``drain()``, and a **serialize-once cache** encodes a
  message fanned out to N peers exactly once.

Both expose the same small interface: ``send(src, dst, message) -> bool``
plus a per-broker receive callback, ``link_usable(a, b)``, and
``fail_link``/``recover_link`` so fault injection is transport-agnostic.
``link_usable`` reports *local* knowledge of link health the way the
paper's brokers learn it: for TCP that is the supervised connection state
(established and heartbeat-fresh), which is what drives the engine's
path selection and sideways routing during real outages.
"""

from __future__ import annotations

import asyncio
import json
import random
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from ..obs.instruments import NULL_INSTRUMENTS
from . import wire
from .wire import (
    FRAME_BATCH,
    FRAME_HEARTBEAT,
    FRAME_HELLO,
    FrameDecoder,
    FrameError,
    SerializeCache,
    decode_batch_body,
    decode_wire_message,
    encode_batch_frame,
    encode_wire_message,
)

__all__ = ["LocalTransport", "TcpTransport", "encode_frame", "decode_frame"]

#: Receive callback: (src_broker, message) -> None, or an ``async def``
#: with the same signature (awaited by TcpTransport — backpressure).
ReceiveFn = Callable[[str, Any], Any]


def encode_frame(message: Any) -> bytes:
    """Serialize one message as a complete (single-element batch) frame.

    Backward-compatible wrapper over :mod:`repro.aio.wire` — new code
    batching several messages should use the wire module directly.
    """
    return encode_batch_frame([encode_wire_message(message)])


def decode_frame(data: bytes) -> Any:
    """Decode one message from a frame produced by :func:`encode_frame`.

    Also accepts a legacy JSON line (the pre-binary wire format), so old
    captures and tests keep decoding.
    """
    if data[:1] in (b"{", b" "):
        return decode_wire_message(data)
    frame_type, body = wire.decode_one_frame(data)
    if frame_type != FRAME_BATCH:
        raise FrameError(f"expected a batch frame, got type {frame_type}")
    payloads = decode_batch_body(body)
    if not payloads:
        raise FrameError("empty batch frame")
    return decode_wire_message(payloads[0])


class LocalTransport:
    """In-process asyncio transport with optional latency and loss."""

    def __init__(
        self,
        latency: float = 0.0,
        drop_probability: float = 0.0,
        seed: int = 0,
        jitter: float = 0.0,
        corrupt_probability: float = 0.0,
    ):
        self.latency = latency
        self.drop_probability = drop_probability
        #: Extra uniform [0, jitter) delivery delay per message; nonzero
        #: jitter can reorder messages, like the simulator's jittery links.
        self.jitter = jitter
        #: Probability a sent message is corrupted in flight.  In-process
        #: messages have no byte encoding to damage, so corruption is
        #: modelled at its *observable* effect: the receiving transport
        #: detects the bad checksum and discards (counted in
        #: ``frames_rejected_crc``), exactly what TcpTransport does with
        #: a frame failing its CRC32 — detect-and-discard, the protocol's
        #: retransmission heals the gap.
        self.corrupt_probability = corrupt_probability
        self.rng = random.Random(seed)
        self._receivers: Dict[str, ReceiveFn] = {}
        self._down: Set[Tuple[str, str]] = set()
        #: Per-pair (drop, jitter, corrupt) overrides of the ambient
        #: pathology, keyed by the normalized broker pair — the real-time
        #: analogue of the simulator's timed bursts on one link.
        self._pathology: Dict[Tuple[str, str], Tuple[float, float, float]] = {}
        self.sent = 0
        self.dropped = 0
        #: Messages discarded as corrupt-in-flight (see above).
        self.frames_rejected_crc = 0
        #: Messages the chaos harness will corrupt next (deterministic
        #: injection, mirroring TcpTransport.corrupt_next_frames).
        self._corrupt_pending = 0
        self._m_rejected = NULL_INSTRUMENTS.counter("aio_frames_rejected_crc")

    def bind_instruments(self, instruments: Any) -> None:
        """Attach observability counters (done by :class:`AioSystem`)."""
        self._m_rejected = instruments.counter(
            "aio_frames_rejected_crc",
            "messages discarded as corrupt-in-flight (checksum reject)",
        )

    def corrupt_next_messages(self, count: int = 1) -> None:
        """Chaos hook: the next ``count`` sends are corrupted in flight
        and rejected by the receiving checksum (detect-and-discard)."""
        self._corrupt_pending += count

    def register(self, broker_id: str, on_receive: ReceiveFn) -> None:
        self._receivers[broker_id] = on_receive

    def unregister(self, broker_id: str) -> None:
        self._receivers.pop(broker_id, None)

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def fail_link(self, a: str, b: str) -> None:
        self._down.add(self._key(a, b))

    def recover_link(self, a: str, b: str) -> None:
        self._down.discard(self._key(a, b))

    def link_usable(self, a: str, b: str) -> bool:
        return self._key(a, b) not in self._down and b in self._receivers

    def set_pathology(
        self,
        a: str,
        b: str,
        drop_probability: float = 0.0,
        jitter: float = 0.0,
        corrupt_probability: float = 0.0,
    ) -> None:
        """Override the ambient drop/jitter/corrupt on one broker pair (a
        timed burst from a fault schedule).  Setting all to 0 clears the
        override, restoring the ambient pathology."""
        key = self._key(a, b)
        if drop_probability or jitter or corrupt_probability:
            self._pathology[key] = (drop_probability, jitter, corrupt_probability)
        else:
            self._pathology.pop(key, None)

    def clear_pathology(self, a: str, b: str) -> None:
        self._pathology.pop(self._key(a, b), None)

    def send(self, src: str, dst: str, message: Any) -> bool:
        self.sent += 1
        key = self._key(src, dst)
        if key in self._down:
            return False
        drop, jitter, corrupt = self._pathology.get(
            key, (self.drop_probability, self.jitter, self.corrupt_probability)
        )
        if drop and self.rng.random() < drop:
            self.dropped += 1
            return True
        if self._corrupt_pending > 0:
            self._corrupt_pending -= 1
            self.frames_rejected_crc += 1
            self._m_rejected.inc()
            return True
        if corrupt and self.rng.random() < corrupt:
            # Corrupted in flight: the receiver's checksum rejects it
            # (detect-and-discard); the message is never delivered and
            # the GD retransmission protocol heals the gap.
            self.frames_rejected_crc += 1
            self._m_rejected.inc()
            return True
        loop = asyncio.get_running_loop()

        def deliver() -> None:
            receiver = self._receivers.get(dst)
            if receiver is not None:
                receiver(src, message)

        delay = self.latency
        if jitter:
            delay += self.rng.random() * jitter
        if delay > 0:
            loop.call_later(delay, deliver)
        else:
            loop.call_soon(deliver)
        return True

    async def close(self) -> None:
        self._receivers.clear()


class _Connection:
    """Supervised outgoing connection state for one (src, dst) pair."""

    __slots__ = (
        "src",
        "dst",
        "outbox",
        "wakeup",
        "task",
        "up",
        "suspect",
        "last_ack",
        "attempts",
        "closing",
    )

    def __init__(self, src: str, dst: str):
        self.src = src
        self.dst = dst
        #: Encoded message payloads awaiting the wire (batch elements,
        #: not complete frames — the pump builds one frame per flush).
        #: Bounded (the sender sheds the oldest past OUTBOX_LIMIT): a
        #: dead peer must not grow an unbounded buffer — the protocol
        #: recovers dropped traffic through curiosity/retransmission once
        #: the link heals.  Payloads are popped only after a successful
        #: write+drain, so a connection failure re-sends the whole
        #: in-flight batch from the head after reconnect (at-least-once;
        #: the protocol is idempotent to duplicate envelopes).
        self.outbox: Deque[bytes] = deque()
        #: Set by send() to rouse the pump from its heartbeat wait.
        self.wakeup = asyncio.Event()
        self.task: Optional[asyncio.Task] = None
        #: True between a successful handshake and the next failure.
        self.up = False
        #: Set after a heartbeat timeout: a half-open peer accepts new
        #: TCP connections just fine, so a suspect connection is only
        #: reported usable again once the peer actually acks.
        self.suspect = False
        #: Loop time of the last heartbeat ack (or any successful write).
        self.last_ack = 0.0
        #: Consecutive failed connect attempts (drives the backoff).
        self.attempts = 0
        self.closing = False


class TcpTransport:
    """Localhost TCP transport with connection supervision.

    One listening socket per broker; per-(src, dst) outgoing connections
    carry length-prefixed binary frames (:mod:`repro.aio.wire`) and are
    owned by a supervisor task that:

    * establishes the connection lazily and re-establishes it after any
      failure with exponential backoff (``reconnect_base`` doubling up to
      ``reconnect_max``) plus seeded jitter, so a restarted broker's new
      ephemeral port is picked up without thundering herds;
    * sends a heartbeat frame every ``heartbeat_interval`` seconds and
      expects the peer's ack within ``heartbeat_timeout``; a silent
      (half-open) connection is detected and torn down, which flips
      ``link_usable`` to False the way a broker notices a dead link;
    * **cork-batches** the outbox: a nonempty outbox is left to
      accumulate for ``flush_delay`` seconds, then everything queued (up
      to ``max_batch_bytes`` / ``max_batch_msgs``) is written as one
      batch frame and drained once — N messages cost one syscall round
      trip instead of N.  ``flush_delay=0`` still coalesces whatever
      queued since the previous drain (greedy batching, no added
      latency); ``max_batch_msgs=1`` restores the historical
      frame-per-message compat behaviour.
    * drains a bounded outbox; when the outbox overflows while the link
      is down the oldest payload is shed (counted in ``shed``) — safe,
      because guaranteed traffic is recovered by the protocol's
      nack/retransmission machinery, never silently by the transport.

    Sends are serialized through a :class:`~repro.aio.wire.SerializeCache`
    so a message fanned out to several peers is encoded once; hits are
    counted in ``serialize_cache_hits``.
    """

    #: Payloads a downed connection may buffer before shedding the oldest.
    OUTBOX_LIMIT = 1024

    def __init__(
        self,
        heartbeat_interval: float = 0.1,
        heartbeat_timeout: Optional[float] = None,
        reconnect_base: float = 0.05,
        reconnect_max: float = 1.0,
        seed: int = 0,
        *,
        flush_delay: float = 0.001,
        max_batch_bytes: int = 256 * 1024,
        max_batch_msgs: Optional[int] = None,
        max_frame_bytes: int = wire.MAX_FRAME_BYTES,
    ) -> None:
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = (
            heartbeat_timeout
            if heartbeat_timeout is not None
            else 3.0 * heartbeat_interval
        )
        self.reconnect_base = reconnect_base
        self.reconnect_max = reconnect_max
        #: Cork window of the coalescing writer (seconds).  Bounded added
        #: latency per hop in exchange for far fewer frames and drains.
        self.flush_delay = flush_delay
        self.max_batch_bytes = max_batch_bytes
        self.max_batch_msgs = max_batch_msgs
        self.max_frame_bytes = max_frame_bytes
        self.rng = random.Random(seed)
        #: broker -> (host, port) once listening.
        self.addresses: Dict[str, Tuple[str, int]] = {}
        self._servers: Dict[str, asyncio.AbstractServer] = {}
        self._receivers: Dict[str, ReceiveFn] = {}
        self._conns: Dict[Tuple[str, str], _Connection] = {}
        #: Administratively severed broker pairs (chaos injection).
        self._severed: Set[Tuple[str, str]] = set()
        #: Writers of accepted inbound connections, per listening broker,
        #: so a broker crash can drop its half-open inbound sockets too.
        self._inbound: Dict[str, Set[asyncio.StreamWriter]] = {}
        #: Server-side handler tasks, per listening broker, so shutdown
        #: can end them instead of leaking them to loop teardown.
        self._handlers: Dict[str, Set[asyncio.Task]] = {}
        self._codec = SerializeCache()
        self.sent = 0
        self.shed = 0
        self.reconnects = 0
        self.heartbeat_failures = 0
        #: Batch frames actually written (heartbeats/hellos excluded).
        self.frames_sent = 0
        #: Messages carried by those frames.
        self.msgs_sent = 0
        #: Frame bytes written (headers + bodies of batch frames).
        self.bytes_sent = 0
        #: Inbound frames rejected by a CRC32 check (header or body);
        #: each reject also tears down its connection so reconnect +
        #: retransmission heal the stream.
        self.frames_rejected_crc = 0
        #: Frames the sender will deliberately corrupt before writing
        #: (chaos injection; see :meth:`corrupt_next_frames`).
        self._corrupt_pending = 0
        self._instruments = NULL_INSTRUMENTS
        self._m_frames = NULL_INSTRUMENTS.counter("aio_frames_sent")
        self._m_bytes = NULL_INSTRUMENTS.counter("aio_bytes_sent")
        self._m_cache_hits = NULL_INSTRUMENTS.counter("aio_serialize_cache_hits")
        self._m_batch = NULL_INSTRUMENTS.histogram("aio_msgs_per_frame")
        self._m_rejected = NULL_INSTRUMENTS.counter("aio_frames_rejected_crc")

    @property
    def serialize_cache_hits(self) -> int:
        """Sends whose encoding was served by the serialize-once cache."""
        return self._codec.hits

    def bind_instruments(self, instruments: Any) -> None:
        """Attach observability counters (done by :class:`AioSystem`)."""
        self._instruments = instruments
        self._m_frames = instruments.counter(
            "aio_frames_sent", "batch frames written to TCP connections"
        )
        self._m_bytes = instruments.counter(
            "aio_bytes_sent", "frame bytes written to TCP connections"
        )
        self._m_cache_hits = instruments.counter(
            "aio_serialize_cache_hits",
            "fan-out sends whose encoding was shared via the serialize-once cache",
        )
        self._m_batch = instruments.histogram(
            "aio_msgs_per_frame",
            "messages coalesced into each batch frame",
            boundaries=(1, 2, 4, 8, 16, 32, 64, 128, 256),
        )
        self._m_rejected = instruments.counter(
            "aio_frames_rejected_crc",
            "inbound frames rejected by a CRC32 check (header or body)",
        )

    def corrupt_next_frames(self, count: int = 1) -> None:
        """Chaos hook: flip one bit in each of the next ``count`` batch
        frames *after* encoding, before the bytes hit the socket — the
        receiver must detect the damage by CRC and reject the frame.  The
        sender treats the write as failed (the batch stays queued and is
        re-sent on the healed connection), so injection is lossless."""
        self._corrupt_pending += count

    # -- lifecycle ---------------------------------------------------------

    async def start_broker(self, broker_id: str, on_receive: ReceiveFn) -> None:
        """Begin listening for this broker on an ephemeral port."""
        self._receivers[broker_id] = on_receive
        inbound = self._inbound.setdefault(broker_id, set())
        handlers = self._handlers.setdefault(broker_id, set())

        async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
            src: Optional[str] = None
            task = asyncio.current_task()
            if task is not None:
                handlers.add(task)
            inbound.add(writer)
            decoder = FrameDecoder(self.max_frame_bytes)
            try:
                while True:
                    chunk = await reader.read(65536)
                    if not chunk:
                        return  # EOF: peer closed or died (half-open ends here)
                    decoder.feed(chunk)
                    for frame_type, body in decoder.frames():
                        if src is None:
                            # The first frame identifies the peer.
                            if frame_type != FRAME_HELLO:
                                raise FrameError(
                                    f"expected HELLO, got frame type {frame_type}"
                                )
                            src = json.loads(body.decode("utf-8"))["src"]
                            continue
                        if frame_type == FRAME_HEARTBEAT:
                            if not self._is_severed(src, broker_id):
                                writer.write(wire.HEARTBEAT_ACK_FRAME)
                                await writer.drain()
                            continue
                        if frame_type != FRAME_BATCH:
                            raise FrameError(
                                f"unexpected frame type {frame_type}"
                            )
                        if self._is_severed(src, broker_id):
                            continue  # the wire is cut; frames die here
                        receiver = self._receivers.get(broker_id)
                        for payload in decode_batch_body(body):
                            message = decode_wire_message(payload)
                            if receiver is not None:
                                result = receiver(src, message)
                                if asyncio.iscoroutine(result):
                                    # Backpressure: a full broker inbox
                                    # suspends this reader, and TCP flow
                                    # control pushes back on the sender.
                                    await result
            except wire.CorruptFrame:
                # A frame failed its CRC: never deliver any of it.  Count
                # the reject and treat the stream like a torn connection —
                # closing it makes the sender reconnect and re-send its
                # unpopped batches; anything already popped is healed by
                # the protocol's nack/retransmission machinery.
                self.frames_rejected_crc += 1
                self._m_rejected.inc()
            except (ConnectionError, json.JSONDecodeError, ValueError, KeyError):
                # FrameError/OversizedFrame are ValueErrors: a malformed
                # or hostile peer gets its connection closed, not a hang.
                pass
            except asyncio.CancelledError:
                # Absorb teardown cancellation: re-raising would trip the
                # streams module's done-callback (task.exception() raises
                # for cancelled tasks) and spam the loop's error log.
                pass
            finally:
                if task is not None:
                    handlers.discard(task)
                inbound.discard(writer)
                writer.close()

        server = await asyncio.start_server(handle, host="127.0.0.1", port=0)
        self._servers[broker_id] = server
        sockname = server.sockets[0].getsockname()
        self.addresses[broker_id] = (sockname[0], sockname[1])

    async def stop_broker(self, broker_id: str) -> None:
        """Stop listening and drop this broker's connections (crash)."""
        self._receivers.pop(broker_id, None)
        server = self._servers.pop(broker_id, None)
        if server is not None:
            server.close()
            await server.wait_closed()
        self.addresses.pop(broker_id, None)
        for writer in list(self._inbound.get(broker_id, ())):
            writer.close()
        self._inbound.pop(broker_id, None)
        handlers = self._handlers.pop(broker_id, set())
        for task in handlers:
            task.cancel()
        if handlers:
            await asyncio.gather(*handlers, return_exceptions=True)
        # Kill this broker's *outgoing* supervisors; connections *to* it
        # stay supervised on the remote side and reconnect on restart.
        for key in [k for k in self._conns if k[0] == broker_id]:
            await self._drop_connection(self._conns.pop(key))

    async def drain(self, timeout: float = 1.0) -> bool:
        """Best-effort flush: wait until every live connection's outbox is
        empty (all coalesced frames written and drained), or ``timeout``.

        Graceful-shutdown ordering: the coalescing writer holds queued
        messages for up to ``flush_delay``; closing the transport without
        draining first would discard a final cork window's worth of
        traffic.  Outboxes of downed links are excluded — they cannot
        drain and their loss is recovered by the protocol on restart.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout

        def flushed() -> bool:
            return all(
                not conn.outbox
                for conn in self._conns.values()
                if not conn.closing and conn.up
            )

        while not flushed():
            if loop.time() >= deadline:
                return False
            await asyncio.sleep(max(self.flush_delay, 0.002))
        return True

    async def close(self) -> None:
        for conn in list(self._conns.values()):
            await self._drop_connection(conn)
        self._conns.clear()
        for broker_id in list(self._servers):
            await self.stop_broker(broker_id)

    async def _drop_connection(self, conn: _Connection) -> None:
        conn.closing = True
        conn.up = False
        if conn.task is not None:
            conn.task.cancel()
            try:
                await conn.task
            except (asyncio.CancelledError, Exception):
                pass
            conn.task = None

    # -- fault injection ---------------------------------------------------

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def _is_severed(self, a: str, b: str) -> bool:
        return self._key(a, b) in self._severed

    def fail_link(self, a: str, b: str) -> None:
        """Sever the pair: established connections are torn down and new
        frames (including heartbeats' acks) die on the floor until
        :meth:`recover_link`."""
        self._severed.add(self._key(a, b))
        for key in ((a, b), (b, a)):
            conn = self._conns.get(key)
            if conn is not None:
                conn.up = False  # the supervisor notices and backs off

    def recover_link(self, a: str, b: str) -> None:
        self._severed.discard(self._key(a, b))

    # -- data path ---------------------------------------------------------

    def link_usable(self, a: str, b: str) -> bool:
        """Local knowledge of link health.

        A severed pair is down.  An established supervised connection
        reports its heartbeat-fresh status.  A pair never sent to yet is
        optimistically usable while the peer is listening (connections
        are lazy), matching how a broker assumes a link is fine until its
        transport learns otherwise.
        """
        if self._is_severed(a, b):
            return False
        conn = self._conns.get((a, b))
        if conn is not None and conn.task is not None:
            return conn.up
        return b in self.addresses

    def send(self, src: str, dst: str, message: Any) -> bool:
        """Fire-and-forget: enqueue the encoded payload on the supervised
        connection (spawning its supervisor on first use).  Returns the
        local link-health verdict, like the simulator's network."""
        self.sent += 1
        if self._is_severed(src, dst):
            return False
        conn = self._conns.get((src, dst))
        if conn is None:
            conn = _Connection(src, dst)
            self._conns[(src, dst)] = conn
            conn.task = asyncio.get_running_loop().create_task(
                self._supervise(conn)
            )
        hits_before = self._codec.hits
        payload = self._codec.encode(message)
        if self._codec.hits != hits_before:
            self._m_cache_hits.inc()
        conn.outbox.append(payload)
        while len(conn.outbox) > self.OUTBOX_LIMIT:
            # Shed the oldest buffered payload: bounded memory beats a
            # stale backlog, and the GD protocol re-requests anything
            # guaranteed that was lost.
            conn.outbox.popleft()
            self.shed += 1
        conn.wakeup.set()
        return conn.up or conn.task is not None and not conn.closing

    def _collect_batch(self, conn: _Connection) -> List[bytes]:
        """Head slice of the outbox that fits one batch frame."""
        batch: List[bytes] = []
        size = 0
        limit = self.max_batch_msgs
        for payload in conn.outbox:
            cost = len(payload) + 4
            if batch and size + cost > self.max_batch_bytes:
                break
            batch.append(payload)
            size += cost
            if limit is not None and len(batch) >= limit:
                break
        return batch

    # -- supervision -------------------------------------------------------

    def _backoff(self, attempts: int) -> float:
        """Exponential backoff with seeded jitter: base * 2^n, capped,
        then scaled by a uniform [0.5, 1.0) factor."""
        delay = min(self.reconnect_base * (2 ** attempts), self.reconnect_max)
        return delay * (0.5 + 0.5 * self.rng.random())

    async def _supervise(self, conn: _Connection) -> None:
        """Own one outgoing connection until the transport drops it:
        connect (with backoff), handshake, then pump the outbox and
        heartbeats until the connection fails; repeat."""
        try:
            while not conn.closing:
                address = self.addresses.get(conn.dst)
                if address is None or self._is_severed(conn.src, conn.dst):
                    conn.up = False
                    await asyncio.sleep(self._backoff(conn.attempts))
                    conn.attempts = min(conn.attempts + 1, 8)
                    continue
                try:
                    reader, writer = await asyncio.open_connection(*address)
                except OSError:
                    conn.up = False
                    await asyncio.sleep(self._backoff(conn.attempts))
                    conn.attempts = min(conn.attempts + 1, 8)
                    continue
                if conn.attempts:
                    self.reconnects += 1
                conn.attempts = 0
                try:
                    await self._run_connection(conn, reader, writer)
                finally:
                    conn.up = False
                    writer.close()
        except asyncio.CancelledError:
            pass

    async def _run_connection(
        self,
        conn: _Connection,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Pump one established connection until it fails."""
        loop = asyncio.get_running_loop()
        writer.write(wire.hello_frame(conn.src))
        await writer.drain()
        conn.up = not conn.suspect
        conn.last_ack = loop.time()

        async def read_acks() -> None:
            # Only heartbeat-ack frames flow back on an outgoing
            # connection; any inbound bytes are liveness evidence.
            while True:
                chunk = await reader.read(4096)
                if not chunk:
                    raise ConnectionResetError("peer closed")
                conn.last_ack = loop.time()
                conn.suspect = False
                conn.up = True

        ack_task = loop.create_task(read_acks())
        # Wake the pump promptly when the reader sees EOF/reset, instead
        # of waiting out the next heartbeat interval.
        ack_task.add_done_callback(lambda __: conn.wakeup.set())

        async def pump() -> None:
            next_beat = loop.time() + self.heartbeat_interval
            corked = False
            while True:
                if self._is_severed(conn.src, conn.dst):
                    raise ConnectionResetError("link severed")
                if ack_task.done():
                    raise ConnectionResetError("peer closed")
                now = loop.time()
                if now - conn.last_ack > self.heartbeat_timeout:
                    # Half-open: writes may still "succeed" into a dead
                    # socket, but the peer stopped acking heartbeats.
                    self.heartbeat_failures += 1
                    conn.suspect = True
                    raise ConnectionResetError("heartbeat timeout")
                if now >= next_beat:
                    writer.write(wire.HEARTBEAT_FRAME)
                    await writer.drain()
                    next_beat = now + self.heartbeat_interval
                if conn.outbox:
                    if self.flush_delay > 0 and not corked:
                        # Cork: let the outbox accumulate one flush
                        # window, then re-run the health checks above
                        # before writing the coalesced frame.
                        corked = True
                        await asyncio.sleep(self.flush_delay)
                        continue
                    corked = False
                    # Peek, write, drain, then pop: a failure mid-write
                    # leaves the whole in-flight batch at the head for
                    # the next incarnation to re-send.
                    batch = self._collect_batch(conn)
                    frame = encode_batch_frame(batch)
                    if self._corrupt_pending > 0:
                        # Chaos injection: damage the encoded bytes on
                        # the wire, keep the batch queued (peek, no pop),
                        # and fail the connection as the receiver's CRC
                        # reject will anyway — reconnect re-sends it.
                        self._corrupt_pending -= 1
                        damaged = bytearray(frame)
                        damaged[-1] ^= 0x40
                        writer.write(bytes(damaged))
                        await writer.drain()
                        raise ConnectionResetError("injected frame corruption")
                    writer.write(frame)
                    await writer.drain()
                    for payload in batch:
                        if conn.outbox and conn.outbox[0] is payload:
                            conn.outbox.popleft()
                    self.frames_sent += 1
                    self.msgs_sent += len(batch)
                    self.bytes_sent += len(frame)
                    self._m_frames.inc()
                    self._m_bytes.inc(len(frame))
                    self._m_batch.observe(len(batch))
                    continue
                conn.wakeup.clear()
                if conn.outbox:
                    continue  # raced with a send between check and clear
                try:
                    await asyncio.wait_for(
                        conn.wakeup.wait(), max(next_beat - loop.time(), 0.0)
                    )
                except asyncio.TimeoutError:
                    pass

        try:
            await pump()
        except (ConnectionError, OSError, RuntimeError):
            pass
        finally:
            ack_task.cancel()
            try:
                await ack_task
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass
