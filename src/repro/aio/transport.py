"""Asyncio transports for real-time broker deployments.

The deterministic simulator is the primary evaluation substrate (see
DESIGN.md §4), but the broker engine is transport-agnostic; this module
provides two asyncio transports so the same protocol runs in real time:

* :class:`LocalTransport` — in-process: every broker gets an inbox queue;
  sends are delivered by the event loop after an optional latency, with
  optional i.i.d. drops.  Useful for real-time integration tests and
  demos without sockets.
* :class:`TcpTransport` — real TCP on localhost: each broker listens on
  its own port and connects lazily to its neighbours; messages travel as
  JSON lines through the wire codec (:mod:`repro.core.messages` and the
  envelope/link-status codecs).

Both expose the same small interface: ``send(src, dst, message) -> bool``
plus a per-broker receive callback, and both report link usability the
way the paper's brokers learn it (the local connection state).
"""

from __future__ import annotations

import asyncio
import json
import random
from typing import Any, Callable, Dict, Optional, Set, Tuple

from ..broker.state import Envelope, LinkStatusMessage

__all__ = ["LocalTransport", "TcpTransport", "encode_frame", "decode_frame"]

#: Receive callback: (src_broker, message) -> None
ReceiveFn = Callable[[str, Any], None]


def encode_frame(message: Any) -> bytes:
    """Serialize an Envelope or LinkStatusMessage to one JSON line."""
    return (json.dumps(message.to_wire()) + "\n").encode("utf-8")


def decode_frame(line: bytes) -> Any:
    obj = json.loads(line.decode("utf-8"))
    kind = obj.get("kind")
    if kind == "envelope":
        return Envelope.from_wire(obj)
    if kind == "link_status":
        return LinkStatusMessage.from_wire(obj)
    raise ValueError(f"unknown frame kind {kind!r}")


class LocalTransport:
    """In-process asyncio transport with optional latency and loss."""

    def __init__(
        self,
        latency: float = 0.0,
        drop_probability: float = 0.0,
        seed: int = 0,
    ):
        self.latency = latency
        self.drop_probability = drop_probability
        self.rng = random.Random(seed)
        self._receivers: Dict[str, ReceiveFn] = {}
        self._down: Set[Tuple[str, str]] = set()
        self.sent = 0
        self.dropped = 0

    def register(self, broker_id: str, on_receive: ReceiveFn) -> None:
        self._receivers[broker_id] = on_receive

    def unregister(self, broker_id: str) -> None:
        self._receivers.pop(broker_id, None)

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def fail_link(self, a: str, b: str) -> None:
        self._down.add(self._key(a, b))

    def recover_link(self, a: str, b: str) -> None:
        self._down.discard(self._key(a, b))

    def link_usable(self, a: str, b: str) -> bool:
        return self._key(a, b) not in self._down and b in self._receivers

    def send(self, src: str, dst: str, message: Any) -> bool:
        self.sent += 1
        if self._key(src, dst) in self._down:
            return False
        if self.drop_probability and self.rng.random() < self.drop_probability:
            self.dropped += 1
            return True
        loop = asyncio.get_running_loop()

        def deliver() -> None:
            receiver = self._receivers.get(dst)
            if receiver is not None:
                receiver(src, message)

        if self.latency > 0:
            loop.call_later(self.latency, deliver)
        else:
            loop.call_soon(deliver)
        return True


class TcpTransport:
    """Localhost TCP transport: one listening socket per broker,
    lazily established outgoing connections, JSON-lines framing."""

    def __init__(self) -> None:
        #: broker -> (host, port) once listening.
        self.addresses: Dict[str, Tuple[str, int]] = {}
        self._servers: Dict[str, asyncio.AbstractServer] = {}
        self._receivers: Dict[str, ReceiveFn] = {}
        #: (src, dst) -> writer for established outgoing connections.
        self._writers: Dict[Tuple[str, str], asyncio.StreamWriter] = {}
        self.sent = 0

    async def start_broker(self, broker_id: str, on_receive: ReceiveFn) -> None:
        """Begin listening for this broker on an ephemeral port."""
        self._receivers[broker_id] = on_receive

        async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
            try:
                # First line identifies the peer.
                hello = await reader.readline()
                if not hello:
                    return
                src = json.loads(hello.decode("utf-8"))["src"]
                while True:
                    line = await reader.readline()
                    if not line:
                        return
                    message = decode_frame(line)
                    receiver = self._receivers.get(broker_id)
                    if receiver is not None:
                        receiver(src, message)
            except (ConnectionError, json.JSONDecodeError, ValueError):
                pass
            finally:
                writer.close()

        server = await asyncio.start_server(handle, host="127.0.0.1", port=0)
        self._servers[broker_id] = server
        sockname = server.sockets[0].getsockname()
        self.addresses[broker_id] = (sockname[0], sockname[1])

    async def stop_broker(self, broker_id: str) -> None:
        """Stop listening and drop this broker's connections (crash)."""
        self._receivers.pop(broker_id, None)
        server = self._servers.pop(broker_id, None)
        if server is not None:
            server.close()
            await server.wait_closed()
        self.addresses.pop(broker_id, None)
        for key in [k for k in self._writers if broker_id in k]:
            writer = self._writers.pop(key)
            writer.close()

    async def _writer_for(self, src: str, dst: str) -> Optional[asyncio.StreamWriter]:
        key = (src, dst)
        writer = self._writers.get(key)
        if writer is not None and not writer.is_closing():
            return writer
        address = self.addresses.get(dst)
        if address is None:
            return None
        try:
            __, writer = await asyncio.open_connection(*address)
        except OSError:
            return None
        writer.write((json.dumps({"src": src}) + "\n").encode("utf-8"))
        self._writers[key] = writer
        return writer

    def link_usable(self, a: str, b: str) -> bool:
        return b in self.addresses

    def send(self, src: str, dst: str, message: Any) -> bool:
        """Fire-and-forget: framing + write happen on the event loop."""
        self.sent += 1
        asyncio.get_running_loop().create_task(self._send(src, dst, message))
        return True

    async def _send(self, src: str, dst: str, message: Any) -> None:
        writer = await self._writer_for(src, dst)
        if writer is None:
            return
        try:
            writer.write(encode_frame(message))
            await writer.drain()
        except (ConnectionError, RuntimeError):
            self._writers.pop((src, dst), None)

    async def close(self) -> None:
        for broker_id in list(self._servers):
            await self.stop_broker(broker_id)
