"""Deterministic benchmark suite behind ``python -m repro bench``.

Runs the hot-path workloads of ``benchmarks/test_core_microbench.py`` and
``benchmarks/test_matching_engine.py`` as plain functions (no pytest
needed) plus an end-to-end chain-topology batching comparison, and emits
a ``BENCH_4.json`` report with, per benchmark:

* **wall-clock** — informative only; it varies with the machine and is
  never gated on;
* **deterministic operation counters** — IntervalMap splice/tail-append
  counts (:data:`repro.core.intervals.STATS`), scheduler ``events_run``,
  knowledge messages sent — bit-identical across runs on any machine,
  which is what the CI ``bench-gate`` job diffs against the committed
  baseline (``benchmarks/baseline_counters.json``).

Gate semantics: every counter in the baseline is *more-is-worse*; the
check fails when any counter grows more than ``--tolerance`` (default
5%) over its baseline value.  Counters that shrink (an optimization)
print a hint to refresh the baseline with ``--write-baseline``.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["run_benchmarks", "compare_counters", "main"]

#: Report schema tag (the PR number that introduced the file).
BENCH_VERSION = 4


def _timed(fn: Callable[[], Any], repeat: int) -> Tuple[float, Any]:
    """Best-of-``repeat`` wall time and the (last) return value."""
    best = float("inf")
    value: Any = None
    for __ in range(repeat):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


def _bench_interval_map_appends(repeat: int) -> Dict[str, Any]:
    """The dominant pubend pattern: sequential tail appends — fast path
    on vs off (mirrors ``test_interval_map_sequential_appends``)."""
    from .core.intervals import STATS, IntervalMap
    from .core.lattice import K
    from .core.ticks import TickRange

    def run() -> int:
        m: IntervalMap = IntervalMap(K.Q)
        for i in range(2000):
            m.set_range(TickRange(i * 10, i * 10 + 10), K.F if i % 2 else K.D)
        return m.run_count()

    counters: Dict[str, int] = {}
    walls: Dict[str, float] = {}
    try:
        for mode, enabled in (("fast", True), ("slow", False)):
            IntervalMap.fast_path = enabled
            STATS.reset()
            walls[mode], __ = _timed(run, repeat)
            snap = STATS.snapshot()
            counters[f"interval_appends_{mode}_splices"] = snap["splices"] // repeat
            if mode == "fast":
                counters["interval_appends_tail"] = snap["tail_appends"] // repeat
    finally:
        IntervalMap.fast_path = True
        STATS.reset()
    speedup = walls["slow"] / walls["fast"] if walls["fast"] > 0 else float("inf")
    return {
        "wall_s": walls["fast"],
        "wall_slow_s": walls["slow"],
        "speedup": round(speedup, 2),
        "counters": counters,
    }


def _bench_publish_pattern(repeat: int) -> Dict[str, Any]:
    """Bracket-finalize + append-D, the pubend hot loop (mirrors
    ``test_knowledge_stream_publish_pattern``)."""
    from .core.intervals import STATS
    from .core.streams import KnowledgeStream
    from .core.ticks import TickRange

    def run() -> int:
        s = KnowledgeStream()
        tick = 0
        for i in range(2000):
            s.accumulate_final(TickRange(tick, tick + 40))
            tick += 40
            s.accumulate_data(tick, i)
            tick += 1
        return s.d_tick_count()

    STATS.reset()
    wall, count = _timed(run, repeat)
    snap = STATS.snapshot()
    STATS.reset()
    assert count == 2000
    return {
        "wall_s": wall,
        "counters": {
            "publish_pattern_splices": snap["splices"] // repeat,
            "publish_pattern_updates": snap["updates"] // repeat,
        },
    }


def _build_matcher(matcher_cls: Callable[..., Any], **kwargs: Any) -> Any:
    from .matching.parser import parse

    matcher = matcher_cls(**kwargs)
    for i in range(2000):
        group = i % 200
        if i % 3 == 0:
            predicate = parse(f"group = {group}")
        elif i % 3 == 1:
            predicate = parse(f"group = {group} and price > {i % 50}")
        else:
            predicate = parse(f"group = {group} and region = 'r{i % 7}'")
        matcher.add(f"s{i}", predicate)
    return matcher


def _bench_matching(repeat: int) -> Dict[str, Any]:
    """Brute force vs counting index vs counting index + LRU cache, on a
    cyclic event stream (the paper's overhead workload publishes from a
    small group universe, so the cache hit rate is high)."""
    from .matching.engine import BruteForceMatcher, IndexedMatcher
    from .matching.events import Event

    events = [
        Event({"group": i % 200, "price": (i * 13) % 100, "region": f"r{i % 7}"})
        for i in range(1000)
    ]
    brute = _build_matcher(BruteForceMatcher)
    indexed = _build_matcher(IndexedMatcher, cache_size=0)
    cached = _build_matcher(IndexedMatcher, cache_size=1024)

    def match_all(matcher: Any) -> int:
        total = 0
        for event in events:
            total += len(matcher.match(event))
        return total

    wall_brute, total_brute = _timed(lambda: match_all(brute), 1)
    wall_indexed, total_indexed = _timed(lambda: match_all(indexed), repeat)
    wall_cached, total_cached = _timed(lambda: match_all(cached), repeat)
    assert total_brute == total_indexed == total_cached, "matchers diverged"
    return {
        "wall_s": wall_cached,
        "wall_indexed_s": wall_indexed,
        "wall_brute_s": wall_brute,
        "cache_speedup": round(wall_indexed / wall_cached, 2)
        if wall_cached > 0
        else float("inf"),
        "counters": {
            # All misses happen on the first (cold) pass; warm passes hit.
            "match_cache_misses": cached.cache_misses,
        },
        "cache_hits": cached.cache_hits,
    }


def _chain_run(flush_delay: float, causal: bool = False) -> Dict[str, int]:
    """A deterministic PHB -> MID -> SHB chain: 1500 publications, full
    drain, per-run protocol counters."""
    from .core.config import LivenessParams
    from .topology import Topology

    topo = Topology()
    topo.cell("PHB", "p")
    topo.cell("MID", "m")
    topo.cell("SHB", "s")
    topo.link("p", "m", latency=0.002)
    topo.link("m", "s", latency=0.002)
    topo.pubend("P0", "p")
    topo.route_all("PHB", "MID")
    topo.route_all("MID", "SHB")
    system = topo.build(
        seed=1,
        params=LivenessParams(flush_delay=flush_delay),
        log_commit_latency=0.0,
    )
    tracer = None
    if causal:
        from .obs.causal import CausalTracer

        tracer = CausalTracer(system).install()
    subscriber = system.subscribe("sub", "s", ("P0",))
    publisher = system.publisher("P0", rate=500.0)
    publisher.start()
    system.run_until(3.0)
    publisher.stop()
    system.run_for(4.0)
    knowledge_sent = sum(
        broker.engine.counters.get("knowledge_sent", 0)
        for broker in system.brokers.values()
        if getattr(broker, "engine", None) is not None
    )
    published = len(publisher.published)
    delivered = subscriber.count()
    assert delivered == published, "chain run lost or duplicated messages"
    return {
        "knowledge_sent": knowledge_sent,
        "events_run": system.scheduler.events_run,
        "published": published,
        "causal_spans": len(tracer.spans) if tracer is not None else 0,
    }


def _bench_chain_batching(repeat: int) -> Dict[str, Any]:
    """End-to-end knowledge-message cost per published event on a chain,
    immediate (flush_delay=0) vs batched (flush_delay=0.05)."""
    wall_imm, immediate = _timed(lambda: _chain_run(0.0), 1)
    wall_bat, batched = _timed(lambda: _chain_run(0.05), 1)
    reduction = (
        immediate["knowledge_sent"] / batched["knowledge_sent"]
        if batched["knowledge_sent"]
        else float("inf")
    )
    return {
        "wall_s": wall_imm,
        "wall_batched_s": wall_bat,
        "published": immediate["published"],
        "knowledge_msgs_per_event_immediate": round(
            immediate["knowledge_sent"] / immediate["published"], 3
        ),
        "knowledge_msgs_per_event_batched": round(
            batched["knowledge_sent"] / batched["published"], 3
        ),
        "batching_reduction": round(reduction, 2),
        "counters": {
            "chain_knowledge_sent_immediate": immediate["knowledge_sent"],
            "chain_knowledge_sent_batched": batched["knowledge_sent"],
            "chain_events_run_immediate": immediate["events_run"],
            "chain_events_run_batched": batched["events_run"],
        },
    }


def _bench_trace_overhead(repeat: int) -> Dict[str, Any]:
    """Wall-clock cost of full causal tracing on the end-to-end chain
    run.  The span count is deterministic (gated like any counter); the
    overhead ratio is wall-clock and only gated when the CI bench job
    passes ``--max-trace-overhead``.
    """
    # Noise on shared CI machines dwarfs the signal, so measure paired:
    # each round times a plain and a traced run back to back (CPU time,
    # not wall-clock), with a gc.collect() before each half so collector
    # debt lands on neither side.  The gated statistic is the *lower
    # quartile* of the per-round ratios — a noise-floor estimate.  Noise
    # inflates whichever half it lands in, so single rounds swing ±10%
    # either way; a real tracer regression shifts the whole distribution,
    # so the quartile still catches it without flaking on one bad round.
    import gc

    rounds = max(repeat, 9)
    ratios: List[float] = []
    wall_plain = wall_traced = float("inf")
    plain = traced = None
    _chain_run(0.0, causal=True)  # warm caches/allocator off the clock
    for __ in range(rounds):
        gc.collect()
        started = time.process_time()
        plain = _chain_run(0.0)
        plain_done = time.process_time()
        gc.collect()
        mid = time.process_time()
        traced = _chain_run(0.0, causal=True)
        done = time.process_time()
        wall_plain = min(wall_plain, plain_done - started)
        wall_traced = min(wall_traced, done - mid)
        if plain_done > started:
            ratios.append((done - mid) / (plain_done - started))
    assert traced["events_run"] == plain["events_run"], (
        "causal tracing must not schedule events"
    )
    ratios.sort()
    overhead = ratios[len(ratios) // 4] - 1.0 if ratios else 0.0
    return {
        "wall_s": wall_plain,
        "wall_traced_s": wall_traced,
        "trace_overhead": round(overhead, 4),
        "counters": {"trace_causal_spans": traced["causal_spans"]},
    }


def _bench_aio_throughput(repeat: int) -> Dict[str, Any]:
    """Real-time backend throughput: 1000 back-to-back publications
    through the b0-b1-b2 chain on the asyncio runtime (in-process
    transport), timed to the last delivery.

    Wall-clock (and msgs/s) is informative only.  The gated counters are
    the fixed publication count and ``aio_throughput_undelivered``
    (baseline 0): losing even one message through the real-time path
    fails the gate, which is the parity claim — the aio backend delivers
    exactly what the simulator does.

    The informative speedup is measured *paired*, like the trace-overhead
    bench: each round runs the compat configuration (``inbox_batch=1``,
    one inbox message per task wakeup) and the batched default back to
    back, and the reported statistic is the lower quartile of the
    per-round ratios — robust against noise on shared CI machines.
    """
    import asyncio
    import gc

    from .aio.chaos import FAST_PARAMS, chain_topology
    from .aio.runtime import AioSystem

    n_messages = 1000  # pinned: the gated published count

    async def run(inbox_batch: int) -> Tuple[float, int]:
        system = AioSystem(
            chain_topology(link_latency=0.0),
            params=FAST_PARAMS,
            inbox_batch=inbox_batch,
        )
        await system.start()
        client = system.subscribe("bench", "b2", ("P0", "P1"))
        publisher = system.publisher("P0", rate=1.0)  # driven manually
        loop = asyncio.get_running_loop()
        started = loop.time()
        for i in range(n_messages):
            publisher.publish_once()
            if i % 100 == 99:
                await asyncio.sleep(0)  # let inbox drain tasks keep pace
        deadline = loop.time() + 10.0
        while len(client.received) < n_messages and loop.time() < deadline:
            await asyncio.sleep(0.005)
        elapsed = loop.time() - started
        undelivered = n_messages - len(client.received)
        await system.shutdown()
        return elapsed, undelivered

    rounds = max(repeat, 3)
    best = best_compat = float("inf")
    undelivered = 0
    ratios: List[float] = []
    for __ in range(rounds):
        gc.collect()
        compat_elapsed, compat_undelivered = asyncio.run(run(1))
        gc.collect()
        elapsed, round_undelivered = asyncio.run(run(64))
        undelivered = max(undelivered, round_undelivered, compat_undelivered)
        best = min(best, elapsed)
        best_compat = min(best_compat, compat_elapsed)
        if elapsed > 0:
            ratios.append(compat_elapsed / elapsed)
    ratios.sort()
    speedup = ratios[len(ratios) // 4] if ratios else 1.0
    return {
        "wall_s": best,
        "wall_compat_s": best_compat,
        "throughput_msgs_s": round(n_messages / best) if best > 0 else 0,
        "inbox_batch_speedup": round(speedup, 2),
        "counters": {
            "aio_throughput_published": n_messages,
            "aio_throughput_undelivered": undelivered,
        },
    }


def _bench_aio_wire(repeat: int) -> Dict[str, Any]:
    """Wire-protocol cost over real TCP: the b0-b1-b2 chain with 400
    pinned publications, compat framing (``max_batch_msgs=1``,
    ``flush_delay=0`` — one frame and one drain per message, like the
    old JSON-lines codec) vs the batched default (cork-coalescing
    writer), paired per round.

    Gated counters:

    * ``aio_wire_published`` / ``aio_wire_undelivered`` — the pinned
      count and the exactly-once parity claim (baseline 0), as in
      ``aio_throughput``;
    * ``aio_wire_excess_frames`` — ``max(0, 3 * frames_batched -
      frames_compat)`` from the best round: stays 0 only while the
      batched configuration uses at most a third of the compat
      configuration's frames for the same workload — the ≥3x
      frames-per-message acceptance floor;
    * ``aio_wire_latency_violations`` — rounds whose batched p95
      delivery latency exceeded the compat p95 by more than
      ``6 * flush_delay + 0.05s``: coalescing must buy its frame
      reduction with bounded added latency, never unbounded queueing.
    """
    import asyncio
    import dataclasses
    import gc

    from .aio.chaos import FAST_PARAMS, chain_topology
    from .aio.runtime import AioSystem
    from .aio.transport import TcpTransport

    n_messages = 400  # pinned: the gated published count
    flush_delay = 0.001
    latency_bound = 6 * flush_delay + 0.05
    # The batched configuration is the full batching stack: cork-batched
    # binary frames + inbox micro-batching + engine-level knowledge
    # flushing (LivenessParams.flush_delay), the way a deployment would
    # run it.
    batched_params = dataclasses.replace(FAST_PARAMS, flush_delay=flush_delay)

    async def run(batched: bool) -> Dict[str, Any]:
        wire = TcpTransport(
            seed=7,
            flush_delay=flush_delay if batched else 0.0,
            max_batch_msgs=None if batched else 1,
        )
        system = AioSystem(
            chain_topology(link_latency=0.0),
            params=batched_params if batched else FAST_PARAMS,
            transport=wire,
            inbox_batch=64 if batched else 1,
        )
        await system.start()
        client = system.subscribe("bench", "b2", ("P0", "P1"))
        publisher = system.publisher("P0", rate=1.0)  # driven manually
        loop = asyncio.get_running_loop()
        started = loop.time()
        for i in range(n_messages):
            publisher.publish_once()
            if i % 50 == 49:
                await asyncio.sleep(0)
        deadline = loop.time() + 15.0
        while len(client.received) < n_messages and loop.time() < deadline:
            await asyncio.sleep(0.002)
        elapsed = loop.time() - started
        latencies = sorted(
            received_at - payload["ts"]
            for (__, __tick, payload, received_at) in client.received
        )
        p95 = latencies[int(0.95 * (len(latencies) - 1))] if latencies else 0.0
        stats = {
            "elapsed": elapsed,
            "undelivered": n_messages - len(client.received),
            "p95": p95,
            "frames": wire.frames_sent,
            "msgs": wire.msgs_sent,
            "bytes": wire.bytes_sent,
            "cache_hits": wire.serialize_cache_hits,
        }
        await system.shutdown()
        return stats

    rounds = max(repeat, 3)
    undelivered = latency_violations = 0
    best: Optional[Dict[str, Any]] = None
    best_compat: Optional[Dict[str, Any]] = None
    ratios: List[float] = []
    excess_frames: Optional[int] = None
    for __ in range(rounds):
        gc.collect()
        compat = asyncio.run(run(batched=False))
        gc.collect()
        batched = asyncio.run(run(batched=True))
        undelivered = max(
            undelivered, compat["undelivered"], batched["undelivered"]
        )
        if batched["p95"] - compat["p95"] > latency_bound:
            latency_violations += 1
        if batched["elapsed"] > 0:
            ratios.append(compat["elapsed"] / batched["elapsed"])
        round_excess = max(0, 3 * batched["frames"] - compat["frames"])
        excess_frames = (
            round_excess
            if excess_frames is None
            else min(excess_frames, round_excess)
        )
        if best is None or batched["elapsed"] < best["elapsed"]:
            best = batched
        if best_compat is None or compat["elapsed"] < best_compat["elapsed"]:
            best_compat = compat
    assert best is not None and best_compat is not None
    ratios.sort()
    speedup = ratios[len(ratios) // 4] if ratios else 1.0
    msgs_per_frame = best["msgs"] / best["frames"] if best["frames"] else 0.0
    return {
        "wall_s": best["elapsed"],
        "wall_compat_s": best_compat["elapsed"],
        "throughput_msgs_s": round(n_messages / best["elapsed"])
        if best["elapsed"] > 0
        else 0,
        "batching_speedup": round(speedup, 2),
        "msgs_per_frame": round(msgs_per_frame, 2),
        "frames_per_published": round(best["frames"] / n_messages, 3),
        "frames_per_published_compat": round(
            best_compat["frames"] / n_messages, 3
        ),
        # Same pinned workload, so the frame ratio IS the per-message
        # frame reduction of the full batching stack.
        "frame_reduction": round(best_compat["frames"] / best["frames"], 2)
        if best["frames"]
        else float("inf"),
        "bytes_per_msg": round(best["bytes"] / best["msgs"], 1)
        if best["msgs"]
        else 0.0,
        "p95_latency_s": round(best["p95"], 4),
        "p95_latency_compat_s": round(best_compat["p95"], 4),
        "serialize_cache_hits": best["cache_hits"],
        "counters": {
            "aio_wire_published": n_messages,
            "aio_wire_undelivered": undelivered,
            "aio_wire_excess_frames": excess_frames or 0,
            "aio_wire_latency_violations": latency_violations,
        },
    }


def _bench_integrity_overhead(repeat: int) -> Dict[str, Any]:
    """Cost of the v2 checksummed log record format vs the legacy bare
    JSON-lines format: paired append rounds into real files (``sync=False``
    so fsync latency — identical on both sides — does not drown the CRC
    and framing cost under measurement noise).

    The gated statistic is the lower quartile of per-round CPU-time
    ratios, the same noise-floor estimator as ``trace_overhead``:
    ``integrity_overhead_violations`` is 1 when even that optimistic
    estimate says framing + CRC32 costs more than 5% over bare JSON
    (baseline 0).  ``integrity_records`` pins the workload size.
    """
    import gc
    import os
    import tempfile

    from .storage.log import FileLog, LogEntry

    n_records = 2000  # pinned: the gated workload size

    def run(directory: str, record_format: str) -> None:
        path = os.path.join(directory, f"bench-{record_format}.log")
        log = FileLog(path, record_format=record_format, sync=False)
        try:
            for i in range(n_records):
                log.append(LogEntry("P0", i + 1, {"seq": i, "ts": 0.125 * i}))
        finally:
            log.close()
            os.unlink(path)

    rounds = max(repeat, 9)
    ratios: List[float] = []
    wall_v1 = wall_v2 = float("inf")
    with tempfile.TemporaryDirectory(prefix="repro-bench-integrity-") as tmp:
        run(tmp, "v2")  # warm caches/allocator off the clock
        for __ in range(rounds):
            gc.collect()
            started = time.process_time()
            run(tmp, "v1")
            v1_done = time.process_time()
            gc.collect()
            mid = time.process_time()
            run(tmp, "v2")
            done = time.process_time()
            wall_v1 = min(wall_v1, v1_done - started)
            wall_v2 = min(wall_v2, done - mid)
            if v1_done > started:
                ratios.append((done - mid) / (v1_done - started))
    ratios.sort()
    overhead = ratios[len(ratios) // 4] - 1.0 if ratios else 0.0
    return {
        "wall_s": wall_v2,
        "wall_v1_s": wall_v1,
        "integrity_overhead": round(overhead, 4),
        "counters": {
            "integrity_records": n_records,
            "integrity_overhead_violations": 1 if overhead > 0.05 else 0,
        },
    }


def _bench_message_alloc(repeat: int) -> Dict[str, Any]:
    """Hot-path message allocation: DataTick + KnowledgeMessage +
    Envelope construction and attribute access, 20k iterations.  Tracks
    the ``__slots__`` savings on the per-message wire classes — wall
    only, never gated (allocation speed is machine-dependent)."""
    from .broker.state import Envelope
    from .core.messages import DataTick, KnowledgeMessage

    def run() -> int:
        total = 0
        for i in range(20000):
            data = DataTick(i, {"seq": i})
            message = KnowledgeMessage(
                pubend="P0", fin_prefix=i, f_ranges=(), data=(data,)
            )
            envelope = Envelope(message)
            total += envelope.payload.fin_prefix
        return total

    wall, __ = _timed(run, repeat)
    slotted = not hasattr(Envelope(KnowledgeMessage("P0", 0, (), ())), "__dict__")
    return {"wall_s": wall, "slots_active": slotted, "counters": {}}


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

BENCHMARKS: Tuple[Tuple[str, Callable[[int], Dict[str, Any]]], ...] = (
    ("interval_map_appends", _bench_interval_map_appends),
    ("knowledge_publish_pattern", _bench_publish_pattern),
    ("matching_engine", _bench_matching),
    ("chain_batching", _bench_chain_batching),
    ("trace_overhead", _bench_trace_overhead),
    ("integrity_overhead", _bench_integrity_overhead),
    ("message_alloc", _bench_message_alloc),
    ("aio_throughput", _bench_aio_throughput),
    ("aio_wire", _bench_aio_wire),
)


def run_benchmarks(repeat: int = 3) -> Dict[str, Any]:
    """Run every benchmark; returns the full BENCH report object."""
    report: Dict[str, Any] = {
        "bench_version": BENCH_VERSION,
        "repeat": repeat,
        "benchmarks": {},
        "counters": {},
    }
    for name, fn in BENCHMARKS:
        result = fn(repeat)
        report["benchmarks"][name] = result
        for counter, value in result.get("counters", {}).items():
            report["counters"][counter] = value
    report["derived"] = {
        "interval_fast_speedup": report["benchmarks"]["interval_map_appends"][
            "speedup"
        ],
        "batching_reduction": report["benchmarks"]["chain_batching"][
            "batching_reduction"
        ],
        "trace_overhead": report["benchmarks"]["trace_overhead"][
            "trace_overhead"
        ],
        "integrity_overhead": report["benchmarks"]["integrity_overhead"][
            "integrity_overhead"
        ],
    }
    return report


def compare_counters(
    current: Dict[str, int],
    baseline: Dict[str, int],
    tolerance: float = 0.05,
) -> List[str]:
    """Regression messages for counters above baseline by > ``tolerance``.

    Every gated counter is more-is-worse.  Counters missing from the
    current run (a renamed or removed benchmark) also fail: the baseline
    must be updated deliberately, never silently skipped.
    """
    problems: List[str] = []
    for counter, expected in sorted(baseline.items()):
        actual = current.get(counter)
        if actual is None:
            problems.append(f"{counter}: missing from current run")
            continue
        if expected == 0:
            if actual > 0:
                problems.append(f"{counter}: {actual} vs baseline 0")
            continue
        ratio = actual / expected
        if ratio > 1.0 + tolerance:
            problems.append(
                f"{counter}: {actual} vs baseline {expected} "
                f"(+{100 * (ratio - 1):.1f}% > {100 * tolerance:.0f}% tolerance)"
            )
    return problems


def main(args: Any) -> int:
    report = run_benchmarks(repeat=args.repeat)

    print(f"{'benchmark':<28} {'wall (ms)':>10}  notes")
    for name, result in report["benchmarks"].items():
        notes = []
        if "speedup" in result:
            notes.append(f"fast-path speedup {result['speedup']}x")
        if "cache_speedup" in result:
            notes.append(f"cache speedup {result['cache_speedup']}x")
        if "batching_reduction" in result:
            notes.append(f"batching reduction {result['batching_reduction']}x")
        if "trace_overhead" in result:
            notes.append(
                f"causal tracing +{100 * result['trace_overhead']:.1f}% wall"
            )
        if "integrity_overhead" in result:
            notes.append(
                f"crc framing +{100 * result['integrity_overhead']:.1f}% wall"
            )
        if "throughput_msgs_s" in result:
            notes.append(f"{result['throughput_msgs_s']} msgs/s end-to-end")
        if "msgs_per_frame" in result:
            notes.append(
                f"{result['msgs_per_frame']} msgs/frame "
                f"({result['frame_reduction']}x vs compat)"
            )
        print(
            f"{name:<28} {1000 * result['wall_s']:>10.2f}  {', '.join(notes)}"
        )
    print()
    for counter, value in sorted(report["counters"].items()):
        print(f"  {counter} = {value}")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.json}")

    if args.write_baseline:
        with open(args.write_baseline, "w") as handle:
            json.dump(
                {"bench_version": BENCH_VERSION, "counters": report["counters"]},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"wrote baseline {args.write_baseline}")

    max_trace_overhead = getattr(args, "max_trace_overhead", None)
    if max_trace_overhead is not None:
        overhead = report["derived"]["trace_overhead"]
        if overhead > max_trace_overhead:
            print(
                f"\nBENCH GATE FAILED: causal tracing overhead "
                f"{100 * overhead:.1f}% exceeds "
                f"{100 * max_trace_overhead:.0f}% limit"
            )
            return 1
        print(
            f"\ntrace overhead OK: {100 * overhead:.1f}% <= "
            f"{100 * max_trace_overhead:.0f}%"
        )

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        problems = compare_counters(
            report["counters"], baseline.get("counters", {}), args.tolerance
        )
        if problems:
            print("\nBENCH GATE FAILED:")
            for line in problems:
                print(f"  {line}")
            return 1
        improved = [
            counter
            for counter, expected in baseline.get("counters", {}).items()
            if report["counters"].get(counter, expected) < expected
        ]
        print(f"\nbench gate OK vs {args.check}")
        if improved:
            print(
                "  improved counters (consider --write-baseline): "
                + ", ".join(sorted(improved))
            )
    return 0
