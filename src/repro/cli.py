"""Command-line interface: run the paper's experiments from a shell.

Examples::

    python -m repro fig6                  # Figure 6 link-failure dynamics
    python -m repro fig7 --seed 11        # Figure 7 with a different seed
    python -m repro overhead --subs 100 400 --rate 200
    python -m repro quickcheck            # fast end-to-end sanity run
    python -m repro stats --topology figure3 --duration 5   # metrics snapshot
    python -m repro trace --drop 0.1 --chrome out.json    # causal spans + Perfetto
    python -m repro fuzz --seed 7 --runs 50 --shrink      # oracle fuzzing
    python -m repro replay tests/corpus/*.json            # corpus replay

Each experiment prints the same rows/series the corresponding benchmark
asserts on (see EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .experiments.fig45 import run_overhead_sweep
from .experiments.fig678 import run_fault_experiment

__all__ = ["main"]


def _cmd_fault(args: argparse.Namespace) -> int:
    fault = {"fig6": "link_b1_s1", "fig7": "crash_b1", "fig8": "crash_p1"}[args.command]
    result = run_fault_experiment(fault, seed=args.seed)
    if args.dump:
        from .analysis import cumulative, write_series_csv

        series = {
            f"latency:{sub}": points for sub, points in result.latency.items()
        }
        series.update(
            {f"nack_range:{node}": cumulative(points)
             for node, points in result.nacks.items()}
        )
        with open(args.dump, "w", encoding="utf-8", newline="") as fh:
            rows = write_series_csv(fh, series)
        print(f"wrote {rows} rows to {args.dump}")
    print(f"fault experiment: {fault} (seed {args.seed})")
    for line in result.fault_log:
        print(f"  {line}")
    print()
    print(f"{'subscriber':>10} {'delivered':>10} {'expected':>9} "
          f"{'exactly once':>13} {'peak lat (s)':>13}")
    for sub in sorted(result.latency):
        delivered, expected = result.counts[sub]
        print(
            f"{sub:>10} {delivered:>10} {expected:>9} "
            f"{str(result.exactly_once[sub]):>13} "
            f"{result.max_latency(sub):>13.2f}"
        )
    print()
    if result.nacks:
        print(f"{'node':>6} {'nack msgs':>10} {'nack range (ms)':>16}")
        for node in sorted(result.nacks):
            print(
                f"{node:>6} {result.nack_count(node):>10} "
                f"{result.nack_range_total(node):>16.0f}"
            )
    else:
        print("no nacks were needed")
    return 0 if result.all_exactly_once() else 1


def _cmd_overhead(args: argparse.Namespace) -> int:
    points = run_overhead_sweep(
        args.subs,
        input_rate=args.rate,
        warmup=args.warmup,
        measure=args.measure,
    )
    print(
        f"{'protocol':>11} {'N':>6} {'SHB CPU':>8} {'PHB CPU':>8} "
        f"{'local ms':>9} {'remote ms':>10}"
    )
    for point in points:
        print(
            f"{point.protocol:>11} {point.n_subscribers:>6} "
            f"{100 * point.shb_cpu:>7.2f}% {100 * point.phb_cpu:>7.2f}% "
            f"{point.local_median_ms:>9.1f} {point.remote_median_ms:>10.1f}"
        )
    return 0


def _cmd_quickcheck(args: argparse.Namespace) -> int:
    from .client import DeliveryChecker
    from .core.config import LivenessParams
    from .topology import two_broker_topology

    topo = two_broker_topology()
    topo.pubend("P0", "phb")
    topo.route("P0", "PHB", "SHB")
    system = topo.build(seed=args.seed, params=LivenessParams(gct=0.1, nrt_min=0.3))
    system.network.link("phb", "shb").drop_probability = 0.1
    client = system.subscribe("check", "shb", ("P0",))
    publisher = system.publisher("P0", rate=100.0)
    publisher.start(at=0.1)
    system.run_until(3.0)
    publisher.stop()
    system.run_until(10.0)
    report = DeliveryChecker([publisher]).check(
        client, system.subscriptions["check"]
    )
    print(
        f"published {len(publisher.published)}, delivered {report.delivered}, "
        f"exactly once: {report.exactly_once} "
        f"(10% of messages were dropped on the wire)"
    )
    return 0 if report.exactly_once else 1


def _stats_system(args: argparse.Namespace):
    from .core.config import LivenessParams
    from .topology import balanced_pubend_names, figure3_topology, two_broker_topology

    params = LivenessParams(gct=0.1, nrt_min=0.3)
    if args.topology == "figure3":
        names = balanced_pubend_names(4)
        system = figure3_topology(pubend_names=names).build(
            seed=args.seed, params=params
        )
        for i in range(1, 6):
            system.subscribe(f"sub{i}", f"s{i}", tuple(names))
        rate = 25.0
    else:
        names = ["P0"]
        topo = two_broker_topology()
        topo.pubend("P0", "phb")
        topo.route("P0", "PHB", "SHB")
        system = topo.build(seed=args.seed, params=params)
        system.subscribe("sub1", "shb", ("P0",))
        rate = 50.0
    if args.drop:
        for link in system.network.links_of("p1" if args.topology == "figure3" else "phb"):
            link.drop_probability = args.drop
    for name in names:
        system.publisher(name, rate=rate).start(at=0.1)
    return system


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs.causal import CausalTracer
    from .obs.detectors import DetectorSet

    system = _stats_system(args)
    # Snapshots include the causal/detector gauge families, so the
    # exported schema matches what `repro trace` reports on.
    CausalTracer(system).install()
    DetectorSet(system).install()
    system.run_for(args.duration)
    if args.format == "json":
        system.obs.json_lines(sys.stdout)
    else:
        sys.stdout.write(system.obs.prometheus())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs.attribution import build_report
    from .obs.causal import CausalTracer
    from .obs.detectors import DetectorSet

    system = _stats_system(args)
    tracer = CausalTracer(system).install()
    detectors = DetectorSet(system).install()
    system.run_for(args.duration)

    report = build_report(tracer)
    sys.stdout.write(report.format(top=args.top))
    bad = [b for b in report.breakdowns if not b.check_sum(1e-9)]
    if bad:
        print(f"WARNING: {len(bad)} breakdown(s) do not sum to their total")
    if detectors.findings:
        print(f"\n{len(detectors.findings)} anomaly finding(s):")
        for finding in detectors.findings:
            print(f"  {finding.render()}")

    if args.chrome:
        count = tracer.export_chrome(args.chrome)
        print(f"\nwrote {count} trace events to {args.chrome} "
              f"(open in Perfetto / chrome://tracing)")

    if args.timeline:
        pubend, _, tick_text = args.timeline.rpartition(":")
        if not pubend:
            print(f"--timeline wants PUBEND:TICK, got {args.timeline!r}",
                  file=sys.stderr)
            return 2
        print()
        sys.stdout.write(tracer.render_timeline(pubend, int(tick_text)))
    return 1 if bad else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .check import fuzz, run_seed, scenario_seed

    if args.verify_deterministic:
        seed = scenario_seed(args.seed, 0)
        first, second = run_seed(seed), run_seed(seed)
        same = first.digest == second.digest
        print(f"seed {seed}: digest {first.digest[:16]}... "
              f"{'reproducible' if same else 'DIVERGED'}")
        if not same:
            return 1

    report = fuzz(
        args.seed,
        args.runs,
        time_budget=args.time_budget,
        shrink_failures=args.shrink,
        repro_dir=args.repro_dir,
        progress=print,
        stop_on_failure=not args.keep_going,
        flush_delay=args.flush_delay,
    )
    print(
        f"fuzz: {report.runs} scenario(s), {len(report.failures)} failure(s), "
        f"{report.elapsed:.1f}s wall (base seed {report.base_seed})"
    )
    for path in report.repro_paths:
        print(f"repro: {path}")
    return 0 if report.ok else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    from .check import load_repro, run_scenario

    status = 0
    for path in args.repro:
        scenario, expect = load_repro(path)
        if args.flush_delay is not None:
            scenario = scenario.with_(flush_delay=args.flush_delay)
        result = run_scenario(scenario)
        verdict = "pass" if result.ok else "fail"
        agree = verdict == expect
        print(f"{path}: expected {expect}, got {verdict} "
              f"{'OK' if agree else 'MISMATCH'}")
        for line in result.failures:
            print(f"  {line}")
        if not agree:
            status = 1
    return status


def _cmd_conform(args: argparse.Namespace) -> int:
    from .check import conform, replay_conformance
    from .check.conformance import DEFAULT_TIME_SCALE

    mutations = tuple(args.mutate or ())
    time_scale = (
        args.time_scale if args.time_scale is not None else DEFAULT_TIME_SCALE
    )

    if args.replay:
        status = 0
        for path in args.replay:
            result, expect = replay_conformance(path)
            verdict = "agree" if result.ok else "diverge"
            agree = verdict == expect
            print(f"{path}: expected {expect}, got {verdict} "
                  f"{'OK' if agree else 'MISMATCH'}")
            for line in result.divergences:
                print(f"  {line}")
            if not agree:
                status = 1
        return status

    report = conform(
        args.seed,
        args.runs,
        time_budget=args.time_budget,
        shrink_divergences=args.shrink,
        repro_dir=args.repro_dir,
        progress=print,
        stop_on_divergence=not args.keep_going,
        time_scale=time_scale,
        transport=args.transport,
        mutations=mutations,
        aio_flush_delay=args.aio_flush_delay,
        corrupt_rate=args.corrupt_rate,
    )
    print(
        f"conform: {report.runs} scenario(s), "
        f"{len(report.divergences)} divergence(s), "
        f"{report.elapsed:.1f}s wall (base seed {report.base_seed})"
    )
    for path in report.repro_paths:
        print(f"repro: {path}")
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import main as bench_main

    return bench_main(args)


def _cmd_chaos(args: argparse.Namespace) -> int:
    import os

    from .aio.chaos import run_chaos

    status = 0
    for offset in range(args.runs):
        seed = args.seed + offset
        # Each seed gets its own subdirectory so log files (and any
        # .quarantine sidecars left by corruption injection) survive
        # side by side for post-mortem / CI artifact collection.
        data_dir = args.data_dir
        if data_dir is not None and args.runs > 1:
            data_dir = os.path.join(data_dir, f"seed-{seed}")
        report = run_chaos(
            seed=seed,
            duration=args.duration,
            transport=args.transport,
            data_dir=data_dir,
            settle=args.settle,
            aio_flush_delay=args.aio_flush_delay,
            max_batch_bytes=args.max_batch_bytes,
            corrupt_rate=args.corrupt_rate,
        )
        print(report.render())
        if not report.ok:
            status = 1
        if report.published < args.min_published:
            print(
                f"FAILURE: only {report.published} publications "
                f"(wanted >= {args.min_published}); the run carried too "
                f"little traffic to mean anything"
            )
            status = 1
    return status


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .aio.chaos import FAST_PARAMS, chain_topology
    from .aio.runtime import AioSystem
    from .aio.transport import TcpTransport
    from .client import DeliveryChecker

    async def serve() -> int:
        wire_kwargs = {}
        if args.aio_flush_delay is not None:
            wire_kwargs["flush_delay"] = args.aio_flush_delay
        if args.max_batch_bytes is not None:
            wire_kwargs["max_batch_bytes"] = args.max_batch_bytes
        system = AioSystem(
            chain_topology(),
            params=FAST_PARAMS,
            transport=TcpTransport(seed=args.seed, **wire_kwargs),
            data_dir=args.data_dir,
        )
        await system.start()
        for broker_id, (host, port) in sorted(system.transport.addresses.items()):
            print(f"broker {broker_id} listening on {host}:{port}")
        client = system.subscribe("demo", "b2", ("P0", "P1"))
        publishers = [
            system.publisher(p, rate=args.rate) for p in ("P0", "P1")
        ]
        for publisher in publishers:
            publisher.start()
        remaining = args.duration
        while remaining > 0:
            step = min(1.0, remaining)
            remaining -= await system.run_for(step)
            print(
                f"published {sum(len(p.published) for p in publishers):>6} "
                f"delivered {len(client.received):>6}"
            )
        for publisher in publishers:
            await publisher.stop()
        await system.run_for(args.settle)
        report = DeliveryChecker(publishers).check(
            client, system.subscriptions["demo"]
        )
        await system.shutdown()
        print(
            f"final: published {report.matching_published}, delivered "
            f"{report.delivered}, exactly once: {report.exactly_once}"
        )
        return 0 if report.exactly_once else 1

    return asyncio.run(serve())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gryphon guaranteed-delivery reproduction — experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("fig6", "Figure 6: b1-s1 link failure dynamics"),
        ("fig7", "Figure 7: intermediate broker crash"),
        ("fig8", "Figure 8: publisher-hosting broker crash"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument(
            "--dump", metavar="CSV",
            help="write latency and cumulative-nack series as long-form CSV",
        )
        p.set_defaults(fn=_cmd_fault)

    p = sub.add_parser("overhead", help="Figures 4-5: GD vs best-effort sweep")
    p.add_argument("--subs", type=int, nargs="+", default=[100, 400, 1600])
    p.add_argument("--rate", type=float, default=200.0)
    p.add_argument("--warmup", type=float, default=1.5)
    p.add_argument("--measure", type=float, default=6.0)
    p.set_defaults(fn=_cmd_overhead)

    p = sub.add_parser("quickcheck", help="fast exactly-once sanity run")
    p.add_argument("--seed", type=int, default=3)
    p.set_defaults(fn=_cmd_quickcheck)

    p = sub.add_parser(
        "stats",
        help="run a canned workload and print an observability snapshot",
    )
    p.add_argument(
        "--topology", choices=("figure3", "two_broker"), default="figure3"
    )
    p.add_argument("--duration", type=float, default=5.0)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--drop", type=float, default=0.0,
        help="drop probability on the PHB's links (exercises nack metrics)",
    )
    p.add_argument("--format", choices=("prometheus", "json"), default="prometheus")
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser(
        "trace",
        help="run a canned workload under the causal tracer and print the "
        "latency-attribution report (docs/OBSERVABILITY.md)",
    )
    p.add_argument(
        "--topology", choices=("figure3", "two_broker"), default="two_broker"
    )
    p.add_argument("--duration", type=float, default=5.0)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--drop", type=float, default=0.0,
        help="drop probability on the PHB's links (exercises retransmit_wait)",
    )
    p.add_argument(
        "--chrome", metavar="OUT",
        help="write the span store as Chrome trace-event JSON for Perfetto",
    )
    p.add_argument(
        "--timeline", metavar="PUBEND:TICK",
        help="print the causal span timeline of one publication identity",
    )
    p.add_argument(
        "--top", type=int, default=5,
        help="also list the N slowest deliveries with their dominant component",
    )
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "fuzz",
        help="deterministic fault-schedule fuzzing under the exactly-once "
        "oracle suite (see docs/FUZZING.md)",
    )
    p.add_argument("--seed", type=int, default=0, help="base campaign seed")
    p.add_argument("--runs", type=int, default=50, help="scenarios to run")
    p.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop starting new scenarios after this much wall time",
    )
    p.add_argument(
        "--shrink", action=argparse.BooleanOptionalAction, default=True,
        help="minimize failures before writing repro files",
    )
    p.add_argument(
        "--repro-dir", default=".",
        help="directory for repro files of shrunk failures",
    )
    p.add_argument(
        "--keep-going", action="store_true",
        help="continue the campaign after a failure instead of stopping",
    )
    p.add_argument(
        "--verify-deterministic", action="store_true",
        help="run the first scenario twice and compare digests before fuzzing",
    )
    p.add_argument(
        "--flush-delay", type=float, default=None, metavar="SECONDS",
        help="force batched knowledge propagation on every generated "
        "scenario (proves the oracles hold with flush_delay > 0)",
    )
    p.set_defaults(fn=_cmd_fuzz)

    p = sub.add_parser(
        "replay",
        help="replay repro files (tests/corpus/*.json) and check verdicts",
    )
    p.add_argument("repro", nargs="+", help="repro JSON files to replay")
    p.add_argument(
        "--flush-delay", type=float, default=None, metavar="SECONDS",
        help="override the scenarios' knowledge-batching knob before replay",
    )
    p.set_defaults(fn=_cmd_replay)

    p = sub.add_parser(
        "conform",
        help="differential sim vs asyncio conformance runs: one seeded "
        "scenario executed on both backends and cross-checked "
        "(docs/TESTING.md)",
    )
    p.add_argument("--seed", type=int, default=0, help="base campaign seed")
    p.add_argument("--runs", type=int, default=25, help="scenarios to run")
    p.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop starting new scenarios after this much wall time",
    )
    p.add_argument(
        "--replay", nargs="+", metavar="REPRO", default=None,
        help="replay conformance repro files instead of running a campaign",
    )
    p.add_argument(
        "--shrink", action=argparse.BooleanOptionalAction, default=True,
        help="minimize divergences before writing repro files",
    )
    p.add_argument(
        "--repro-dir", default=".",
        help="directory for repro files of shrunk divergences",
    )
    p.add_argument(
        "--keep-going", action="store_true",
        help="continue the campaign after a divergence instead of stopping",
    )
    p.add_argument(
        "--transport", choices=("local", "tcp"), default="local",
        help="asyncio transport (tcp strips wire-loss pathologies: a "
        "reliable stream cannot drop frames)",
    )
    p.add_argument(
        "--time-scale", type=float, default=None,
        help="wall-clock seconds per simulated second for the asyncio leg",
    )
    p.add_argument(
        "--mutate", action="append", metavar="MUTATION", default=None,
        help="run the asyncio leg with a deliberate protocol defect "
        "(e.g. suppress-retransmit) — the harness must report divergence",
    )
    p.add_argument(
        "--aio-flush-delay", type=float, default=None, metavar="SECONDS",
        help="override the TCP transport's cork window (wire batching) "
        "for the asyncio leg — CI uses 0.005 to prove aggressive "
        "batching stays invisible to the oracles",
    )
    p.add_argument(
        "--corrupt-rate", type=float, default=0.0, metavar="PROBABILITY",
        help="ambient per-message frame-corruption probability on the "
        "asyncio leg's local transport (checksum rejects must heal "
        "invisibly; ignored for tcp)",
    )
    p.set_defaults(fn=_cmd_conform)

    p = sub.add_parser(
        "bench",
        help="deterministic hot-path benchmarks; emits BENCH_4.json and "
        "gates CI on operation-counter regressions (docs/PERFORMANCE.md)",
    )
    p.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full benchmark report (e.g. BENCH_4.json)",
    )
    p.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="fail (exit 1) on >tolerance regression of any deterministic "
        "counter vs this committed baseline",
    )
    p.add_argument(
        "--write-baseline", metavar="PATH", default=None,
        help="write the current deterministic counters as the new baseline",
    )
    p.add_argument(
        "--tolerance", type=float, default=0.05,
        help="allowed fractional counter growth for --check (default 0.05)",
    )
    p.add_argument(
        "--repeat", type=int, default=3,
        help="wall-clock repetitions per benchmark (best-of)",
    )
    p.add_argument(
        "--max-trace-overhead", type=float, default=None, metavar="FRACTION",
        help="fail (exit 1) when causal tracing slows the chain run by "
        "more than this fraction of wall-clock (CI uses 0.10)",
    )
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "chaos",
        help="seeded real-time chaos runs against the asyncio runtime "
        "(FileLog durability over TCP; see docs/DEPLOYMENT.md)",
    )
    p.add_argument("--seed", type=int, default=0, help="base schedule seed")
    p.add_argument(
        "--runs", type=int, default=1,
        help="consecutive seeds to run starting at --seed",
    )
    p.add_argument("--duration", type=float, default=2.0,
                   help="seconds of live traffic + faults per run")
    p.add_argument("--settle", type=float, default=2.5,
                   help="post-fault drain window before the oracle check")
    p.add_argument("--transport", choices=("tcp", "local"), default="tcp")
    p.add_argument(
        "--data-dir", default=None,
        help="pubend log directory (default: fresh temp dir per run)",
    )
    p.add_argument(
        "--min-published", type=int, default=20,
        help="fail a run that carried fewer publications than this",
    )
    p.add_argument(
        "--aio-flush-delay", type=float, default=None, metavar="SECONDS",
        help="override the TCP transport's cork window (wire batching)",
    )
    p.add_argument(
        "--max-batch-bytes", type=int, default=None,
        help="override the TCP transport's batch-frame size cap",
    )
    p.add_argument(
        "--corrupt-rate", type=float, default=0.0, metavar="PROBABILITY",
        help="per-kind probability of scheduling corruption faults "
        "(log bit-flips, wire frame damage, disk-full) into the chaos "
        "schedule; 1.0 schedules all three every run",
    )
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser(
        "serve",
        help="demo deployment: the b0-b1-b2 chain over real TCP with "
        "durable pubend logs, printing live delivery counts",
    )
    p.add_argument("--duration", type=float, default=5.0)
    p.add_argument("--settle", type=float, default=2.0,
                   help="drain window after publishers stop")
    p.add_argument("--rate", type=float, default=40.0,
                   help="per-pubend publication rate (msgs/s)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--data-dir", default=None,
        help="pubend log directory (default: in-memory logs)",
    )
    p.add_argument(
        "--aio-flush-delay", type=float, default=None, metavar="SECONDS",
        help="override the TCP transport's cork window (wire batching)",
    )
    p.add_argument(
        "--max-batch-bytes", type=int, default=None,
        help="override the TCP transport's batch-frame size cap",
    )
    p.set_defaults(fn=_cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
