"""Simulated network: nodes, lossy links, failures.

Models exactly the failure behaviours the paper's protocol must tolerate
(section 2): dropped messages, reordered messages, link outages, and the
*stall* used by the paper's failure injection ("the link or broker to be
failed was stalled for about 2-3 seconds during which it accepted data
but did not forward it, then it was failed" — section 4.2).

Links are full-duplex point-to-point channels with per-direction latency,
optional jitter (which produces genuine reordering), an i.i.d. drop
probability, and optional serialization bandwidth.  Delivery callbacks go
through the shared deterministic :class:`~repro.sim.scheduler.Scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..obs.instruments import NULL_INSTRUMENTS
from .scheduler import Scheduler

__all__ = ["SimLink", "SimNetwork", "Node"]


class Node:
    """Anything attached to the network.

    Subclasses (brokers, clients) override :meth:`receive`.  The network
    silently discards deliveries to dead nodes — a crashed process neither
    receives nor acknowledges anything.
    """

    def __init__(self, node_id: str):
        self.node_id = node_id
        self.alive = True

    def receive(self, src: str, message: Any) -> None:
        raise NotImplementedError


@dataclass
class LinkStats:
    """Per-link delivery accounting (both directions)."""

    sent: int = 0
    delivered: int = 0
    dropped_random: int = 0
    dropped_down: int = 0
    dropped_stalled: int = 0
    bytes_sent: int = 0


class SimLink:
    """A full-duplex link between two nodes.

    State machine per link: *up* (delivering), *down* (dropping), or
    *stalled* (accepting but never delivering — traffic is absorbed and
    lost, modelling a sick process that still reads from its sockets).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        a: "Node",
        b: "Node",
        latency: float = 0.005,
        jitter: float = 0.0,
        drop_probability: float = 0.0,
        bandwidth_bps: Optional[float] = None,
        instruments: Any = NULL_INSTRUMENTS,
    ):
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        self.scheduler = scheduler
        self.a = a
        self.b = b
        self.latency = latency
        self.jitter = jitter
        self.drop_probability = drop_probability
        self.bandwidth_bps = bandwidth_bps
        self.up = True
        self.stalled = False
        self.stats = LinkStats()
        #: Serialization cursors per direction (time the pipe frees up).
        self._free_at: Dict[str, float] = {a.node_id: 0.0, b.node_id: 0.0}
        #: Per-direction sequence numbers for reorder detection: a
        #: delivery whose send sequence is below the highest already
        #: delivered in that direction overtook it on the wire.
        self._send_seq: Dict[str, int] = {a.node_id: 0, b.node_id: 0}
        self._max_delivered_seq: Dict[str, int] = {a.node_id: -1, b.node_id: -1}
        name = "-".join(sorted((a.node_id, b.node_id)))
        labels = {"link": name}
        self._m_sent = instruments.counter(
            "repro_network_sent_total",
            help="Messages handed to this link (either direction).",
            **labels,
        )
        self._m_delivered = instruments.counter(
            "repro_network_delivered_total",
            help="Messages delivered to the far endpoint.",
            **labels,
        )
        self._m_dropped = {
            reason: instruments.counter(
                "repro_network_dropped_total",
                help="Messages lost on this link, by cause.",
                reason=reason,
                **labels,
            )
            for reason in ("random", "down", "stalled")
        }
        self._m_reordered = instruments.counter(
            "repro_network_reordered_total",
            help="Deliveries that overtook an earlier send (jitter).",
            **labels,
        )
        self._m_in_flight = instruments.gauge(
            "repro_network_in_flight",
            help="Messages currently on the wire.",
            **labels,
        )
        self._m_bytes = instruments.counter(
            "repro_network_bytes_sent_total",
            help="Bytes handed to this link (either direction).",
            **labels,
        )

    def endpoints(self) -> Tuple[str, str]:
        return (self.a.node_id, self.b.node_id)

    def other(self, node_id: str) -> "Node":
        if node_id == self.a.node_id:
            return self.b
        if node_id == self.b.node_id:
            return self.a
        raise KeyError(f"{node_id} is not an endpoint of {self.endpoints()}")

    # -- failure control ----------------------------------------------------

    def fail(self) -> None:
        """Take the link down; in-flight messages already scheduled still
        arrive (they are on the wire), new sends are dropped."""
        self.up = False
        self.stalled = False

    def recover(self) -> None:
        self.up = True
        self.stalled = False

    def stall(self) -> None:
        """Absorb traffic without delivering (pre-crash sickness)."""
        self.stalled = True

    # -- transmission --------------------------------------------------------

    def send(self, src_id: str, message: Any, size_bytes: int = 100) -> bool:
        """Transmit from the ``src_id`` endpoint to the other endpoint.

        Returns True when the message was put on the wire (which does not
        guarantee delivery).  Sending on a down link fails silently — the
        sender learns about link failure through link-status machinery,
        not through send errors (TCP would eventually error, but only
        after its own timeouts).
        """
        destination = self.other(src_id)
        self.stats.sent += 1
        self.stats.bytes_sent += size_bytes
        self._m_sent.inc()
        self._m_bytes.inc(size_bytes)
        if not self.up:
            self.stats.dropped_down += 1
            self._m_dropped["down"].inc()
            return False
        if self.stalled:
            self.stats.dropped_stalled += 1
            self._m_dropped["stalled"].inc()
            return False
        if self.drop_probability and self.scheduler.rng.random() < self.drop_probability:
            self.stats.dropped_random += 1
            self._m_dropped["random"].inc()
            return True
        delay = self.latency
        if self.jitter:
            delay += self.scheduler.rng.uniform(0.0, self.jitter)
        if self.bandwidth_bps:
            serialization = size_bytes * 8.0 / self.bandwidth_bps
            start = max(self.scheduler.now, self._free_at[src_id])
            self._free_at[src_id] = start + serialization
            delay += (start + serialization) - self.scheduler.now
        seq = self._send_seq[src_id]
        self._send_seq[src_id] = seq + 1
        self._m_in_flight.inc()
        self.scheduler.call_later(
            delay, lambda: self._deliver(src_id, destination, message, seq)
        )
        return True

    def _deliver(
        self, src_id: str, destination: "Node", message: Any, seq: int = 0
    ) -> None:
        self._m_in_flight.dec()
        if not self.up:
            # The link died while the message was in flight.
            self.stats.dropped_down += 1
            self._m_dropped["down"].inc()
            return
        if not destination.alive:
            return
        self.stats.delivered += 1
        self._m_delivered.inc()
        if seq < self._max_delivered_seq[src_id]:
            self._m_reordered.inc()
        else:
            self._max_delivered_seq[src_id] = seq
        destination.receive(src_id, message)


class SimNetwork:
    """The set of nodes and links of one simulation."""

    def __init__(self, scheduler: Scheduler, instruments: Any = NULL_INSTRUMENTS):
        self.scheduler = scheduler
        self.instruments = instruments
        self.nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], SimLink] = {}

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def add_node(self, node: Node) -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node

    def connect(self, a: str, b: str, **link_params: Any) -> SimLink:
        """Create a link between two registered nodes."""
        if a == b:
            raise ValueError("cannot link a node to itself")
        key = self._key(a, b)
        if key in self._links:
            raise ValueError(f"link {key} already exists")
        link_params.setdefault("instruments", self.instruments)
        link = SimLink(self.scheduler, self.nodes[a], self.nodes[b], **link_params)
        self._links[key] = link
        return link

    def link(self, a: str, b: str) -> SimLink:
        return self._links[self._key(a, b)]

    def has_link(self, a: str, b: str) -> bool:
        return self._key(a, b) in self._links

    def links_of(self, node_id: str) -> List[SimLink]:
        return [
            link
            for key, link in self._links.items()
            if node_id in key
        ]

    def neighbors(self, node_id: str) -> List[str]:
        out = []
        for (a, b) in self._links:
            if a == node_id:
                out.append(b)
            elif b == node_id:
                out.append(a)
        return sorted(out)

    def send(self, src: str, dst: str, message: Any, size_bytes: int = 100) -> bool:
        """Send over the direct link between ``src`` and ``dst``.

        Returns False (without raising) when no such link exists or the
        link refuses the message — distributed senders discover topology
        problems asynchronously, not via exceptions.
        """
        key = self._key(src, dst)
        link = self._links.get(key)
        if link is None:
            return False
        if not self.nodes[src].alive:
            return False
        return link.send(src, message, size_bytes)

    def link_is_usable(self, src: str, dst: str) -> bool:
        """The sender's local view of link health: the link exists, is up,
        and the peer process is alive.  A *stalled* link still looks
        usable — stalls are by construction undetectable sickness (paper
        section 4.2)."""
        link = self._links.get(self._key(src, dst))
        return link is not None and link.up and self.nodes[dst].alive
