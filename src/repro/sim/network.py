"""Simulated network: nodes, lossy links, failures.

Models exactly the failure behaviours the paper's protocol must tolerate
(section 2): dropped messages, reordered messages, link outages, and the
*stall* used by the paper's failure injection ("the link or broker to be
failed was stalled for about 2-3 seconds during which it accepted data
but did not forward it, then it was failed" — section 4.2).

Links are full-duplex point-to-point channels with per-direction latency,
optional jitter (which produces genuine reordering), an i.i.d. drop
probability, and optional serialization bandwidth.  Delivery callbacks go
through the shared deterministic :class:`~repro.sim.scheduler.Scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .scheduler import Scheduler

__all__ = ["SimLink", "SimNetwork", "Node"]


class Node:
    """Anything attached to the network.

    Subclasses (brokers, clients) override :meth:`receive`.  The network
    silently discards deliveries to dead nodes — a crashed process neither
    receives nor acknowledges anything.
    """

    def __init__(self, node_id: str):
        self.node_id = node_id
        self.alive = True

    def receive(self, src: str, message: Any) -> None:
        raise NotImplementedError


@dataclass
class LinkStats:
    """Per-link delivery accounting (both directions)."""

    sent: int = 0
    delivered: int = 0
    dropped_random: int = 0
    dropped_down: int = 0
    dropped_stalled: int = 0
    bytes_sent: int = 0


class SimLink:
    """A full-duplex link between two nodes.

    State machine per link: *up* (delivering), *down* (dropping), or
    *stalled* (accepting but never delivering — traffic is absorbed and
    lost, modelling a sick process that still reads from its sockets).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        a: "Node",
        b: "Node",
        latency: float = 0.005,
        jitter: float = 0.0,
        drop_probability: float = 0.0,
        bandwidth_bps: Optional[float] = None,
    ):
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        self.scheduler = scheduler
        self.a = a
        self.b = b
        self.latency = latency
        self.jitter = jitter
        self.drop_probability = drop_probability
        self.bandwidth_bps = bandwidth_bps
        self.up = True
        self.stalled = False
        self.stats = LinkStats()
        #: Serialization cursors per direction (time the pipe frees up).
        self._free_at: Dict[str, float] = {a.node_id: 0.0, b.node_id: 0.0}

    def endpoints(self) -> Tuple[str, str]:
        return (self.a.node_id, self.b.node_id)

    def other(self, node_id: str) -> "Node":
        if node_id == self.a.node_id:
            return self.b
        if node_id == self.b.node_id:
            return self.a
        raise KeyError(f"{node_id} is not an endpoint of {self.endpoints()}")

    # -- failure control ----------------------------------------------------

    def fail(self) -> None:
        """Take the link down; in-flight messages already scheduled still
        arrive (they are on the wire), new sends are dropped."""
        self.up = False
        self.stalled = False

    def recover(self) -> None:
        self.up = True
        self.stalled = False

    def stall(self) -> None:
        """Absorb traffic without delivering (pre-crash sickness)."""
        self.stalled = True

    # -- transmission --------------------------------------------------------

    def send(self, src_id: str, message: Any, size_bytes: int = 100) -> bool:
        """Transmit from the ``src_id`` endpoint to the other endpoint.

        Returns True when the message was put on the wire (which does not
        guarantee delivery).  Sending on a down link fails silently — the
        sender learns about link failure through link-status machinery,
        not through send errors (TCP would eventually error, but only
        after its own timeouts).
        """
        destination = self.other(src_id)
        self.stats.sent += 1
        self.stats.bytes_sent += size_bytes
        if not self.up:
            self.stats.dropped_down += 1
            return False
        if self.stalled:
            self.stats.dropped_stalled += 1
            return False
        if self.drop_probability and self.scheduler.rng.random() < self.drop_probability:
            self.stats.dropped_random += 1
            return True
        delay = self.latency
        if self.jitter:
            delay += self.scheduler.rng.uniform(0.0, self.jitter)
        if self.bandwidth_bps:
            serialization = size_bytes * 8.0 / self.bandwidth_bps
            start = max(self.scheduler.now, self._free_at[src_id])
            self._free_at[src_id] = start + serialization
            delay += (start + serialization) - self.scheduler.now
        self.scheduler.call_later(delay, lambda: self._deliver(src_id, destination, message))
        return True

    def _deliver(self, src_id: str, destination: "Node", message: Any) -> None:
        if not self.up:
            # The link died while the message was in flight.
            self.stats.dropped_down += 1
            return
        if not destination.alive:
            return
        self.stats.delivered += 1
        destination.receive(src_id, message)


class SimNetwork:
    """The set of nodes and links of one simulation."""

    def __init__(self, scheduler: Scheduler):
        self.scheduler = scheduler
        self.nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], SimLink] = {}

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def add_node(self, node: Node) -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node

    def connect(self, a: str, b: str, **link_params: Any) -> SimLink:
        """Create a link between two registered nodes."""
        if a == b:
            raise ValueError("cannot link a node to itself")
        key = self._key(a, b)
        if key in self._links:
            raise ValueError(f"link {key} already exists")
        link = SimLink(self.scheduler, self.nodes[a], self.nodes[b], **link_params)
        self._links[key] = link
        return link

    def link(self, a: str, b: str) -> SimLink:
        return self._links[self._key(a, b)]

    def has_link(self, a: str, b: str) -> bool:
        return self._key(a, b) in self._links

    def links_of(self, node_id: str) -> List[SimLink]:
        return [
            link
            for key, link in self._links.items()
            if node_id in key
        ]

    def neighbors(self, node_id: str) -> List[str]:
        out = []
        for (a, b) in self._links:
            if a == node_id:
                out.append(b)
            elif b == node_id:
                out.append(a)
        return sorted(out)

    def send(self, src: str, dst: str, message: Any, size_bytes: int = 100) -> bool:
        """Send over the direct link between ``src`` and ``dst``.

        Returns False (without raising) when no such link exists or the
        link refuses the message — distributed senders discover topology
        problems asynchronously, not via exceptions.
        """
        key = self._key(src, dst)
        link = self._links.get(key)
        if link is None:
            return False
        if not self.nodes[src].alive:
            return False
        return link.send(src, message, size_bytes)

    def link_is_usable(self, src: str, dst: str) -> bool:
        """The sender's local view of link health: the link exists, is up,
        and the peer process is alive.  A *stalled* link still looks
        usable — stalls are by construction undetectable sickness (paper
        section 4.2)."""
        link = self._links.get(self._key(src, dst))
        return link is not None and link.up and self.nodes[dst].alive
