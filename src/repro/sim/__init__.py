"""Deterministic discrete-event simulation substrate."""

from .network import Node, SimLink, SimNetwork
from .process import SimProcess
from .scheduler import Scheduler, TimerHandle
from .trace import TraceEvent, Tracer
