"""Deterministic discrete-event simulation substrate."""

from .network import Node, SimLink, SimNetwork
from .process import SimProcess
from .scheduler import Scheduler, TimerHandle


def __getattr__(name: str):
    # Deprecated: Tracer/TraceEvent moved to repro.obs.trace.  The shim in
    # .trace emits the DeprecationWarning; stay lazy here so plain
    # ``import repro.sim`` never warns.
    if name in ("Tracer", "TraceEvent"):
        from . import trace

        return getattr(trace, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
