"""Deprecated location of the structured tracer.

The tracer moved to :mod:`repro.obs.trace` when the unified
observability layer was introduced; it is an observation concern, not a
simulation one.  Importing ``Tracer``/``TraceEvent`` from here still
works but emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

__all__ = ["TraceEvent", "Tracer"]


def __getattr__(name: str):
    if name in __all__:
        warnings.warn(
            f"repro.sim.trace.{name} moved to repro.obs.trace; "
            "import it from repro.obs (or repro) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..obs import trace

        return getattr(trace, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
