"""Deterministic discrete-event scheduler.

The simulation substrate for all protocol experiments: a priority queue of
timestamped events with a strictly deterministic tie-break (insertion
sequence number), a simulated clock, and cancellable timers.  Given the
same seed and the same call sequence, every run is bit-identical — the
property the protocol tests rely on.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, List, Tuple

__all__ = ["Scheduler", "TimerHandle"]


class TimerHandle:
    """A cancellable scheduled callback."""

    __slots__ = ("when", "fn", "cancelled")

    def __init__(self, when: float, fn: Callable[[], None]):
        self.when = when
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Scheduler:
    """Event loop over simulated time.

    Events scheduled for the same instant run in scheduling order.  The
    scheduler also owns the simulation's random generator so that every
    source of randomness (drops, jitter, workloads) derives from one seed.
    """

    def __init__(self, seed: int = 0):
        self._heap: List[Tuple[float, int, TimerHandle]] = []
        self._sequence = 0
        self._now = 0.0
        self.rng = random.Random(seed)
        self.events_run = 0

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    def call_at(self, when: float, fn: Callable[[], None]) -> TimerHandle:
        """Schedule ``fn`` at absolute simulated time ``when``.

        Times in the past run at the current time (immediately on the next
        step), never rewinding the clock.
        """
        handle = TimerHandle(max(when, self._now), fn)
        heapq.heappush(self._heap, (handle.when, self._sequence, handle))
        self._sequence += 1
        return handle

    def call_later(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        """Schedule ``fn`` after ``delay`` seconds of simulated time."""
        return self.call_at(self._now + max(delay, 0.0), fn)

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._heap:
            when, __, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = when
            self.events_run += 1
            handle.fn()
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Run all events up to and including ``deadline``."""
        while self._heap:
            when, __, handle = self._heap[0]
            if when > deadline:
                break
            heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = when
            self.events_run += 1
            handle.fn()
        self._now = max(self._now, deadline)

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the queue drains (or the safety cap trips).

        Returns the number of events run.  Simulations with periodic
        timers never drain — use :meth:`run_until` for those.
        """
        count = 0
        while count < max_events and self.step():
            count += 1
        if count >= max_events:
            raise RuntimeError("scheduler run() exceeded max_events — runaway timers?")
        return count

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._heap)
