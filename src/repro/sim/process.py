"""Simulated processes: crash/restart-aware nodes with safe timers.

A :class:`SimProcess` is a network node that owns timers.  Crashing a
process must invalidate every timer it armed — a restarted broker must not
be poked by callbacks belonging to its previous incarnation.  Two
mechanisms cooperate:

* every timer carries an *epoch* check — :meth:`crash` bumps the epoch
  and older timers become no-ops even if they somehow still fire;
* pending timers are *tracked and cancelled* on crash, so the scheduler
  skips them entirely and ``Scheduler.events_run`` stays a stable
  cross-run work metric (dead-epoch timers firing as counted no-ops
  would make the counter depend on crash timing).
"""

from __future__ import annotations

from typing import Any, Callable, Set

from .network import Node, SimNetwork
from .scheduler import Scheduler, TimerHandle

__all__ = ["SimProcess"]

#: Tracking-set size at which externally cancelled timers are pruned.
_PRUNE_THRESHOLD = 256


class SimProcess(Node):
    """Base class for brokers and clients living in the simulator."""

    def __init__(self, node_id: str, network: SimNetwork, scheduler: Scheduler):
        super().__init__(node_id)
        self.network = network
        self.scheduler = scheduler
        self.epoch = 0
        self._pending_timers: Set[TimerHandle] = set()

    # -- timers ---------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        """Arm a timer tied to this incarnation of the process."""
        return self._track(self.scheduler.call_later(delay, fn), fn)

    def schedule_at(self, when: float, fn: Callable[[], None]) -> TimerHandle:
        return self._track(self.scheduler.call_at(when, fn), fn)

    def every(self, interval: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` every ``interval`` seconds until crash."""

        def tick() -> None:
            fn()
            self.schedule(interval, tick)

        self.schedule(interval, tick)

    def _track(self, handle: TimerHandle, fn: Callable[[], None]) -> TimerHandle:
        """Gate ``handle`` on this incarnation and track it for crash
        cancellation; fired or cancelled handles drop out of the set."""
        epoch = self.epoch

        def fire() -> None:
            self._pending_timers.discard(handle)
            if self.epoch == epoch and self.alive:
                fn()

        handle.fn = fire
        pending = self._pending_timers
        if len(pending) > _PRUNE_THRESHOLD:
            # Timers cancelled through their handles (e.g. satisfied nack
            # timers) never fire, so sweep them out once in a while.
            self._pending_timers = {h for h in pending if not h.cancelled}
        self._pending_timers.add(handle)
        return handle

    def now(self) -> float:
        return self.scheduler.now

    # -- lifecycle --------------------------------------------------------

    def crash(self) -> None:
        """Kill the process: drop all soft state hooks and timers.

        Subclasses override :meth:`on_crash` to discard their soft state.
        """
        if not self.alive:
            return
        self.alive = False
        self.epoch += 1
        for handle in self._pending_timers:
            handle.cancel()
        self._pending_timers.clear()
        self.on_crash()

    def restart(self) -> None:
        """Bring the process back with a fresh epoch."""
        if self.alive:
            return
        self.alive = True
        self.epoch += 1
        self.on_restart()

    def on_crash(self) -> None:  # pragma: no cover - default no-op
        """Hook: release soft state."""

    def on_restart(self) -> None:  # pragma: no cover - default no-op
        """Hook: recover from stable storage, restart timers."""

    # -- messaging ---------------------------------------------------------

    def send(self, dst: str, message: Any, size_bytes: int = 100) -> bool:
        if not self.alive:
            return False
        return self.network.send(self.node_id, dst, message, size_bytes)

    def receive(self, src: str, message: Any) -> None:
        if not self.alive:
            return
        self.on_message(src, message)

    def on_message(self, src: str, message: Any) -> None:
        raise NotImplementedError
